//! Composing the toolkit's operations by hand, exactly as the paper's Figure
//! 10 allows: here we build a custom pipeline that uses the simplified S-V
//! algorithm for labeling, skips bubble filtering entirely, and runs two
//! rounds of tip removal instead of one.
//!
//! Run with: `cargo run -p ppa-examples --release --bin custom_workflow`

use ppa_assembler::ops::construct::{build_dbg, ConstructConfig};
use ppa_assembler::ops::label_sv::label_contigs_sv;
use ppa_assembler::ops::merge::{merge_contigs, MergeConfig};
use ppa_assembler::ops::tip::{remove_tips, TipConfig};
use ppa_assembler::AsmNode;
use ppa_readsim::{GenomeConfig, ReadSimConfig};
use std::collections::HashSet;

fn main() {
    let reference = GenomeConfig {
        length: 20_000,
        repeat_families: 3,
        ..Default::default()
    }
    .generate();
    let reads = ReadSimConfig {
        coverage: 20.0,
        substitution_rate: 0.004,
        ..Default::default()
    }
    .simulate(&reference);
    let (k, workers) = (31, 4);

    // ① DBG construction.
    let construct = build_dbg(
        &reads,
        &ConstructConfig {
            k,
            min_coverage: 1,
            workers,
            batch_size: 1024,
        },
    );
    println!(
        "① built DBG: {} k-mer vertices from {} distinct (k+1)-mers",
        construct.stats.vertices, construct.stats.kept_kplus1_mers
    );
    let nodes = construct.into_nodes();

    // ② contig labeling with the simplified S-V algorithm (instead of LR).
    let labels = label_contigs_sv(&nodes, workers);
    println!(
        "② labelled {} unambiguous vertices ({} ambiguous) in {} supersteps / {} messages",
        labels.labels.len(),
        labels.ambiguous.len(),
        labels.metrics.supersteps,
        labels.metrics.total_messages
    );

    // ③ contig merging.
    let merge_cfg = MergeConfig {
        k,
        tip_length_threshold: 80,
        workers,
    };
    let merged = merge_contigs(&nodes, &labels.labels, &merge_cfg);
    println!(
        "③ merged into {} contigs ({} short tips dropped)",
        merged.contigs.len(),
        merged.dropped_tips
    );

    // ⑤ two rounds of tip removal, no bubble filtering.
    let ambiguous: HashSet<u64> = labels.ambiguous.iter().copied().collect();
    let mut kmers: Vec<AsmNode> = nodes
        .into_iter()
        .filter(|n| ambiguous.contains(&n.id))
        .collect();
    let mut contigs = merged.contigs;
    for round in 1..=2 {
        let tips = remove_tips(
            &kmers,
            &contigs,
            &TipConfig {
                k,
                tip_length_threshold: 80,
                workers,
            },
        );
        println!(
            "⑤ tip-removal round {round}: deleted {} k-mers and {} contigs in {} supersteps",
            tips.deleted_kmers, tips.deleted_contigs, tips.metrics.supersteps
        );
        kmers = tips.kmers;
        contigs = tips.contigs;
    }

    // ⑥② ③ grow longer contigs once more over the corrected graph.
    let mixed: Vec<AsmNode> = kmers
        .iter()
        .cloned()
        .chain(contigs.iter().cloned())
        .collect();
    let labels2 = label_contigs_sv(&mixed, workers);
    let merged2 = merge_contigs(&mixed, &labels2.labels, &merge_cfg);
    let mut lengths: Vec<usize> = merged2.contigs.iter().map(|c| c.len()).collect();
    lengths.sort_unstable_by(|a, b| b.cmp(a));
    println!(
        "final: {} contigs, largest {} bp, N50 {} bp",
        lengths.len(),
        lengths.first().copied().unwrap_or(0),
        ppa_assembler::stats::n50(&lengths)
    );
}
