//! Composing the toolkit's operations exactly as the paper's Figure 10
//! allows — now through the first-class pipeline API: this custom pipeline
//! uses the simplified S-V algorithm for labeling, skips bubble filtering
//! entirely, and runs two rounds of tip removal instead of one. A custom
//! [`PipelineObserver`] prints every stage as it completes.
//!
//! Run with: `cargo run -p ppa-examples --release --bin custom_workflow`

use ppa_assembler::ops::{ConstructConfig, MergeConfig, TipConfig};
use ppa_assembler::pipeline::{
    Construct, FilterLength, GraphState, Label, Merge, Pipeline, PipelineObserver, RemoveTips,
    Stage, StageReport,
};
use ppa_pregel::ExecCtx;
use ppa_readsim::{GenomeConfig, ReadSimConfig};

/// A console observer: one line per finished stage.
struct Console;

impl PipelineObserver for Console {
    fn on_stage_end(&mut self, report: &StageReport) {
        println!(
            "{:<14} round {}  {:>8.3}s  {}",
            report.stage,
            report.round,
            report.elapsed.as_secs_f64(),
            report.details.summary()
        );
    }
}

fn main() {
    let reference = GenomeConfig {
        length: 20_000,
        repeat_families: 3,
        ..Default::default()
    }
    .generate();
    let reads = ReadSimConfig {
        coverage: 20.0,
        substitution_rate: 0.004,
        ..Default::default()
    }
    .simulate(&reference);
    let (k, workers) = (31, 4);

    // The "S-V labeling, no bubbles, two tip rounds" strategy as a pipeline:
    // ① construct, ② label (S-V), ③ merge, ⑤⑤ two tip rounds, then grow
    // longer contigs once more (⑥②③) and emit the final output.
    let merge = MergeConfig {
        k,
        tip_length_threshold: 80,
    };
    let mut console = Console;
    let mut pipeline = Pipeline::new()
        .then(Construct::new(ConstructConfig {
            k,
            min_coverage: 1,
            batch_size: 1024,
        }))
        .then(Label::simplified_sv())
        .then(Merge::new(merge.clone()))
        .repeat(
            2,
            vec![Box::new(RemoveTips::new(TipConfig {
                k,
                tip_length_threshold: 80,
            })) as Box<dyn Stage>],
        )
        .then(Label::simplified_sv())
        .then(Merge::new(merge))
        .then(FilterLength::new(0))
        .observe(&mut console);

    let mut state = GraphState::new(&reads);
    pipeline.run(&mut state, &ExecCtx::new(workers));

    let lengths: Vec<usize> = state.output.iter().map(|c| c.len()).collect();
    println!(
        "\nfinal: {} contigs, largest {} bp, N50 {} bp",
        lengths.len(),
        lengths.first().copied().unwrap_or(0),
        ppa_assembler::stats::n50(&lengths)
    );
}
