//! Shared crate root for the runnable examples (see the `[[bin]]` targets in
//! `Cargo.toml`): `quickstart`, `error_correction`, `custom_workflow` and
//! `pregel_toolkit`.
