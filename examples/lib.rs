//! Shared crate root for the runnable examples (see the `[[bin]]` targets in
//! `Cargo.toml`): `quickstart`, `error_correction`, `custom_workflow`,
//! `pregel_toolkit` and `checkpoint_resume`.
