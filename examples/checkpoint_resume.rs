//! Crash and resume: run the paper workflow with stage-boundary
//! checkpointing, kill it with a deterministic injected fault, then resume
//! from the snapshot on disk and verify the recovered assembly is identical
//! to an uninterrupted run.
//!
//! Run with: `cargo run -p ppa-examples --release --bin checkpoint_resume`

use ppa_assembler::pipeline::{CheckpointPolicy, GraphState, Pipeline};
use ppa_assembler::{assemble, AssemblyConfig};
use ppa_pregel::{ExecCtx, Fault, FaultPlan};
use ppa_readsim::{GenomeConfig, ReadSimConfig};

fn main() {
    // 1. Simulate a small dataset and pick a checkpoint directory.
    let reference = GenomeConfig {
        length: 20_000,
        repeat_families: 3,
        repeat_copies: 2,
        repeat_length: 120,
        ..Default::default()
    }
    .generate();
    let reads = ReadSimConfig {
        coverage: 25.0,
        substitution_rate: 0.003,
        ..Default::default()
    }
    .simulate(&reference);
    let dir = std::env::temp_dir().join(format!("ppa-ckpt-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let workers = 4;
    let ctx = ExecCtx::new(workers);
    let config = AssemblyConfig {
        k: 31,
        workers,
        exec: Some(ctx.clone()),
        ..Default::default()
    };

    // 2. The uninterrupted reference run.
    let baseline = assemble(&reads, &config);
    println!(
        "baseline: {} contigs, N50 {} bp",
        baseline.contigs.len(),
        baseline.n50()
    );

    // 3. Run again with checkpointing on — and a deterministic crash injected
    //    at the entry of flattened stage 5 (the second labeling), standing in
    //    for a process kill. `try_run` surfaces it as a typed error instead
    //    of unwinding, and the snapshots written so far stay on disk.
    ctx.inject_faults(FaultPlan::single(Fault::StageEntry { stage: 5 }));
    let mut state = GraphState::new(&reads);
    let err = Pipeline::paper_workflow(&config)
        .checkpoint_to(&dir, CheckpointPolicy::EveryStage)
        .try_run(&mut state, &ctx)
        .expect_err("the injected crash fires");
    ctx.clear_faults();
    println!("crashed run: {err}");

    // 4. A fresh pipeline — think "new process after the crash" — resumes
    //    from the latest snapshot. The manifest pins the pipeline fingerprint,
    //    worker count and read set, so only the genuine continuation is
    //    accepted; the five completed stages are skipped, not re-run.
    let (resumed, reports) = Pipeline::paper_workflow(&config)
        .resume(&dir, &reads, &ctx)
        .expect("resume from the snapshot");
    println!(
        "resumed: replayed {} of 8 stages ({})",
        reports.len(),
        reports
            .iter()
            .map(|r| r.stage.as_str())
            .collect::<Vec<_>>()
            .join(" → ")
    );

    // 5. The recovered assembly is byte-identical to the uninterrupted one.
    assert_eq!(resumed.output, baseline.contigs);
    println!(
        "recovered assembly matches the baseline: {} contigs, N50 {} bp",
        resumed.output.len(),
        baseline.n50()
    );
    let _ = std::fs::remove_dir_all(&dir);
}
