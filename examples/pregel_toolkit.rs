//! Using the Pregel substrate on its own: the framework that powers
//! PPA-assembler is a general vertex-centric engine, demonstrated here with a
//! hand-written single-source shortest-path program plus the two bundled PPAs
//! (list ranking and simplified S-V connected components). All three jobs
//! share one persistent [`ExecCtx`] worker pool — threads are spawned once,
//! every superstep of every job is dispatched to the same parked workers, and
//! the shuffle planes stay warm between jobs.
//!
//! Run with: `cargo run -p ppa-examples --release --bin pregel_toolkit`

use ppa_pregel::aggregate::NoAggregate;
use ppa_pregel::algorithms::{connected_components, list_ranking, ListItem};
use ppa_pregel::{run_from_pairs, Context, ExecCtx, PregelConfig, VertexProgram};

/// Classic Pregel example: single-source shortest paths on an unweighted graph.
struct ShortestPaths {
    source: u64,
}

#[derive(Clone, Debug)]
struct SpState {
    neighbors: Vec<u64>,
    distance: u64,
}

impl VertexProgram for ShortestPaths {
    type Id = u64;
    type Value = SpState;
    type Message = u64;
    type Aggregate = NoAggregate;
    const USE_COMBINER: bool = true;

    fn compute(
        &self,
        ctx: &mut Context<'_, Self>,
        id: u64,
        value: &mut SpState,
        messages: &mut [u64],
    ) {
        let incoming = messages.iter().min().copied().unwrap_or(u64::MAX);
        let candidate = if ctx.superstep() == 0 && id == self.source {
            0
        } else {
            incoming
        };
        if candidate < value.distance {
            value.distance = candidate;
            for i in 0..value.neighbors.len() {
                let n = value.neighbors[i];
                ctx.send_message(n, candidate + 1);
            }
        }
        ctx.vote_to_halt();
    }

    fn combine(&self, acc: &mut u64, incoming: u64) {
        *acc = (*acc).min(incoming);
    }
}

fn main() {
    // One long-lived pool for every job in this program; cloning the context
    // into each config shares the same threads.
    let ctx = ExecCtx::new(4);
    let config = PregelConfig::with_workers(4).exec_ctx(ctx.clone());

    // A 6×6 grid graph.
    let side = 6u64;
    let vertex = |r: u64, c: u64| r * side + c;
    let pairs = (0..side).flat_map(|r| {
        (0..side).map(move |c| {
            let mut neighbors = Vec::new();
            if r > 0 {
                neighbors.push(vertex(r - 1, c));
            }
            if r + 1 < side {
                neighbors.push(vertex(r + 1, c));
            }
            if c > 0 {
                neighbors.push(vertex(r, c - 1));
            }
            if c + 1 < side {
                neighbors.push(vertex(r, c + 1));
            }
            (
                vertex(r, c),
                SpState {
                    neighbors,
                    distance: u64::MAX,
                },
            )
        })
    });
    let (result, metrics) = run_from_pairs(&ShortestPaths { source: 0 }, &config, pairs);
    let corner = result.get(&vertex(side - 1, side - 1)).unwrap().distance;
    println!(
        "shortest paths on a {side}×{side} grid: distance to the far corner = {corner} \
         ({} supersteps, {} messages)",
        metrics.supersteps, metrics.total_messages
    );

    // The BPPA for list ranking (Section II of the paper).
    let items: Vec<ListItem<u64>> = (0..1_000)
        .map(|i| ListItem {
            id: i,
            pred: if i == 0 { None } else { Some(i - 1) },
            value: 1,
        })
        .collect();
    let (ranks, metrics) = list_ranking(items, &config);
    let max_rank = ranks.iter().map(|(_, r)| *r).max().unwrap();
    println!(
        "list ranking of a 1000-element list: max prefix sum = {max_rank} \
         ({} supersteps — logarithmic, not linear)",
        metrics.supersteps
    );

    // The simplified S-V connected components (Section II of the paper).
    let mut adjacency: Vec<(u64, Vec<u64>)> = Vec::new();
    for comp in 0..4u64 {
        let base = comp * 100;
        for i in 0..50u64 {
            let id = base + i;
            let mut nbrs = Vec::new();
            if i > 0 {
                nbrs.push(id - 1);
            }
            if i + 1 < 50 {
                nbrs.push(id + 1);
            }
            adjacency.push((id, nbrs));
        }
    }
    let (components, metrics) = connected_components(adjacency, &config);
    let distinct: std::collections::HashSet<u64> = components.iter().map(|(_, c)| *c).collect();
    println!(
        "simplified S-V over 4 disjoint chains: {} components found ({} supersteps, {} messages)",
        distinct.len(),
        metrics.supersteps,
        metrics.total_messages
    );
    println!(
        "all three jobs ran on one {}-thread pool ({:.1} ms of worker busy time)",
        ctx.workers(),
        ctx.pool().busy_nanos() as f64 / 1e6
    );
}
