//! Error correction in action: assemble an error-prone read set with and
//! without the bubble-filtering / tip-removing operations and compare — both
//! variants expressed through the pipeline API. The uncorrected variant is
//! the paper workflow with zero correction rounds; the corrected one is the
//! standard ①②③④⑤⑥②③ preset. `WorkflowStats` is attached as an observer, so
//! all statistics below come from the observer hook.
//!
//! Run with: `cargo run -p ppa-examples --release --bin error_correction`

use ppa_assembler::pipeline::{GraphState, Pipeline};
use ppa_assembler::stats::WorkflowStats;
use ppa_assembler::AssemblyConfig;
use ppa_pregel::ExecCtx;
use ppa_quality::QuastReport;
use ppa_readsim::{GenomeConfig, ReadSimConfig};

fn main() {
    let reference = GenomeConfig {
        length: 30_000,
        repeat_families: 3,
        ..Default::default()
    }
    .generate();
    let reads = ReadSimConfig {
        coverage: 25.0,
        substitution_rate: 0.008, // deliberately noisy
        n_rate: 0.001,
        ..Default::default()
    }
    .simulate(&reference);
    println!(
        "simulated {} noisy reads ({}% per-base error) from a {} bp reference\n",
        reads.len(),
        0.8,
        reference.len()
    );

    let workers = 4;
    let ctx = ExecCtx::new(workers);

    // Without error correction: stop after the first merging round and keep
    // every (k+1)-mer regardless of coverage.
    let uncorrected_cfg = AssemblyConfig {
        k: 31,
        min_kmer_coverage: 0,
        error_correction_rounds: 0,
        workers,
        ..Default::default()
    };
    // With the standard workflow: θ filtering, bubble filtering, tip
    // removing, then a second labeling + merging round.
    let corrected_cfg = AssemblyConfig {
        k: 31,
        min_kmer_coverage: 1,
        workers,
        ..Default::default()
    };

    let mut results = Vec::new();
    for (name, config) in [
        ("uncorrected", &uncorrected_cfg),
        ("corrected", &corrected_cfg),
    ] {
        let mut stats = WorkflowStats::default();
        let mut state = GraphState::new(&reads);
        Pipeline::paper_workflow(config)
            .observe(&mut stats)
            .run(&mut state, &ctx);
        results.push((name, state.output, stats));
    }

    for (name, output, _) in &results {
        let contigs: Vec<_> = output.iter().map(|c| c.sequence.clone()).collect();
        let report = QuastReport::evaluate(*name, &contigs, Some(&reference.sequence), 200);
        let r = report.reference.as_ref().expect("reference supplied");
        println!(
            "{name:<12} contigs≥200: {:<5} N50: {:<6} largest: {:<6} genome fraction: {:>6.2}%  mismatches/100kbp: {:>8.2}",
            report.basic.num_contigs,
            report.basic.n50,
            report.basic.largest_contig,
            r.genome_fraction_percent,
            r.mismatches_per_100kbp,
        );
    }

    let corrected_stats = &results[1].2;
    let correction = corrected_stats
        .corrections
        .first()
        .expect("one correction round");
    println!(
        "\ncorrection round removed {} bubble contigs, {} tip k-mers, {} tip contigs",
        correction.bubbles_pruned, correction.tip_kmers_deleted, correction.tip_contigs_deleted
    );
    println!(
        "N50 grew from {} (round 1) to {} (round 2) thanks to re-merging after correction",
        corrected_stats.n50_after_round1, corrected_stats.n50_final
    );
}
