//! Job control: cancel a long-running assembly cooperatively, then resume it
//! from the emergency snapshot and finish with an identical result.
//!
//! A [`JobControl`] is a cloneable handle shared between the party running an
//! assembly and the party supervising it; the engine polls it at every BSP
//! barrier, so a cancel, deadline, or memory-budget trip unwinds as a typed
//! error at the next consistent boundary — never a panic, and the worker
//! pool stays reusable.
//!
//! Run with: `cargo run -p ppa-examples --release --bin cancellation`

use ppa_assembler::pipeline::{
    CheckpointPolicy, GraphState, Pipeline, PipelineError, PipelineObserver, StageReport,
};
use ppa_assembler::stats::WorkflowStats;
use ppa_assembler::{assemble_with_control, AssemblyConfig, JobControl};
use ppa_pregel::{EngineError, ExecCtx};
use ppa_readsim::{GenomeConfig, ReadSimConfig};

/// A supervisor stand-in: cancels the shared handle once `after` stages of
/// the workflow have completed.
struct CancelAfter {
    control: JobControl,
    after: usize,
    seen: usize,
}

impl PipelineObserver for CancelAfter {
    fn on_stage_end(&mut self, _report: &StageReport) {
        self.seen += 1;
        if self.seen == self.after {
            self.control.cancel();
        }
    }
}

fn main() {
    // Mid-superstep trips unwind via `panic_any(EngineError::Cancelled)`
    // before the pipeline retypes them; silence the default hook's backtrace
    // for exactly that payload so the demo's output stays readable.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if info.payload().downcast_ref::<EngineError>().is_none() {
            default_hook(info);
        }
    }));

    // 1. Simulate a small dataset and pick a checkpoint directory.
    let reference = GenomeConfig {
        length: 20_000,
        repeat_families: 3,
        repeat_copies: 2,
        repeat_length: 120,
        ..Default::default()
    }
    .generate();
    let reads = ReadSimConfig {
        coverage: 25.0,
        substitution_rate: 0.003,
        ..Default::default()
    }
    .simulate(&reference);
    let dir = std::env::temp_dir().join(format!("ppa-cancel-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let workers = 4;
    let ctx = ExecCtx::new(workers);
    let config = AssemblyConfig {
        k: 31,
        workers,
        exec: Some(ctx.clone()),
        ..Default::default()
    };

    // 2. The uninterrupted reference run, through the control-plane front
    //    door: a live handle costs one poll per barrier and never trips.
    let control = JobControl::new();
    let baseline = assemble_with_control(&reads, &config, &control).expect("no trip armed");
    println!(
        "baseline: {} contigs, N50 {} bp ({} cooperative polls, cancelled: {:?})",
        baseline.contigs.len(),
        baseline.n50(),
        control.checks(),
        baseline.stats.cancelled,
    );

    // 3. Run again with checkpointing armed, and an operator cancel fired
    //    after three completed stages. The trip lands on a stage boundary,
    //    so the pipeline writes one *emergency* snapshot pinning exactly the
    //    completed prefix before returning the typed error.
    let control = JobControl::new();
    let mut supervisor = CancelAfter {
        control: control.clone(),
        after: 3,
        seen: 0,
    };
    let mut stats = WorkflowStats::default();
    ctx.set_control(control.clone());
    let mut state = GraphState::new(&reads);
    let err = Pipeline::paper_workflow(&config)
        .checkpoint_to(&dir, CheckpointPolicy::EveryN(4))
        .observe(&mut supervisor)
        .observe(&mut stats)
        .try_run(&mut state, &ctx)
        .expect_err("the supervisor cancels mid-assembly");
    ctx.clear_control();
    println!("cancelled run: {err}");
    println!("workflow stats record it as: {:?}", stats.cancelled);

    // 4. A fresh pipeline — think "new process after the operator's cancel"
    //    — resumes from the emergency snapshot and replays only the five
    //    remaining stages.
    let (resumed, reports) = Pipeline::paper_workflow(&config)
        .resume(&dir, &reads, &ctx)
        .expect("resume from the emergency snapshot");
    println!(
        "resumed: replayed {} of 8 stages ({})",
        reports.len(),
        reports
            .iter()
            .map(|r| r.stage.as_str())
            .collect::<Vec<_>>()
            .join(" → ")
    );
    assert_eq!(resumed.output, baseline.contigs);
    println!(
        "recovered assembly matches the baseline: {} contigs",
        resumed.output.len()
    );

    // 5. The other two trip kinds ride the same path: a deadline (here one
    //    the run has already missed) or a resident-bytes budget fires at the
    //    next barrier, mid-superstep, with the reason latched on the handle.
    let control = JobControl::new().with_memory_budget(1);
    match assemble_with_control(&reads, &config, &control) {
        Err(PipelineError::Cancelled {
            reason,
            stage,
            superstep,
        }) => {
            println!("1-byte budget: tripped at stage {stage}, superstep {superstep:?} ({reason})")
        }
        other => panic!("expected a budget trip, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}
