//! Quickstart: simulate a small genome, assemble it with PPA-assembler, and
//! print the assembly statistics.
//!
//! Run with: `cargo run -p ppa-examples --release --bin quickstart`

use ppa_assembler::{assemble, AssemblyConfig};
use ppa_quality::QuastReport;
use ppa_readsim::{GenomeConfig, ReadSimConfig};

fn main() {
    // 1. Simulate a 50 kbp reference genome with a few repeat families and a
    //    30× read set with a realistic error rate.
    let reference = GenomeConfig {
        length: 50_000,
        repeat_families: 4,
        repeat_copies: 3,
        repeat_length: 150,
        ..Default::default()
    }
    .generate();
    let reads = ReadSimConfig {
        coverage: 30.0,
        substitution_rate: 0.003,
        ..Default::default()
    }
    .simulate(&reference);
    println!(
        "simulated {} reads of ~{} bp from a {} bp reference",
        reads.len(),
        reads.mean_read_length() as usize,
        reference.len()
    );

    // 2. Run the standard PPA-assembler workflow (Figure 10: ①②③④⑤⑥②③).
    let config = AssemblyConfig {
        k: 31,
        workers: 4,
        ..Default::default()
    };
    let assembly = assemble(&reads, &config);
    println!(
        "assembled {} contigs, total {} bp, N50 {} bp, largest {} bp in {:.2}s",
        assembly.contigs.len(),
        assembly.total_length(),
        assembly.n50(),
        assembly.largest_contig(),
        assembly.stats.total_elapsed.as_secs_f64()
    );
    println!(
        "contig labeling round 1: {} supersteps, {} messages",
        assembly.stats.label_round1.supersteps, assembly.stats.label_round1.messages
    );
    println!(
        "N50 after round 1: {}  →  after round 2: {}",
        assembly.stats.n50_after_round1, assembly.stats.n50_final
    );

    // 3. Evaluate the assembly against the (known) reference, QUAST-style.
    let contigs: Vec<_> = assembly
        .contigs
        .iter()
        .map(|c| c.sequence.clone())
        .collect();
    let report = QuastReport::evaluate("PPA-assembler", &contigs, Some(&reference.sequence), 500);
    println!("\nQuality report:");
    for (metric, value) in report.rows() {
        println!("  {metric:<28}{value}");
    }

    // 4. Write the contigs as FASTA.
    let mut fasta = Vec::new();
    assembly
        .to_fasta()
        .write_fasta(&mut fasta)
        .expect("in-memory write");
    println!("\nFASTA output: {} bytes (first line: {})", fasta.len(), {
        String::from_utf8_lossy(&fasta)
            .lines()
            .next()
            .unwrap_or("")
            .to_string()
    });
}
