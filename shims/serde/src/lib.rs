//! Offline serde shim: re-exports the no-op derive macros so that
//! `use serde::{Deserialize, Serialize};` + `#[derive(Serialize, Deserialize)]`
//! compile without the real crate. See `shims/README.md`.

pub use serde_derive::{Deserialize, Serialize};
