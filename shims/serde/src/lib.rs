//! Offline serde shim: re-exports the no-op derive macros so that
//! `use serde::{Deserialize, Serialize};` + `#[derive(Serialize, Deserialize)]`
//! compile without the real crate, plus a small hand-rolled binary
//! reader/writer ([`bin`]) used by the checkpoint subsystem. See
//! `shims/README.md`.

pub use serde_derive::{Deserialize, Serialize};

pub mod bin {
    //! Minimal little-endian binary encoding.
    //!
    //! The checkpoint on-disk format (see `ppa_assembler::checkpoint`) needs a
    //! deterministic, dependency-free byte encoding. [`Writer`] appends
    //! fixed-width little-endian integers and length-prefixed byte strings to
    //! any [`std::io::Write`]; [`Reader`] decodes them from a byte slice and
    //! reports truncation or corruption as a typed [`BinError`] — it never
    //! panics on malformed input.

    use std::fmt;
    use std::io::{self, Read, Write};

    /// Decoding error: the input bytes do not contain what was asked for.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum BinError {
        /// Fewer bytes remained than the requested value needs.
        Truncated {
            /// Byte offset at which the read was attempted.
            offset: usize,
            /// Bytes the value needed.
            needed: usize,
            /// Bytes that remained.
            remaining: usize,
        },
        /// A decoded value was structurally invalid (bad tag, non-UTF-8
        /// string, implausible length prefix, …).
        Invalid {
            /// Byte offset at which the bad value started.
            offset: usize,
            /// What was wrong.
            what: String,
        },
    }

    impl fmt::Display for BinError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                BinError::Truncated {
                    offset,
                    needed,
                    remaining,
                } => write!(
                    f,
                    "truncated input at offset {offset}: needed {needed} bytes, {remaining} remain"
                ),
                BinError::Invalid { offset, what } => {
                    write!(f, "invalid value at offset {offset}: {what}")
                }
            }
        }
    }

    impl std::error::Error for BinError {}

    /// Appends little-endian primitives to an [`io::Write`].
    pub struct Writer<W: Write> {
        out: W,
        written: usize,
    }

    impl<W: Write> Writer<W> {
        /// Wraps a sink.
        pub fn new(out: W) -> Writer<W> {
            Writer { out, written: 0 }
        }

        /// Total bytes written so far.
        pub fn bytes_written(&self) -> usize {
            self.written
        }

        /// Unwraps the sink.
        pub fn into_inner(self) -> W {
            self.out
        }

        /// Writes raw bytes without a length prefix.
        pub fn raw(&mut self, bytes: &[u8]) -> io::Result<()> {
            self.out.write_all(bytes)?;
            self.written += bytes.len();
            Ok(())
        }

        /// Writes one byte.
        pub fn u8(&mut self, v: u8) -> io::Result<()> {
            self.raw(&[v])
        }

        /// Writes a `bool` as one byte (0 or 1).
        pub fn bool(&mut self, v: bool) -> io::Result<()> {
            self.u8(v as u8)
        }

        /// Writes a little-endian `u32`.
        pub fn u32(&mut self, v: u32) -> io::Result<()> {
            self.raw(&v.to_le_bytes())
        }

        /// Writes a little-endian `u64`.
        pub fn u64(&mut self, v: u64) -> io::Result<()> {
            self.raw(&v.to_le_bytes())
        }

        /// Writes an `f64` via its IEEE-754 bit pattern (exact round-trip).
        pub fn f64(&mut self, v: f64) -> io::Result<()> {
            self.u64(v.to_bits())
        }

        /// Writes a `u64` length prefix followed by the bytes.
        pub fn bytes(&mut self, bytes: &[u8]) -> io::Result<()> {
            self.u64(bytes.len() as u64)?;
            self.raw(bytes)
        }

        /// Writes a UTF-8 string as a length-prefixed byte string.
        pub fn str(&mut self, s: &str) -> io::Result<()> {
            self.bytes(s.as_bytes())
        }
    }

    /// Error raised by the streaming [`FrameReader`]: either the underlying
    /// source failed, or the stream ended/was malformed mid-value.
    #[derive(Debug)]
    pub enum FrameError {
        /// The underlying [`io::Read`] source returned an error.
        Io {
            /// What was being read when the source failed.
            op: &'static str,
            /// The I/O error, rendered (keeps the enum `Clone`-free of
            /// `io::Error`, which is not `Clone`).
            message: String,
        },
        /// The stream ended before the requested value was complete.
        Truncated {
            /// Stream offset at which the read started.
            offset: u64,
            /// Bytes the value needed.
            needed: usize,
            /// Bytes actually available.
            got: usize,
        },
        /// A decoded value was structurally invalid (e.g. an implausible
        /// frame length).
        Invalid {
            /// Stream offset at which the bad value started.
            offset: u64,
            /// What was wrong.
            what: String,
        },
    }

    impl fmt::Display for FrameError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                FrameError::Io { op, message } => write!(f, "I/O error while {op}: {message}"),
                FrameError::Truncated {
                    offset,
                    needed,
                    got,
                } => write!(
                    f,
                    "truncated stream at offset {offset}: needed {needed} bytes, got {got}"
                ),
                FrameError::Invalid { offset, what } => {
                    write!(f, "invalid value at offset {offset}: {what}")
                }
            }
        }
    }

    impl std::error::Error for FrameError {}

    /// Streaming counterpart of [`Reader`]: decodes little-endian primitives
    /// and `u32`-length-prefixed frames from any [`io::Read`] source without
    /// loading the whole stream into memory. Used by the spill layer to merge
    /// sorted on-disk runs record by record. Like [`Reader`], it reports
    /// truncation and corruption as typed errors and never panics on
    /// malformed input.
    pub struct FrameReader<R: io::Read> {
        src: R,
        /// Scratch holding the most recently filled bytes (one frame at most).
        buf: Vec<u8>,
        /// Bytes consumed from the source so far (error-reporting offset).
        offset: u64,
        /// Frames longer than this are rejected as [`FrameError::Invalid`]
        /// before any allocation, so a corrupt length prefix cannot trigger
        /// a huge read.
        max_frame: u32,
    }

    impl<R: io::Read> FrameReader<R> {
        /// Wraps a source; frames longer than `max_frame` bytes are rejected.
        pub fn new(src: R, max_frame: u32) -> FrameReader<R> {
            FrameReader {
                src,
                buf: Vec::new(),
                offset: 0,
                max_frame,
            }
        }

        /// Bytes consumed from the source so far.
        pub fn offset(&self) -> u64 {
            self.offset
        }

        /// Reads exactly `n` bytes into the scratch buffer and returns them.
        /// `take` + `read_to_end` keeps this panic-free (no slice indexing)
        /// and loops internally over short reads.
        fn fill(&mut self, n: usize, op: &'static str) -> Result<&[u8], FrameError> {
            self.buf.clear();
            let got = (&mut self.src)
                .take(n as u64)
                .read_to_end(&mut self.buf)
                .map_err(|e| FrameError::Io {
                    op,
                    message: e.to_string(),
                })?;
            if got < n {
                return Err(FrameError::Truncated {
                    offset: self.offset,
                    needed: n,
                    got,
                });
            }
            self.offset += n as u64;
            Ok(&self.buf)
        }

        /// Reads a little-endian `u32`.
        pub fn u32(&mut self) -> Result<u32, FrameError> {
            let at = self.offset;
            let arr: [u8; 4] =
                self.fill(4, "reading a u32")?
                    .try_into()
                    .map_err(|_| FrameError::Invalid {
                        offset: at,
                        // Unreachable: fill(4) always returns exactly four bytes.
                        what: "internal: fill(4) length".into(),
                    })?;
            Ok(u32::from_le_bytes(arr))
        }

        /// Reads a little-endian `u64`.
        pub fn u64(&mut self) -> Result<u64, FrameError> {
            let at = self.offset;
            let arr: [u8; 8] =
                self.fill(8, "reading a u64")?
                    .try_into()
                    .map_err(|_| FrameError::Invalid {
                        offset: at,
                        // Unreachable: fill(8) always returns exactly eight bytes.
                        what: "internal: fill(8) length".into(),
                    })?;
            Ok(u64::from_le_bytes(arr))
        }

        /// Reads one `u32`-length-prefixed frame and returns its payload.
        /// The length is validated against the `max_frame` bound before any
        /// read, so corrupt prefixes fail fast instead of allocating.
        pub fn frame(&mut self) -> Result<&[u8], FrameError> {
            let at = self.offset;
            let len = self.u32()?;
            if len > self.max_frame {
                return Err(FrameError::Invalid {
                    offset: at,
                    what: format!("frame length {len} exceeds the {} cap", self.max_frame),
                });
            }
            self.fill(len as usize, "reading a frame payload")
        }
    }

    /// Decodes little-endian primitives from a byte slice.
    pub struct Reader<'a> {
        buf: &'a [u8],
        pos: usize,
    }

    impl<'a> Reader<'a> {
        /// Wraps a byte slice.
        pub fn new(buf: &'a [u8]) -> Reader<'a> {
            Reader { buf, pos: 0 }
        }

        /// Current byte offset.
        pub fn position(&self) -> usize {
            self.pos
        }

        /// Bytes not yet consumed.
        pub fn remaining(&self) -> usize {
            self.buf.len() - self.pos
        }

        /// Whether the whole buffer has been consumed.
        pub fn is_empty(&self) -> bool {
            self.remaining() == 0
        }

        /// Reports an [`BinError::Invalid`] at the current offset.
        pub fn invalid(&self, what: impl Into<String>) -> BinError {
            BinError::Invalid {
                offset: self.pos,
                what: what.into(),
            }
        }

        fn take(&mut self, n: usize) -> Result<&'a [u8], BinError> {
            // `get` (not slicing) keeps this panic-free even if the
            // `pos <= len` invariant were ever broken.
            let slice =
                self.buf
                    .get(self.pos..self.pos.saturating_add(n))
                    .ok_or(BinError::Truncated {
                        offset: self.pos,
                        needed: n,
                        remaining: self.buf.len().saturating_sub(self.pos),
                    })?;
            self.pos += n;
            Ok(slice)
        }

        /// Reads one byte.
        pub fn u8(&mut self) -> Result<u8, BinError> {
            let at = self.pos;
            match *self.take(1)? {
                [b] => Ok(b),
                // Unreachable: take(1) always returns exactly one byte.
                _ => Err(BinError::Invalid {
                    offset: at,
                    what: "internal: take(1) length".into(),
                }),
            }
        }

        /// Reads a `bool` byte; anything other than 0/1 is invalid.
        pub fn bool(&mut self) -> Result<bool, BinError> {
            let at = self.pos;
            match self.u8()? {
                0 => Ok(false),
                1 => Ok(true),
                other => Err(BinError::Invalid {
                    offset: at,
                    what: format!("bool byte must be 0 or 1, got {other}"),
                }),
            }
        }

        /// Reads a little-endian `u32`.
        pub fn u32(&mut self) -> Result<u32, BinError> {
            let at = self.pos;
            let arr: [u8; 4] = self.take(4)?.try_into().map_err(|_| BinError::Invalid {
                offset: at,
                // Unreachable: take(4) always returns exactly four bytes.
                what: "internal: take(4) length".into(),
            })?;
            Ok(u32::from_le_bytes(arr))
        }

        /// Reads a little-endian `u64`.
        pub fn u64(&mut self) -> Result<u64, BinError> {
            let at = self.pos;
            let arr: [u8; 8] = self.take(8)?.try_into().map_err(|_| BinError::Invalid {
                offset: at,
                // Unreachable: take(8) always returns exactly eight bytes.
                what: "internal: take(8) length".into(),
            })?;
            Ok(u64::from_le_bytes(arr))
        }

        /// Reads an `f64` from its bit pattern.
        pub fn f64(&mut self) -> Result<f64, BinError> {
            Ok(f64::from_bits(self.u64()?))
        }

        /// Reads a `u64`-length-prefixed byte string. The length prefix is
        /// validated against the remaining input before any allocation.
        pub fn bytes(&mut self) -> Result<&'a [u8], BinError> {
            let at = self.pos;
            let len = self.u64()?;
            if len > self.remaining() as u64 {
                return Err(BinError::Truncated {
                    offset: at,
                    needed: len as usize,
                    remaining: self.remaining(),
                });
            }
            self.take(len as usize)
        }

        /// Reads a length-prefixed UTF-8 string.
        pub fn str(&mut self) -> Result<&'a str, BinError> {
            let at = self.pos;
            let bytes = self.bytes()?;
            std::str::from_utf8(bytes).map_err(|_| BinError::Invalid {
                offset: at,
                what: "length-prefixed string is not valid UTF-8".into(),
            })
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn primitives_round_trip() {
            let mut w = Writer::new(Vec::new());
            w.u8(7).unwrap();
            w.bool(true).unwrap();
            w.u32(0xDEAD_BEEF).unwrap();
            w.u64(u64::MAX - 1).unwrap();
            w.f64(-0.125).unwrap();
            w.bytes(b"abc").unwrap();
            w.str("héllo").unwrap();
            let buf = w.into_inner();
            let mut r = Reader::new(&buf);
            assert_eq!(r.u8().unwrap(), 7);
            assert!(r.bool().unwrap());
            assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
            assert_eq!(r.u64().unwrap(), u64::MAX - 1);
            assert_eq!(r.f64().unwrap(), -0.125);
            assert_eq!(r.bytes().unwrap(), b"abc");
            assert_eq!(r.str().unwrap(), "héllo");
            assert!(r.is_empty());
        }

        #[test]
        fn truncated_reads_are_typed_errors() {
            let mut w = Writer::new(Vec::new());
            w.u64(42).unwrap();
            let buf = w.into_inner();
            for cut in 0..buf.len() {
                let mut r = Reader::new(&buf[..cut]);
                assert!(matches!(r.u64(), Err(BinError::Truncated { .. })));
            }
        }

        #[test]
        fn oversized_length_prefix_is_truncation_not_allocation() {
            let mut w = Writer::new(Vec::new());
            w.u64(u64::MAX).unwrap(); // bogus length prefix
            let buf = w.into_inner();
            let mut r = Reader::new(&buf);
            assert!(matches!(r.bytes(), Err(BinError::Truncated { .. })));
        }

        #[test]
        fn invalid_bool_and_utf8_rejected() {
            let mut r = Reader::new(&[9]);
            assert!(matches!(r.bool(), Err(BinError::Invalid { .. })));
            let mut w = Writer::new(Vec::new());
            w.bytes(&[0xFF, 0xFE]).unwrap();
            let buf = w.into_inner();
            let mut r = Reader::new(&buf);
            assert!(matches!(r.str(), Err(BinError::Invalid { .. })));
        }

        #[test]
        fn errors_display_offsets() {
            let e = BinError::Truncated {
                offset: 3,
                needed: 8,
                remaining: 1,
            };
            assert!(e.to_string().contains('3'));
            let e = BinError::Invalid {
                offset: 5,
                what: "bad tag".into(),
            };
            assert!(e.to_string().contains("bad tag"));
        }
    }
}
