//! Offline `criterion` shim: a minimal wall-clock benchmarking harness with
//! the API subset the workspace's benches use (`bench_function`,
//! `benchmark_group`/`bench_with_input`, `BenchmarkId`, `criterion_group!`,
//! `criterion_main!`).
//!
//! Each benchmark is warmed up, then timed for roughly the configured
//! measurement window; the harness reports the mean time per iteration and
//! iterations/second on stdout, one line per benchmark:
//!
//! ```text
//! bench: mapreduce/100k_records_4_workers ... 12.345 ms/iter (81.0 iter/s, 24 iters)
//! ```
//!
//! No statistics beyond the mean, no plots, no saved baselines — comparisons
//! are made by benching the old and new implementation side by side in the
//! same target (see `crates/bench/benches/message_plane.rs`).

use std::fmt;
use std::time::{Duration, Instant};

/// Measures one closure; handed to benchmark bodies as `b`.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    /// Filled by [`Bencher::iter`]: (total elapsed, iterations).
    result: Option<(Duration, u64)>,
}

impl Bencher {
    /// Calls `f` repeatedly, timing each call, until the measurement window is
    /// filled.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run without recording.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up {
            std::hint::black_box(f());
        }
        let mut iters = 0u64;
        let start = Instant::now();
        loop {
            std::hint::black_box(f());
            iters += 1;
            if start.elapsed() >= self.measurement {
                break;
            }
        }
        self.result = Some((start.elapsed(), iters));
    }
}

/// Benchmark identifier composed of a function name and a parameter
/// (shim of `criterion::BenchmarkId`).
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("function", parameter)` formats as
    /// `function/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An ID from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// The benchmark harness (shim of `criterion::Criterion`).
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` passes the filter as the first free
        // argument; flag-style arguments (e.g. `--bench`) are ignored.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
            filter,
        }
    }
}

impl Criterion {
    /// Sets the number of samples (accepted for API compatibility; the shim
    /// sizes runs by time, not sample count).
    pub fn sample_size(self, _n: usize) -> Criterion {
        self
    }

    /// Sets the measurement window per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement = d;
        self
    }

    /// Sets the warm-up time per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up = d;
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&self, id: &str, mut f: F) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            result: None,
        };
        f(&mut b);
        match b.result {
            Some((elapsed, iters)) => {
                let per_iter = elapsed.as_secs_f64() / iters as f64;
                println!(
                    "bench: {id} ... {} ({:.1} iter/s, {iters} iters)",
                    format_time(per_iter),
                    1.0 / per_iter,
                );
            }
            None => println!("bench: {id} ... no measurement (b.iter never called)"),
        }
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Criterion {
        self.run_one(id, f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f` with the given input, labelled `group/id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, |b| f(b, input));
        self
    }

    /// Runs a benchmark inside the group without an input parameter.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, f);
        self
    }

    /// Ends the group (no-op in the shim; kept for API compatibility).
    pub fn finish(self) {}
}

/// Re-export so `criterion::black_box` callers work; prefer
/// `std::hint::black_box` in new code.
pub use std::hint::black_box;

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s/iter")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms/iter", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs/iter", seconds * 1e6)
    } else {
        format!("{:.1} ns/iter", seconds * 1e9)
    }
}

/// Shim of `criterion_group!`: collects benchmark functions into a runner
/// function, optionally with a custom `config = ...` constructor.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Shim of `criterion_main!`: generates `main` calling each group runner.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        // The filter picked up from the test harness arguments must not hide
        // explicit calls in unit tests.
        c.filter = None;
        let mut ran = 0u64;
        c.bench_function("shim/self_test", |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 10).to_string(), "f/10");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }

    #[test]
    fn time_formatting() {
        assert!(format_time(2.0).ends_with("s/iter"));
        assert!(format_time(2e-3).contains("ms"));
        assert!(format_time(2e-6).contains("µs"));
        assert!(format_time(2e-9).contains("ns"));
    }
}
