//! Offline `rand` shim covering the subset the workspace uses:
//! `StdRng::seed_from_u64`, `Rng::gen_range` over integer ranges and
//! `Rng::gen_bool`. Backed by SplitMix64, which is deterministic, fast and
//! statistically good enough for read simulation and benchmark inputs.
//!
//! The numbers produced differ from the real `rand` crate's `StdRng` (ChaCha),
//! so seeds reproduce runs only within this workspace — which is all the
//! simulators need.

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators (shim of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types usable as `gen_range` bounds (shim of `rand`'s range sampling).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing convenience methods (shim of `rand::Rng`).
pub trait Rng: RngCore + Sized {
    /// Uniform draw from `range` (`a..b` or `a..=b`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range: {p}"
        );
        // 53 random bits give a uniform f64 in [0, 1).
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore> Rng for T {}

// Uniform draw from [0, n) without modulo bias (Lemire's method would need
// u128 widening; simple rejection sampling is fine at these call rates).
fn uniform_below(rng: &mut dyn RngCore, n: u64) -> u64 {
    debug_assert!(n > 0);
    let zone = u64::MAX - (u64::MAX % n);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % n;
        }
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as u64) - (self.start as u64);
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range on empty range");
                let span = (end as u64) - (start as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator (shim: SplitMix64 instead of ChaCha12).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000u64), b.gen_range(0..1000u64));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..20usize);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0..=5u8);
            assert!(w <= 5);
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "got {hits}");
        assert!((0..1000).all(|_| !rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn covers_whole_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0..4u8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
