//! Offline `proptest` shim: deterministic random-input property testing with
//! the subset of the real API this workspace uses.
//!
//! Implemented: the `proptest!` macro (with an optional
//! `#![proptest_config(...)]` header), `prop_assert!`/`prop_assert_eq!`/
//! `prop_assert_ne!`, [`ProptestConfig::with_cases`], integer range
//! strategies (`0u8..4`, `1u64..=60`, ...), tuples of strategies and
//! [`collection::vec`]. Not implemented: shrinking — a failing case panics
//! with the standard assertion message, which is enough to reproduce (inputs
//! are derived deterministically from the test name and case index).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Runner configuration (shim of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A value generator (heavily simplified shim of `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The type of generated values.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_int_strategies!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Strategies over collections (shim of `proptest::collection`).
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A length range for [`vec()`](crate::collection::vec): constructed from `a..b` or `a..=b`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max_inclusive: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of values drawn from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with a length drawn from `size` (shim of
    /// `proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..=self.size.max_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a `proptest!` test needs in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

/// Constructs the deterministic generator for one test case. Used by the
/// `proptest!` expansion so that consumer crates do not need a direct `rand`
/// dependency.
#[doc(hidden)]
pub fn rng_from_seed(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Deterministic per-test seed: FNV-1a over the test name.
#[doc(hidden)]
pub fn seed_for(test_name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Shim of `proptest::proptest!`: runs each property over `cases` random
/// inputs drawn deterministically from the test name and case index.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg); $($rest)*);
    };
    (@cfg ($cfg:expr); $( #[test] fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            #[test]
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let base = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..cfg.cases as u64 {
                    let mut rng = $crate::rng_from_seed(
                        base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    $(let _ = &$arg;)+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Shim of `prop_assert!`: plain assertion (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Shim of `prop_assert_eq!`: plain assertion (no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Shim of `prop_assert_ne!`: plain assertion (no shrinking).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn ranges_respect_bounds(x in 3u8..7, y in 10u64..=12) {
            prop_assert!((3..7).contains(&x));
            prop_assert!((10..=12).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_bounds(v in collection::vec(0u8..4, 2..=5)) {
            prop_assert!(v.len() >= 2 && v.len() <= 5);
            prop_assert!(v.iter().all(|&b| b < 4));
        }

        #[test]
        fn tuples_generate_componentwise(pair in collection::vec((0u32..32, 1u32..100), 0..10)) {
            for (a, b) in pair {
                prop_assert!(a < 32);
                prop_assert!((1..100).contains(&b));
            }
        }
    }

    #[test]
    fn seeds_differ_by_test_name() {
        assert_ne!(super::seed_for("a"), super::seed_for("b"));
        assert_eq!(super::seed_for("a"), super::seed_for("a"));
    }
}
