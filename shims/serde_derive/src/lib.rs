//! No-op `Serialize`/`Deserialize` derive macros (offline serde shim).
//!
//! Nothing in this workspace serialises data through serde — the derives on
//! config/metrics structs exist so the types stay serde-ready. The shims
//! expand to nothing, which is all the workspace needs.

use proc_macro::TokenStream;

/// Expands to nothing; accepts the same attribute names real serde uses.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepts the same attribute names real serde uses.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
