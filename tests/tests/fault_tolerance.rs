//! Crash-matrix integration tests for the fault-tolerance layer: at every
//! stage boundary of the paper's ①②③(④⑤②③)×r workflow — and mid-stage, at
//! superstep barriers inside the Pregel jobs — an injected crash followed by
//! a resume from the last checkpoint must produce output byte-identical to an
//! uninterrupted run. Corrupted, truncated or foreign snapshots must surface
//! as typed errors, never panics, and a worker pool that propagated a panic
//! must stay reusable.

use ppa_assembler::pipeline::{CheckpointPolicy, GraphState, Pipeline, PipelineError};
use ppa_assembler::{checkpoint, AssemblyConfig, CheckpointError};
use ppa_pregel::{ExecCtx, Fault, FaultPlan};
use ppa_readsim::{GenomeConfig, ReadSimConfig};
use ppa_seq::ReadSet;
use std::path::PathBuf;

const WORKERS: usize = 2;

/// r=2 correction rounds: ①②③ (④⑤②③)×2 + length filter = 12 flattened
/// stages, the full crash matrix of the paper workflow.
const STAGES: usize = 12;

fn config() -> AssemblyConfig {
    AssemblyConfig {
        k: 21,
        min_kmer_coverage: 1,
        workers: WORKERS,
        error_correction_rounds: 2,
        ..Default::default()
    }
}

fn simulated_reads() -> ReadSet {
    let reference = GenomeConfig {
        length: 3_000,
        repeat_families: 2,
        repeat_copies: 2,
        repeat_length: 100,
        seed: 1312,
        ..Default::default()
    }
    .generate();
    ReadSimConfig {
        read_length: 100,
        coverage: 25.0,
        substitution_rate: 0.004,
        indel_rate: 0.0,
        n_rate: 0.0,
        both_strands: true,
        seed: 1313,
    }
    .simulate(&reference)
}

/// A unique, cleaned-on-drop temp directory for checkpoint snapshots.
struct TmpDir(PathBuf);

impl TmpDir {
    fn new(tag: &str) -> TmpDir {
        let dir = std::env::temp_dir().join(format!("ppa-ft-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        TmpDir(dir)
    }
}

impl Drop for TmpDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The uninterrupted reference run every crash scenario must reproduce.
fn baseline<'r>(reads: &'r ReadSet, ctx: &ExecCtx) -> GraphState<'r> {
    let mut state = GraphState::new(reads);
    Pipeline::paper_workflow(&config()).run(&mut state, ctx);
    assert!(!state.output.is_empty(), "the baseline must assemble");
    state
}

#[test]
fn crash_at_every_stage_boundary_resumes_byte_identically() {
    let reads = simulated_reads();
    let ctx = ExecCtx::new(WORKERS);
    let expected = baseline(&reads, &ctx);
    assert_eq!(
        Pipeline::<'static>::paper_workflow(&config()).stage_count(),
        STAGES
    );

    for stage in 0..STAGES {
        let tmp = TmpDir::new(&format!("boundary-{stage}"));

        // Crash exactly at the boundary: entry to flattened stage `stage`.
        let armed = ctx.inject_faults(FaultPlan::single(Fault::StageEntry { stage }));
        let mut state = GraphState::new(&reads);
        let err = Pipeline::paper_workflow(&config())
            .checkpoint_to(&tmp.0, CheckpointPolicy::EveryStage)
            .try_run(&mut state, &ctx)
            .expect_err("the injected crash must surface");
        assert!(
            matches!(&err, PipelineError::Stage { message, .. }
                if message.contains("injected fault")),
            "stage {stage}: got {err:?}"
        );
        assert!(armed.all_fired(), "stage {stage}: the fault must fire");

        // The snapshot on disk is exactly the work completed before the crash.
        let latest = checkpoint::latest(&tmp.0).unwrap();
        if stage == 0 {
            assert!(latest.is_none(), "no stage completed before the crash");
        } else {
            let ckpt = latest.expect("a snapshot of the completed prefix");
            assert!(ckpt.ends_with(format!("stage-{stage:04}")));
        }

        // A new pipeline (a new "process") resumes — or restarts when the
        // crash predated the first snapshot — and must match the baseline
        // byte for byte, including metrics-bearing label state and output.
        ctx.clear_faults();
        let resumed = if stage == 0 {
            let mut fresh = GraphState::new(&reads);
            Pipeline::paper_workflow(&config())
                .try_run(&mut fresh, &ctx)
                .expect("the restart succeeds");
            fresh
        } else {
            let (resumed, reports) = Pipeline::paper_workflow(&config())
                .resume(&tmp.0, &reads, &ctx)
                .expect("the resume succeeds");
            assert_eq!(
                reports.len(),
                STAGES - stage,
                "stage {stage}: resume replays exactly the remaining stages"
            );
            resumed
        };
        assert_eq!(
            resumed, expected,
            "stage {stage}: resumed state diverged from the uninterrupted run"
        );
    }
}

#[test]
fn mid_stage_worker_crashes_recover_from_the_last_checkpoint() {
    let reads = simulated_reads();
    let ctx = ExecCtx::new(WORKERS);
    let expected = baseline(&reads, &ctx);

    // Flattened positions of the Pregel-driven stages in the r=2 workflow:
    // label at 1/5/9, tip removal at 4/8. Superstep 0 always exists; the
    // first labeling of the full k-mer graph also runs deep enough for a
    // later-superstep, second-worker crash.
    let mid_stage_faults = [
        Fault::Superstep {
            stage: 1,
            superstep: 2,
            worker: 1,
        },
        Fault::Superstep {
            stage: 4,
            superstep: 0,
            worker: 0,
        },
        Fault::Superstep {
            stage: 5,
            superstep: 0,
            worker: 1,
        },
        Fault::Superstep {
            stage: 8,
            superstep: 0,
            worker: 0,
        },
        Fault::Superstep {
            stage: 9,
            superstep: 0,
            worker: 0,
        },
    ];
    for (i, fault) in mid_stage_faults.into_iter().enumerate() {
        let tmp = TmpDir::new(&format!("mid-{i}"));
        let armed = ctx.inject_faults(FaultPlan::single(fault));
        let mut state = GraphState::new(&reads);
        let reports = Pipeline::paper_workflow(&config())
            .checkpoint_to(&tmp.0, CheckpointPolicy::EveryStage)
            .try_run_with_retries(&mut state, &ctx, 2)
            .expect("the retry from the last checkpoint succeeds");
        ctx.clear_faults();
        assert!(armed.all_fired(), "{fault:?} must fire");
        assert_eq!(reports.len(), STAGES, "one report per stage after healing");
        assert_eq!(
            state, expected,
            "{fault:?}: healed state diverged from the uninterrupted run"
        );
    }
}

#[test]
fn checkpoint_write_failure_is_typed_and_the_retry_recovers() {
    let reads = simulated_reads();
    let ctx = ExecCtx::new(WORKERS);
    let expected = baseline(&reads, &ctx);

    // First: the failure is a typed checkpoint error, not a panic.
    let tmp = TmpDir::new("ckpt-write-err");
    ctx.inject_faults(FaultPlan::single(Fault::CheckpointWrite { nth: 2 }));
    let mut state = GraphState::new(&reads);
    let err = Pipeline::paper_workflow(&config())
        .checkpoint_to(&tmp.0, CheckpointPolicy::EveryStage)
        .try_run(&mut state, &ctx)
        .expect_err("the injected write failure must surface");
    ctx.clear_faults();
    assert!(
        matches!(&err, PipelineError::Checkpoint(CheckpointError::Io(msg))
            if msg.contains("injected fault")),
        "got {err:?}"
    );

    // Second: the driver loop retries from the surviving snapshot (save #1)
    // and completes; the once-per-fault semantics let save #2 succeed on the
    // retry, exactly like a transient disk error.
    let tmp = TmpDir::new("ckpt-write-retry");
    let armed = ctx.inject_faults(FaultPlan::single(Fault::CheckpointWrite { nth: 2 }));
    let mut state = GraphState::new(&reads);
    let reports = Pipeline::paper_workflow(&config())
        .checkpoint_to(&tmp.0, CheckpointPolicy::EveryStage)
        .try_run_with_retries(&mut state, &ctx, 2)
        .expect("the retry past the failed write succeeds");
    ctx.clear_faults();
    assert!(armed.all_fired());
    assert_eq!(reports.len(), STAGES);
    assert_eq!(state, expected);
}

#[test]
fn damaged_or_foreign_snapshots_error_without_panicking() {
    let reads = simulated_reads();
    let ctx = ExecCtx::new(WORKERS);
    let tmp = TmpDir::new("damage");
    let mut state = GraphState::new(&reads);
    Pipeline::paper_workflow(&config())
        .checkpoint_to(&tmp.0, CheckpointPolicy::EveryStage)
        .run(&mut state, &ctx);
    let ckpt = checkpoint::latest(&tmp.0).unwrap().expect("a snapshot");
    let section = ckpt.join("nodes.col");
    let pristine = std::fs::read(&section).unwrap();

    // Truncated section file → typed Truncated/Corrupt, never a panic.
    std::fs::write(&section, &pristine[..pristine.len() / 2]).unwrap();
    let err = Pipeline::paper_workflow(&config())
        .resume(&tmp.0, &reads, &ctx)
        .expect_err("a truncated section must be rejected");
    assert!(
        matches!(
            &err,
            PipelineError::Checkpoint(
                CheckpointError::Truncated { .. } | CheckpointError::Corrupt { .. }
            )
        ),
        "got {err:?}"
    );

    // Flipped byte (same length) → checksum catches it as Corrupt.
    let mut flipped = pristine.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0xff;
    std::fs::write(&section, &flipped).unwrap();
    let err = Pipeline::paper_workflow(&config())
        .resume(&tmp.0, &reads, &ctx)
        .expect_err("a corrupt section must be rejected");
    assert!(
        matches!(
            &err,
            PipelineError::Checkpoint(CheckpointError::Corrupt { .. })
        ),
        "got {err:?}"
    );

    // Missing section file → Corrupt (incomplete snapshot).
    std::fs::remove_file(&section).unwrap();
    let err = Pipeline::paper_workflow(&config())
        .resume(&tmp.0, &reads, &ctx)
        .expect_err("a missing section must be rejected");
    assert!(
        matches!(
            &err,
            PipelineError::Checkpoint(CheckpointError::Corrupt { .. })
        ),
        "got {err:?}"
    );
    std::fs::write(&section, &pristine).unwrap();

    // A different read set → Mismatch: the snapshot belongs to another run.
    let other_reads = {
        let reference = GenomeConfig {
            length: 2_000,
            repeat_families: 0,
            seed: 999,
            ..Default::default()
        }
        .generate();
        ReadSimConfig::error_free(100, 15.0).simulate(&reference)
    };
    let err = Pipeline::paper_workflow(&config())
        .resume(&tmp.0, &other_reads, &ctx)
        .expect_err("foreign reads must be rejected");
    assert!(
        matches!(&err, PipelineError::Checkpoint(CheckpointError::Mismatch { what, .. })
            if what == "input reads"),
        "got {err:?}"
    );

    // A pipeline with different parameters → fingerprint Mismatch.
    let other_config = AssemblyConfig {
        tip_length_threshold: 40,
        ..config()
    };
    let err = Pipeline::paper_workflow(&other_config)
        .resume(&tmp.0, &reads, &ctx)
        .expect_err("a reconfigured pipeline must be rejected");
    assert!(
        matches!(&err, PipelineError::Checkpoint(CheckpointError::Mismatch { what, .. })
            if what == "pipeline fingerprint"),
        "got {err:?}"
    );

    // No snapshot at all → NotFound.
    let empty = TmpDir::new("empty");
    let err = Pipeline::paper_workflow(&config())
        .resume(&empty.0, &reads, &ctx)
        .expect_err("an empty directory cannot be resumed");
    assert!(
        matches!(
            &err,
            PipelineError::Checkpoint(CheckpointError::NotFound(_))
        ),
        "got {err:?}"
    );
}

#[test]
fn a_pool_that_propagated_a_panic_stays_reusable_and_deterministic() {
    let reads = simulated_reads();

    // Job 1 on a shared context dies mid-superstep; job 2 on the *same*
    // context must be byte-identical to the same job on a fresh pool — no
    // poisoned slots, stale messages or half-dispatched phases may survive.
    let ctx = ExecCtx::new(WORKERS);
    ctx.inject_faults(FaultPlan::single(Fault::Superstep {
        stage: 1,
        superstep: 1,
        worker: 0,
    }));
    let mut crashed = GraphState::new(&reads);
    let err = Pipeline::paper_workflow(&config())
        .try_run(&mut crashed, &ctx)
        .expect_err("job 1 must die on the injected worker panic");
    ctx.clear_faults();
    assert!(
        matches!(&err, PipelineError::Stage { stage, message, .. }
            if stage == "label" && message.contains("injected fault")),
        "got {err:?}"
    );

    let mut reused = GraphState::new(&reads);
    Pipeline::paper_workflow(&config()).run(&mut reused, &ctx);
    let fresh = baseline(&reads, &ExecCtx::new(WORKERS));
    assert_eq!(
        reused, fresh,
        "job 2 on the surviving pool diverged from a fresh-pool run"
    );
}
