//! Integration tests for the cross-assembler comparison harness: the
//! qualitative relationships the paper's evaluation reports must hold on the
//! simulated datasets.

use ppa_baselines::{all_assemblers, Assembler, BaselineParams, PpaAssembler, RayLike};
use ppa_quality::{basic_stats, QuastReport};
use ppa_readsim::preset_by_name;

fn params(workers: usize) -> BaselineParams {
    BaselineParams {
        k: 25,
        min_kmer_coverage: 1,
        workers,
        tip_length_threshold: 80,
        bubble_edit_distance: 5,
    }
}

#[test]
fn every_assembler_produces_contigs_on_a_real_dataset() {
    let dataset = preset_by_name("sim-hc2").unwrap().scaled(0.05).generate();
    for assembler in all_assemblers() {
        let result = assembler.assemble(&dataset.reads, &params(4));
        assert!(
            !result.contigs.is_empty(),
            "{} produced no contigs",
            assembler.name()
        );
        let stats = basic_stats(&result.contigs, 0);
        assert!(
            stats.total_length > dataset.reference.len() / 3,
            "{} assembled only {} bases of a {} bp reference",
            assembler.name(),
            stats.total_length,
            dataset.reference.len()
        );
    }
}

#[test]
fn ppa_has_the_best_or_equal_n50() {
    let dataset = preset_by_name("sim-hc2").unwrap().scaled(0.05).generate();
    let mut n50s = Vec::new();
    for assembler in all_assemblers() {
        let result = assembler.assemble(&dataset.reads, &params(4));
        let stats = basic_stats(&result.contigs, 200);
        n50s.push((assembler.name(), stats.n50));
    }
    let ppa_n50 = n50s.iter().find(|(n, _)| *n == "PPA-assembler").unwrap().1;
    for (name, n50) in &n50s {
        assert!(
            ppa_n50 >= *n50,
            "PPA N50 ({ppa_n50}) should be at least {name}'s ({n50}); all: {n50s:?}"
        );
    }
}

#[test]
fn ppa_misassembles_no_more_than_abyss_like() {
    let dataset = preset_by_name("sim-hc2").unwrap().scaled(0.05).generate();
    let mut misassemblies = std::collections::HashMap::new();
    for assembler in all_assemblers() {
        let result = assembler.assemble(&dataset.reads, &params(4));
        let report = QuastReport::evaluate(
            assembler.name(),
            &result.contigs,
            Some(&dataset.reference.sequence),
            200,
        );
        misassemblies.insert(assembler.name(), report.reference.unwrap().misassemblies);
    }
    assert!(
        misassemblies["PPA-assembler"] <= misassemblies["ABySS-like"],
        "misassemblies: {misassemblies:?}"
    );
}

#[test]
fn ray_like_does_not_benefit_from_workers_but_ppa_does_not_regress() {
    let dataset = preset_by_name("sim-hc2").unwrap().scaled(0.04).generate();
    let ray_1 = RayLike.assemble(&dataset.reads, &params(1));
    let ray_8 = RayLike.assemble(&dataset.reads, &params(8));
    let mut a: Vec<usize> = ray_1.contigs.iter().map(|c| c.len()).collect();
    let mut b: Vec<usize> = ray_8.contigs.iter().map(|c| c.len()).collect();
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b, "Ray-like output is independent of the worker count");

    let ppa_1 = PpaAssembler::default().assemble(&dataset.reads, &params(1));
    let ppa_4 = PpaAssembler::default().assemble(&dataset.reads, &params(4));
    let mut c: Vec<usize> = ppa_1.contigs.iter().map(|x| x.len()).collect();
    let mut d: Vec<usize> = ppa_4.contigs.iter().map(|x| x.len()).collect();
    c.sort_unstable();
    d.sort_unstable();
    assert_eq!(
        c, d,
        "PPA output must not depend on the worker count either"
    );
}
