//! Cancellation-matrix integration tests for the job control plane: a
//! [`JobControl`] trip — operator cancel, deadline, or memory budget — must
//! unwind the paper's ①②③(④⑤②③)×r workflow as a typed
//! `PipelineError::Cancelled` (never a panic), leave the worker pool
//! reusable, and, when checkpointing is armed and the trip lands on a stage
//! boundary, write one emergency snapshot so `Pipeline::resume` completes
//! the assembly byte-identically to an uninterrupted run.

use ppa_assembler::pipeline::{
    CheckpointPolicy, GraphState, Pipeline, PipelineError, PipelineObserver, StageReport,
};
use ppa_assembler::{checkpoint, AssemblyConfig};
use ppa_pregel::{CancelReason, ExecCtx, Fault, FaultPlan, JobControl};
use ppa_readsim::{GenomeConfig, ReadSimConfig};
use ppa_seq::ReadSet;
use std::path::PathBuf;
use std::time::Duration;

const WORKERS: usize = 2;

/// r=2 correction rounds: ①②③ (④⑤②③)×2 + length filter = 12 flattened
/// stages, the full boundary matrix of the paper workflow.
const STAGES: usize = 12;

fn config() -> AssemblyConfig {
    AssemblyConfig {
        k: 21,
        min_kmer_coverage: 1,
        workers: WORKERS,
        error_correction_rounds: 2,
        ..Default::default()
    }
}

fn simulated_reads() -> ReadSet {
    let reference = GenomeConfig {
        length: 3_000,
        repeat_families: 2,
        repeat_copies: 2,
        repeat_length: 100,
        seed: 1312,
        ..Default::default()
    }
    .generate();
    ReadSimConfig {
        read_length: 100,
        coverage: 25.0,
        substitution_rate: 0.004,
        indel_rate: 0.0,
        n_rate: 0.0,
        both_strands: true,
        seed: 1313,
    }
    .simulate(&reference)
}

/// A unique, cleaned-on-drop temp directory for checkpoint snapshots.
struct TmpDir(PathBuf);

impl TmpDir {
    fn new(tag: &str) -> TmpDir {
        let dir = std::env::temp_dir().join(format!("ppa-cancel-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        TmpDir(dir)
    }
}

impl Drop for TmpDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The uninterrupted reference run every cancelled-then-resumed scenario
/// must reproduce.
fn baseline<'r>(reads: &'r ReadSet, ctx: &ExecCtx) -> GraphState<'r> {
    let mut state = GraphState::new(reads);
    Pipeline::paper_workflow(&config()).run(&mut state, ctx);
    assert!(!state.output.is_empty(), "the baseline must assemble");
    state
}

/// Cancels its handle once `after` stages have completed, and records what
/// the `on_cancelled` observer hook reported.
struct CancelAfter {
    control: JobControl,
    after: usize,
    seen: usize,
    reported: Option<(CancelReason, String)>,
}

impl PipelineObserver for CancelAfter {
    fn on_stage_end(&mut self, _report: &StageReport) {
        self.seen += 1;
        if self.seen == self.after {
            self.control.cancel();
        }
    }

    fn on_cancelled(&mut self, reason: CancelReason, stage: &str) {
        self.reported = Some((reason, stage.to_string()));
    }
}

#[test]
fn cancel_at_every_stage_boundary_snapshots_and_resumes_byte_identically() {
    let reads = simulated_reads();
    let ctx = ExecCtx::new(WORKERS);
    let expected = baseline(&reads, &ctx);
    assert_eq!(
        Pipeline::<'static>::paper_workflow(&config()).stage_count(),
        STAGES
    );

    for stage in 0..STAGES {
        let tmp = TmpDir::new(&format!("boundary-{stage}"));
        let control = JobControl::new();
        // Boundary 0 precedes every stage end, so the cancel arrives before
        // the run instead of from the observer.
        if stage == 0 {
            control.cancel();
        }
        let mut obs = CancelAfter {
            control: control.clone(),
            after: stage,
            seen: 0,
            reported: None,
        };
        ctx.set_control(control.clone());
        let mut state = GraphState::new(&reads);
        // EveryN(5) only saves after stages 5 and 10: at the other ten
        // boundaries the snapshot that makes the resume possible is the
        // emergency one written by the trip itself.
        let err = Pipeline::paper_workflow(&config())
            .checkpoint_to(&tmp.0, CheckpointPolicy::EveryN(5))
            .observe(&mut obs)
            .try_run(&mut state, &ctx)
            .expect_err("the cancel must stop the run");
        ctx.clear_control();
        assert!(
            matches!(
                &err,
                PipelineError::Cancelled {
                    reason: CancelReason::Requested,
                    superstep: None,
                    ..
                }
            ),
            "stage {stage}: got {err:?}"
        );
        assert!(!err.is_transient(), "stage {stage}: a cancel is permanent");
        let cut_stage = match &err {
            PipelineError::Cancelled { stage, .. } => stage.clone(),
            other => panic!("stage {stage}: got {other:?}"),
        };
        assert_eq!(
            obs.reported,
            Some((CancelReason::Requested, cut_stage)),
            "stage {stage}: the on_cancelled hook must fire with the trip"
        );

        // The emergency snapshot pins exactly `stage` completed stages.
        let ckpt = checkpoint::latest(&tmp.0)
            .unwrap()
            .expect("an emergency snapshot");
        assert!(
            ckpt.ends_with(format!("stage-{stage:04}")),
            "stage {stage}: got {ckpt:?}"
        );

        // A new pipeline (a new "process") resumes from the cut point and
        // must match the baseline byte for byte.
        let (resumed, reports) = Pipeline::paper_workflow(&config())
            .resume(&tmp.0, &reads, &ctx)
            .expect("the resume succeeds");
        assert_eq!(
            reports.len(),
            STAGES - stage,
            "stage {stage}: resume replays exactly the remaining stages"
        );
        assert_eq!(
            resumed, expected,
            "stage {stage}: resumed state diverged from the uninterrupted run"
        );
    }
}

#[test]
fn a_deadline_trips_mid_superstep_and_resume_completes_the_assembly() {
    let reads = simulated_reads();
    let ctx = ExecCtx::new(WORKERS);
    let expected = baseline(&reads, &ctx);

    // The 2s stall parks the coordinator at the first superstep-1 barrier —
    // inside the label stage, the workflow's first Pregel job — until the
    // 1.5s deadline has expired, making the trip point deterministic
    // regardless of machine speed.
    let tmp = TmpDir::new("deadline");
    let armed = ctx.inject_faults(FaultPlan::single(Fault::Stall {
        superstep: 1,
        millis: 2_000,
    }));
    let control = JobControl::new().with_deadline_in(Duration::from_millis(1_500));
    ctx.set_control(control.clone());
    let mut state = GraphState::new(&reads);
    let err = Pipeline::paper_workflow(&config())
        .checkpoint_to(&tmp.0, CheckpointPolicy::EveryStage)
        .try_run(&mut state, &ctx)
        .expect_err("the deadline must trip");
    ctx.clear_control();
    ctx.clear_faults();
    assert!(armed.all_fired(), "the stall must fire before the trip");
    assert!(
        matches!(&err, PipelineError::Cancelled {
            reason: CancelReason::Deadline,
            stage,
            superstep: Some(1),
        } if stage == "label"),
        "got {err:?}"
    );
    assert_eq!(control.reason(), Some(CancelReason::Deadline));

    // A mid-stage trip writes no emergency snapshot (the state may be
    // mid-superstep-inconsistent); resume continues from the last policy
    // snapshot — here the one after construct — and must match the baseline.
    let ckpt = checkpoint::latest(&tmp.0)
        .unwrap()
        .expect("the construct boundary snapshot");
    assert!(ckpt.ends_with("stage-0001"), "got {ckpt:?}");
    let (resumed, reports) = Pipeline::paper_workflow(&config())
        .resume(&tmp.0, &reads, &ctx)
        .expect("the resume succeeds");
    assert_eq!(reports.len(), STAGES - 1);
    assert_eq!(resumed, expected);
}

#[test]
fn a_memory_budget_trips_on_the_first_bookkept_superstep_and_resumes() {
    let reads = simulated_reads();
    let ctx = ExecCtx::new(WORKERS);
    let expected = baseline(&reads, &ctx);

    // A 1-byte budget trips at the first barrier that books a non-empty
    // vertex store: superstep 0 of the label stage's first Pregel job.
    let tmp = TmpDir::new("budget");
    let control = JobControl::new().with_memory_budget(1);
    ctx.set_control(control.clone());
    let mut state = GraphState::new(&reads);
    let err = Pipeline::paper_workflow(&config())
        .checkpoint_to(&tmp.0, CheckpointPolicy::EveryStage)
        .try_run(&mut state, &ctx)
        .expect_err("the budget must trip");
    ctx.clear_control();
    assert!(
        matches!(&err, PipelineError::Cancelled {
            reason: CancelReason::MemoryBudget,
            stage,
            superstep: Some(0),
        } if stage == "label"),
        "got {err:?}"
    );
    assert_eq!(control.reason(), Some(CancelReason::MemoryBudget));

    let (resumed, reports) = Pipeline::paper_workflow(&config())
        .resume(&tmp.0, &reads, &ctx)
        .expect("the resume succeeds");
    assert_eq!(reports.len(), STAGES - 1);
    assert_eq!(resumed, expected);
}

#[test]
fn an_async_cancel_unwinds_cleanly_and_the_pool_stays_reusable() {
    let reads = simulated_reads();
    let ctx = ExecCtx::new(WORKERS);
    let expected = baseline(&reads, &ctx);

    // Fire the cancel from outside the run, the way an operator would: a
    // watcher thread waits for the job's first cooperative poll (proof the
    // run is underway) and then flips the shared latch.
    let control = JobControl::new();
    ctx.set_control(control.clone());
    let watcher = {
        let control = control.clone();
        std::thread::spawn(move || {
            while control.checks() == 0 {
                std::thread::yield_now();
            }
            control.cancel();
        })
    };
    let mut state = GraphState::new(&reads);
    let err = Pipeline::paper_workflow(&config())
        .try_run(&mut state, &ctx)
        .expect_err("the async cancel must stop the run");
    watcher.join().unwrap();
    ctx.clear_control();
    assert!(
        matches!(
            &err,
            PipelineError::Cancelled {
                reason: CancelReason::Requested,
                ..
            }
        ),
        "got {err:?}"
    );
    assert!(control.checks() > 0, "the run must have polled the handle");

    // Job 2 on the *same* context must be byte-identical to the reference:
    // no poisoned slots, stale messages or half-dispatched phases survive.
    let mut reused = GraphState::new(&reads);
    Pipeline::paper_workflow(&config()).run(&mut reused, &ctx);
    assert_eq!(
        reused, expected,
        "job 2 on the surviving pool diverged from the reference run"
    );
}

/// Counts pipeline attempts, to pin that `Cancelled` is never retried.
#[derive(Default)]
struct StartCounter(usize);

impl PipelineObserver for StartCounter {
    fn on_pipeline_start(&mut self) {
        self.0 += 1;
    }
}

#[test]
fn cancellation_fails_fast_under_the_retry_driver() {
    let reads = simulated_reads();
    let ctx = ExecCtx::new(WORKERS);

    let control = JobControl::new();
    control.cancel();
    ctx.set_control(control.clone());
    let mut starts = StartCounter::default();
    let mut state = GraphState::new(&reads);
    let err = Pipeline::paper_workflow(&config())
        .observe(&mut starts)
        .try_run_with_retries(&mut state, &ctx, 3)
        .expect_err("a cancelled run must fail");
    ctx.clear_control();
    assert!(
        matches!(
            &err,
            PipelineError::Cancelled {
                reason: CancelReason::Requested,
                superstep: None,
                ..
            }
        ),
        "got {err:?}"
    );
    assert_eq!(
        starts.0, 1,
        "Cancelled is not transient and must not be retried"
    );
}
