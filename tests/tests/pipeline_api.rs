//! Cross-crate tests for the composable pipeline API (PR 3).
//!
//! * **Golden equivalence** — `workflow::assemble` (now a thin wrapper) must
//!   produce byte-identical contigs to a hand-built
//!   `Pipeline::paper_workflow` run on the seed scenarios, with the same
//!   observer-collected statistics.
//! * **Observer protocol** — stage names, start/end pairing, round
//!   numbering, and non-zero, monotone stage timings.

use ppa_assembler::ops::{BubbleConfig, ConstructConfig, MergeConfig, TipConfig};
use ppa_assembler::pipeline::{
    Construct, FilterBubbles, FilterLength, GraphState, Label, Merge, Pipeline, PipelineObserver,
    RemoveTips, StageReport,
};
use ppa_assembler::stats::WorkflowStats;
use ppa_assembler::{assemble, Assembly, AssemblyConfig, Contig, LabelingAlgorithm};
use ppa_pregel::ExecCtx;
use ppa_readsim::{GenomeConfig, ReadSimConfig};
use ppa_seq::ReadSet;
use std::time::Duration;

fn simulate(length: usize, coverage: f64, error: f64, seed: u64) -> ReadSet {
    let reference = GenomeConfig {
        length,
        repeat_families: 2,
        repeat_copies: 2,
        repeat_length: 100,
        seed,
        ..Default::default()
    }
    .generate();
    ReadSimConfig {
        read_length: 100,
        coverage,
        substitution_rate: error,
        indel_rate: 0.0,
        n_rate: 0.0,
        both_strands: true,
        seed: seed + 1,
    }
    .simulate(&reference)
}

fn fingerprint_assembly(assembly: &Assembly) -> Vec<(u64, u32, String)> {
    assembly
        .contigs
        .iter()
        .map(|c| (c.id, c.coverage, c.sequence.to_ascii()))
        .collect()
}

fn fingerprint_output(output: &[Contig]) -> Vec<(u64, u32, String)> {
    output
        .iter()
        .map(|c| (c.id, c.coverage, c.sequence.to_ascii()))
        .collect()
}

/// The seed scenarios the workflow tests exercise: error-free, noisy with θ
/// filtering, and zero correction rounds.
fn seed_scenarios() -> Vec<(ReadSet, AssemblyConfig)> {
    let base = AssemblyConfig {
        k: 21,
        min_kmer_coverage: 0,
        tip_length_threshold: 80,
        bubble_edit_distance: 5,
        workers: 3,
        labeling: LabelingAlgorithm::ListRanking,
        error_correction_rounds: 1,
        min_contig_length: 0,
        spill: ppa_pregel::SpillPolicy::Off,
        exec: None,
    };
    vec![
        (simulate(3_000, 25.0, 0.0, 11), base.clone()),
        (
            simulate(4_000, 30.0, 0.005, 23),
            AssemblyConfig {
                min_kmer_coverage: 1,
                ..base.clone()
            },
        ),
        (
            simulate(2_500, 20.0, 0.002, 31),
            AssemblyConfig {
                min_kmer_coverage: 1,
                labeling: LabelingAlgorithm::SimplifiedSV,
                ..base.clone()
            },
        ),
        (
            simulate(2_000, 20.0, 0.0, 41),
            AssemblyConfig {
                error_correction_rounds: 0,
                ..base
            },
        ),
    ]
}

#[test]
fn assemble_is_byte_identical_to_hand_built_paper_workflow() {
    for (i, (reads, config)) in seed_scenarios().into_iter().enumerate() {
        let via_assemble = assemble(&reads, &config);

        let mut stats = WorkflowStats::default();
        let mut state = GraphState::new(&reads);
        Pipeline::paper_workflow(&config)
            .observe(&mut stats)
            .run(&mut state, &ExecCtx::new(config.workers));

        assert!(
            !via_assemble.contigs.is_empty(),
            "scenario {i} must assemble"
        );
        assert_eq!(
            fingerprint_assembly(&via_assemble),
            fingerprint_output(&state.output),
            "scenario {i}: assemble() and the hand-built paper workflow must \
             produce byte-identical contigs"
        );

        // The observer-collected statistics must agree on every
        // non-wall-clock quantity.
        let a = &via_assemble.stats;
        assert_eq!(a.construct.vertices, stats.construct.vertices);
        assert_eq!(a.node_counts, stats.node_counts);
        assert_eq!(a.n50_after_round1, stats.n50_after_round1);
        assert_eq!(a.n50_final, stats.n50_final);
        assert_eq!(a.label_round1.supersteps, stats.label_round1.supersteps);
        assert_eq!(a.label_round1.messages, stats.label_round1.messages);
        assert_eq!(a.merge_round1.groups, stats.merge_round1.groups);
        assert_eq!(a.merge_round1.contigs, stats.merge_round1.contigs);
        assert_eq!(a.corrections.len(), stats.corrections.len());
        for (x, y) in a.corrections.iter().zip(&stats.corrections) {
            assert_eq!(x.bubbles_pruned, y.bubbles_pruned);
            assert_eq!(x.bubble_groups, y.bubble_groups);
            assert_eq!(x.tip_kmers_deleted, y.tip_kmers_deleted);
            assert_eq!(x.tip_contigs_deleted, y.tip_contigs_deleted);
        }
        assert_eq!(a.label_round2.len(), stats.label_round2.len());
        assert_eq!(a.merge_round2.len(), stats.merge_round2.len());
        assert_eq!(
            a.timings
                .iter()
                .map(|t| t.stage.clone())
                .collect::<Vec<_>>(),
            stats
                .timings
                .iter()
                .map(|t| t.stage.clone())
                .collect::<Vec<_>>(),
            "scenario {i}: the observer must record the same stage sequence"
        );
    }
}

#[test]
fn explicit_stage_list_matches_the_preset() {
    // Spelling the paper workflow out stage by stage must equal the preset.
    let reads = simulate(3_000, 25.0, 0.004, 53);
    let config = AssemblyConfig {
        k: 21,
        min_kmer_coverage: 1,
        workers: 2,
        ..Default::default()
    };
    let merge = MergeConfig {
        k: config.k,
        tip_length_threshold: config.tip_length_threshold,
    };
    let mut by_hand = Pipeline::new()
        .then(Construct::new(ConstructConfig {
            k: config.k,
            min_coverage: config.min_kmer_coverage,
            batch_size: 1024,
        }))
        .then(Label::list_ranking())
        .then(Merge::new(merge.clone()))
        .then(FilterBubbles::new(BubbleConfig {
            max_edit_distance: config.bubble_edit_distance,
        }))
        .then(RemoveTips::new(TipConfig {
            k: config.k,
            tip_length_threshold: config.tip_length_threshold,
        }))
        .then(Label::list_ranking())
        .then(Merge::new(merge))
        .then(FilterLength::new(0));
    let mut state_hand = GraphState::new(&reads);
    by_hand.run(&mut state_hand, &ExecCtx::new(config.workers));

    let mut preset = Pipeline::paper_workflow(&config);
    let mut state_preset = GraphState::new(&reads);
    preset.run(&mut state_preset, &ExecCtx::new(config.workers));

    assert!(!state_preset.output.is_empty());
    assert_eq!(
        fingerprint_output(&state_hand.output),
        fingerprint_output(&state_preset.output)
    );
}

/// Records the raw observer event stream.
#[derive(Default)]
struct Recorder {
    events: Vec<String>,
    reports: Vec<StageReport>,
    pipeline_started: usize,
    pipeline_total: Option<Duration>,
}

impl PipelineObserver for Recorder {
    fn on_pipeline_start(&mut self) {
        self.pipeline_started += 1;
        self.events.push("pipeline_start".into());
    }
    fn on_stage_start(&mut self, stage: &str) {
        self.events.push(format!("start:{stage}"));
    }
    fn on_stage_end(&mut self, report: &StageReport) {
        self.events.push(format!("end:{}", report.stage));
        self.reports.push(report.clone());
    }
    fn on_pipeline_end(&mut self, total: Duration) {
        self.pipeline_total = Some(total);
        self.events.push("pipeline_end".into());
    }
}

#[test]
fn observer_protocol_pairs_stages_and_times_them() {
    let reads = simulate(3_000, 25.0, 0.004, 61);
    let config = AssemblyConfig {
        k: 21,
        min_kmer_coverage: 1,
        workers: 2,
        ..Default::default()
    };
    let mut recorder = Recorder::default();
    let mut pipeline = Pipeline::paper_workflow(&config).observe(&mut recorder);
    let mut state = GraphState::new(&reads);
    let reports = pipeline.run(&mut state, &ExecCtx::new(config.workers));

    // Stage names of the paper workflow, in order.
    let expected = [
        "construct",
        "label",
        "merge",
        "filter_bubbles",
        "remove_tips",
        "label",
        "merge",
        "filter_length",
    ];
    let names: Vec<&str> = reports.iter().map(|r| r.stage.as_str()).collect();
    assert_eq!(names, expected);

    // Event stream: pipeline_start, then strictly alternating start/end
    // pairs in stage order, then pipeline_end.
    assert_eq!(recorder.pipeline_started, 1);
    assert_eq!(
        recorder.events.first().map(String::as_str),
        Some("pipeline_start")
    );
    assert_eq!(
        recorder.events.last().map(String::as_str),
        Some("pipeline_end")
    );
    let inner = &recorder.events[1..recorder.events.len() - 1];
    assert_eq!(inner.len(), 2 * expected.len());
    for (i, stage) in expected.iter().enumerate() {
        assert_eq!(inner[2 * i], format!("start:{stage}"), "event {i}");
        assert_eq!(inner[2 * i + 1], format!("end:{stage}"), "event {i}");
    }

    // Round numbering: occurrences of the same stage name count up.
    let rounds: Vec<usize> = reports.iter().map(|r| r.round).collect();
    assert_eq!(rounds, [1, 1, 1, 1, 1, 2, 2, 1]);

    // Timings: every stage non-zero, and their sum does not exceed the
    // pipeline total (monotone accumulation).
    let mut acc = Duration::ZERO;
    for report in &recorder.reports {
        assert!(
            report.elapsed > Duration::ZERO,
            "stage {} must report a non-zero timing",
            report.stage
        );
        acc += report.elapsed;
    }
    let total = recorder.pipeline_total.expect("pipeline_end delivered");
    assert!(
        acc <= total,
        "stage timings ({acc:?}) must accumulate within the total ({total:?})"
    );
    assert!(!state.output.is_empty());
}
