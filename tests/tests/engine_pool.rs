//! Cross-crate integration tests for the persistent execution engine: one
//! shared worker pool reused across all five assembly operations must produce
//! byte-identical results to per-operation fresh pools, and a shared
//! `ExecCtx` must be reusable across whole assemblies.

use ppa_assembler::ops::bubble::{filter_bubbles, filter_bubbles_on, remove_pruned, BubbleConfig};
use ppa_assembler::ops::construct::{build_dbg, build_dbg_on, ConstructConfig};
use ppa_assembler::ops::label::{label_contigs_lr, label_contigs_lr_on};
use ppa_assembler::ops::merge::{merge_contigs, merge_contigs_on, MergeConfig};
use ppa_assembler::ops::tip::{remove_tips, remove_tips_on, TipConfig};
use ppa_assembler::{assemble, AsmNode, Assembly, AssemblyConfig};
use ppa_pregel::ExecCtx;
use ppa_readsim::{GenomeConfig, ReadSimConfig};
use ppa_seq::ReadSet;

const K: usize = 21;
const WORKERS: usize = 3;

fn simulated_reads() -> ReadSet {
    let reference = GenomeConfig {
        length: 4_000,
        repeat_families: 2,
        repeat_copies: 2,
        repeat_length: 100,
        seed: 77,
        ..Default::default()
    }
    .generate();
    ReadSimConfig {
        read_length: 100,
        coverage: 25.0,
        substitution_rate: 0.004,
        indel_rate: 0.0,
        n_rate: 0.0,
        both_strands: true,
        seed: 78,
    }
    .simulate(&reference)
}

/// Byte-level fingerprint of a node set: IDs, coverages and sequences.
fn node_fingerprint(nodes: &[AsmNode]) -> Vec<(u64, u32, String)> {
    let mut out: Vec<(u64, u32, String)> = nodes
        .iter()
        .map(|n| (n.id, n.coverage, n.seq.to_dna().to_ascii()))
        .collect();
    out.sort();
    out
}

/// Byte-level fingerprint of an assembly's contigs.
fn assembly_fingerprint(assembly: &Assembly) -> Vec<(u64, u32, String)> {
    assembly
        .contigs
        .iter()
        .map(|c| (c.id, c.coverage, c.sequence.to_ascii()))
        .collect()
}

/// Drives all five operations — ① construction, ② labeling, ③ merging,
/// ④ bubble filtering, ⑤ tip removing — either on one shared context or with
/// a fresh per-operation pool, and fingerprints the surviving graph.
fn five_ops(reads: &ReadSet, shared: Option<&ExecCtx>) -> Vec<(u64, u32, String)> {
    let construct_cfg = ConstructConfig {
        k: K,
        min_coverage: 1,
        batch_size: 64,
    };
    let merge_cfg = MergeConfig {
        k: K,
        tip_length_threshold: 80,
    };
    let bubble_cfg = BubbleConfig {
        max_edit_distance: 5,
    };
    let tip_cfg = TipConfig {
        k: K,
        tip_length_threshold: 80,
    };

    // ① DBG construction.
    let outcome = match shared {
        Some(ctx) => build_dbg_on(ctx, reads, &construct_cfg),
        None => build_dbg(reads, &construct_cfg, WORKERS),
    };
    let nodes: Vec<AsmNode> = outcome.into_nodes();

    // ② contig labeling.
    let label = match shared {
        Some(ctx) => label_contigs_lr_on(ctx, &nodes),
        None => label_contigs_lr(&nodes, WORKERS),
    };

    // ③ contig merging.
    let merged = match shared {
        Some(ctx) => merge_contigs_on(ctx, &nodes, &label.labels, &merge_cfg),
        None => merge_contigs(&nodes, &label.labels, &merge_cfg, WORKERS),
    };
    let mut contigs = merged.contigs;

    // ④ bubble filtering.
    let bubbles = match shared {
        Some(ctx) => filter_bubbles_on(ctx, &contigs, &bubble_cfg),
        None => filter_bubbles(&contigs, &bubble_cfg, WORKERS),
    };
    remove_pruned(&mut contigs, &bubbles.pruned);

    // ⑤ tip removing.
    let ambiguous: std::collections::HashSet<u64> = label.ambiguous.iter().copied().collect();
    let ambiguous_kmers: Vec<AsmNode> = nodes
        .into_iter()
        .filter(|n| ambiguous.contains(&n.id))
        .collect();
    let tips = match shared {
        Some(ctx) => remove_tips_on(ctx, &ambiguous_kmers, &contigs, &tip_cfg),
        None => remove_tips(&ambiguous_kmers, &contigs, &tip_cfg, WORKERS),
    };

    let survivors: Vec<AsmNode> = tips
        .kmers
        .iter()
        .chain(tips.contigs.iter())
        .cloned()
        .collect();
    node_fingerprint(&survivors)
}

#[test]
fn shared_pool_across_all_five_ops_matches_per_op_fresh_pools() {
    let reads = simulated_reads();
    let ctx = ExecCtx::new(WORKERS);
    let shared = five_ops(&reads, Some(&ctx));
    let fresh = five_ops(&reads, None);
    assert!(!shared.is_empty(), "the pipeline must produce nodes");
    assert_eq!(
        shared, fresh,
        "one pool reused across the five operations must be byte-identical \
         to per-operation fresh pools"
    );
    assert!(
        ctx.pool().busy_nanos() > 0,
        "the shared pool must actually have executed the phases"
    );
}

#[test]
fn shared_ctx_assembly_is_byte_identical_to_private_ctx_assembly() {
    let reads = simulated_reads();
    let base = AssemblyConfig {
        k: K,
        min_kmer_coverage: 1,
        workers: WORKERS,
        ..Default::default()
    };
    let private = assemble(&reads, &base);
    let ctx = ExecCtx::new(WORKERS);
    let with_shared = assemble(
        &reads,
        &AssemblyConfig {
            exec: Some(ctx.clone()),
            ..base.clone()
        },
    );
    assert!(!private.contigs.is_empty());
    assert_eq!(
        assembly_fingerprint(&private),
        assembly_fingerprint(&with_shared)
    );

    // The same context is reusable for a second, identical assembly — parked
    // shuffle planes must not leak state between runs.
    let again = assemble(
        &reads,
        &AssemblyConfig {
            exec: Some(ctx),
            ..base
        },
    );
    assert_eq!(
        assembly_fingerprint(&with_shared),
        assembly_fingerprint(&again)
    );
}

#[test]
fn zero_workers_still_assembles_on_a_one_thread_pool() {
    // `workers: 0` has always been clamped to one worker; the engine's
    // ctx-vs-config validation must preserve that instead of panicking.
    let reads = simulated_reads();
    let assembly = assemble(
        &reads,
        &AssemblyConfig {
            k: K,
            min_kmer_coverage: 1,
            workers: 0,
            ..Default::default()
        },
    );
    assert!(!assembly.contigs.is_empty());
}

#[test]
fn per_superstep_metrics_report_phase_times_and_utilization() {
    let reads = simulated_reads();
    let ctx = ExecCtx::new(WORKERS);
    let outcome = build_dbg_on(
        &ctx,
        &reads,
        &ConstructConfig {
            k: K,
            min_coverage: 1,
            batch_size: 64,
        },
    );
    let nodes = outcome.into_nodes();
    let label = label_contigs_lr_on(&ctx, &nodes);
    let per_step = &label.metrics.per_superstep;
    assert!(!per_step.is_empty(), "labeling must track supersteps");
    for step in per_step {
        assert!(
            step.compute_elapsed + step.shuffle_elapsed <= step.elapsed,
            "phase times must not exceed the superstep wall-clock"
        );
        assert!(
            (0.0..=1.0).contains(&step.pool_utilization),
            "pool utilization must be a fraction, got {}",
            step.pool_utilization
        );
    }
    assert!(
        per_step.iter().any(|s| s.pool_utilization > 0.0),
        "at least one superstep must report non-zero pool utilization"
    );
}
