//! Columnar-store equivalence pins: the sorted SoA vertex store must be
//! observationally identical to the hash-partitioned store it replaced.
//!
//! Three layers of evidence:
//!
//! * **engine level** — the same vertex program run through the production
//!   (columnar) engine and through `ppa_bench::legacy::run_hash_store` (the
//!   pre-columnar delivery loop on the same pool and message plane) produces
//!   the same final values and job totals, across worker counts;
//! * **operation level** — `remove_tips` over one fixed post-merge graph is
//!   byte-identical for every worker count (the store's partitioning must
//!   not leak into the REQUEST/DELETE protocol), exercising the
//!   removal-heavy path;
//! * **workflow level** — a full error-heavy assembly (bubbles + tips over
//!   two correction rounds) yields the same contig content for every worker
//!   count.
//!
//! (The store's mutation API has its own hash-oracle property test inside
//! `ppa_pregel::vertex_set`, and halt-flag equivalence against a sequential
//! BSP oracle lives in `ppa_pregel::runner`.)

use ppa_assembler::ops::construct::ConstructConfig;
use ppa_assembler::ops::merge::MergeConfig;
use ppa_assembler::ops::tip::{remove_tips, TipConfig};
use ppa_assembler::pipeline::{Construct, Label, Merge};
use ppa_assembler::{assemble, AssemblyConfig, GraphState, Pipeline};
use ppa_bench::legacy::{run_hash_store, HashStoreCtx, HashStoreProgram};
use ppa_pregel::{Context, ExecCtx, NoAggregate, PregelConfig, VertexProgram};
use ppa_readsim::{GenomeConfig, ReadSimConfig};
use ppa_seq::ReadSet;
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Engine level: columnar runner vs the legacy hash-store runner
// ---------------------------------------------------------------------------

/// A scatter program driven by an explicit plan, defined against both vertex
/// interfaces: superstep 0 sends the planned messages, superstep 1 folds the
/// received sums, then everything halts.
struct Planned {
    plan: Vec<Vec<(u64, u64)>>,
}

impl VertexProgram for Planned {
    type Id = u64;
    type Value = u64;
    type Message = u64;
    type Aggregate = NoAggregate;
    fn compute(&self, ctx: &mut Context<'_, Self>, id: u64, value: &mut u64, msgs: &mut [u64]) {
        if ctx.superstep() == 0 {
            for &(to, payload) in &self.plan[id as usize] {
                ctx.send_message(to, payload);
            }
        } else {
            *value += msgs.iter().sum::<u64>();
        }
        ctx.vote_to_halt();
    }
}

impl HashStoreProgram for Planned {
    type Value = u64;
    type Message = u64;
    fn compute(
        &self,
        ctx: &mut HashStoreCtx<'_, Self>,
        id: u64,
        value: &mut u64,
        msgs: &mut [u64],
    ) {
        if ctx.superstep() == 0 {
            for &(to, payload) in &self.plan[id as usize] {
                ctx.send_message(to, payload);
            }
        } else {
            *value += msgs.iter().sum::<u64>();
        }
        ctx.vote_to_halt();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn prop_columnar_engine_matches_hash_store_engine(
        n in 1u64..60,
        raw in proptest::collection::vec((0u64..60, 0u64..80, 1u64..100), 0..250),
        workers in 1usize..6,
    ) {
        let mut plan: Vec<Vec<(u64, u64)>> = vec![Vec::new(); n as usize];
        for &(sender, target, payload) in &raw {
            // Includes out-of-range targets: both stores must drop them.
            plan[(sender % n) as usize].push((target, payload));
        }
        let program = Planned { plan };
        let ctx = ExecCtx::new(workers);

        let (mut old, old_metrics) =
            run_hash_store(&program, &ctx, (0..n).map(|i| (i, 0u64)), 100);
        let config = PregelConfig::with_workers(workers).exec_ctx(ctx);
        let (set, new_metrics) =
            ppa_pregel::run_from_pairs(&program, &config, (0..n).map(|i| (i, 0u64)));
        let mut new = set.into_pairs();
        old.sort_unstable();
        new.sort_unstable();
        prop_assert_eq!(old, new);
        prop_assert_eq!(old_metrics.supersteps, new_metrics.supersteps);
        prop_assert_eq!(old_metrics.total_messages, new_metrics.total_messages);
    }
}

// ---------------------------------------------------------------------------
// Operation level: tip removal over one fixed graph, across worker counts
// ---------------------------------------------------------------------------

/// Error-heavy reads: dense coverage of a reference plus diverging reads that
/// plant tips and bubbles for the correction operations to chew on.
fn error_heavy_reads(seed: u64) -> ReadSet {
    let reference = GenomeConfig {
        length: 4_000,
        repeat_families: 2,
        repeat_copies: 2,
        repeat_length: 80,
        seed,
        ..Default::default()
    }
    .generate();
    ReadSimConfig {
        read_length: 90,
        coverage: 30.0,
        substitution_rate: 0.01, // high error rate → plenty of tips/bubbles
        indel_rate: 0.0,
        n_rate: 0.0,
        both_strands: true,
        seed: seed + 1,
    }
    .simulate(&reference)
}

#[test]
fn remove_tips_is_identical_across_worker_counts() {
    let reads = error_heavy_reads(29);
    // Build ONE post-merge graph (fixed IDs), keeping even short dangling
    // contigs (threshold 0) so plenty of tips survive into the operation.
    let mut state = GraphState::new(&reads);
    Pipeline::new()
        .then(Construct::new(ConstructConfig {
            k: 21,
            min_coverage: 0,
            batch_size: 1024,
        }))
        .then(Label::list_ranking())
        .then(Merge::new(MergeConfig {
            k: 21,
            tip_length_threshold: 0,
        }))
        .run(&mut state, &ExecCtx::new(2));
    assert!(
        !state.ambiguous_kmers.is_empty(),
        "error-heavy reads must create branches"
    );

    let config = TipConfig {
        k: 21,
        tip_length_threshold: 80,
    };
    let fingerprint = |workers: usize| {
        let out = remove_tips(&state.ambiguous_kmers, &state.contigs, &config, workers);
        let mut kmers: Vec<u64> = out.kmers.iter().map(|n| n.id).collect();
        let mut contigs: Vec<(u64, usize)> = out.contigs.iter().map(|c| (c.id, c.len())).collect();
        kmers.sort_unstable();
        contigs.sort_unstable();
        (out.deleted_kmers, out.deleted_contigs, kmers, contigs)
    };

    let reference = fingerprint(1);
    assert!(
        reference.0 + reference.1 > 0,
        "the removal-heavy workload must actually delete something"
    );
    for workers in [2usize, 3, 4, 7] {
        assert_eq!(fingerprint(workers), reference, "workers = {workers}");
    }
}

// ---------------------------------------------------------------------------
// Workflow level: error-heavy assembly across worker counts
// ---------------------------------------------------------------------------

#[test]
fn removal_heavy_assembly_is_worker_count_independent() {
    let reads = error_heavy_reads(41);
    let assembly_for = |workers: usize| {
        assemble(
            &reads,
            &AssemblyConfig {
                k: 21,
                min_kmer_coverage: 1,
                workers,
                error_correction_rounds: 2,
                min_contig_length: 0,
                ..Default::default()
            },
        )
    };

    let reference = assembly_for(1);
    assert!(!reference.contigs.is_empty());
    // The correction rounds must have exercised the removal path.
    let deleted: usize = reference
        .stats
        .corrections
        .iter()
        .map(|c| c.tip_kmers_deleted + c.tip_contigs_deleted + c.bubbles_pruned)
        .sum();
    assert!(
        deleted > 0,
        "expected tips/bubbles in an error-heavy dataset"
    );
    // Frontier/footprint metrics must flow through the observer path. The
    // density is a per-superstep mean, so list-ranking's long sparse tail
    // (finished vertices halt and stop computing) must pull it below 1.0.
    let density = reference.stats.label_round1.avg_frontier_density;
    assert!(density > 0.0 && density < 1.0, "density = {density}");
    assert!(reference.stats.label_round1.peak_store_resident_bytes > 0);

    let canonical = |a: &ppa_assembler::Assembly| {
        let mut seqs: Vec<String> = a
            .contigs
            .iter()
            .map(|c| c.sequence.canonical().to_ascii())
            .collect();
        seqs.sort();
        seqs
    };
    let expected = canonical(&reference);
    for workers in [2usize, 4] {
        let assembly = assembly_for(workers);
        assert_eq!(canonical(&assembly), expected, "workers = {workers}");
    }
}
