//! Shuffle-semantics regression tests for the sort-based message plane.
//!
//! The runner and mini-MapReduce deliver messages from flat sorted buffers;
//! these tests pin down the user-visible contract: for a fixed configuration
//! the full pipeline is byte-for-byte deterministic, and the assembled
//! *content* does not depend on the worker count (only IDs/orientations may).

use ppa_assembler::{assemble, Assembly, AssemblyConfig, LabelingAlgorithm};
use ppa_readsim::{GenomeConfig, ReadSimConfig};
use ppa_seq::ReadSet;

fn simulated_reads(seed: u64) -> ReadSet {
    let reference = GenomeConfig {
        length: 6_000,
        repeat_families: 3,
        repeat_copies: 2,
        repeat_length: 100,
        seed,
        ..Default::default()
    }
    .generate();
    ReadSimConfig {
        read_length: 100,
        coverage: 25.0,
        substitution_rate: 0.004,
        indel_rate: 0.0,
        n_rate: 0.001,
        both_strands: true,
        seed: seed + 1,
    }
    .simulate(&reference)
}

fn config(workers: usize, labeling: LabelingAlgorithm) -> AssemblyConfig {
    AssemblyConfig {
        k: 21,
        min_kmer_coverage: 1,
        tip_length_threshold: 80,
        bubble_edit_distance: 5,
        workers,
        labeling,
        error_correction_rounds: 1,
        min_contig_length: 0,
        spill: ppa_pregel::SpillPolicy::Off,
        exec: None,
    }
}

/// Full byte-level fingerprint of an assembly: IDs, coverages and sequences.
fn fingerprint(assembly: &Assembly) -> Vec<(u64, u32, String)> {
    assembly
        .contigs
        .iter()
        .map(|c| (c.id, c.coverage, c.sequence.to_ascii()))
        .collect()
}

/// Worker-count-independent fingerprint: canonical sequences only, sorted
/// (contig IDs encode the minting worker and orientation depends on group
/// traversal order, so only sequence content is comparable across layouts).
fn canonical_multiset(assembly: &Assembly) -> Vec<String> {
    let mut seqs: Vec<String> = assembly
        .contigs
        .iter()
        .map(|c| c.sequence.canonical().to_ascii())
        .collect();
    seqs.sort();
    seqs
}

#[test]
fn pipeline_is_byte_identical_across_runs() {
    let reads = simulated_reads(71);
    for labeling in [
        LabelingAlgorithm::ListRanking,
        LabelingAlgorithm::SimplifiedSV,
    ] {
        let first = assemble(&reads, &config(4, labeling));
        assert!(!first.contigs.is_empty());
        for _ in 0..2 {
            let again = assemble(&reads, &config(4, labeling));
            assert_eq!(
                fingerprint(&first),
                fingerprint(&again),
                "repeated runs must produce byte-identical contigs ({labeling:?})"
            );
        }
    }
}

#[test]
fn pipeline_content_is_worker_count_independent() {
    let reads = simulated_reads(83);
    let reference = assemble(&reads, &config(1, LabelingAlgorithm::ListRanking));
    for workers in [2usize, 3, 7] {
        let other = assemble(&reads, &config(workers, LabelingAlgorithm::ListRanking));
        assert_eq!(
            canonical_multiset(&reference),
            canonical_multiset(&other),
            "worker count {workers} changed the assembled sequences"
        );
    }
}

#[test]
fn reduce_groups_arrive_ascending_by_key_within_each_worker() {
    // The ordering contract contig-ordinal minting relies on: the sort-merge
    // grouping hands every reduce worker its groups in strictly ascending key
    // order, regardless of how many map sources fed the shuffle. (The merge
    // path with several pre-sorted source buffers is exactly what a multi-map,
    // multi-reduce pass exercises.)
    let inputs: Vec<u64> = (0..10_000).rev().collect();
    let (per_worker, _) = ppa_pregel::mapreduce::map_reduce_partitioned(
        inputs,
        5,
        |x: u64, out: &mut ppa_pregel::mapreduce::Emitter<'_, u64, u64>| out.emit(x % 701, x),
        |_w: usize, k: &u64, _vs: &mut [u64], out: &mut Vec<u64>| out.push(*k),
    );
    assert_eq!(per_worker.len(), 5);
    for keys in &per_worker {
        assert!(!keys.is_empty(), "every worker should own some keys");
        assert!(
            keys.windows(2).all(|w| w[0] < w[1]),
            "group keys not strictly ascending within a worker: {keys:?}"
        );
    }
}
