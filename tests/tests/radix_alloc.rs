//! Pins the `ppa_pregel::radix` zero-allocation contract: once the record
//! buffer and the ping-pong scratch are warm, sorting performs **no** heap
//! allocation — the property that makes the runner's steady-state presort
//! (scratch parked in the `ExecCtx` via the per-worker planes) free of
//! per-superstep allocation.
//!
//! This file must stay a single-test binary: the counting allocator below is
//! process-global, and a concurrently running test would pollute the count.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// `System`, plus a counter of every allocation/reallocation.
struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Deterministic xorshift refill: same capacity, different permutation each
/// round, never growing the buffer.
fn refill(records: &mut Vec<(u64, u64)>, n: u64, seed: u64) {
    records.clear();
    let mut state = seed | 1;
    for i in 0..n {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        records.push((state, i));
    }
}

#[test]
fn steady_state_radix_sort_is_allocation_free() {
    const N: u64 = 100_000;
    let mut records: Vec<(u64, u64)> = Vec::new();
    let mut scratch: Vec<(u64, u64)> = Vec::new();

    // Warm-up: first sort grows the scratch to the record count.
    refill(&mut records, N, 0x9E37_79B9);
    ppa_pregel::radix::sort_pairs(&mut records, &mut scratch);

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for round in 1..=10u64 {
        refill(&mut records, N, round.wrapping_mul(0x2545_F491_4F6C_DD1D));
        ppa_pregel::radix::sort_pairs(&mut records, &mut scratch);
        assert!(
            records.windows(2).all(|w| w[0].0 <= w[1].0),
            "output sorted (round {round})"
        );
    }
    let allocations = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert_eq!(
        allocations, 0,
        "steady-state radix sorting must not touch the heap"
    );
}
