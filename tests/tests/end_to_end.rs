//! End-to-end integration tests: simulate → assemble → assess, across crates.

use ppa_assembler::{assemble, AssemblyConfig, LabelingAlgorithm};
use ppa_quality::{AlignmentConfig, QuastReport};
use ppa_readsim::{preset_by_name, GenomeConfig, ReadSimConfig};

fn assembly_config(k: usize, workers: usize) -> AssemblyConfig {
    AssemblyConfig {
        k,
        min_kmer_coverage: 1,
        workers,
        ..Default::default()
    }
}

#[test]
fn error_free_repeat_free_genome_reconstructs_almost_completely() {
    let reference = GenomeConfig {
        length: 20_000,
        repeat_families: 0,
        seed: 100,
        ..Default::default()
    }
    .generate();
    let reads = ReadSimConfig::error_free(100, 30.0).simulate(&reference);
    let assembly = assemble(&reads, &assembly_config(31, 4));
    let contigs: Vec<_> = assembly
        .contigs
        .iter()
        .map(|c| c.sequence.clone())
        .collect();
    let report = QuastReport::evaluate("PPA", &contigs, Some(&reference.sequence), 0);
    let reference_metrics = report.reference.expect("reference supplied");
    assert!(
        reference_metrics.genome_fraction_percent > 98.0,
        "genome fraction {}",
        reference_metrics.genome_fraction_percent
    );
    assert_eq!(reference_metrics.misassemblies, 0);
    assert_eq!(reference_metrics.total_mismatches, 0);
    assert!(assembly.largest_contig() > 19_000);
}

#[test]
fn noisy_genome_with_repeats_assembles_with_good_quality() {
    let dataset = preset_by_name("sim-hc2").unwrap().scaled(0.1).generate();
    let assembly = assemble(&dataset.reads, &assembly_config(25, 4));
    let contigs: Vec<_> = assembly
        .contigs
        .iter()
        .map(|c| c.sequence.clone())
        .collect();
    let report = QuastReport::evaluate("PPA", &contigs, Some(&dataset.reference.sequence), 200);
    let basic = &report.basic;
    let reference_metrics = report.reference.as_ref().expect("reference supplied");
    assert!(basic.num_contigs > 0);
    assert!(
        reference_metrics.genome_fraction_percent > 70.0,
        "genome fraction {}",
        reference_metrics.genome_fraction_percent
    );
    assert!(
        reference_metrics.mismatches_per_100kbp < 200.0,
        "mismatch rate {}",
        reference_metrics.mismatches_per_100kbp
    );
    // The error-corrected second round must not lose assembled sequence.
    assert!(assembly.stats.n50_final >= assembly.stats.n50_after_round1);
}

#[test]
fn lr_and_sv_workflows_agree_end_to_end() {
    let dataset = preset_by_name("sim-hcx").unwrap().scaled(0.03).generate();
    let lr = assemble(
        &dataset.reads,
        &AssemblyConfig {
            labeling: LabelingAlgorithm::ListRanking,
            ..assembly_config(25, 4)
        },
    );
    let sv = assemble(
        &dataset.reads,
        &AssemblyConfig {
            labeling: LabelingAlgorithm::SimplifiedSV,
            ..assembly_config(25, 4)
        },
    );
    let mut lr_lengths: Vec<usize> = lr.contigs.iter().map(|c| c.len()).collect();
    let mut sv_lengths: Vec<usize> = sv.contigs.iter().map(|c| c.len()).collect();
    lr_lengths.sort_unstable();
    sv_lengths.sort_unstable();
    assert_eq!(
        lr_lengths, sv_lengths,
        "the two labeling algorithms must yield the same contigs"
    );
    // And the list-ranking variant must be cheaper in messages (Table II).
    assert!(
        lr.stats.label_round1.messages < sv.stats.label_round1.messages,
        "LR messages {} vs S-V messages {}",
        lr.stats.label_round1.messages,
        sv.stats.label_round1.messages
    );
}

#[test]
fn worker_count_does_not_change_the_assembly() {
    let reference = GenomeConfig {
        length: 10_000,
        repeat_families: 2,
        seed: 7,
        ..Default::default()
    }
    .generate();
    let reads = ReadSimConfig {
        coverage: 20.0,
        substitution_rate: 0.002,
        ..Default::default()
    }
    .simulate(&reference);
    let single = assemble(&reads, &assembly_config(25, 1));
    let many = assemble(&reads, &assembly_config(25, 8));
    let mut a: Vec<String> = single
        .contigs
        .iter()
        .map(|c| c.sequence.canonical().to_ascii())
        .collect();
    let mut b: Vec<String> = many
        .contigs
        .iter()
        .map(|c| c.sequence.canonical().to_ascii())
        .collect();
    a.sort();
    b.sort();
    assert_eq!(
        a, b,
        "assembly must be deterministic w.r.t. the worker count"
    );
}

#[test]
fn circular_genome_assembles_via_cycle_fallback() {
    // A plasmid-like circular genome: reads wrap around the origin.
    let linear = GenomeConfig {
        length: 5_000,
        repeat_families: 0,
        seed: 77,
        ..Default::default()
    }
    .generate();
    let mut doubled = linear.sequence.clone();
    doubled.extend_from(&linear.sequence);
    let circular_reads =
        ReadSimConfig::error_free(100, 20.0).simulate(&ppa_readsim::ReferenceGenome {
            sequence: doubled.substring(0, linear.sequence.len() + 100),
            config: linear.config.clone(),
            repeat_positions: vec![],
        });
    let assembly = assemble(&circular_reads, &assembly_config(31, 4));
    assert!(!assembly.contigs.is_empty());
    assert!(assembly.largest_contig() >= 4_500);
}

#[test]
fn quality_tool_flags_a_deliberately_bad_assembly() {
    // Sanity-check the QUAST-like metrics themselves: a chimeric "assembly"
    // must score worse than the true contigs.
    let reference = GenomeConfig {
        length: 8_000,
        repeat_families: 0,
        seed: 5,
        ..Default::default()
    }
    .generate();
    let good = vec![
        reference.sequence.substring(0, 4_000),
        reference.sequence.substring(4_000, 4_000),
    ];
    let mut chimera = reference.sequence.substring(0, 2_000);
    chimera.extend_from(&reference.sequence.substring(6_000, 2_000));
    let bad = vec![chimera];
    let cfg = AlignmentConfig::default();
    let good_metrics = ppa_quality::align_contigs(&good, &reference.sequence, &cfg);
    let bad_metrics = ppa_quality::align_contigs(&bad, &reference.sequence, &cfg);
    assert_eq!(good_metrics.misassemblies, 0);
    assert!(bad_metrics.misassemblies >= 1);
    assert!(bad_metrics.genome_fraction_percent < good_metrics.genome_fraction_percent);
}
