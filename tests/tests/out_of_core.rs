//! Integration tests for the out-of-core data plane: a memory-bounded
//! assembly ([`SpillPolicy::At`]) must produce contigs byte-identical to the
//! fully resident run across spill caps and worker counts, and the
//! fault-tolerance layer must compose with it — a crash while spill files are
//! active resumes from the last checkpoint byte for byte.

use ppa_assembler::pipeline::{CheckpointPolicy, GraphState, Pipeline, PipelineError};
use ppa_assembler::{assemble, Assembly, AssemblyConfig};
use ppa_pregel::{ExecCtx, Fault, FaultPlan, SpillPolicy};
use ppa_readsim::{GenomeConfig, ReadSimConfig};
use ppa_seq::ReadSet;
use std::path::PathBuf;

fn config(workers: usize, spill: SpillPolicy) -> AssemblyConfig {
    AssemblyConfig {
        k: 21,
        min_kmer_coverage: 1,
        workers,
        error_correction_rounds: 1,
        spill,
        ..Default::default()
    }
}

fn simulated_reads() -> ReadSet {
    let reference = GenomeConfig {
        length: 6_000,
        repeat_families: 3,
        repeat_copies: 2,
        repeat_length: 100,
        seed: 2024,
        ..Default::default()
    }
    .generate();
    ReadSimConfig {
        read_length: 100,
        coverage: 25.0,
        substitution_rate: 0.004,
        indel_rate: 0.0,
        n_rate: 0.0,
        both_strands: true,
        seed: 2025,
    }
    .simulate(&reference)
}

/// Byte-level fingerprint of the assembled contigs.
fn fingerprint(assembly: &Assembly) -> Vec<(u64, u32, String)> {
    assembly
        .contigs
        .iter()
        .map(|c| (c.id, c.coverage, c.sequence.to_ascii()))
        .collect()
}

/// Total bytes spilled across every stage of a run.
fn spilled_bytes(assembly: &Assembly) -> u64 {
    let stats = &assembly.stats;
    stats.construct.phase1.spilled_bytes
        + stats.construct.phase2.spilled_bytes
        + stats.label_round1.spilled_bytes
        + stats
            .label_round2
            .iter()
            .map(|l| l.spilled_bytes)
            .sum::<u64>()
}

#[test]
fn spilled_contigs_are_byte_identical_across_caps_and_worker_counts() {
    let reads = simulated_reads();
    for workers in [2, 4] {
        let resident = assemble(&reads, &config(workers, SpillPolicy::Off));
        assert!(!resident.contigs.is_empty());
        assert_eq!(
            spilled_bytes(&resident),
            0,
            "SpillPolicy::Off must not touch disk"
        );
        let reference = fingerprint(&resident);

        // Sweep the cap across an order of magnitude; the smallest cap is far
        // below the working set, so it must actually exercise the disk path.
        for (cap, must_spill) in [(256 * 1024, false), (64 * 1024, true), (16 * 1024, true)] {
            let spilled = assemble(&reads, &config(workers, SpillPolicy::At(cap)));
            assert_eq!(
                fingerprint(&spilled),
                reference,
                "workers={workers} cap={cap}: spilled contigs diverged"
            );
            if must_spill {
                assert!(
                    spilled_bytes(&spilled) > 0,
                    "workers={workers} cap={cap}: expected the cap to force spilling"
                );
            }
        }
    }
}

#[test]
fn a_shared_context_does_not_leak_the_previous_runs_spill_policy() {
    let reads = simulated_reads();
    let ctx = ExecCtx::new(2);
    let shared = |spill| AssemblyConfig {
        exec: Some(ctx.clone()),
        ..config(2, spill)
    };

    // A tightly capped run on the shared context, then a resident run on the
    // same context: the second config's `Off` must win (and vice versa).
    let spilled = assemble(&reads, &shared(SpillPolicy::At(16 * 1024)));
    assert!(spilled_bytes(&spilled) > 0);
    let resident = assemble(&reads, &shared(SpillPolicy::Off));
    assert_eq!(spilled_bytes(&resident), 0);
    assert_eq!(fingerprint(&spilled), fingerprint(&resident));
}

/// A unique, cleaned-on-drop temp directory for checkpoint snapshots.
struct TmpDir(PathBuf);

impl TmpDir {
    fn new(tag: &str) -> TmpDir {
        let dir = std::env::temp_dir().join(format!("ppa-ooc-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        TmpDir(dir)
    }
}

impl Drop for TmpDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn a_crash_with_active_spill_files_resumes_byte_identically() {
    let reads = simulated_reads();
    let workers = 2;
    let ctx = ExecCtx::new(workers);
    // The pipeline API takes the context directly, so the spill policy is
    // installed by hand — `workflow::assemble` does the same internally.
    ctx.set_spill(SpillPolicy::At(16 * 1024));
    let cfg = config(workers, SpillPolicy::At(16 * 1024));

    // Uninterrupted spilling reference.
    let mut expected = GraphState::new(&reads);
    Pipeline::paper_workflow(&cfg).run(&mut expected, &ctx);
    assert!(!expected.output.is_empty());

    // Crash a worker at a superstep barrier *inside* the first labeling job,
    // while its spill directory (sealed columns + shuffle runs) is live on
    // disk; the unwind must clean it up and the resume must reproduce the
    // uninterrupted run byte for byte.
    let tmp = TmpDir::new("crash");
    let armed = ctx.inject_faults(FaultPlan::single(Fault::Superstep {
        stage: 1,
        superstep: 1,
        worker: 1,
    }));
    let mut state = GraphState::new(&reads);
    let err = Pipeline::paper_workflow(&cfg)
        .checkpoint_to(&tmp.0, CheckpointPolicy::EveryStage)
        .try_run(&mut state, &ctx)
        .expect_err("the injected crash must surface");
    ctx.clear_faults();
    assert!(armed.all_fired(), "the mid-label fault must fire");
    assert!(
        matches!(&err, PipelineError::Stage { message, .. }
            if message.contains("injected fault")),
        "got {err:?}"
    );

    let (resumed, _reports) = Pipeline::paper_workflow(&cfg)
        .resume(&tmp.0, &reads, &ctx)
        .expect("the resume succeeds");
    assert_eq!(
        resumed, expected,
        "resume with spilling enabled diverged from the uninterrupted run"
    );
}
