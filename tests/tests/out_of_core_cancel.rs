//! Cancellation hygiene for the out-of-core data plane: a [`JobControl`]
//! trip while spill files are live must unwind without leaving any spill
//! artefact behind, and the worker pool must stay reusable.
//!
//! This test lives in its own binary (one process) so scanning the system
//! temp directory for this process's `ppa-spill-<pid>-*` job directories
//! cannot race other spilling tests.

use ppa_assembler::{assemble, assemble_with_control, AssemblyConfig, PipelineError};
use ppa_pregel::{CancelReason, ExecCtx, JobControl, SpillPolicy};
use ppa_readsim::{GenomeConfig, ReadSimConfig};
use ppa_seq::ReadSet;
use std::path::PathBuf;

fn simulated_reads() -> ReadSet {
    let reference = GenomeConfig {
        length: 6_000,
        repeat_families: 3,
        repeat_copies: 2,
        repeat_length: 100,
        seed: 404,
        ..Default::default()
    }
    .generate();
    ReadSimConfig {
        read_length: 100,
        coverage: 25.0,
        substitution_rate: 0.004,
        indel_rate: 0.0,
        n_rate: 0.0,
        both_strands: true,
        seed: 405,
    }
    .simulate(&reference)
}

/// Spill job directories belonging to *this* process.
fn our_spill_dirs() -> Vec<PathBuf> {
    let prefix = format!("ppa-spill-{}-", std::process::id());
    let Ok(entries) = std::fs::read_dir(std::env::temp_dir()) else {
        return Vec::new();
    };
    entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with(&prefix))
        })
        .collect()
}

#[test]
fn a_cancelled_spilling_run_removes_its_temp_files() {
    let reads = simulated_reads();
    let workers = 2;
    let ctx = ExecCtx::new(workers);
    let config = AssemblyConfig {
        k: 21,
        min_kmer_coverage: 1,
        workers,
        error_correction_rounds: 1,
        spill: SpillPolicy::At(16 * 1024),
        exec: Some(ctx.clone()),
        ..Default::default()
    };

    // A 1-byte memory budget trips at the first bookkept superstep of the
    // label stage — after the capped job has created its spill directory and
    // sealed the over-cap vertex store to disk.
    let control = JobControl::new().with_memory_budget(1);
    let err =
        assemble_with_control(&reads, &config, &control).expect_err("the 1-byte budget must trip");
    assert!(
        matches!(
            &err,
            PipelineError::Cancelled {
                reason: CancelReason::MemoryBudget,
                ..
            }
        ),
        "got {err:?}"
    );
    assert!(
        our_spill_dirs().is_empty(),
        "cancellation must remove every spill artefact, found {:?}",
        our_spill_dirs()
    );

    // The surviving pool completes an uncontrolled spilling run — and leaves
    // the temp dir clean again afterwards.
    let done = assemble(&reads, &config);
    assert!(!done.contigs.is_empty());
    assert!(
        done.stats.construct.phase1.spilled_bytes + done.stats.label_round1.spilled_bytes > 0,
        "the 16 KiB cap must force spilling"
    );
    assert!(
        our_spill_dirs().is_empty(),
        "a completed run must remove every spill artefact, found {:?}",
        our_spill_dirs()
    );
}
