//! SIMD-dispatch equivalence pins: the vectorized kernel layer must be
//! observationally invisible. A full assembly run under the default
//! runtime-dispatched kernels, under forced-scalar kernels, and under
//! plain (uncompressed) sorted-ID columns must produce byte-identical
//! contig sets and identical assembly statistics.
//!
//! (Per-kernel SIMD == scalar equivalence across widths, alignments, and
//! tails is pinned by property tests inside `ppa_pregel::kernels` and
//! `ppa_seq`; this test covers the cross-crate composition on a real
//! error-heavy workload, including the sidecar/compaction path.)

use ppa_assembler::{assemble, AssemblyConfig};
use ppa_bench::legacy::{with_plain_id_columns, with_scalar_kernels};
use ppa_readsim::preset_by_name;

fn contig_fingerprint(workers: usize) -> (Vec<String>, usize, usize) {
    let dataset = preset_by_name("sim-hc2").unwrap().scaled(0.1).generate();
    let config = AssemblyConfig {
        k: 25,
        min_kmer_coverage: 1,
        workers,
        ..Default::default()
    };
    let assembly = assemble(&dataset.reads, &config);
    let mut contigs: Vec<String> = assembly
        .contigs
        .iter()
        .map(|c| c.sequence.to_ascii())
        .collect();
    contigs.sort();
    let largest = assembly.largest_contig();
    (contigs, assembly.contigs.len(), largest)
}

#[test]
fn forced_scalar_and_plain_columns_match_dispatched_assembly() {
    for workers in [1, 4] {
        let dispatched = contig_fingerprint(workers);
        let scalar = with_scalar_kernels(|| contig_fingerprint(workers));
        let plain = with_plain_id_columns(|| contig_fingerprint(workers));
        let scalar_plain =
            with_scalar_kernels(|| with_plain_id_columns(|| contig_fingerprint(workers)));
        assert_eq!(
            dispatched, scalar,
            "forced-scalar kernels diverged (workers={workers})"
        );
        assert_eq!(
            dispatched, plain,
            "plain ID columns diverged (workers={workers})"
        );
        assert_eq!(
            dispatched, scalar_plain,
            "scalar + plain columns diverged (workers={workers})"
        );
    }
}
