//! Shared harness utilities for regenerating the paper's tables and figures.
//!
//! Every binary in `src/bin/` corresponds to one table or figure of the
//! paper's evaluation (see DESIGN.md §4 for the index); this library holds the
//! pieces they share: command-line parsing, dataset generation at a chosen
//! scale, and fixed-width table printing.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

use ppa_readsim::{preset_by_name, DatasetPreset, SimulatedDataset};
use std::collections::HashMap;

/// Command-line options shared by the harness binaries.
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// Dataset preset name (`sim-hc2`, `sim-hcx`, `sim-hc14`, `sim-bi`).
    pub dataset: String,
    /// Scale factor applied to the preset's reference length (default 0.1 so
    /// every harness finishes in minutes on a laptop; use 1.0 for the full
    /// presets).
    pub scale: f64,
    /// Worker counts to sweep (defaults depend on the harness).
    pub workers: Vec<usize>,
    /// k-mer size.
    pub k: usize,
    /// Additional free-form flags.
    pub extra: HashMap<String, String>,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        HarnessArgs {
            dataset: "sim-hc2".to_string(),
            scale: 0.1,
            workers: vec![1, 2, 4, 8],
            k: 25,
            extra: HashMap::new(),
        }
    }
}

impl HarnessArgs {
    /// Parses `--key value` style arguments from `std::env::args`.
    pub fn parse() -> HarnessArgs {
        let mut args = HarnessArgs::default();
        let mut iter = std::env::args().skip(1);
        while let Some(flag) = iter.next() {
            let key = flag.trim_start_matches('-').to_string();
            let value = iter.next().unwrap_or_default();
            match key.as_str() {
                "dataset" => args.dataset = value,
                "scale" => args.scale = value.parse().expect("--scale takes a number"),
                "k" => args.k = value.parse().expect("--k takes an integer"),
                "workers" => {
                    args.workers = value
                        .split(',')
                        .map(|w| w.trim().parse().expect("--workers takes a,b,c"))
                        .collect()
                }
                _ => {
                    args.extra.insert(key, value);
                }
            }
        }
        args
    }

    /// Resolves and generates the requested dataset at the requested scale.
    pub fn generate_dataset(&self) -> SimulatedDataset {
        self.preset().generate()
    }

    /// The scaled preset.
    pub fn preset(&self) -> DatasetPreset {
        preset_by_name(&self.dataset)
            .unwrap_or_else(|| panic!("unknown dataset {:?}", self.dataset))
            .scaled(self.scale)
    }
}

/// Prints a fixed-width table: a header row followed by data rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let widths: Vec<usize> = header
        .iter()
        .enumerate()
        .map(|(i, h)| {
            rows.iter()
                .map(|r| r.get(i).map(|c| c.len()).unwrap_or(0))
                .chain(std::iter::once(h.len()))
                .max()
                .unwrap_or(0)
                + 2
        })
        .collect();
    let mut line = String::new();
    for (h, w) in header.iter().zip(&widths) {
        line.push_str(&format!("{h:>w$}", w = w));
    }
    println!("{line}");
    println!("{}", "-".repeat(line.len()));
    for row in rows {
        let mut line = String::new();
        for (c, w) in row.iter().zip(&widths) {
            line.push_str(&format!("{c:>w$}", w = w));
        }
        println!("{line}");
    }
}

/// Formats a `Duration` as seconds with millisecond precision.
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Times `f` over `reps` runs (after one untimed warm-up) and returns
/// `(min, mean)` seconds — the measurement shared by the snapshot bins so
/// every `BENCH_*.json` uses the same policy.
pub fn time_runs<F: FnMut()>(reps: usize, mut f: F) -> (f64, f64) {
    f();
    let mut times = Vec::with_capacity(reps);
    for _ in 0..reps {
        let start = std::time::Instant::now();
        f();
        times.push(start.elapsed().as_secs_f64());
    }
    let min = times.iter().copied().fold(f64::INFINITY, f64::min);
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    (min, mean)
}

/// `--reps N --out PATH` arguments shared by the snapshot bins.
pub struct SnapshotArgs {
    /// Timed repetitions per workload.
    pub reps: usize,
    /// Output path of the JSON snapshot.
    pub out_path: String,
}

impl SnapshotArgs {
    /// Parses `std::env::args`, with the given default output path.
    pub fn parse(default_out: &str) -> SnapshotArgs {
        let mut parsed = SnapshotArgs {
            reps: 5,
            out_path: default_out.to_string(),
        };
        let mut args = std::env::args().skip(1);
        while let Some(flag) = args.next() {
            match flag.as_str() {
                "--reps" => {
                    parsed.reps = args.next().and_then(|v| v.parse().ok()).expect("--reps N")
                }
                "--out" => parsed.out_path = args.next().expect("--out PATH"),
                other => panic!("unknown flag {other}"),
            }
        }
        parsed
    }
}

pub mod legacy;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_args_resolve_a_dataset() {
        let args = HarnessArgs::default();
        let preset = args.preset();
        assert_eq!(preset.name, "sim-hc2");
        assert_eq!(preset.genome.length, 20_000); // 200 kb × 0.1
    }

    #[test]
    #[should_panic(expected = "unknown dataset")]
    fn unknown_dataset_panics() {
        let args = HarnessArgs {
            dataset: "nope".into(),
            ..Default::default()
        };
        args.preset();
    }

    #[test]
    fn table_printing_does_not_panic() {
        print_table(
            "demo",
            &["a", "bb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        assert_eq!(secs(std::time::Duration::from_millis(1500)), "1.500");
    }
}
