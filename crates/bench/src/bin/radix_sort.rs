//! Regenerates `BENCH_radix_sort.json`: the LSD radix presort
//! (`ppa_pregel::radix`) against the comparison-sort plane it replaced.
//!
//! Three workload groups:
//!
//! * **sort microbench** — 1M `(u64, u64)` records under three key
//!   distributions (uniform 64-bit, clustered-by-partition, DBG-shaped short
//!   runs), pdqsort (`ppa_bench::legacy::comparison_sort_pairs`) vs
//!   `radix::sort_pairs` with a warm scratch;
//! * **shuffle_1m** — the full mini-MapReduce pass over 1M pairs / 500k keys
//!   (the `message_plane` bench's shuffle workload), with the presorts forced
//!   onto the comparison fallback (`legacy::with_comparison_plane`) vs the
//!   radix plane;
//! * **assemble_e2e** — whole `workflow::assemble` wall clock on a simulated
//!   dataset, comparison plane vs radix plane (every presort of every
//!   operation of every round flips at once).
//!
//! Run from the repository root: `cargo run -p ppa_bench --release --bin
//! radix_sort [--reps N] [--out PATH]`.

use ppa_assembler::workflow::{assemble, AssemblyConfig};
use ppa_bench::legacy::{comparison_sort_pairs, with_comparison_plane};
use ppa_bench::{time_runs as time, SnapshotArgs};
use ppa_pregel::mapreduce::Emitter;
use ppa_pregel::{map_reduce, radix};
use ppa_readsim::preset_by_name;
use std::hint::black_box;

const N: usize = 1_000_000;
const WORKERS: usize = 4;
const SHUFFLE_KEYS: u64 = 500_000;

struct Workload {
    name: &'static str,
    description: &'static str,
    comparison: (f64, f64),
    radix: (f64, f64),
}

impl Workload {
    fn speedup(&self) -> f64 {
        self.comparison.0 / self.radix.0
    }
}

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// Builds one master input per distribution; timed iterations copy it into a
/// pre-sized buffer (same memcpy on both sides) and sort.
fn distribution(name: &str) -> Vec<(u64, u64)> {
    let mut state = 0x2545_F491_4F6C_DD1Du64;
    (0..N as u64)
        .map(|i| {
            let r = xorshift(&mut state);
            let key = match name {
                // Full-width keys: radix pays all 8 passes.
                "uniform" => r,
                // Keys clustered by owning partition (top bits = partition,
                // low bits narrow): digit skipping removes most passes —
                // the shape of per-destination outbox buffers.
                "clustered" => ((i % 8) << 56) | (r & 0xF_FFFF),
                // Narrow key space with many duplicates — the (k+1)-mer
                // counting / DBG shuffle shape (short same-key runs).
                "dbg_runs" => r % SHUFFLE_KEYS,
                _ => unreachable!(),
            };
            (key, i)
        })
        .collect()
}

fn sort_microbench(name: &'static str, description: &'static str, reps: usize) -> Workload {
    eprintln!("sort_{name} ({N} records, {reps} reps)...");
    let master = distribution(name);
    let mut records = master.clone();
    let mut scratch: Vec<(u64, u64)> = Vec::with_capacity(N);
    Workload {
        name,
        description,
        comparison: time(reps, || {
            records.clone_from(&master);
            comparison_sort_pairs(black_box(&mut records));
        }),
        radix: time(reps, || {
            records.clone_from(&master);
            radix::sort_pairs(black_box(&mut records), &mut scratch);
        }),
    }
}

fn run_shuffle(inputs: &[u64]) -> usize {
    // Multiplicative-hashed keys: shuffle buffers arrive in random key order,
    // like the packed canonical (k+1)-mers of DBG construction do (emitting
    // `x % KEYS` over sequential inputs would instead produce nearly-sorted
    // buffers — pdqsort's best case, not the production shape).
    map_reduce(
        inputs.to_vec(),
        WORKERS,
        |x: u64, out: &mut Emitter<'_, u64, u64>| {
            out.emit(x.wrapping_mul(0x9E37_79B9_7F4A_7C15) % SHUFFLE_KEYS, 1)
        },
        |k: &u64, vs: &mut [u64], out: &mut Vec<(u64, u64)>| out.push((*k, vs.iter().sum::<u64>())),
    )
    .len()
}

fn main() {
    let SnapshotArgs { reps, out_path } = SnapshotArgs::parse("BENCH_radix_sort.json");

    let mut workloads = vec![
        sort_microbench(
            "uniform",
            "1M-pair sort, uniform 64-bit keys (worst case: all 8 radix passes)",
            reps,
        ),
        sort_microbench(
            "clustered",
            "1M-pair sort, partition-clustered keys (digit skipping: ~4 passes)",
            reps,
        ),
        sort_microbench(
            "dbg_runs",
            "1M-pair sort, 500k-key space with short duplicate runs (DBG-construction shape)",
            reps,
        ),
    ];

    eprintln!("shuffle_1m ({N} pairs, {SHUFFLE_KEYS} keys, {WORKERS} workers, {reps} reps)...");
    let inputs: Vec<u64> = (0..N as u64).collect();
    workloads.push(Workload {
        name: "shuffle_1m",
        description:
            "full mini-MapReduce pass over 1M pairs / 500k keys, comparison presort vs radix presort",
        comparison: time(reps, || {
            black_box(with_comparison_plane(|| run_shuffle(&inputs)));
        }),
        radix: time(reps, || {
            black_box(run_shuffle(&inputs));
        }),
    });

    let dataset = preset_by_name("sim-hc2")
        .expect("sim-hc2 preset exists")
        .scaled(0.5)
        .generate();
    let config = AssemblyConfig {
        k: 25,
        workers: WORKERS,
        ..Default::default()
    };
    eprintln!(
        "assemble_e2e ({} reads, k={}, {WORKERS} workers, {reps} reps)...",
        dataset.reads.len(),
        config.k
    );
    workloads.push(Workload {
        name: "assemble_e2e",
        description: "whole workflow::assemble on sim-hc2 ×0.5, comparison plane vs radix plane",
        comparison: time(reps, || {
            black_box(with_comparison_plane(|| {
                assemble(&dataset.reads, &config).contigs.len()
            }));
        }),
        radix: time(reps, || {
            black_box(assemble(&dataset.reads, &config).contigs.len());
        }),
    });

    let mut json = String::from("{\n");
    json.push_str("  \"benchmark\": \"radix_sort\",\n");
    json.push_str(&format!("  \"workers\": {WORKERS},\n"));
    json.push_str(&format!("  \"reps\": {reps},\n"));
    json.push_str("  \"workloads\": [\n");
    let last = workloads.len() - 1;
    for (i, w) in workloads.iter().enumerate() {
        json.push_str("    {\n");
        json.push_str(&format!("      \"name\": \"{}\",\n", w.name));
        json.push_str(&format!("      \"description\": \"{}\",\n", w.description));
        json.push_str(&format!(
            "      \"comparison_plane\": {{\"min_s\": {:.6}, \"mean_s\": {:.6}}},\n",
            w.comparison.0, w.comparison.1
        ));
        json.push_str(&format!(
            "      \"radix_plane\": {{\"min_s\": {:.6}, \"mean_s\": {:.6}}},\n",
            w.radix.0, w.radix.1
        ));
        json.push_str(&format!("      \"speedup\": {:.2}\n", w.speedup()));
        json.push_str(if i == last { "    }\n" } else { "    },\n" });
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).expect("write snapshot");
    println!("{json}");
    for w in &workloads {
        println!("{}: {:.2}x", w.name, w.speedup());
    }
    println!("→ {out_path}");
}
