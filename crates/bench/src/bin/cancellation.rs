//! Regenerates `BENCH_cancellation.json`: the cost of the job control plane
//! on the paper workflow, plus cancel-to-return latency.
//!
//! Two workloads:
//!
//! * `control_plane_overhead` — the full ①②③(④⑤②③)×r workflow, run once
//!   with no [`JobControl`] installed and once with a live handle that never
//!   trips. The difference is the price of the cooperative barrier polls
//!   (one `Option` check plus three atomic loads per BSP boundary); the
//!   budget is ≤1% end-to-end.
//! * `cancel_latency` — across graph sizes, a deadline armed at half of the
//!   measured full-run time trips the workflow mid-assembly; the latency is
//!   the gap between the deadline expiring and `try_run` returning, i.e. the
//!   distance to the next cooperative barrier. Deadlines make the
//!   measurement thread-free: the engine-only-threading lint applies to
//!   bench binaries too.
//!
//! Run from the repository root: `cargo run -p ppa_bench --release --bin
//! cancellation [--reps N] [--out PATH]`.

use ppa_assembler::pipeline::{GraphState, Pipeline, PipelineError};
use ppa_assembler::AssemblyConfig;
use ppa_bench::SnapshotArgs;
use ppa_pregel::{CancelReason, EngineError, ExecCtx, JobControl};
use ppa_readsim::{GenomeConfig, ReadSimConfig};
use ppa_seq::ReadSet;
use std::hint::black_box;
use std::time::{Duration, Instant};

const WORKERS: usize = 4;
const GENOME: usize = 60_000;
const K: usize = 21;

/// Graph sizes for the cancel-to-return latency sweep.
const LATENCY_GENOMES: &[usize] = &[20_000, 60_000, 120_000];

fn config(ctx: &ExecCtx) -> AssemblyConfig {
    AssemblyConfig {
        k: K,
        min_kmer_coverage: 1,
        workers: WORKERS,
        error_correction_rounds: 1,
        exec: Some(ctx.clone()),
        ..Default::default()
    }
}

fn simulate(genome_bp: usize) -> ReadSet {
    let reference = GenomeConfig {
        length: genome_bp,
        repeat_families: 4,
        repeat_copies: 2,
        repeat_length: 120,
        seed: 42,
        ..Default::default()
    }
    .generate();
    ReadSimConfig {
        read_length: 100,
        coverage: 30.0,
        substitution_rate: 0.004,
        indel_rate: 0.0,
        n_rate: 0.0,
        both_strands: true,
        seed: 43,
    }
    .simulate(&reference)
}

fn main() {
    let SnapshotArgs { reps, out_path } = SnapshotArgs::parse("BENCH_cancellation.json");
    let ctx = ExecCtx::new(WORKERS);

    eprintln!("simulating {GENOME} bp dataset ({WORKERS} workers, {reps} reps)...");
    let reads = simulate(GENOME);
    let config = config(&ctx);

    eprintln!("control_plane_overhead: no handle vs live handle...");
    let live = JobControl::new();
    let assemble = |control: Option<&JobControl>| {
        if let Some(c) = control {
            ctx.set_control(c.clone());
        }
        let start = Instant::now();
        let mut state = GraphState::new(&reads);
        Pipeline::paper_workflow(&config).run(&mut state, &ctx);
        black_box(state.output.len());
        let elapsed = start.elapsed().as_secs_f64();
        ctx.clear_control();
        elapsed
    };
    // Interleave the two variants rep by rep so machine drift (turbo decay,
    // co-tenant load) hits both equally instead of biasing whichever batch
    // ran second; untimed warm-up first, like `time_runs`.
    assemble(None);
    assemble(Some(&live));
    let mut off_times = Vec::with_capacity(reps);
    let mut on_times = Vec::with_capacity(reps);
    for _ in 0..reps {
        off_times.push(assemble(None));
        on_times.push(assemble(Some(&live)));
    }
    let min_mean = |times: &[f64]| {
        (
            times.iter().copied().fold(f64::INFINITY, f64::min),
            times.iter().sum::<f64>() / times.len() as f64,
        )
    };
    let off = min_mean(&off_times);
    let on = min_mean(&on_times);
    let overhead_pct = (on.0 / off.0 - 1.0) * 100.0;
    // One warm-up plus `reps` timed runs share the handle's poll counter.
    let polls_per_run = live.checks() / (reps as u64 + 1);

    eprintln!("cancel_latency: deadline at half the full-run time...");
    // A deadline trip unwinds via `panic_any(EngineError::Cancelled)` before
    // the pipeline catches and retypes it; silence the default hook's
    // backtrace for exactly that payload so the sweep's output stays clean.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if info.payload().downcast_ref::<EngineError>().is_none() {
            default_hook(info);
        }
    }));
    let mut latency_rows = Vec::new();
    for &genome_bp in LATENCY_GENOMES {
        let reads = simulate(genome_bp);
        // The uninterrupted wall-clock time calibrates a mid-run deadline.
        let full_start = Instant::now();
        let mut state = GraphState::new(&reads);
        Pipeline::paper_workflow(&config).run(&mut state, &ctx);
        black_box(state.output.len());
        let full_s = full_start.elapsed().as_secs_f64();
        let deadline = Duration::from_secs_f64(full_s / 2.0);

        let mut latencies_ms = Vec::with_capacity(reps);
        for _ in 0..reps {
            let control = JobControl::new().with_deadline_in(deadline);
            ctx.set_control(control.clone());
            let start = Instant::now();
            let mut state = GraphState::new(&reads);
            let err = Pipeline::paper_workflow(&config)
                .try_run(&mut state, &ctx)
                .expect_err("the mid-run deadline must trip");
            let elapsed = start.elapsed();
            ctx.clear_control();
            assert!(
                matches!(
                    &err,
                    PipelineError::Cancelled {
                        reason: CancelReason::Deadline,
                        ..
                    }
                ),
                "got {err:?}"
            );
            latencies_ms.push((elapsed.saturating_sub(deadline)).as_secs_f64() * 1e3);
        }
        let min = latencies_ms.iter().copied().fold(f64::INFINITY, f64::min);
        let mean = latencies_ms.iter().sum::<f64>() / latencies_ms.len() as f64;
        eprintln!("  {genome_bp} bp: full {full_s:.3}s, cancel-to-return {mean:.2}ms mean");
        latency_rows.push((genome_bp, reads.len(), full_s, deadline, min, mean));
    }
    let _ = std::panic::take_hook();

    let mut json = String::from("{\n");
    json.push_str("  \"benchmark\": \"cancellation\",\n");
    json.push_str(&format!("  \"workers\": {WORKERS},\n"));
    json.push_str(&format!("  \"reps\": {reps},\n"));
    json.push_str("  \"control_plane_overhead\": {\n");
    json.push_str(
        "    \"description\": \"paper workflow end-to-end; a live never-tripping \
         JobControl polled at every BSP barrier vs no handle installed\",\n",
    );
    json.push_str(&format!("    \"genome_bp\": {GENOME},\n"));
    json.push_str(&format!("    \"reads\": {},\n", reads.len()));
    json.push_str(&format!(
        "    \"off\": {{\"min_s\": {:.6}, \"mean_s\": {:.6}}},\n",
        off.0, off.1
    ));
    json.push_str(&format!(
        "    \"on\": {{\"min_s\": {:.6}, \"mean_s\": {:.6}}},\n",
        on.0, on.1
    ));
    json.push_str(&format!("    \"polls_per_run\": {polls_per_run},\n"));
    json.push_str(&format!("    \"overhead_pct\": {overhead_pct:.2}\n"));
    json.push_str("  },\n");
    json.push_str("  \"cancel_latency\": {\n");
    json.push_str(
        "    \"description\": \"deadline armed at half the measured full-run time; \
         latency is try_run returning minus the deadline expiring (distance to \
         the next cooperative barrier)\",\n",
    );
    json.push_str("    \"sizes\": [");
    for (i, (genome_bp, n_reads, full_s, deadline, min, mean)) in latency_rows.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "\n      {{\"genome_bp\": {genome_bp}, \"reads\": {n_reads}, \
             \"full_run_s\": {full_s:.6}, \"deadline_s\": {:.6}, \
             \"latency_ms\": {{\"min\": {min:.3}, \"mean\": {mean:.3}}}}}",
            deadline.as_secs_f64()
        ));
    }
    json.push_str("\n    ]\n  }\n}\n");

    std::fs::write(&out_path, &json).expect("write snapshot");
    println!("{json}");
    println!("control-plane overhead (live handle vs none): {overhead_pct:.2}% → {out_path}");
}
