//! Regenerates `BENCH_vertex_store.json`: the columnar sorted vertex store
//! (`ppa_pregel::vertex_set`) against the hash-partitioned store it replaced
//! (`ppa_bench::legacy::{run_hash_store, HashVertexStore}`).
//!
//! Both engine-level baselines run on the **production** worker pool and
//! radix message plane — the store is the only difference — so the numbers
//! isolate hash-probe delivery + bucket-array scans vs merge-join delivery +
//! bitset walks. Four workload shapes:
//!
//! * **delivery_heavy** — every vertex receives a fan of messages every
//!   superstep: pass 1 dominates (one hash probe per run vs one merge-join
//!   step per run);
//! * **scan_sparse** — 1M vertices all halted except 64 walking tokens:
//!   pass 2 dominates (full hash-map scan per superstep vs a bitset walk
//!   skipping 64 halted vertices per word);
//! * **removal_churn** — store-API level: batch retains, point
//!   removes/reinserts, lookups and full iterations (the tip/bubble
//!   correction shape), plus the resident-bytes comparison;
//! * **assemble_e2e** — whole `workflow::assemble` wall clock on the
//!   columnar store. The hash store cannot drive the production operations
//!   any more (it survives only inside `ppa_bench::legacy`), so this entry
//!   records the end-to-end figure without an old-side twin.
//!
//! Run from the repository root: `cargo run -p ppa_bench --release --bin
//! vertex_store [--reps N] [--out PATH]`.

use ppa_assembler::workflow::{assemble, AssemblyConfig};
use ppa_bench::legacy::{run_hash_store, HashStoreCtx, HashStoreProgram, HashVertexStore};
use ppa_bench::{time_runs as time, SnapshotArgs};
use ppa_pregel::{
    run_from_pairs, Context, ExecCtx, NoAggregate, PregelConfig, VertexProgram, VertexSet,
};
use ppa_readsim::preset_by_name;
use std::hint::black_box;

const WORKERS: usize = 4;
const DELIVERY_N: u64 = 200_000;
const DELIVERY_ROUNDS: usize = 6;
const DELIVERY_FAN: u64 = 4;
const SCAN_N: u64 = 1_000_000;
const SCAN_TOKENS: u64 = 64;
const SCAN_STEPS: u64 = 48;
const CHURN_N: u64 = 400_000;

struct Workload {
    name: &'static str,
    description: String,
    hash: Option<(f64, f64)>,
    columnar: (f64, f64),
    notes: Vec<(&'static str, String)>,
}

impl Workload {
    fn speedup(&self) -> Option<f64> {
        self.hash.map(|h| h.0 / self.columnar.0)
    }
}

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

// ---------------------------------------------------------------------------
// delivery_heavy: every vertex receives messages every superstep
// ---------------------------------------------------------------------------

struct ScatterFold {
    n: u64,
    rounds: usize,
    fan: u64,
}

impl ScatterFold {
    #[inline]
    fn target(&self, id: u64, f: u64, superstep: usize) -> u64 {
        id.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(f.wrapping_mul(0x0100_0193) + superstep as u64)
            % self.n
    }
}

impl VertexProgram for ScatterFold {
    type Id = u64;
    type Value = u64;
    type Message = u64;
    type Aggregate = NoAggregate;
    fn compute(&self, ctx: &mut Context<'_, Self>, id: u64, value: &mut u64, msgs: &mut [u64]) {
        *value = value.wrapping_add(msgs.iter().sum::<u64>());
        if ctx.superstep() < self.rounds {
            for f in 0..self.fan {
                ctx.send_message(self.target(id, f, ctx.superstep()), id ^ f);
            }
        }
        ctx.vote_to_halt();
    }
}

impl HashStoreProgram for ScatterFold {
    type Value = u64;
    type Message = u64;
    fn compute(
        &self,
        ctx: &mut HashStoreCtx<'_, Self>,
        id: u64,
        value: &mut u64,
        msgs: &mut [u64],
    ) {
        *value = value.wrapping_add(msgs.iter().sum::<u64>());
        if ctx.superstep() < self.rounds {
            for f in 0..self.fan {
                ctx.send_message(self.target(id, f, ctx.superstep()), id ^ f);
            }
        }
        ctx.vote_to_halt();
    }
}

// ---------------------------------------------------------------------------
// scan_sparse: a handful of walking tokens over a sea of halted vertices
// ---------------------------------------------------------------------------

struct TokenWalk {
    n: u64,
    stride: u64,
    steps: u64,
}

impl TokenWalk {
    #[inline]
    fn relay(&self, superstep: usize, id: u64, value: &mut u64, hop: u64) -> Option<(u64, u64)> {
        if superstep == 0 {
            if id.is_multiple_of(self.stride) {
                return Some(((id + 1) % self.n, 1));
            }
        } else if hop > 0 {
            *value = value.wrapping_add(hop);
            if hop < self.steps {
                return Some(((id + 1) % self.n, hop + 1));
            }
        }
        None
    }
}

impl VertexProgram for TokenWalk {
    type Id = u64;
    type Value = u64;
    type Message = u64;
    type Aggregate = NoAggregate;
    fn compute(&self, ctx: &mut Context<'_, Self>, id: u64, value: &mut u64, msgs: &mut [u64]) {
        let hop = msgs.iter().copied().max().unwrap_or(0);
        if let Some((to, m)) = self.relay(ctx.superstep(), id, value, hop) {
            ctx.send_message(to, m);
        }
        ctx.vote_to_halt();
    }
}

impl HashStoreProgram for TokenWalk {
    type Value = u64;
    type Message = u64;
    fn compute(
        &self,
        ctx: &mut HashStoreCtx<'_, Self>,
        id: u64,
        value: &mut u64,
        msgs: &mut [u64],
    ) {
        let hop = msgs.iter().copied().max().unwrap_or(0);
        if let Some((to, m)) = self.relay(ctx.superstep(), id, value, hop) {
            ctx.send_message(to, m);
        }
        ctx.vote_to_halt();
    }
}

/// Runs one engine workload on both stores, checks the results agree, and
/// returns the timed comparison.
fn engine_workload<P>(
    name: &'static str,
    description: String,
    program: P,
    n: u64,
    reps: usize,
) -> Workload
where
    P: VertexProgram<Id = u64, Value = u64, Message = u64>
        + HashStoreProgram<Value = u64, Message = u64>,
{
    eprintln!("{name} ({n} vertices, {WORKERS} workers, {reps} reps)...");
    let ctx = ExecCtx::new(WORKERS);
    let config = PregelConfig::with_workers(WORKERS)
        .track_supersteps(false)
        .exec_ctx(ctx.clone());

    // Correctness witness: both stores must deliver identical state.
    let (mut old, _) = run_hash_store(&program, &ctx, (0..n).map(|i| (i, i)), 10_000);
    let (set, _) = run_from_pairs(&program, &config, (0..n).map(|i| (i, i)));
    let mut new = set.into_pairs();
    old.sort_unstable();
    new.sort_unstable();
    assert_eq!(old, new, "{name}: stores disagree");

    Workload {
        name,
        description,
        hash: Some(time(reps, || {
            black_box(run_hash_store(&program, &ctx, (0..n).map(|i| (i, i)), 10_000).1);
        })),
        columnar: time(reps, || {
            black_box(run_from_pairs(&program, &config, (0..n).map(|i| (i, i))).1);
        }),
        notes: Vec::new(),
    }
}

// ---------------------------------------------------------------------------
// removal_churn: the tip/bubble correction shape at the store-API level
// ---------------------------------------------------------------------------

/// The store operations the churn loop needs, implemented by both stores.
trait ChurnStore {
    fn c_insert(&mut self, id: u64, v: u64);
    fn c_remove(&mut self, id: u64) -> Option<u64>;
    fn c_get(&self, id: u64) -> Option<u64>;
    fn c_retain(&mut self, keep: &dyn Fn(u64, u64) -> bool);
    fn c_sum(&self) -> u64;
}

impl ChurnStore for VertexSet<u64, u64> {
    fn c_insert(&mut self, id: u64, v: u64) {
        self.insert(id, v);
    }
    fn c_remove(&mut self, id: u64) -> Option<u64> {
        self.remove(&id)
    }
    fn c_get(&self, id: u64) -> Option<u64> {
        self.get(&id).copied()
    }
    fn c_retain(&mut self, keep: &dyn Fn(u64, u64) -> bool) {
        self.retain(|id, v| keep(*id, *v));
    }
    fn c_sum(&self) -> u64 {
        self.iter().fold(0u64, |acc, (_, v)| acc.wrapping_add(*v))
    }
}

impl ChurnStore for HashVertexStore<u64> {
    fn c_insert(&mut self, id: u64, v: u64) {
        self.insert(id, v);
    }
    fn c_remove(&mut self, id: u64) -> Option<u64> {
        self.remove(id)
    }
    fn c_get(&self, id: u64) -> Option<u64> {
        self.get(id).copied()
    }
    fn c_retain(&mut self, keep: &dyn Fn(u64, u64) -> bool) {
        self.retain(|id, v| keep(id, *v));
    }
    fn c_sum(&self) -> u64 {
        self.iter().fold(0u64, |acc, (_, v)| acc.wrapping_add(*v))
    }
}

/// Batch retains, point removes/reinserts, lookups and full scans; returns a
/// checksum so both stores can be asserted identical.
fn churn(store: &mut dyn ChurnStore, n: u64) -> u64 {
    let mut checksum = 0u64;
    let mut state = 0x2545_F491_4F6C_DD1Du64;
    for round in 0..4u64 {
        // Batch correction: drop ~1/8 of the survivors (tips/bubbles delete
        // in batches, not one by one).
        store.c_retain(&move |id, _| (id.wrapping_mul(0x9E37_79B9) >> 13) & 7 != round);
        // Point churn: remove and reinsert scattered vertices.
        for _ in 0..5_000 {
            let id = xorshift(&mut state) % n;
            if let Some(v) = store.c_remove(id) {
                checksum = checksum.wrapping_add(v);
            }
            store.c_insert(xorshift(&mut state) % n, round + 1);
        }
        // Point lookups.
        for _ in 0..10_000 {
            let id = xorshift(&mut state) % n;
            if let Some(v) = store.c_get(id) {
                checksum = checksum.wrapping_add(v);
            }
        }
        // Full rebuild scans (survivor collection + adjacency rewiring both
        // walk the whole store).
        checksum = checksum.wrapping_add(store.c_sum());
        checksum = checksum.wrapping_add(store.c_sum());
    }
    checksum
}

fn removal_churn_workload(reps: usize) -> Workload {
    eprintln!("removal_churn ({CHURN_N} vertices, {reps} reps)...");
    let build_columnar = || VertexSet::from_pairs(WORKERS, (0..CHURN_N).map(|i| (i, i)));
    let build_hash = || {
        let mut s: HashVertexStore<u64> = HashVertexStore::new(WORKERS);
        for i in 0..CHURN_N {
            s.insert(i, i);
        }
        s
    };

    // Correctness witness + resident-bytes comparison.
    let mut columnar = build_columnar();
    let mut hash = build_hash();
    let columnar_sum = churn(&mut columnar, CHURN_N);
    let hash_sum = churn(&mut hash, CHURN_N);
    assert_eq!(columnar_sum, hash_sum, "removal_churn: stores disagree");
    let notes = vec![
        (
            "columnar_resident_mib",
            format!("{:.2}", columnar.resident_bytes() as f64 / (1 << 20) as f64),
        ),
        (
            "hash_resident_mib",
            format!("{:.2}", hash.resident_bytes() as f64 / (1 << 20) as f64),
        ),
    ];

    Workload {
        name: "removal_churn",
        description: format!(
            "{CHURN_N} vertices: 4 rounds of batch retain + 5k point remove/reinsert + \
             10k lookups + full rebuild scans (the tip/bubble correction shape). The hash \
             store's remaining win: random point ops are O(1) vs the columns' O(log n); \
             batch retains and scans favour the columns, and nothing on the engine's \
             steady-state path does random point ops"
        ),
        hash: Some(time(reps, || {
            let mut s = build_hash();
            black_box(churn(&mut s, CHURN_N));
        })),
        columnar: time(reps, || {
            let mut s = build_columnar();
            black_box(churn(&mut s, CHURN_N));
        }),
        notes,
    }
}

fn main() {
    let SnapshotArgs { reps, out_path } = SnapshotArgs::parse("BENCH_vertex_store.json");

    let mut workloads = vec![
        engine_workload(
            "delivery_heavy",
            format!(
                "{DELIVERY_N} vertices × {DELIVERY_ROUNDS} supersteps, fan {DELIVERY_FAN}: \
                 hash-probe delivery vs merge-join over the sorted ID column"
            ),
            ScatterFold {
                n: DELIVERY_N,
                rounds: DELIVERY_ROUNDS,
                fan: DELIVERY_FAN,
            },
            DELIVERY_N,
            reps,
        ),
        engine_workload(
            "scan_sparse",
            format!(
                "{SCAN_N} halted vertices, {SCAN_TOKENS} tokens walking {SCAN_STEPS} steps: \
                 full hash-map straggler scan vs halted-bitset walk"
            ),
            TokenWalk {
                n: SCAN_N,
                stride: SCAN_N / SCAN_TOKENS,
                steps: SCAN_STEPS,
            },
            SCAN_N,
            reps,
        ),
        removal_churn_workload(reps),
    ];

    let dataset = preset_by_name("sim-hc2")
        .expect("sim-hc2 preset exists")
        .scaled(0.5)
        .generate();
    let config = AssemblyConfig {
        k: 25,
        workers: WORKERS,
        ..Default::default()
    };
    eprintln!(
        "assemble_e2e ({} reads, k={}, {WORKERS} workers, {reps} reps)...",
        dataset.reads.len(),
        config.k
    );
    workloads.push(Workload {
        name: "assemble_e2e",
        description: "whole workflow::assemble on sim-hc2 ×0.5 on the columnar store \
                      (the hash store cannot drive the production ops; see ppa_bench::legacy)"
            .to_string(),
        hash: None,
        columnar: time(reps, || {
            black_box(assemble(&dataset.reads, &config).contigs.len());
        }),
        notes: Vec::new(),
    });

    let mut json = String::from("{\n");
    json.push_str("  \"benchmark\": \"vertex_store\",\n");
    json.push_str(&format!("  \"workers\": {WORKERS},\n"));
    json.push_str(&format!("  \"reps\": {reps},\n"));
    json.push_str("  \"workloads\": [\n");
    let last = workloads.len() - 1;
    for (i, w) in workloads.iter().enumerate() {
        json.push_str("    {\n");
        json.push_str(&format!("      \"name\": \"{}\",\n", w.name));
        json.push_str(&format!("      \"description\": \"{}\",\n", w.description));
        match w.hash {
            Some((min, mean)) => json.push_str(&format!(
                "      \"hash_store\": {{\"min_s\": {min:.6}, \"mean_s\": {mean:.6}}},\n"
            )),
            None => json.push_str("      \"hash_store\": null,\n"),
        }
        json.push_str(&format!(
            "      \"columnar_store\": {{\"min_s\": {:.6}, \"mean_s\": {:.6}}},\n",
            w.columnar.0, w.columnar.1
        ));
        for (key, value) in &w.notes {
            json.push_str(&format!("      \"{key}\": {value},\n"));
        }
        match w.speedup() {
            Some(s) => json.push_str(&format!("      \"speedup\": {s:.2}\n")),
            None => json.push_str("      \"speedup\": null\n"),
        }
        json.push_str(if i == last { "    }\n" } else { "    },\n" });
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).expect("write snapshot");
    println!("{json}");
    for w in &workloads {
        match w.speedup() {
            Some(s) => println!("{}: {:.2}x", w.name, s),
            None => println!("{}: columnar {:.3}s (no hash twin)", w.name, w.columnar.0),
        }
    }
    println!("→ {out_path}");
}
