//! Regenerates **Table V**: the reference-free quality comparison (sim-hc14 by
//! default, which stands in for the GAGE dataset without a reference).
//!
//! Usage:
//! `cargo run -p ppa-bench --release --bin table5_quality -- --dataset sim-hc14 --scale 0.1`

use ppa_baselines::{all_assemblers, BaselineParams};
use ppa_bench::HarnessArgs;
use ppa_quality::report::format_comparison;
use ppa_quality::QuastReport;

fn main() {
    let mut args = HarnessArgs::parse();
    if !std::env::args().any(|a| a == "--dataset") {
        args.dataset = "sim-hc14".to_string();
    }
    let dataset = args.generate_dataset();
    let workers = args.workers.last().copied().unwrap_or(4);
    let min_contig = args
        .extra
        .get("min-contig")
        .and_then(|v| v.parse().ok())
        .unwrap_or(200usize);

    let mut reports = Vec::new();
    for assembler in all_assemblers() {
        eprintln!("running {}...", assembler.name());
        let params = BaselineParams {
            k: args.k,
            min_kmer_coverage: 1,
            workers,
            tip_length_threshold: 80,
            bubble_edit_distance: 5,
        };
        let result = assembler.assemble(&dataset.reads, &params);
        // Table V has no reference: only the reference-free metrics appear.
        reports.push(QuastReport::evaluate(
            assembler.name(),
            &result.contigs,
            None,
            min_contig,
        ));
    }

    println!(
        "\n=== Table V analogue — reference-free quality on {} (contigs ≥ {} bp) ===",
        dataset.preset.name, min_contig
    );
    println!("{}", format_comparison(&reports));
    println!(
        "Expected shape (paper): PPA-assembler achieves the largest N50 and largest contig,\n\
         and is comparable in the other metrics."
    );
}
