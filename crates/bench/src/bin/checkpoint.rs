//! Regenerates `BENCH_checkpoint.json`: the cost of stage-boundary
//! checkpointing on the paper workflow, plus save/load micro-timings.
//!
//! Two workloads:
//!
//! * `assembly_overhead` — the full ①②③(④⑤②③)×r workflow on a simulated
//!   dataset, run once with checkpointing off and once snapshotting the
//!   `GraphState` after *every* flattened stage
//!   (`CheckpointPolicy::EveryStage`, the most aggressive setting). The
//!   difference is the total fault-tolerance tax; the per-stage policy is
//!   expected to stay well under 10% end-to-end.
//! * `save_load_micro` — `checkpoint::save` and `checkpoint::load_latest` on
//!   the heaviest snapshot of that run (the post-construction k-mer graph),
//!   isolating the columnar encode/write and read/validate/decode costs from
//!   the assembly itself.
//!
//! Run from the repository root: `cargo run -p ppa_bench --release --bin
//! checkpoint [--reps N] [--out PATH]`.

use ppa_assembler::checkpoint::{self, CheckpointMeta};
use ppa_assembler::ops::construct::ConstructConfig;
use ppa_assembler::pipeline::{CheckpointPolicy, Construct, GraphState, Pipeline};
use ppa_assembler::AssemblyConfig;
use ppa_bench::{time_runs as time, SnapshotArgs};
use ppa_pregel::ExecCtx;
use ppa_readsim::{GenomeConfig, ReadSimConfig};
use std::hint::black_box;
use std::path::{Path, PathBuf};

const WORKERS: usize = 4;
const GENOME: usize = 60_000;
const K: usize = 21;

fn config(ctx: &ExecCtx) -> AssemblyConfig {
    AssemblyConfig {
        k: K,
        min_kmer_coverage: 1,
        workers: WORKERS,
        error_correction_rounds: 1,
        exec: Some(ctx.clone()),
        ..Default::default()
    }
}

/// Total bytes of every file under one snapshot directory.
fn snapshot_bytes(ckpt: &Path) -> u64 {
    std::fs::read_dir(ckpt)
        .expect("snapshot dir")
        .map(|e| e.expect("dir entry").metadata().expect("metadata").len())
        .sum()
}

fn main() {
    let SnapshotArgs { reps, out_path } = SnapshotArgs::parse("BENCH_checkpoint.json");
    let dir: PathBuf = std::env::temp_dir().join(format!("ppa-bench-ckpt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    eprintln!("simulating {GENOME} bp dataset ({WORKERS} workers, {reps} reps)...");
    let reference = GenomeConfig {
        length: GENOME,
        repeat_families: 4,
        repeat_copies: 2,
        repeat_length: 120,
        seed: 42,
        ..Default::default()
    }
    .generate();
    let reads = ReadSimConfig {
        read_length: 100,
        coverage: 30.0,
        substitution_rate: 0.004,
        indel_rate: 0.0,
        n_rate: 0.0,
        both_strands: true,
        seed: 43,
    }
    .simulate(&reference);
    let ctx = ExecCtx::new(WORKERS);
    let config = config(&ctx);
    let stage_count = Pipeline::<'static>::paper_workflow(&config).stage_count();

    eprintln!("assembly_overhead: checkpointing off vs EveryStage...");
    let off = time(reps, || {
        let mut state = GraphState::new(&reads);
        Pipeline::paper_workflow(&config).run(&mut state, &ctx);
        black_box(state.output.len());
    });
    let every_stage = time(reps, || {
        let mut state = GraphState::new(&reads);
        Pipeline::paper_workflow(&config)
            .checkpoint_to(&dir, CheckpointPolicy::EveryStage)
            .run(&mut state, &ctx);
        black_box(state.output.len());
    });
    let overhead_pct = (every_stage.0 / off.0 - 1.0) * 100.0;

    eprintln!("save_load_micro: snapshotting the post-construction graph...");
    // The heaviest state of the workflow: the full k-mer graph after stage ①.
    let mut construct_only = Pipeline::new().then(Construct::new(ConstructConfig {
        k: K,
        min_coverage: 1,
        batch_size: 1024,
    }));
    let fingerprint = construct_only.fingerprint();
    let mut heavy = GraphState::new(&reads);
    construct_only.run(&mut heavy, &ctx);
    let meta = CheckpointMeta {
        completed_stages: 1,
        rounds: vec![("construct".to_string(), 1)],
        pipeline_fingerprint: fingerprint,
        workers: ctx.workers(),
    };
    let save = time(reps, || {
        black_box(checkpoint::save(&dir, &heavy, &meta).expect("save"));
    });
    let ckpt = checkpoint::latest(&dir).expect("scan").expect("snapshot");
    let bytes = snapshot_bytes(&ckpt);
    let load = time(reps, || {
        let (state, manifest) = checkpoint::load_latest(&dir, &reads).expect("load");
        black_box((state.nodes.len(), manifest.completed_stages));
    });
    let _ = std::fs::remove_dir_all(&dir);

    let mut json = String::from("{\n");
    json.push_str("  \"benchmark\": \"checkpoint\",\n");
    json.push_str(&format!("  \"workers\": {WORKERS},\n"));
    json.push_str(&format!("  \"reps\": {reps},\n"));
    json.push_str(&format!("  \"genome_bp\": {GENOME},\n"));
    json.push_str(&format!("  \"reads\": {},\n", reads.len()));
    json.push_str(&format!("  \"flattened_stages\": {stage_count},\n"));
    json.push_str("  \"assembly_overhead\": {\n");
    json.push_str(
        "    \"description\": \"paper workflow end-to-end; EveryStage snapshots after \
         each of the flattened stages vs no checkpointing\",\n",
    );
    json.push_str(&format!(
        "    \"off\": {{\"min_s\": {:.6}, \"mean_s\": {:.6}}},\n",
        off.0, off.1
    ));
    json.push_str(&format!(
        "    \"every_stage\": {{\"min_s\": {:.6}, \"mean_s\": {:.6}}},\n",
        every_stage.0, every_stage.1
    ));
    json.push_str(&format!("    \"overhead_pct\": {overhead_pct:.2}\n"));
    json.push_str("  },\n");
    json.push_str("  \"save_load_micro\": {\n");
    json.push_str(
        "    \"description\": \"checkpoint::save / checkpoint::load_latest of the \
         post-construction k-mer graph (the workflow's heaviest snapshot)\",\n",
    );
    json.push_str(&format!("    \"snapshot_bytes\": {bytes},\n"));
    json.push_str(&format!(
        "    \"save\": {{\"min_s\": {:.6}, \"mean_s\": {:.6}}},\n",
        save.0, save.1
    ));
    json.push_str(&format!(
        "    \"load\": {{\"min_s\": {:.6}, \"mean_s\": {:.6}}}\n",
        load.0, load.1
    ));
    json.push_str("  }\n}\n");

    std::fs::write(&out_path, &json).expect("write snapshot");
    println!("{json}");
    println!("checkpointing overhead (EveryStage vs off): {overhead_pct:.2}% → {out_path}");
}
