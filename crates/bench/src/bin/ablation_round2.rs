//! Ablation for two claims in Section V of the paper:
//!
//! * "the second round of contig merging is effective: N50 is 1074 after we
//!   merge unambiguous k-mers into contigs, and it improves to 2070 after we
//!   merge contigs after error correction";
//! * "the DBG of the HC-2 dataset has 46.97 M vertices, which is reduced to
//!   1.00 M vertices after merging unambiguous k-mers into contigs, and
//!   further to 68,264 vertices after these contigs are merged after error
//!   correction".
//!
//! Usage: `cargo run -p ppa-bench --release --bin ablation_round2 -- --dataset sim-hc2 --scale 0.1`

use ppa_assembler::pipeline::{GraphState, Pipeline, StageLogger};
use ppa_assembler::stats::WorkflowStats;
use ppa_assembler::AssemblyConfig;
use ppa_bench::{print_table, HarnessArgs};
use ppa_pregel::ExecCtx;

fn main() {
    let args = HarnessArgs::parse();
    let dataset = args.generate_dataset();
    let workers = args.workers.last().copied().unwrap_or(4);
    let config = AssemblyConfig {
        k: args.k,
        min_kmer_coverage: 1,
        workers,
        ..Default::default()
    };
    // Drive the paper-workflow pipeline directly: the StageLogger streams
    // per-stage timings while the run progresses, WorkflowStats feeds the
    // ablation table below.
    let mut stats = WorkflowStats::default();
    let mut progress = StageLogger::with_prefix(dataset.preset.name.clone());
    let mut state = GraphState::new(&dataset.reads);
    Pipeline::paper_workflow(&config)
        .observe(&mut stats)
        .observe(&mut progress)
        .run(&mut state, &ExecCtx::new(workers));
    let stats = &stats;

    print_table(
        &format!(
            "Second-round merging effectiveness on {} (scale {})",
            dataset.preset.name, args.scale
        ),
        &["quantity", "after round-1 merge", "after round-2 merge"],
        &[
            vec![
                "N50".to_string(),
                stats.n50_after_round1.to_string(),
                stats.n50_final.to_string(),
            ],
            vec![
                "graph nodes".to_string(),
                stats.node_counts.after_first_merge.to_string(),
                stats.node_counts.after_final_merge.to_string(),
            ],
        ],
    );
    println!(
        "\nk-mer vertices right after DBG construction: {}",
        stats.node_counts.kmer_vertices
    );
    println!(
        "error correction: {} bubbles pruned, {} tip k-mers and {} tip contigs deleted",
        stats
            .corrections
            .first()
            .map(|c| c.bubbles_pruned)
            .unwrap_or(0),
        stats
            .corrections
            .first()
            .map(|c| c.tip_kmers_deleted)
            .unwrap_or(0),
        stats
            .corrections
            .first()
            .map(|c| c.tip_contigs_deleted)
            .unwrap_or(0),
    );
    println!(
        "Expected shape (paper): N50 roughly doubles after round 2, and the vertex count drops by\n\
         orders of magnitude from k-mer vertices to round-1 nodes to round-2 nodes."
    );
}
