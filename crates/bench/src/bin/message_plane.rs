//! Regenerates `BENCH_message_plane.json`: before/after numbers for the
//! sort-based message plane on the two workloads of the `message_plane`
//! Criterion bench (message-heavy chain labeling, 1M-pair shuffle).
//!
//! Run from the repository root: `cargo run -p ppa_bench --release --bin
//! message_plane [--reps N] [--out PATH]`.

use ppa_bench::legacy::{legacy_chain_ranking, legacy_map_reduce};
use ppa_bench::{time_runs as time, SnapshotArgs};
use ppa_pregel::algorithms::{list_ranking, ListItem};
use ppa_pregel::mapreduce::Emitter;
use ppa_pregel::{map_reduce, PregelConfig};
use std::hint::black_box;

const CHAIN: u64 = 65_536;
const PAIRS: u64 = 1_000_000;
const KEYS: u64 = 500_000;
const WORKERS: usize = 4;

struct Workload {
    name: &'static str,
    description: &'static str,
    legacy: (f64, f64),
    sorted: (f64, f64),
}

impl Workload {
    fn speedup(&self) -> f64 {
        self.legacy.0 / self.sorted.0
    }
}

fn main() {
    let SnapshotArgs { reps, out_path } = SnapshotArgs::parse("BENCH_message_plane.json");

    let config = PregelConfig::with_workers(WORKERS)
        .max_supersteps(10_000)
        .track_supersteps(false);
    let chain_items = || -> Vec<ListItem<u64>> {
        (0..CHAIN)
            .map(|i| ListItem {
                id: i,
                pred: if i == 0 { None } else { Some(i - 1) },
                value: 1,
            })
            .collect()
    };

    eprintln!("labeling_chain (n = {CHAIN}, {WORKERS} workers, {reps} reps)...");
    let labeling = Workload {
        name: "labeling_chain",
        description: "list ranking over a 65,536-element chain (message-heavy labeling)",
        legacy: time(reps, || {
            black_box(legacy_chain_ranking(CHAIN, WORKERS));
        }),
        sorted: time(reps, || {
            black_box(list_ranking(chain_items(), &config).0.len());
        }),
    };

    eprintln!("shuffle_1m ({PAIRS} pairs, {KEYS} keys, {WORKERS} workers, {reps} reps)...");
    let inputs: Vec<u64> = (0..PAIRS).collect();
    let shuffle = Workload {
        name: "shuffle_1m",
        description: "mini-MapReduce over 1M pairs, 500,000 keys (DBG-construction-shaped short value runs), sum reduce",
        legacy: time(reps, || {
            black_box(
                legacy_map_reduce(
                    inputs.clone(),
                    WORKERS,
                    |x: u64| vec![(x % KEYS, 1u64)],
                    |k: &u64, vs: Vec<u64>| vec![(*k, vs.into_iter().sum::<u64>())],
                )
                .len(),
            );
        }),
        sorted: time(reps, || {
            black_box(
                map_reduce(
                    inputs.clone(),
                    WORKERS,
                    |x: u64, out: &mut Emitter<'_, u64, u64>| out.emit(x % KEYS, 1),
                    |k: &u64, vs: &mut [u64], out: &mut Vec<(u64, u64)>| out.push((*k, vs.iter().sum::<u64>())),
                )
                .len(),
            );
        }),
    };

    let mut json = String::from("{\n");
    json.push_str("  \"benchmark\": \"message_plane\",\n");
    json.push_str(&format!("  \"workers\": {WORKERS},\n"));
    json.push_str(&format!("  \"reps\": {reps},\n"));
    json.push_str("  \"workloads\": [\n");
    for (i, w) in [&labeling, &shuffle].into_iter().enumerate() {
        json.push_str("    {\n");
        json.push_str(&format!("      \"name\": \"{}\",\n", w.name));
        json.push_str(&format!("      \"description\": \"{}\",\n", w.description));
        json.push_str(&format!(
            "      \"legacy_hash_plane\": {{\"min_s\": {:.6}, \"mean_s\": {:.6}}},\n",
            w.legacy.0, w.legacy.1
        ));
        json.push_str(&format!(
            "      \"sorted_plane\": {{\"min_s\": {:.6}, \"mean_s\": {:.6}}},\n",
            w.sorted.0, w.sorted.1
        ));
        json.push_str(&format!("      \"speedup\": {:.2}\n", w.speedup()));
        json.push_str(if i == 0 { "    },\n" } else { "    }\n" });
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).expect("write snapshot");
    println!("{json}");
    println!(
        "labeling_chain speedup: {:.2}x, shuffle_1m speedup: {:.2}x → {out_path}",
        labeling.speedup(),
        shuffle.speedup()
    );
}
