//! Regenerates `BENCH_simd.json`: the vectorized data-plane kernels
//! (`ppa_pregel::kernels`, `ppa_seq::kernels`) against their portable scalar
//! twins, plus the two regression shapes PR 7 set out to close.
//!
//! Four per-kernel micro-benches (scalar twin vs runtime-dispatched SIMD):
//!
//! * **histogram** — radix digit histogramming over 1M full-width keys;
//! * **merge_join_probe** — the pass-1 delivery probe: galloping
//!   `lower_bound_u64` of 500k sorted targets into a 1M-ID sorted column;
//! * **bitset_scan** — the pass-2 straggler walk (`next_word_with_zero`)
//!   plus the quiescence `popcount` over a 16M-bit halted set;
//! * **kmer_compare** — packed `DnaString` ordering and canonical-strand
//!   picks, word-parallel vs decoded base-by-base.
//!
//! Then the column codec and the two regressions:
//!
//! * **packed_column_delivery** — the delivery-heavy engine shape on
//!   delta/bit-packed sorted-ID frames vs plain `Vec` columns
//!   (`legacy::with_plain_id_columns`), with the resident-bytes ratio;
//! * **radix_uniform** — uniform full-width keys, pdqsort vs the adaptive
//!   radix plan (the 0.85× regression in `BENCH_radix_sort.json`);
//! * **removal_churn** — point-op churn on the columnar store (now carrying
//!   the hash sidecar) vs `legacy::HashVertexStore` (the 0.56× regression in
//!   `BENCH_vertex_store.json`);
//! * **assemble_e2e** — whole `workflow::assemble`, scalar twins + plain
//!   columns vs the full vectorized configuration.
//!
//! Workloads interleave their baseline and vectorized reps (B T B T …)
//! rather than timing one side after the other, so slow machine-speed drift
//! cannot bias the ratio toward whichever side happened to run last. The one
//! exception is `radix_uniform`, which replays the blocked-reps harness of
//! `BENCH_radix_sort.json` verbatim so its number stays comparable with the
//! 0.85× regression recorded there.
//!
//! Run from the repository root: `cargo run -p ppa_bench --release --bin
//! simd_kernels [--reps N] [--out PATH]`.

use ppa_assembler::workflow::{assemble, AssemblyConfig};
use ppa_bench::legacy::{
    comparison_sort_pairs, with_plain_id_columns, with_scalar_kernels, HashVertexStore,
};
use ppa_bench::{time_runs as time, SnapshotArgs};
use ppa_pregel::{
    kernels, radix, run_from_pairs, Context, NoAggregate, PregelConfig, VertexProgram, VertexSet,
};
use ppa_readsim::preset_by_name;
use ppa_seq::DnaString;
use std::hint::black_box;
use std::time::Instant;

const WORKERS: usize = 4;
const KEYS_N: usize = 1_000_000;
const COLUMN_N: u64 = 1_000_000;
const PROBES_N: usize = 500_000;
const BITSET_WORDS: usize = 250_000; // 16M bits
const DNA_STRINGS: usize = 2_000;
const DNA_LEN: usize = 150;
const DELIVERY_N: u64 = 200_000;
const DELIVERY_ROUNDS: usize = 6;
const DELIVERY_FAN: u64 = 4;
const CHURN_N: u64 = 400_000;

struct Workload {
    name: &'static str,
    description: String,
    baseline_name: &'static str,
    baseline: (f64, f64),
    simd: (f64, f64),
    notes: Vec<(&'static str, String)>,
}

impl Workload {
    fn speedup(&self) -> f64 {
        self.baseline.0 / self.simd.0
    }
}

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// Interleaves baseline and treatment reps (B T B T …) so slow machine-speed
/// drift lands on both sides equally, instead of biasing whichever side ran
/// last. `rep(true)` must run one baseline rep, `rep(false)` one treatment
/// rep; returns `(baseline, treatment)` as `(min_s, mean_s)` pairs.
fn paired(reps: usize, mut rep: impl FnMut(bool)) -> ((f64, f64), (f64, f64)) {
    let reps = reps.max(1);
    let mut baseline = (f64::INFINITY, 0.0);
    let mut treatment = (f64::INFINITY, 0.0);
    for _ in 0..reps {
        for (acc, is_baseline) in [(&mut baseline, true), (&mut treatment, false)] {
            let t = Instant::now();
            rep(is_baseline);
            let dt = t.elapsed().as_secs_f64();
            acc.0 = acc.0.min(dt);
            acc.1 += dt;
        }
    }
    baseline.1 /= reps as f64;
    treatment.1 /= reps as f64;
    (baseline, treatment)
}

/// Times `f` under forced-scalar twins and under normal dispatch on
/// interleaved reps, and wraps the pair into a [`Workload`].
fn kernel_pair(
    name: &'static str,
    description: String,
    reps: usize,
    mut f: impl FnMut(),
) -> Workload {
    eprintln!("{name} ({reps} reps)...");
    let (baseline, simd) = paired(reps, |scalar| {
        if scalar {
            with_scalar_kernels(&mut f);
        } else {
            f();
        }
    });
    Workload {
        name,
        description,
        baseline_name: "scalar",
        baseline,
        simd,
        notes: Vec::new(),
    }
}

// ---------------------------------------------------------------------------
// Per-kernel micros
// ---------------------------------------------------------------------------

fn histogram_workload(reps: usize) -> Workload {
    let mut state = 0x2545_F491_4F6C_DD1Du64;
    let keys: Vec<u64> = (0..KEYS_N).map(|_| xorshift(&mut state)).collect();
    let mut hist = Box::new([[0u32; 256]; 8]);
    kernel_pair(
        "histogram",
        format!("all-8-digit radix histogram accumulation over {KEYS_N} full-width keys"),
        reps,
        move || {
            kernels::histograms8(black_box(&keys), &mut hist);
            black_box(hist[0][0]);
        },
    )
}

fn merge_join_workload(reps: usize) -> Workload {
    // Sorted column of even IDs; probes alternate hits and misses, sorted,
    // walked with a resuming galloping lower bound — exactly pass 1.
    let ids: Vec<u64> = (0..COLUMN_N).map(|i| i * 2).collect();
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut probes: Vec<u64> = (0..PROBES_N)
        .map(|_| xorshift(&mut state) % (COLUMN_N * 2))
        .collect();
    probes.sort_unstable();
    kernel_pair(
        "merge_join_probe",
        format!("{PROBES_N} sorted targets galloping into a {COLUMN_N}-ID sorted column"),
        reps,
        move || {
            let mut lo = 0usize;
            let mut hits = 0usize;
            for &t in &probes {
                lo = kernels::lower_bound_u64(black_box(&ids), lo, t);
                if lo < ids.len() && ids[lo] == t {
                    hits += 1;
                }
            }
            black_box(hits);
        },
    )
}

fn bitset_workload(reps: usize) -> Workload {
    // Mostly-halted bitset: one straggler every 2048 vertices, the
    // scan_sparse shape.
    let mut words = vec![u64::MAX; BITSET_WORDS];
    for w in (0..BITSET_WORDS).step_by(32) {
        words[w] &= !(1u64 << (w % 64));
    }
    kernel_pair(
        "bitset_scan",
        format!(
            "straggler walk (next_word_with_zero) + quiescence popcount over \
             {BITSET_WORDS} words, one active vertex per 2048"
        ),
        reps,
        move || {
            for _ in 0..16 {
                let mut stragglers = 0u64;
                let mut wi = 0usize;
                while let Some(w) = kernels::next_word_with_zero(black_box(&words), wi) {
                    stragglers += (!words[w]).count_ones() as u64;
                    wi = w + 1;
                }
                let halted = kernels::popcount(black_box(&words));
                black_box((stragglers, halted));
            }
        },
    )
}

fn kmer_compare_workload(reps: usize) -> Workload {
    let mut state = 0x0123_4567_89AB_CDEFu64;
    let strings: Vec<DnaString> = (0..DNA_STRINGS)
        .map(|_| {
            let ascii: String = (0..DNA_LEN)
                .map(|_| b"ACGT"[(xorshift(&mut state) % 4) as usize] as char)
                .collect();
            DnaString::from_ascii(&ascii).expect("generated ACGT")
        })
        .collect();
    kernel_pair(
        "kmer_compare",
        format!(
            "{DNA_STRINGS} packed {DNA_LEN}-base strings: pairwise ordering + \
             canonical-strand picks, word-parallel vs decoded"
        ),
        reps,
        move || {
            let mut less = 0usize;
            for pair in strings.windows(2) {
                if pair[0] < pair[1] {
                    less += 1;
                }
            }
            let mut forward = 0usize;
            for s in &strings {
                if &black_box(s).canonical() == s {
                    forward += 1;
                }
            }
            black_box((less, forward));
        },
    )
}

// ---------------------------------------------------------------------------
// Packed vs plain ID columns (delivery-heavy engine shape)
// ---------------------------------------------------------------------------

struct ScatterFold {
    n: u64,
    rounds: usize,
    fan: u64,
}

impl VertexProgram for ScatterFold {
    type Id = u64;
    type Value = u64;
    type Message = u64;
    type Aggregate = NoAggregate;
    fn compute(&self, ctx: &mut Context<'_, Self>, id: u64, value: &mut u64, msgs: &mut [u64]) {
        *value = value.wrapping_add(msgs.iter().sum::<u64>());
        if ctx.superstep() < self.rounds {
            for f in 0..self.fan {
                let target = id
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(f.wrapping_mul(0x0100_0193) + ctx.superstep() as u64)
                    % self.n;
                ctx.send_message(target, id ^ f);
            }
        }
        ctx.vote_to_halt();
    }
}

fn run_delivery() -> u64 {
    let program = ScatterFold {
        n: DELIVERY_N,
        rounds: DELIVERY_ROUNDS,
        fan: DELIVERY_FAN,
    };
    let config = PregelConfig {
        workers: WORKERS,
        ..Default::default()
    };
    let (values, _) = run_from_pairs(&program, &config, (0..DELIVERY_N).map(|i| (i, i)));
    values.iter().fold(0u64, |acc, (_, v)| acc.wrapping_add(*v))
}

fn packed_column_workload(reps: usize) -> Workload {
    eprintln!("packed_column_delivery ({DELIVERY_N} vertices, {reps} reps)...");
    let plain_sum = with_plain_id_columns(run_delivery);
    assert_eq!(plain_sum, run_delivery(), "column codecs disagree");

    let packed_set = VertexSet::from_pairs(WORKERS, (0..DELIVERY_N).map(|i| (i, i)));
    let plain_set =
        with_plain_id_columns(|| VertexSet::from_pairs(WORKERS, (0..DELIVERY_N).map(|i| (i, i))));
    let (packed_bytes, logical) = packed_set.id_column_bytes();
    let (plain_bytes, _) = plain_set.id_column_bytes();
    let notes = vec![
        ("packed_id_bytes", format!("{packed_bytes}")),
        ("plain_id_bytes", format!("{plain_bytes}")),
        (
            "compression_ratio",
            format!("{:.4}", packed_bytes as f64 / logical as f64),
        ),
    ];

    let (baseline, simd) = paired(reps, |plain| {
        if plain {
            black_box(with_plain_id_columns(run_delivery));
        } else {
            black_box(run_delivery());
        }
    });
    Workload {
        name: "packed_column_delivery",
        description: format!(
            "{DELIVERY_N} vertices × {DELIVERY_ROUNDS} supersteps, fan {DELIVERY_FAN}: \
             merge-join delivery over delta/bit-packed ID frames vs plain Vec columns"
        ),
        baseline_name: "plain_columns",
        baseline,
        simd,
        notes,
    }
}

// ---------------------------------------------------------------------------
// Regression shape 1: uniform full-width radix keys
// ---------------------------------------------------------------------------

fn radix_uniform_workload(reps: usize) -> Workload {
    eprintln!("radix_uniform ({KEYS_N} records, {reps} reps)...");
    let mut state = 0x2545_F491_4F6C_DD1Du64;
    let master: Vec<(u64, u64)> = (0..KEYS_N as u64)
        .map(|i| (xorshift(&mut state), i))
        .collect();
    let mut records = master.clone();
    let mut scratch: Vec<(u64, u64)> = Vec::with_capacity(KEYS_N);
    // Deliberately NOT interleaved: this workload exists to close the 0.85×
    // recorded in `BENCH_radix_sort.json`, so it reproduces that bench's
    // harness shape exactly — blocked reps with the input refresh inside the
    // timed region — to stay comparable with the PR 4 baseline number.
    let baseline = time(reps, || {
        records.clone_from(&master);
        comparison_sort_pairs(black_box(&mut records));
    });
    let simd = time(reps, || {
        records.clone_from(&master);
        radix::sort_pairs(black_box(&mut records), &mut scratch);
    });
    Workload {
        name: "radix_uniform",
        description: format!(
            "{KEYS_N} uniform full-width (u64,u64) records: pdqsort vs the adaptive \
             radix plan (wide first digit + envelope-planned passes) — the shape that \
             regressed to 0.85x under the fixed 8x8-bit schedule"
        ),
        baseline_name: "comparison_sort",
        baseline,
        simd,
        notes: Vec::new(),
    }
}

// ---------------------------------------------------------------------------
// Regression shape 2: removal churn (point ops) vs the legacy hash store
// ---------------------------------------------------------------------------

/// The minimal store surface the churn loop needs, implemented by both
/// sides (same shape as the `vertex_store` bench's `ChurnStore`).
trait ChurnStore {
    fn c_insert(&mut self, id: u64, v: u64);
    fn c_remove(&mut self, id: u64) -> Option<u64>;
    fn c_get(&self, id: u64) -> Option<u64>;
    fn c_retain(&mut self, keep: impl Fn(u64, u64) -> bool);
    fn c_sum(&self) -> u64;
}

impl ChurnStore for VertexSet<u64, u64> {
    fn c_insert(&mut self, id: u64, v: u64) {
        self.insert(id, v);
    }
    fn c_remove(&mut self, id: u64) -> Option<u64> {
        self.remove(&id)
    }
    fn c_get(&self, id: u64) -> Option<u64> {
        self.get(&id).copied()
    }
    fn c_retain(&mut self, keep: impl Fn(u64, u64) -> bool) {
        self.retain(|id, v| keep(*id, *v));
    }
    fn c_sum(&self) -> u64 {
        self.iter().fold(0u64, |acc, (_, v)| acc.wrapping_add(*v))
    }
}

impl ChurnStore for HashVertexStore<u64> {
    fn c_insert(&mut self, id: u64, v: u64) {
        self.insert(id, v);
    }
    fn c_remove(&mut self, id: u64) -> Option<u64> {
        self.remove(id)
    }
    fn c_get(&self, id: u64) -> Option<u64> {
        self.get(id).copied()
    }
    fn c_retain(&mut self, keep: impl Fn(u64, u64) -> bool) {
        self.retain(|id, v| keep(id, *v));
    }
    fn c_sum(&self) -> u64 {
        self.iter().fold(0u64, |acc, (_, v)| acc.wrapping_add(*v))
    }
}

/// Batch retains, point removes/reinserts, lookups and full scans — the
/// tip/bubble correction shape; returns a checksum so both stores can be
/// asserted identical.
fn churn<S: ChurnStore>(store: &mut S, n: u64) -> u64 {
    let mut checksum = 0u64;
    let mut state = 0x2545_F491_4F6C_DD1Du64;
    for round in 0..4u64 {
        store.c_retain(move |id, _| (id.wrapping_mul(0x9E37_79B9) >> 13) & 7 != round);
        for _ in 0..5_000 {
            let id = xorshift(&mut state) % n;
            if let Some(v) = store.c_remove(id) {
                checksum = checksum.wrapping_add(v);
            }
            store.c_insert(xorshift(&mut state) % n, round + 1);
        }
        for _ in 0..10_000 {
            let id = xorshift(&mut state) % n;
            if let Some(v) = store.c_get(id) {
                checksum = checksum.wrapping_add(v);
            }
        }
        checksum = checksum.wrapping_add(store.c_sum());
        checksum = checksum.wrapping_add(store.c_sum());
    }
    checksum
}

/// Scattered same-value re-inserts: enough point ops to flip every columnar
/// partition into sidecar mode without changing the stored entries (the hash
/// store ignores them). Both sides get the identical warm-up.
fn warm<S: ChurnStore>(store: &mut S) {
    let mut x = 0x0123_4567_89AB_CDEFu64;
    for _ in 0..1024 {
        let id = xorshift(&mut x) % CHURN_N;
        store.c_insert(id, id);
    }
}

/// One steady-state rep: build + warm untimed, churn timed — the cost of a
/// churn-heavy phase with the one-time store build / sidecar engage reported
/// separately. Returns `(setup_s, churn_s, checksum)`.
fn steady_rep<S: ChurnStore>(build: impl FnOnce() -> S) -> (f64, f64, u64) {
    let t0 = Instant::now();
    let mut s = build();
    warm(&mut s);
    let setup_s = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let checksum = black_box(churn(&mut s, CHURN_N));
    (setup_s, t1.elapsed().as_secs_f64(), checksum)
}

fn removal_churn_workload(reps: usize) -> Workload {
    eprintln!("removal_churn ({CHURN_N} vertices, {reps} reps)...");
    // Interleaved like `paired`, but timing only the churn phase of each rep
    // (build + warm stay untimed, reported as the *_setup_s notes).
    let reps = reps.max(1);
    let mut hash_t = (f64::INFINITY, 0.0);
    let mut col_t = (f64::INFINITY, 0.0);
    let mut hash_setup = 0.0;
    let mut col_setup = 0.0;
    let mut hash_sum = 0;
    let mut col_sum = 0;
    for _ in 0..reps {
        let (setup, dt, sum) = steady_rep(|| {
            let mut s: HashVertexStore<u64> = HashVertexStore::new(WORKERS);
            for i in 0..CHURN_N {
                s.insert(i, i);
            }
            s
        });
        hash_setup = setup;
        hash_sum = sum;
        hash_t.0 = hash_t.0.min(dt);
        hash_t.1 += dt;
        let (setup, dt, sum) =
            steady_rep(|| VertexSet::from_pairs(WORKERS, (0..CHURN_N).map(|i| (i, i))));
        col_setup = setup;
        col_sum = sum;
        col_t.0 = col_t.0.min(dt);
        col_t.1 += dt;
    }
    hash_t.1 /= reps as f64;
    col_t.1 /= reps as f64;
    assert_eq!(col_sum, hash_sum, "removal_churn: stores disagree");
    Workload {
        name: "removal_churn",
        description: format!(
            "{CHURN_N} vertices, steady state: batch retains + 5k point remove/reinsert + \
             10k lookups + full scans per round on a warmed store. The columnar store \
             answers from its hash sidecar (engaged during the untimed warm-up, drained \
             at the next compaction); build + warm-up costs are the *_setup_s notes — \
             this was the 0.56x regression on O(log n) point ops"
        ),
        baseline_name: "hash_store",
        baseline: hash_t,
        simd: col_t,
        notes: vec![
            ("hash_setup_s", format!("{hash_setup:.6}")),
            ("columnar_setup_s", format!("{col_setup:.6}")),
        ],
    }
}

// ---------------------------------------------------------------------------
// End to end
// ---------------------------------------------------------------------------

fn main() {
    let SnapshotArgs { reps, out_path } = SnapshotArgs::parse("BENCH_simd.json");

    // The short workloads take milliseconds per rep, so they run a multiple
    // of the requested reps: on a busy shared host the min-of-N only
    // converges to the quiet-period floor (for both sides of each pair)
    // with a larger N, and the extra reps cost almost nothing.
    let micro_reps = reps * 6;
    let mut workloads = vec![
        histogram_workload(micro_reps),
        merge_join_workload(micro_reps),
        bitset_workload(micro_reps),
        kmer_compare_workload(micro_reps),
        packed_column_workload(reps * 2),
        radix_uniform_workload(reps * 4),
        removal_churn_workload(reps * 4),
    ];

    let dataset = preset_by_name("sim-hc2")
        .expect("sim-hc2 preset exists")
        .scaled(0.5)
        .generate();
    let config = AssemblyConfig {
        k: 25,
        workers: WORKERS,
        ..Default::default()
    };
    eprintln!(
        "assemble_e2e ({} reads, k={}, {WORKERS} workers, {reps} reps)...",
        dataset.reads.len(),
        config.k
    );
    let run = || {
        black_box(assemble(&dataset.reads, &config).contigs.len());
    };
    let (baseline, simd) = paired(reps, |scalar_plain| {
        if scalar_plain {
            with_scalar_kernels(|| with_plain_id_columns(run));
        } else {
            run();
        }
    });
    workloads.push(Workload {
        name: "assemble_e2e",
        description: "whole workflow::assemble on sim-hc2 ×0.5: scalar twins + plain ID \
                      columns vs the full vectorized configuration"
            .to_string(),
        baseline_name: "scalar_plain",
        baseline,
        simd,
        notes: Vec::new(),
    });

    let mut json = String::from("{\n");
    json.push_str("  \"benchmark\": \"simd_kernels\",\n");
    json.push_str(&format!("  \"workers\": {WORKERS},\n"));
    json.push_str(&format!("  \"reps\": {reps},\n"));
    json.push_str("  \"workloads\": [\n");
    let last = workloads.len() - 1;
    for (i, w) in workloads.iter().enumerate() {
        json.push_str("    {\n");
        json.push_str(&format!("      \"name\": \"{}\",\n", w.name));
        json.push_str(&format!("      \"description\": \"{}\",\n", w.description));
        json.push_str(&format!(
            "      \"baseline\": \"{}\",\n      \"{}\": {{\"min_s\": {:.6}, \"mean_s\": {:.6}}},\n",
            w.baseline_name, w.baseline_name, w.baseline.0, w.baseline.1
        ));
        json.push_str(&format!(
            "      \"vectorized\": {{\"min_s\": {:.6}, \"mean_s\": {:.6}}},\n",
            w.simd.0, w.simd.1
        ));
        for (key, value) in &w.notes {
            json.push_str(&format!("      \"{key}\": {value},\n"));
        }
        json.push_str(&format!("      \"speedup\": {:.2}\n", w.speedup()));
        json.push_str(if i == last { "    }\n" } else { "    },\n" });
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).expect("write snapshot");
    println!("{json}");
    for w in &workloads {
        println!("{}: {:.2}x vs {}", w.name, w.speedup(), w.baseline_name);
    }
    println!("→ {out_path}");
}
