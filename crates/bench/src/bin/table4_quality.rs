//! Regenerates **Table IV**: the quality comparison on a dataset that has a
//! reference sequence (sim-hc2 by default), across all assemblers.
//!
//! Usage:
//! `cargo run -p ppa-bench --release --bin table4_quality -- --dataset sim-hc2 --scale 0.1`

use ppa_baselines::{all_assemblers, BaselineParams};
use ppa_bench::HarnessArgs;
use ppa_quality::report::format_comparison;
use ppa_quality::QuastReport;

fn main() {
    let args = HarnessArgs::parse();
    let dataset = args.generate_dataset();
    let workers = args.workers.last().copied().unwrap_or(4);
    let min_contig = args
        .extra
        .get("min-contig")
        .and_then(|v| v.parse().ok())
        .unwrap_or(200usize);

    let mut reports = Vec::new();
    for assembler in all_assemblers() {
        eprintln!("running {}...", assembler.name());
        let params = BaselineParams {
            k: args.k,
            min_kmer_coverage: 1,
            workers,
            tip_length_threshold: 80,
            bubble_edit_distance: 5,
        };
        let result = assembler.assemble(&dataset.reads, &params);
        reports.push(QuastReport::evaluate(
            assembler.name(),
            &result.contigs,
            Some(&dataset.reference.sequence),
            min_contig,
        ));
    }

    println!(
        "\n=== Table IV analogue — quality on {} (reference {} bp, contigs ≥ {} bp) ===",
        dataset.preset.name,
        dataset.reference.len(),
        min_contig
    );
    println!("{}", format_comparison(&reports));
    println!(
        "Expected shape (paper): PPA-assembler has the best or near-best N50, largest contig,\n\
         genome fraction and mismatch rates, with the fewest misassemblies."
    );
}
