//! Regenerates **Table I** (the dataset inventory): number of reads, average
//! read length and reference length for the four simulated dataset analogues.
//!
//! Usage: `cargo run -p ppa-bench --release --bin table1_datasets -- [--scale 0.1]`

use ppa_bench::{print_table, HarnessArgs};
use ppa_readsim::all_presets;

fn main() {
    let args = HarnessArgs::parse();
    let mut rows = Vec::new();
    for preset in all_presets() {
        let preset = preset.scaled(args.scale);
        let dataset = preset.generate();
        rows.push(vec![
            preset.name.clone(),
            preset.paper_dataset.clone(),
            format!("{}", dataset.reads.len()),
            format!("{:.1}", dataset.reads.mean_read_length()),
            format!("{}", dataset.reference.len()),
            if preset.has_reference {
                "yes".into()
            } else {
                "-".into()
            },
            format!("{:.1}x", dataset.realized_coverage()),
        ]);
    }
    print_table(
        &format!("Table I analogue (scale {})", args.scale),
        &[
            "dataset",
            "paper dataset",
            "# reads",
            "avg read len",
            "reference len",
            "reference?",
            "coverage",
        ],
        &rows,
    );
}
