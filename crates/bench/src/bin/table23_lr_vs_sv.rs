//! Regenerates **Table II** (labeling unambiguous k-mers) and **Table III**
//! (labeling contigs): supersteps, messages and runtime of bidirectional list
//! ranking (LR) versus the simplified S-V algorithm, per dataset.
//!
//! Usage:
//! `cargo run -p ppa-bench --release --bin table23_lr_vs_sv -- [--scale 0.1] [--workers 4]`

use ppa_assembler::pipeline::{GraphState, Pipeline, StageLogger};
use ppa_assembler::stats::WorkflowStats;
use ppa_assembler::{AssemblyConfig, LabelingAlgorithm};
use ppa_bench::{print_table, secs, HarnessArgs};
use ppa_pregel::ExecCtx;
use ppa_readsim::all_presets;

fn main() {
    let args = HarnessArgs::parse();
    let workers = args.workers.last().copied().unwrap_or(4);
    let mut kmer_rows = Vec::new();
    let mut contig_rows = Vec::new();

    for preset in all_presets() {
        let preset = preset.scaled(args.scale);
        let dataset = preset.generate();
        eprintln!("running {} ({} reads)...", preset.name, dataset.reads.len());
        let mut per_algo = Vec::new();
        for (name, algo) in [
            ("LR", LabelingAlgorithm::ListRanking),
            ("S-V", LabelingAlgorithm::SimplifiedSV),
        ] {
            let config = AssemblyConfig {
                k: args.k,
                min_kmer_coverage: 1,
                workers,
                labeling: algo,
                ..Default::default()
            };
            // Drive the paper-workflow pipeline directly so the run shows
            // per-stage progress: WorkflowStats for the table rows, a
            // StageLogger for live stage-by-stage output.
            let mut stats = WorkflowStats::default();
            let mut progress = StageLogger::with_prefix(format!("{} {name}", preset.name));
            let mut state = GraphState::new(&dataset.reads);
            Pipeline::paper_workflow(&config)
                .observe(&mut stats)
                .observe(&mut progress)
                .run(&mut state, &ExecCtx::new(workers));
            per_algo.push((name, stats));
        }
        let (lr, sv) = (&per_algo[0].1, &per_algo[1].1);
        kmer_rows.push(vec![
            preset.name.clone(),
            lr.label_round1.supersteps.to_string(),
            sv.label_round1.supersteps.to_string(),
            lr.label_round1.messages.to_string(),
            sv.label_round1.messages.to_string(),
            secs(lr.label_round1.elapsed),
            secs(sv.label_round1.elapsed),
        ]);
        let lr2 = lr.label_round2.first().cloned().unwrap_or_default();
        let sv2 = sv.label_round2.first().cloned().unwrap_or_default();
        contig_rows.push(vec![
            preset.name.clone(),
            lr2.supersteps.to_string(),
            sv2.supersteps.to_string(),
            lr2.messages.to_string(),
            sv2.messages.to_string(),
            secs(lr2.elapsed),
            secs(sv2.elapsed),
        ]);
    }

    let header = [
        "dataset",
        "supersteps LR",
        "supersteps S-V",
        "messages LR",
        "messages S-V",
        "runtime LR (s)",
        "runtime S-V (s)",
    ];
    print_table(
        &format!(
            "Table II analogue — LR vs S-V for labeling unambiguous k-mers (scale {})",
            args.scale
        ),
        &header,
        &kmer_rows,
    );
    print_table(
        &format!(
            "Table III analogue — LR vs S-V for labeling contigs (scale {})",
            args.scale
        ),
        &header,
        &contig_rows,
    );
    println!(
        "\nExpected shape (paper): LR uses fewer supersteps, several-fold fewer messages and is\n\
         faster than S-V in both rounds; the contig round is orders of magnitude cheaper than the\n\
         k-mer round because merging shrank the graph."
    );
}
