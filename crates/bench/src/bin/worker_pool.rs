//! Regenerates `BENCH_worker_pool.json`: scoped-spawn vs. persistent-pool
//! execution on short-superstep workloads.
//!
//! Two workloads:
//!
//! * `short_superstep_chain` — a chain of supersteps with *identical* phase
//!   bodies (scramble + sort + fold over a small per-worker buffer, the shape
//!   of a short compute/shuffle phase), dispatched once through the
//!   pre-engine scoped-spawn path (`ppa_bench::legacy::scoped_run_per_worker`
//!   — one `std::thread::scope` + one spawn/join per worker per phase) and
//!   once through one long-lived `WorkerPool`. This isolates exactly what the
//!   engine PR changed: the per-phase dispatch cost.
//! * `job_chain_ctx_reuse` — twelve consecutive list-ranking Pregel jobs (the
//!   workflow shape: many jobs back to back), run once with a fresh `ExecCtx`
//!   per job (pool spawned per job, cold shuffle planes) and once with one
//!   shared `ExecCtx` (pool spawned once, planes parked in the context
//!   between jobs).
//!
//! Run from the repository root: `cargo run -p ppa_bench --release --bin
//! worker_pool [--reps N] [--out PATH]`.

use ppa_bench::legacy::scoped_run_per_worker;
use ppa_bench::{time_runs as time, SnapshotArgs};
use ppa_pregel::algorithms::{list_ranking, ListItem};
use ppa_pregel::{ExecCtx, PregelConfig, WorkerPool};
use std::hint::black_box;

const WORKERS: usize = 4;
/// Supersteps in the dispatch chain.
const STEPS: usize = 600;
/// Elements per worker buffer (a short superstep's worth of messages).
const BUF: usize = 2_048;
/// Chain length of one list-ranking job in the job-chain workload.
const CHAIN: u64 = 4_096;
/// Consecutive jobs in the job-chain workload.
const JOBS: usize = 12;

/// One phase body: scramble the buffer, re-sort it, fold a checksum — the
/// microseconds-sized unit of work a short compute or shuffle phase performs.
fn phase_body(buf: &mut [u64]) -> u64 {
    for x in buf.iter_mut() {
        *x = x
            .wrapping_mul(0x2545_F491_4F6C_DD1D)
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
    }
    buf.sort_unstable();
    buf.iter().fold(0u64, |acc, &x| acc ^ x)
}

/// Drives `STEPS` supersteps × 2 phases over per-worker buffers through the
/// given dispatcher.
fn superstep_chain(mut dispatch: impl FnMut(&mut Vec<Vec<u64>>) -> u64) -> u64 {
    let mut buffers: Vec<Vec<u64>> = (0..WORKERS)
        .map(|w| (0..BUF as u64).map(|i| i * 7 + w as u64).collect())
        .collect();
    let mut checksum = 0u64;
    for _ in 0..STEPS {
        // compute-like phase + shuffle-like phase, one dispatch each.
        checksum ^= dispatch(&mut buffers);
        checksum ^= dispatch(&mut buffers);
    }
    checksum
}

fn chain_items() -> Vec<ListItem<u64>> {
    (0..CHAIN)
        .map(|i| ListItem {
            id: i,
            pred: if i == 0 { None } else { Some(i - 1) },
            value: 1,
        })
        .collect()
}

/// Runs `JOBS` consecutive list-ranking jobs, each on `make_config()`.
fn job_chain(mut make_config: impl FnMut() -> PregelConfig) -> usize {
    let mut total = 0usize;
    for _ in 0..JOBS {
        let (out, metrics) = list_ranking(chain_items(), &make_config());
        assert!(metrics.converged);
        total += out.len();
    }
    total
}

struct Workload {
    name: &'static str,
    description: &'static str,
    baseline_label: &'static str,
    pooled_label: &'static str,
    baseline: (f64, f64),
    pooled: (f64, f64),
}

impl Workload {
    fn speedup(&self) -> f64 {
        self.baseline.0 / self.pooled.0
    }
}

fn main() {
    let SnapshotArgs { reps, out_path } = SnapshotArgs::parse("BENCH_worker_pool.json");

    eprintln!(
        "short_superstep_chain ({STEPS} supersteps x 2 phases, {BUF} x u64 per worker, \
         {WORKERS} workers, {reps} reps)..."
    );
    let pool = WorkerPool::new(WORKERS);
    let dispatch_chain = Workload {
        name: "short_superstep_chain",
        description: "600 supersteps x 2 phases of identical scramble/sort/fold bodies over \
                      2,048-element per-worker buffers; only the dispatch mechanism differs",
        baseline_label: "legacy_scoped_spawn",
        pooled_label: "worker_pool",
        baseline: time(reps, || {
            black_box(superstep_chain(|buffers| {
                scoped_run_per_worker(buffers.iter_mut().collect(), |_w, buf: &mut Vec<u64>| {
                    phase_body(buf)
                })
                .into_iter()
                .fold(0, u64::wrapping_add)
            }));
        }),
        pooled: time(reps, || {
            black_box(superstep_chain(|buffers| {
                pool.run_per_worker(buffers.iter_mut().collect(), |_w, buf: &mut Vec<u64>| {
                    phase_body(buf)
                })
                .into_iter()
                .fold(0, u64::wrapping_add)
            }));
        }),
    };

    eprintln!("job_chain_ctx_reuse ({JOBS} list-ranking jobs of {CHAIN} elements, {reps} reps)...");
    let base_config = PregelConfig::with_workers(WORKERS)
        .max_supersteps(10_000)
        .track_supersteps(false);
    let shared_ctx = ExecCtx::new(WORKERS);
    let job_reuse = Workload {
        name: "job_chain_ctx_reuse",
        description: "12 consecutive list-ranking Pregel jobs (4,096-element chain); fresh \
                      ExecCtx per job vs one shared ExecCtx (pool + parked shuffle planes)",
        baseline_label: "fresh_ctx_per_job",
        pooled_label: "shared_ctx",
        baseline: time(reps, || {
            black_box(job_chain(|| base_config.clone()));
        }),
        pooled: time(reps, || {
            black_box(job_chain(|| {
                base_config.clone().exec_ctx(shared_ctx.clone())
            }));
        }),
    };

    let mut json = String::from("{\n");
    json.push_str("  \"benchmark\": \"worker_pool\",\n");
    json.push_str(&format!("  \"workers\": {WORKERS},\n"));
    json.push_str(&format!("  \"reps\": {reps},\n"));
    json.push_str("  \"workloads\": [\n");
    let workloads = [&dispatch_chain, &job_reuse];
    for (i, w) in workloads.into_iter().enumerate() {
        json.push_str("    {\n");
        json.push_str(&format!("      \"name\": \"{}\",\n", w.name));
        json.push_str(&format!("      \"description\": \"{}\",\n", w.description));
        json.push_str(&format!(
            "      \"{}\": {{\"min_s\": {:.6}, \"mean_s\": {:.6}}},\n",
            w.baseline_label, w.baseline.0, w.baseline.1
        ));
        json.push_str(&format!(
            "      \"{}\": {{\"min_s\": {:.6}, \"mean_s\": {:.6}}},\n",
            w.pooled_label, w.pooled.0, w.pooled.1
        ));
        json.push_str(&format!("      \"speedup\": {:.2}\n", w.speedup()));
        json.push_str(if i == 0 { "    },\n" } else { "    }\n" });
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).expect("write snapshot");
    println!("{json}");
    println!(
        "short_superstep_chain speedup: {:.2}x, job_chain_ctx_reuse speedup: {:.2}x → {out_path}",
        dispatch_chain.speedup(),
        job_reuse.speedup()
    );
}
