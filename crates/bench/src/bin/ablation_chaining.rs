//! Ablation for the in-memory job-chaining extension (Section II): how much
//! does it cost to push the DBG through a serialised round-trip between the
//! construction job and the labeling job, as vanilla Pregel systems must do
//! via HDFS?
//!
//! Usage: `cargo run -p ppa-bench --release --bin ablation_chaining -- --dataset sim-hc2 --scale 0.1`

use ppa_assembler::ops::construct::{build_dbg, ConstructConfig};
use ppa_assembler::ops::label::label_contigs_lr;
use ppa_bench::{print_table, secs, HarnessArgs};
use ppa_pregel::chain::{spill_roundtrip, SpillCodec};
use std::time::Instant;

/// Spill codec for the compact k-mer vertex: ID plus bitmap plus coverages.
struct SpillVertex {
    id: u64,
    bitmap: u32,
    coverages: Vec<u32>,
}

impl SpillCodec for SpillVertex {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.id.encode(buf);
        self.bitmap.encode(buf);
        (self.coverages.len() as u32).encode(buf);
        for c in &self.coverages {
            c.encode(buf);
        }
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        let id = u64::decode(buf)?;
        let bitmap = u32::decode(buf)?;
        let n = u32::decode(buf)? as usize;
        let mut coverages = Vec::with_capacity(n);
        for _ in 0..n {
            coverages.push(u32::decode(buf)?);
        }
        Some(SpillVertex {
            id,
            bitmap,
            coverages,
        })
    }
}

fn main() {
    let args = HarnessArgs::parse();
    let dataset = args.generate_dataset();
    let workers = args.workers.last().copied().unwrap_or(4);
    let construct = build_dbg(
        &dataset.reads,
        &ConstructConfig {
            k: args.k,
            min_coverage: 1,
            batch_size: 1024,
        },
        workers,
    );

    // In-memory hand-off (the PPA-assembler extension).
    let start = Instant::now();
    let nodes = construct.to_nodes();
    let in_memory_convert = start.elapsed();
    let label_start = Instant::now();
    let _ = label_contigs_lr(&nodes, workers);
    let label_elapsed = label_start.elapsed();

    // Emulated HDFS round-trip: serialise the vertices, parse them back, then
    // convert. `SpillToDisk` additionally writes the bytes to a temp file.
    let mut rows = Vec::new();
    rows.push(vec![
        "in-memory convert (paper's extension)".into(),
        secs(in_memory_convert),
        "-".into(),
    ]);
    for (label, to_disk) in [("spill to bytes", false), ("spill to temp file", true)] {
        let spill_items: Vec<SpillVertex> = construct
            .vertices
            .iter()
            .map(|v| SpillVertex {
                id: v.id(),
                bitmap: v.adj.bitmap(),
                coverages: v.adj.iter().map(|(_, c)| c).collect(),
            })
            .collect();
        let start = Instant::now();
        let (back, stats) =
            spill_roundtrip(spill_items, to_disk).expect("spill round-trip must succeed");
        let roundtrip = start.elapsed();
        assert_eq!(back.len(), construct.vertices.len());
        rows.push(vec![
            format!("{label} ({} records, {} bytes)", stats.records, stats.bytes),
            secs(roundtrip + in_memory_convert),
            secs(roundtrip),
        ]);
    }
    print_table(
        &format!(
            "Job-chaining ablation on {} ({} k-mer vertices); labeling itself takes {}s",
            dataset.preset.name,
            construct.vertices.len(),
            secs(label_elapsed)
        ),
        &[
            "hand-off mode",
            "total hand-off time (s)",
            "round-trip overhead (s)",
        ],
        &rows,
    );
    println!(
        "\nExpected shape: the serialised round-trip adds overhead proportional to the DBG size,\n\
         which the in-memory convert() extension avoids entirely."
    );
}
