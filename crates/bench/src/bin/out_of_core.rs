//! Regenerates `BENCH_out_of_core.json`: bounded-memory execution of the
//! paper workflow under [`SpillPolicy`] caps.
//!
//! One workload, three memory regimes on the `sim-xl` stress preset:
//!
//! * `resident` — `SpillPolicy::Off`, the PR 9 behaviour. Its measured peak
//!   vertex-store footprint (`peak_store_resident_bytes`) calibrates the caps.
//! * `cap = peak/4` and `cap = peak/8` — `SpillPolicy::At(bytes)`: shuffle
//!   outbox runs and sealed vertex-store columns spill to sorted on-disk run
//!   files once the job exceeds the cap, and are merged / faulted back on
//!   delivery. Every capped run must produce contigs byte-identical to the
//!   resident run; the snapshot records the honest wall-clock overhead, the
//!   spill traffic (bytes written / read back / artefact count) and the
//!   measured resident peak under each cap.
//!
//! Run from the repository root: `cargo run -p ppa_bench --release --bin
//! out_of_core [--reps N] [--scale F] [--out PATH]`. `--scale` shrinks the
//! reference (default 1.0 = the full 2 Mbp preset); CI smoke-runs
//! `--scale 0.02 --reps 1`.

use ppa_assembler::stats::WorkflowStats;
use ppa_assembler::{assemble, Assembly, AssemblyConfig};
use ppa_pregel::{ExecCtx, SpillPolicy};
use ppa_readsim::presets::sim_xl;
use std::time::Instant;

const WORKERS: usize = 4;
const K: usize = 21;

/// Cap divisors swept against the measured resident peak.
const CAP_DIVISORS: &[u64] = &[4, 8];

struct Args {
    reps: usize,
    scale: f64,
    out_path: String,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        reps: 2,
        scale: 1.0,
        out_path: "BENCH_out_of_core.json".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--reps" => parsed.reps = args.next().and_then(|v| v.parse().ok()).expect("--reps N"),
            "--scale" => {
                parsed.scale = args.next().and_then(|v| v.parse().ok()).expect("--scale F")
            }
            "--out" => parsed.out_path = args.next().expect("--out PATH"),
            other => panic!("unknown flag {other}"),
        }
    }
    parsed
}

fn config(ctx: &ExecCtx, spill: SpillPolicy) -> AssemblyConfig {
    AssemblyConfig {
        k: K,
        min_kmer_coverage: 1,
        workers: WORKERS,
        error_correction_rounds: 1,
        spill,
        exec: Some(ctx.clone()),
        ..Default::default()
    }
}

/// Byte-level fingerprint: contig IDs, coverages and full sequences.
fn fingerprint(assembly: &Assembly) -> Vec<(u64, u32, String)> {
    assembly
        .contigs
        .iter()
        .map(|c| (c.id, c.coverage, c.sequence.to_ascii()))
        .collect()
}

/// Peak vertex-store footprint across every Pregel job in the workflow.
fn peak_store_bytes(stats: &WorkflowStats) -> u64 {
    let label_peaks = std::iter::once(&stats.label_round1)
        .chain(stats.label_round2.iter())
        .map(|l| l.peak_store_resident_bytes);
    let tip_peaks = stats
        .corrections
        .iter()
        .map(|c| c.tip_metrics.peak_store_resident_bytes);
    label_peaks.chain(tip_peaks).max().unwrap_or(0)
}

/// Total spill traffic across every stage: (written, read back, artefacts).
fn spill_totals(stats: &WorkflowStats) -> (u64, u64, u64) {
    let mut written = stats.construct.phase1.spilled_bytes + stats.construct.phase2.spilled_bytes;
    let mut read =
        stats.construct.phase1.spill_read_bytes + stats.construct.phase2.spill_read_bytes;
    let mut runs = stats.construct.phase1.spilled_runs + stats.construct.phase2.spilled_runs;
    for l in std::iter::once(&stats.label_round1).chain(stats.label_round2.iter()) {
        written += l.spilled_bytes;
        read += l.spill_read_bytes;
        runs += l.spilled_runs;
    }
    for m in std::iter::once(&stats.merge_round1).chain(stats.merge_round2.iter()) {
        written += m.mapreduce.spilled_bytes;
        read += m.mapreduce.spill_read_bytes;
        runs += m.mapreduce.spilled_runs;
    }
    for c in &stats.corrections {
        written += c.tip_metrics.spilled_bytes;
        read += c.tip_metrics.spill_read_bytes;
        runs += c.tip_metrics.spilled_runs;
    }
    (written, read, runs)
}

struct Regime {
    label: String,
    cap: Option<u64>,
    times: Vec<f64>,
    peak: u64,
    spilled: (u64, u64, u64),
}

fn main() {
    let Args {
        reps,
        scale,
        out_path,
    } = parse_args();
    let ctx = ExecCtx::new(WORKERS);

    let preset = sim_xl().scaled(scale);
    eprintln!(
        "generating {} at scale {scale} ({} bp, {:.0}x coverage)...",
        preset.name, preset.genome.length, preset.reads.coverage
    );
    let dataset = preset.generate();
    let reads = &dataset.reads;
    eprintln!(
        "{} reads / {} bases ({WORKERS} workers, k={K}, {reps} reps)",
        reads.len(),
        reads.total_bases()
    );

    // Calibration run: the resident peak sets the caps. Also the reference
    // fingerprint every capped run must reproduce byte for byte.
    eprintln!("calibrating: SpillPolicy::Off...");
    let baseline = assemble(reads, &config(&ctx, SpillPolicy::Off));
    let reference = fingerprint(&baseline);
    let resident_peak = peak_store_bytes(&baseline.stats);
    assert_eq!(
        spill_totals(&baseline.stats),
        (0, 0, 0),
        "SpillPolicy::Off must not touch disk"
    );
    eprintln!(
        "resident peak store footprint: {resident_peak} bytes, {} contigs, N50 {}",
        baseline.contigs.len(),
        baseline.stats.n50_final
    );

    let mut regimes: Vec<Regime> = std::iter::once(Regime {
        label: "resident".into(),
        cap: None,
        times: Vec::new(),
        peak: resident_peak,
        spilled: (0, 0, 0),
    })
    .chain(CAP_DIVISORS.iter().map(|d| Regime {
        label: format!("cap = peak/{d}"),
        cap: Some((resident_peak / d).max(1)),
        times: Vec::new(),
        peak: 0,
        spilled: (0, 0, 0),
    }))
    .collect();

    // Interleave the regimes rep by rep so machine drift hits all of them
    // equally; every run (warm-up included) must stay byte-identical.
    for rep in 0..=reps {
        for regime in regimes.iter_mut() {
            let policy = match regime.cap {
                None => SpillPolicy::Off,
                Some(bytes) => SpillPolicy::At(bytes),
            };
            let start = Instant::now();
            let run = assemble(reads, &config(&ctx, policy));
            let elapsed = start.elapsed().as_secs_f64();
            assert_eq!(
                fingerprint(&run),
                reference,
                "{}: contigs must be byte-identical to the resident run",
                regime.label
            );
            if let Some(cap) = regime.cap {
                let (written, _, _) = spill_totals(&run.stats);
                assert!(
                    written > 0,
                    "{}: a cap {cap} bytes below the resident peak must spill",
                    regime.label
                );
            }
            if rep > 0 {
                regime.times.push(elapsed);
            } else {
                // Keep the warm-up run's counters (identical across reps:
                // the workflow is deterministic).
                regime.peak = peak_store_bytes(&run.stats);
                regime.spilled = spill_totals(&run.stats);
            }
        }
        if rep == 0 {
            eprintln!("warm-up done; timing {reps} reps...");
        }
    }

    let min_mean = |times: &[f64]| {
        (
            times.iter().copied().fold(f64::INFINITY, f64::min),
            times.iter().sum::<f64>() / times.len().max(1) as f64,
        )
    };
    let resident_min = min_mean(&regimes[0].times).0;

    let mut json = String::from("{\n");
    json.push_str("  \"benchmark\": \"out_of_core\",\n");
    json.push_str(&format!("  \"dataset\": \"{}\",\n", preset.name));
    json.push_str(&format!("  \"scale\": {scale},\n"));
    json.push_str(&format!("  \"genome_bp\": {},\n", preset.genome.length));
    json.push_str(&format!("  \"reads\": {},\n", reads.len()));
    json.push_str(&format!("  \"bases\": {},\n", reads.total_bases()));
    json.push_str(&format!("  \"workers\": {WORKERS},\n"));
    json.push_str(&format!("  \"k\": {K},\n"));
    json.push_str(&format!("  \"reps\": {reps},\n"));
    json.push_str(&format!("  \"contigs\": {},\n", baseline.contigs.len()));
    json.push_str(&format!("  \"n50\": {},\n", baseline.stats.n50_final));
    json.push_str(&format!(
        "  \"resident_peak_store_bytes\": {resident_peak},\n"
    ));
    json.push_str(
        "  \"description\": \"paper workflow end-to-end under SpillPolicy caps; \
         every capped run is asserted byte-identical to the resident run\",\n",
    );
    json.push_str("  \"regimes\": [");
    for (i, regime) in regimes.iter().enumerate() {
        let (min, mean) = min_mean(&regime.times);
        let overhead_pct = (min / resident_min - 1.0) * 100.0;
        let (written, read, runs) = regime.spilled;
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "\n    {{\"label\": \"{}\", \"cap_bytes\": {}, \
             \"min_s\": {min:.6}, \"mean_s\": {mean:.6}, \
             \"overhead_pct\": {overhead_pct:.2}, \
             \"peak_store_resident_bytes\": {}, \
             \"spilled_bytes\": {written}, \"spill_read_bytes\": {read}, \
             \"spilled_runs\": {runs}, \"byte_identical\": true}}",
            regime.label,
            regime.cap.map_or("null".to_string(), |c| c.to_string()),
            regime.peak,
        ));
        eprintln!(
            "{}: min {min:.3}s (+{overhead_pct:.1}%), peak store {} bytes, \
             spilled {written} / read back {read} in {runs} artefacts",
            regime.label, regime.peak
        );
    }
    json.push_str("\n  ]\n}\n");

    std::fs::write(&out_path, &json).expect("write snapshot");
    println!("{json}");
    println!("out-of-core snapshot → {out_path}");
}
