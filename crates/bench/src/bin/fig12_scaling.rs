//! Regenerates **Figure 12**: end-to-end assembly time of every assembler as
//! the number of workers varies.
//!
//! Usage:
//! `cargo run -p ppa-bench --release --bin fig12_scaling -- --dataset sim-hc14 --scale 0.1 --workers 1,2,4,8`

use ppa_baselines::{all_assemblers, BaselineParams};
use ppa_bench::{print_table, secs, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse();
    let dataset = args.generate_dataset();
    eprintln!(
        "dataset {}: {} reads, reference {} bp",
        dataset.preset.name,
        dataset.reads.len(),
        dataset.reference.len()
    );

    let assemblers = all_assemblers();
    let mut rows = Vec::new();
    for &workers in &args.workers {
        let mut row = vec![workers.to_string()];
        for assembler in &assemblers {
            let params = BaselineParams {
                k: args.k,
                min_kmer_coverage: 1,
                workers,
                tip_length_threshold: 80,
                bubble_edit_distance: 5,
            };
            let result = assembler.assemble(&dataset.reads, &params);
            eprintln!(
                "  workers={workers:<2} {:<14} {}s  (contigs: {}, largest: {})",
                assembler.name(),
                secs(result.elapsed),
                result.contigs.len(),
                result.largest_contig()
            );
            row.push(secs(result.elapsed));
        }
        rows.push(row);
    }

    let mut header: Vec<&str> = vec!["# workers"];
    let names: Vec<&'static str> = assemblers.iter().map(|a| a.name()).collect();
    header.extend(names.iter().copied());
    print_table(
        &format!(
            "Figure 12 analogue — execution time (s) on {} (scale {})",
            dataset.preset.name, args.scale
        ),
        &header,
        &rows,
    );
    println!(
        "\nExpected shape (paper): PPA-assembler fastest at every worker count; Ray slowest;\n\
         PPA/SWAP/Ray improve with more workers, ABySS benefits least."
    );
}
