//! The **pre-refactor** execution strategies, preserved verbatim-in-spirit
//! for the `message_plane`, `worker_pool`, `radix_sort` and `vertex_store`
//! benchmarks.
//!
//! Four generations of replaced machinery live here:
//!
//! * the hash-grouping **message plane** (PR 1 replaced it with the
//!   sort-based plane): the runner delivered messages by building a
//!   `FxHashMap<Id, Vec<Message>>` per worker per superstep (one heap `Vec`
//!   per receiving vertex) and handed every vertex an owned `Vec<Message>`;
//!   the mini-MapReduce reduce phase did the same per-key `Vec` dance
//!   followed by a separate sort of the grouped entries;
//! * the **scoped-spawn dispatch** ([`scoped_run_per_worker`]; the engine PR
//!   replaced it with the persistent `ppa_pregel::engine::WorkerPool`): every
//!   compute/shuffle/map/reduce phase created a fresh `std::thread::scope`
//!   and spawned one thread per worker, paying a spawn + join per worker per
//!   phase;
//! * the **comparison-sort presort plane** (the radix PR replaced it with the
//!   stable LSD radix sort of `ppa_pregel::radix`): every shuffle presort ran
//!   pdqsort/merge sort over the packed keys. [`with_comparison_plane`]
//!   forces the production shuffles back onto a stable comparison sort, and
//!   [`comparison_sort_pairs`] exposes the raw pdqsort baseline for the
//!   `radix_sort` microbench;
//! * the **hash-partitioned vertex store** (the columnar-store PR replaced it
//!   with sorted struct-of-arrays columns in `ppa_pregel::vertex_set`): each
//!   worker's vertices lived in an `FxHashMap<Id, Entry>`, so delivery paid
//!   one hash probe per message run and the straggler scan walked the whole
//!   bucket array every superstep. [`run_hash_store`] preserves that delivery
//!   loop — on the *production* pool and radix message plane, so the store is
//!   the only difference — and [`HashVertexStore`] preserves the store-API
//!   level for the removal-churn workload.
//!
//! Keeping them alive — allocation and probe behaviour intact — lets the
//! benchmarks and the `BENCH_*.json` snapshots compare production code
//! against the exact baselines it replaced, inside one binary.
//!
//! Nothing outside the benchmarks should use this module.

use ppa_pregel::fxhash::{hash_one, FxHashMap};
use ppa_pregel::{ExecCtx, VertexKey};
use std::hash::Hash;

/// Runs `f` with every `ppa_pregel::radix` presort forced onto the stable
/// comparison-sort fallback — the pre-radix plane, measurable end to end
/// inside one binary. Not reentrant and process-global: bench use only.
pub fn with_comparison_plane<R>(f: impl FnOnce() -> R) -> R {
    ppa_pregel::radix::force_comparison_plane(true);
    let result = f();
    ppa_pregel::radix::force_comparison_plane(false);
    result
}

/// Runs `f` with every SIMD/word-parallel kernel in the workspace forced
/// onto its portable scalar twin — `ppa_pregel::kernels` (histograms, merge
/// joins, bitset scans, bit-packing) *and* `ppa_seq::kernels` (packed
/// `DnaString` comparison, reverse complement, splicing) together, since the
/// two crates share only the toggle convention, not code. Not reentrant and
/// process-global: bench use only.
pub fn with_scalar_kernels<R>(f: impl FnOnce() -> R) -> R {
    ppa_pregel::kernels::force_scalar_kernels(true);
    ppa_seq::kernels::force_scalar_kernels(true);
    let result = f();
    ppa_seq::kernels::force_scalar_kernels(false);
    ppa_pregel::kernels::force_scalar_kernels(false);
    result
}

/// Runs `f` with `ppa_pregel`'s sorted-ID columns forced to stay **plain**
/// (`Vec<Id>`) instead of delta + bit-packed frames. Construction-time: only
/// vertex sets *built inside* `f` are affected. Not reentrant and
/// process-global: bench use only.
pub fn with_plain_id_columns<R>(f: impl FnOnce() -> R) -> R {
    ppa_pregel::kernels::force_plain_id_columns(true);
    let result = f();
    ppa_pregel::kernels::force_plain_id_columns(false);
    result
}

/// The raw pdqsort baseline the radix presort replaced: an unstable
/// comparison sort by key, as `runner.rs`/`mapreduce.rs` ran before the
/// radix plane.
pub fn comparison_sort_pairs<K: Ord + Copy, V>(records: &mut [(K, V)]) {
    records.sort_unstable_by_key(|r| r.0);
}

/// The pre-engine phase dispatch: runs `f(worker, input)` for every input on
/// a **freshly scoped-and-spawned** thread team and returns the results in
/// worker order — exactly what the runner, the mini MapReduce and
/// `VertexSet::convert` did once per phase before the persistent
/// `WorkerPool` landed. The `worker_pool` benchmark drives the same job
/// bodies through this and through the pool to isolate the dispatch cost.
pub fn scoped_run_per_worker<T, R, F>(inputs: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let mut results: Vec<R> = Vec::with_capacity(inputs.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = inputs
            .into_iter()
            .enumerate()
            .map(|(w, input)| {
                let f = &f;
                scope.spawn(move || f(w, input))
            })
            .collect();
        for h in handles {
            results.push(h.join().expect("scoped worker panicked"));
        }
    });
    results
}

/// The pre-refactor vertex-program interface: messages arrive as an owned
/// `Vec` allocated by the shuffle.
pub trait LegacyVertexProgram: Sync {
    /// Vertex identifier type.
    type Id: VertexKey;
    /// Per-vertex state.
    type Value: Send;
    /// Message type.
    type Message: Send;

    /// Whether messages to the same vertex are merged with
    /// [`combine`](LegacyVertexProgram::combine) during the shuffle
    /// (receiver-side only, as the old runner did).
    const USE_COMBINER: bool = false;

    /// The per-vertex computation.
    fn compute(
        &self,
        ctx: &mut LegacyContext<'_, Self>,
        id: Self::Id,
        value: &mut Self::Value,
        messages: Vec<Self::Message>,
    );

    /// Merges `incoming` into `acc` (combiner programs only).
    fn combine(&self, _acc: &mut Self::Message, _incoming: Self::Message) {
        unreachable!("combine() called but USE_COMBINER is false");
    }
}

/// Execution context handed to [`LegacyVertexProgram::compute`].
pub struct LegacyContext<'a, P: LegacyVertexProgram + ?Sized> {
    superstep: usize,
    num_workers: usize,
    outbox: &'a mut [Vec<(P::Id, P::Message)>],
    messages_sent: &'a mut u64,
    halt: bool,
}

impl<P: LegacyVertexProgram + ?Sized> LegacyContext<'_, P> {
    /// The current superstep number (0-based).
    #[inline]
    pub fn superstep(&self) -> usize {
        self.superstep
    }

    /// Sends a message to vertex `to`, delivered next superstep.
    #[inline]
    pub fn send_message(&mut self, to: P::Id, message: P::Message) {
        let dst = (hash_one(&to) % self.num_workers as u64) as usize;
        self.outbox[dst].push((to, message));
        *self.messages_sent += 1;
    }

    /// Votes to halt until a message arrives.
    #[inline]
    pub fn vote_to_halt(&mut self) {
        self.halt = true;
    }
}

/// One message buffer per destination worker.
type LegacyOutbox<P> = Vec<
    Vec<(
        <P as LegacyVertexProgram>::Id,
        <P as LegacyVertexProgram>::Message,
    )>,
>;

/// Final `(vertex, value)` pairs of a legacy run.
pub type LegacyPairs<P> = Vec<(
    <P as LegacyVertexProgram>::Id,
    <P as LegacyVertexProgram>::Value,
)>;

struct LegacyEntry<V> {
    value: V,
    halted: bool,
}

/// Job totals of a legacy run, for sanity-checking against the new plane.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LegacyMetrics {
    /// Supersteps executed.
    pub supersteps: usize,
    /// Logical messages sent.
    pub total_messages: u64,
}

/// The pre-refactor superstep loop: per-destination `Vec<Vec<_>>` outboxes
/// allocated fresh every superstep, and a `FxHashMap<Id, Vec<Message>>` inbox
/// built per worker per superstep.
pub fn run_legacy<P: LegacyVertexProgram>(
    program: &P,
    workers: usize,
    pairs: impl IntoIterator<Item = (P::Id, P::Value)>,
    max_supersteps: usize,
) -> (LegacyPairs<P>, LegacyMetrics) {
    let workers = workers.max(1);
    let mut parts: Vec<FxHashMap<P::Id, LegacyEntry<P::Value>>> =
        (0..workers).map(|_| FxHashMap::default()).collect();
    for (id, value) in pairs {
        let w = (hash_one(&id) % workers as u64) as usize;
        parts[w].insert(
            id,
            LegacyEntry {
                value,
                halted: false,
            },
        );
    }

    let mut inboxes: Vec<FxHashMap<P::Id, Vec<P::Message>>> =
        (0..workers).map(|_| FxHashMap::default()).collect();
    let mut metrics = LegacyMetrics::default();

    for superstep in 0..max_supersteps {
        // ---- compute phase (fresh outbox Vecs every superstep) -------------
        let mut results: Vec<(LegacyOutbox<P>, u64, bool)> = Vec::with_capacity(workers);
        {
            let worker_inputs: Vec<_> = parts
                .iter_mut()
                .zip(inboxes.iter_mut().map(std::mem::take))
                .collect();
            std::thread::scope(|scope| {
                let handles: Vec<_> = worker_inputs
                    .into_iter()
                    .map(|(part, mut inbox)| {
                        scope.spawn(move || {
                            let mut outbox: Vec<Vec<(P::Id, P::Message)>> =
                                (0..workers).map(|_| Vec::new()).collect();
                            let mut messages_sent = 0u64;
                            for (id, entry) in part.iter_mut() {
                                let msgs = inbox.remove(id).unwrap_or_default();
                                if entry.halted && msgs.is_empty() {
                                    continue;
                                }
                                entry.halted = false;
                                let mut ctx: LegacyContext<'_, P> = LegacyContext {
                                    superstep,
                                    num_workers: workers,
                                    outbox: &mut outbox,
                                    messages_sent: &mut messages_sent,
                                    halt: false,
                                };
                                program.compute(&mut ctx, *id, &mut entry.value, msgs);
                                entry.halted = ctx.halt;
                            }
                            let all_halted = part.values().all(|e| e.halted);
                            (outbox, messages_sent, all_halted)
                        })
                    })
                    .collect();
                for h in handles {
                    results.push(h.join().expect("legacy worker panicked"));
                }
            });
        }

        let mut messages_this_step = 0u64;
        let mut all_halted = true;
        for (_, sent, halted) in &results {
            messages_this_step += sent;
            all_halted &= halted;
        }

        // ---- shuffle phase (hash-grouping into per-vertex Vecs) ------------
        let mut incoming: Vec<LegacyOutbox<P>> =
            (0..workers).map(|_| Vec::with_capacity(workers)).collect();
        for (outbox, _, _) in results {
            for (dst, buf) in outbox.into_iter().enumerate() {
                incoming[dst].push(buf);
            }
        }
        inboxes.clear();
        std::thread::scope(|scope| {
            let handles: Vec<_> = incoming
                .into_iter()
                .map(|bufs| {
                    scope.spawn(move || {
                        let mut inbox: FxHashMap<P::Id, Vec<P::Message>> = FxHashMap::default();
                        for buf in bufs {
                            for (id, msg) in buf {
                                let slot = inbox.entry(id).or_default();
                                if P::USE_COMBINER && !slot.is_empty() {
                                    let acc = slot.last_mut().expect("non-empty");
                                    program.combine(acc, msg);
                                } else {
                                    slot.push(msg);
                                }
                            }
                        }
                        inbox
                    })
                })
                .collect();
            for h in handles {
                inboxes.push(h.join().expect("legacy shuffle worker panicked"));
            }
        });

        metrics.supersteps += 1;
        metrics.total_messages += messages_this_step;
        if messages_this_step == 0 && all_halted {
            break;
        }
    }

    let out = parts
        .into_iter()
        .flat_map(|p| p.into_iter().map(|(id, e)| (id, e.value)))
        .collect();
    (out, metrics)
}

/// The pre-refactor mini-MapReduce: reduce groups values into a
/// `FxHashMap<K, Vec<V>>`, then sorts the grouped entries for determinism —
/// one `Vec` per key plus a second ordering pass, exactly what the sort-based
/// grouping replaced.
pub fn legacy_map_reduce<I, K, V, O, MF, RF>(
    inputs: Vec<I>,
    workers: usize,
    map_fn: MF,
    reduce_fn: RF,
) -> Vec<O>
where
    I: Send,
    K: Hash + Eq + Ord + Send,
    V: Send,
    O: Send,
    MF: Fn(I) -> Vec<(K, V)> + Sync,
    RF: Fn(&K, Vec<V>) -> Vec<O> + Sync,
{
    let workers = workers.max(1);
    let chunk_size = inputs.len().div_ceil(workers).max(1);
    let mut chunks: Vec<Vec<I>> = Vec::with_capacity(workers);
    {
        let mut it = inputs.into_iter();
        for _ in 0..workers {
            chunks.push(it.by_ref().take(chunk_size).collect());
        }
    }
    let mut shuffled: Vec<Vec<Vec<(K, V)>>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                let map_fn = &map_fn;
                scope.spawn(move || {
                    let mut out: Vec<Vec<(K, V)>> = (0..workers).map(|_| Vec::new()).collect();
                    for item in chunk {
                        for (k, v) in map_fn(item) {
                            let dst = (hash_one(&k) % workers as u64) as usize;
                            out[dst].push((k, v));
                        }
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            shuffled.push(h.join().expect("legacy map worker panicked"));
        }
    });

    let mut incoming: Vec<Vec<Vec<(K, V)>>> = (0..workers).map(|_| Vec::new()).collect();
    for src in shuffled {
        for (dst, buf) in src.into_iter().enumerate() {
            incoming[dst].push(buf);
        }
    }

    let mut outputs: Vec<Vec<O>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = incoming
            .into_iter()
            .map(|bufs| {
                let reduce_fn = &reduce_fn;
                scope.spawn(move || {
                    let mut grouped: FxHashMap<K, Vec<V>> = FxHashMap::default();
                    for buf in bufs {
                        for (k, v) in buf {
                            grouped.entry(k).or_default().push(v);
                        }
                    }
                    let mut entries: Vec<(K, Vec<V>)> = grouped.into_iter().collect();
                    entries.sort_by(|a, b| a.0.cmp(&b.0));
                    let mut out = Vec::new();
                    for (k, vs) in entries {
                        out.extend(reduce_fn(&k, vs));
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            outputs.push(h.join().expect("legacy reduce worker panicked"));
        }
    });
    outputs.into_iter().flatten().collect()
}

/// The pre-refactor list-ranking program (the paper's Figure 1 BPPA), on the
/// legacy plane — the "message-heavy labeling on a synthetic chain" workload.
pub struct LegacyListRanking;

/// Per-element state of [`LegacyListRanking`].
#[derive(Debug, Clone)]
pub struct LegacyRankState {
    /// Predecessor element, `None` at the list head.
    pub pred: Option<u64>,
    /// Running sum from the head.
    pub sum: u64,
}

/// Messages of [`LegacyListRanking`].
#[derive(Debug, Clone)]
pub enum LegacyRankMsg {
    /// "Send me your sum and predecessor" — carries the requester's ID.
    Request(u64),
    /// The predecessor's reply.
    Response {
        /// The responder's running sum.
        sum: u64,
        /// The responder's predecessor.
        pred: Option<u64>,
    },
}

impl LegacyVertexProgram for LegacyListRanking {
    type Id = u64;
    type Value = LegacyRankState;
    type Message = LegacyRankMsg;

    fn compute(
        &self,
        ctx: &mut LegacyContext<'_, Self>,
        id: u64,
        value: &mut LegacyRankState,
        messages: Vec<LegacyRankMsg>,
    ) {
        let mut requesters: Vec<u64> = Vec::new();
        for msg in messages {
            match msg {
                LegacyRankMsg::Request(from) => requesters.push(from),
                LegacyRankMsg::Response { sum, pred } => {
                    value.sum += sum;
                    value.pred = pred;
                }
            }
        }
        for from in requesters {
            ctx.send_message(
                from,
                LegacyRankMsg::Response {
                    sum: value.sum,
                    pred: value.pred,
                },
            );
        }
        if ctx.superstep().is_multiple_of(2) {
            match value.pred {
                Some(p) => ctx.send_message(p, LegacyRankMsg::Request(id)),
                None => ctx.vote_to_halt(),
            }
        } else {
            ctx.vote_to_halt();
        }
    }
}

// ---------------------------------------------------------------------------
// The pre-columnar hash vertex store (replaced by the sorted SoA columns)
// ---------------------------------------------------------------------------

/// The vertex interface of [`run_hash_store`]: identical delivery contract to
/// the production `VertexProgram` (sorted slice per vertex), IDs fixed to the
/// assembler's packed `u64`.
pub trait HashStoreProgram: Sync {
    /// Per-vertex state.
    type Value: Send;
    /// Message type.
    type Message: Send;

    /// The per-vertex computation; `messages` is the contiguous sorted run
    /// addressed to this vertex, as the production engine delivers. One
    /// caveat inherited from the hash store: straggler vertices (pass 2)
    /// emit in hash-map order, not ID order, so same-destination messages
    /// from two stragglers may arrive in either relative order — programs
    /// used for equivalence checks against the columnar engine should fold
    /// commutatively.
    fn compute(
        &self,
        ctx: &mut HashStoreCtx<'_, Self>,
        id: u64,
        value: &mut Self::Value,
        messages: &mut [Self::Message],
    );
}

/// Execution context handed to [`HashStoreProgram::compute`].
pub struct HashStoreCtx<'a, P: HashStoreProgram + ?Sized> {
    superstep: usize,
    num_workers: usize,
    outbox: &'a mut [Vec<(u64, P::Message)>],
    messages_sent: &'a mut u64,
    halt: bool,
}

impl<P: HashStoreProgram + ?Sized> HashStoreCtx<'_, P> {
    /// The current superstep number (0-based).
    #[inline]
    pub fn superstep(&self) -> usize {
        self.superstep
    }

    /// Sends a message to vertex `to`, delivered next superstep.
    #[inline]
    pub fn send_message(&mut self, to: u64, message: P::Message) {
        let dst = (hash_one(&to) % self.num_workers as u64) as usize;
        self.outbox[dst].push((to, message));
        *self.messages_sent += 1;
    }

    /// Votes to halt until a message arrives.
    #[inline]
    pub fn vote_to_halt(&mut self) {
        self.halt = true;
    }
}

/// The hash store's per-vertex entry — value plus inline halt/stamp flags,
/// exactly the pre-columnar `VertexEntry` layout.
struct HashEntry<V> {
    value: V,
    halted: bool,
    stamp: usize,
}

/// Per-worker message-plane buffers of the hash-store runner (mirroring the
/// production `WorkerPlane`, reused across supersteps).
struct HashPlane<M> {
    in_ids: Vec<u64>,
    in_msgs: Vec<M>,
    merge_buf: Vec<(u64, M)>,
    scratch: Vec<(u64, M)>,
    outbox: Vec<Vec<(u64, M)>>,
}

/// One buffer per (source, destination) worker pair of the hash-store
/// runner's shuffle.
type HashColumns<M> = Vec<Vec<Vec<(u64, M)>>>;

/// The pre-columnar superstep loop, isolated down to the vertex store: the
/// message plane is the **production** one (per-destination radix presort,
/// sorted-run slice delivery, buffers reused across supersteps) and phases
/// dispatch onto the persistent pool of `ctx` — but vertices live in one
/// `FxHashMap` per worker, so pass 1 pays a hash probe per delivered run and
/// pass 2 walks the whole bucket array. Benchmarked against the columnar
/// engine by the `vertex_store` bin.
pub fn run_hash_store<P: HashStoreProgram>(
    program: &P,
    ctx: &ExecCtx,
    pairs: impl IntoIterator<Item = (u64, P::Value)>,
    max_supersteps: usize,
) -> (Vec<(u64, P::Value)>, LegacyMetrics) {
    let workers = ctx.workers();
    let mut parts: Vec<FxHashMap<u64, HashEntry<P::Value>>> =
        (0..workers).map(|_| FxHashMap::default()).collect();
    for (id, value) in pairs {
        let w = (hash_one(&id) % workers as u64) as usize;
        parts[w].insert(
            id,
            HashEntry {
                value,
                halted: false,
                stamp: 0,
            },
        );
    }
    let mut planes: Vec<HashPlane<P::Message>> = (0..workers)
        .map(|_| HashPlane {
            in_ids: Vec::new(),
            in_msgs: Vec::new(),
            merge_buf: Vec::new(),
            scratch: Vec::new(),
            outbox: (0..workers).map(|_| Vec::new()).collect(),
        })
        .collect();
    let mut metrics = LegacyMetrics::default();

    for superstep in 0..max_supersteps {
        // ---- compute phase ---------------------------------------------------
        let stamp = superstep + 1;
        let counts: Vec<(u64, bool)> = {
            let worker_inputs: Vec<_> = parts.iter_mut().zip(planes.iter_mut()).collect();
            ctx.pool()
                .run_per_worker(worker_inputs, |_w, (part, plane)| {
                    let mut messages_sent = 0u64;

                    // Pass 1: walk the sorted runs; one hash probe per
                    // receiving vertex.
                    let n_in = plane.in_ids.len();
                    let mut i = 0usize;
                    while i < n_in {
                        let id = plane.in_ids[i];
                        let mut j = i + 1;
                        while j < n_in && plane.in_ids[j] == id {
                            j += 1;
                        }
                        if let Some(entry) = part.get_mut(&id) {
                            entry.stamp = stamp;
                            let mut vctx: HashStoreCtx<'_, P> = HashStoreCtx {
                                superstep,
                                num_workers: workers,
                                outbox: &mut plane.outbox,
                                messages_sent: &mut messages_sent,
                                halt: false,
                            };
                            program.compute(
                                &mut vctx,
                                id,
                                &mut entry.value,
                                &mut plane.in_msgs[i..j],
                            );
                            entry.halted = vctx.halt;
                        }
                        i = j;
                    }

                    // Pass 2: full hash-map scan for active stragglers.
                    let mut all_halted = true;
                    for (id, entry) in part.iter_mut() {
                        if entry.stamp == stamp {
                            all_halted &= entry.halted;
                            continue;
                        }
                        if entry.halted {
                            continue;
                        }
                        let mut vctx: HashStoreCtx<'_, P> = HashStoreCtx {
                            superstep,
                            num_workers: workers,
                            outbox: &mut plane.outbox,
                            messages_sent: &mut messages_sent,
                            halt: false,
                        };
                        program.compute(&mut vctx, *id, &mut entry.value, &mut []);
                        entry.halted = vctx.halt;
                        all_halted &= entry.halted;
                    }

                    // Same sender-side radix presort as the production runner.
                    for buf in plane.outbox.iter_mut() {
                        ppa_pregel::radix::sort_pairs(buf, &mut plane.scratch);
                    }
                    (messages_sent, all_halted)
                })
        };
        let mut messages_this_step = 0u64;
        let mut all_halted = true;
        for (sent, halted) in &counts {
            messages_this_step += sent;
            all_halted &= halted;
        }

        // ---- shuffle phase ---------------------------------------------------
        // Concatenate the pre-sorted source buffers in worker order and
        // stable-radix-sort the result: the same merged order as the
        // production k-way merge for any fixed per-sender emission order.
        // (Pass 2 above emits in hash order, so cross-program equivalence
        // additionally needs commutative folds; see `HashStoreProgram`.)
        let mut columns: HashColumns<P::Message> =
            (0..workers).map(|_| Vec::with_capacity(workers)).collect();
        for plane in planes.iter_mut() {
            for (dst, buf) in plane.outbox.iter_mut().enumerate() {
                columns[dst].push(std::mem::take(buf));
            }
        }
        let shuffle_inputs: Vec<_> = planes.iter_mut().zip(columns).collect();
        let returned: HashColumns<P::Message> =
            ctx.pool()
                .run_per_worker(shuffle_inputs, |_w, (plane, mut bufs)| {
                    plane.merge_buf.clear();
                    for buf in bufs.iter_mut() {
                        plane.merge_buf.append(buf);
                    }
                    ppa_pregel::radix::sort_pairs(&mut plane.merge_buf, &mut plane.scratch);
                    plane.in_ids.clear();
                    plane.in_msgs.clear();
                    for (id, msg) in plane.merge_buf.drain(..) {
                        plane.in_ids.push(id);
                        plane.in_msgs.push(msg);
                    }
                    bufs
                });
        for (dst, bufs) in returned.into_iter().enumerate() {
            for (src, buf) in bufs.into_iter().enumerate() {
                planes[src].outbox[dst] = buf;
            }
        }

        metrics.supersteps += 1;
        metrics.total_messages += messages_this_step;
        if messages_this_step == 0 && all_halted {
            break;
        }
    }

    let out = parts
        .into_iter()
        .flat_map(|p| p.into_iter().map(|(id, e)| (id, e.value)))
        .collect();
    (out, metrics)
}

/// The pre-columnar vertex store at the store-API level: one `FxHashMap` per
/// worker partition, O(1) point operations, bucket-array iteration — the
/// baseline of the `vertex_store` bench's removal-churn workload.
pub struct HashVertexStore<V> {
    parts: Vec<FxHashMap<u64, V>>,
}

impl<V> HashVertexStore<V> {
    /// An empty store partitioned over `workers` workers.
    pub fn new(workers: usize) -> HashVertexStore<V> {
        HashVertexStore {
            parts: (0..workers.max(1)).map(|_| FxHashMap::default()).collect(),
        }
    }

    #[inline]
    fn worker_of(&self, id: u64) -> usize {
        (hash_one(&id) % self.parts.len() as u64) as usize
    }

    /// Inserts or replaces a vertex, returning the previous value.
    pub fn insert(&mut self, id: u64, value: V) -> Option<V> {
        let w = self.worker_of(id);
        self.parts[w].insert(id, value)
    }

    /// Removes a vertex, returning its value.
    pub fn remove(&mut self, id: u64) -> Option<V> {
        let w = self.worker_of(id);
        self.parts[w].remove(&id)
    }

    /// Shared access to a vertex value.
    pub fn get(&self, id: u64) -> Option<&V> {
        self.parts[self.worker_of(id)].get(&id)
    }

    /// Total number of vertices.
    pub fn len(&self) -> usize {
        self.parts.iter().map(|p| p.len()).sum()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes every vertex for which the predicate returns `false`.
    pub fn retain(&mut self, mut keep: impl FnMut(u64, &V) -> bool) {
        for p in &mut self.parts {
            p.retain(|id, v| keep(*id, v));
        }
    }

    /// Iterates over `(id, value)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> {
        self.parts
            .iter()
            .flat_map(|p| p.iter().map(|(k, v)| (*k, v)))
    }

    /// Estimated heap bytes of the hash store: allocated buckets × (key +
    /// value + 1 control byte), the hashbrown layout.
    pub fn resident_bytes(&self) -> usize {
        self.parts
            .iter()
            .map(|p| p.capacity() * (std::mem::size_of::<(u64, V)>() + 1))
            .sum()
    }
}

/// Runs legacy list ranking over a chain of `n` elements (each with value 1)
/// and returns the rank of the tail as a correctness witness.
pub fn legacy_chain_ranking(n: u64, workers: usize) -> u64 {
    let pairs = (0..n).map(|i| {
        (
            i,
            LegacyRankState {
                pred: if i == 0 { None } else { Some(i - 1) },
                sum: 1,
            },
        )
    });
    let (out, _) = run_legacy(&LegacyListRanking, workers, pairs, 4 * 64);
    out.into_iter()
        .find(|(id, _)| *id == n - 1)
        .map(|(_, st)| st.sum)
        .expect("tail exists")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legacy_chain_ranking_is_correct() {
        assert_eq!(legacy_chain_ranking(100, 3), 100);
        assert_eq!(legacy_chain_ranking(1, 2), 1);
    }

    #[test]
    fn legacy_map_reduce_matches_new_plane() {
        let inputs: Vec<u64> = (0..10_000).collect();
        let mut old = legacy_map_reduce(
            inputs.clone(),
            4,
            |x: u64| vec![(x % 97, 1u64)],
            |k: &u64, vs: Vec<u64>| vec![(*k, vs.into_iter().sum::<u64>())],
        );
        let mut new = ppa_pregel::map_reduce(
            inputs,
            4,
            |x: u64, out: &mut ppa_pregel::mapreduce::Emitter<'_, u64, u64>| out.emit(x % 97, 1),
            |k: &u64, vs: &mut [u64], out: &mut Vec<(u64, u64)>| {
                out.push((*k, vs.iter().sum::<u64>()))
            },
        );
        old.sort_unstable();
        new.sort_unstable();
        assert_eq!(old, new);
    }

    /// One scatter-and-fold program, defined against both vertex interfaces.
    struct Relay {
        n: u64,
        rounds: usize,
    }

    impl Relay {
        fn target(&self, id: u64, superstep: usize) -> u64 {
            (id.wrapping_mul(31).wrapping_add(superstep as u64 * 7 + 1)) % self.n
        }
    }

    impl HashStoreProgram for Relay {
        type Value = u64;
        type Message = u64;
        fn compute(
            &self,
            ctx: &mut HashStoreCtx<'_, Self>,
            id: u64,
            value: &mut u64,
            messages: &mut [u64],
        ) {
            *value = value.wrapping_add(messages.iter().sum::<u64>());
            if ctx.superstep() < self.rounds {
                ctx.send_message(self.target(id, ctx.superstep()), id + 1);
            }
            ctx.vote_to_halt();
        }
    }

    impl ppa_pregel::VertexProgram for Relay {
        type Id = u64;
        type Value = u64;
        type Message = u64;
        type Aggregate = ppa_pregel::NoAggregate;
        fn compute(
            &self,
            ctx: &mut ppa_pregel::Context<'_, Self>,
            id: u64,
            value: &mut u64,
            messages: &mut [u64],
        ) {
            *value = value.wrapping_add(messages.iter().sum::<u64>());
            if ctx.superstep() < self.rounds {
                ctx.send_message(self.target(id, ctx.superstep()), id + 1);
            }
            ctx.vote_to_halt();
        }
    }

    #[test]
    fn hash_store_runner_matches_columnar_engine() {
        let program = Relay { n: 999, rounds: 6 };
        for workers in [1usize, 3] {
            let ctx = ExecCtx::new(workers);
            let (mut old, old_metrics) =
                run_hash_store(&program, &ctx, (0..999).map(|i| (i, i)), 1_000);
            let config = ppa_pregel::PregelConfig::with_workers(workers).exec_ctx(ctx);
            let (set, new_metrics) =
                ppa_pregel::run_from_pairs(&program, &config, (0..999).map(|i| (i, i)));
            let mut new = set.into_pairs();
            old.sort_unstable();
            new.sort_unstable();
            assert_eq!(old, new, "workers = {workers}");
            assert_eq!(old_metrics.supersteps, new_metrics.supersteps);
            assert_eq!(old_metrics.total_messages, new_metrics.total_messages);
        }
    }

    #[test]
    fn hash_vertex_store_point_ops() {
        let mut s: HashVertexStore<u64> = HashVertexStore::new(3);
        assert!(s.is_empty());
        for i in 0..100 {
            assert_eq!(s.insert(i, i * 2), None);
        }
        assert_eq!(s.len(), 100);
        assert_eq!(s.get(4), Some(&8));
        assert_eq!(s.remove(4), Some(8));
        s.retain(|_, v| *v % 4 == 0);
        assert_eq!(s.len(), 49, "50 multiples of 4, one already removed");
        assert!(s.resident_bytes() > 0);
        assert_eq!(s.iter().map(|(_, v)| *v).sum::<u64>() % 4, 0);
    }

    #[test]
    fn legacy_and_new_list_ranking_agree() {
        let n = 2_048u64;
        let legacy = legacy_chain_ranking(n, 4);
        let items: Vec<ppa_pregel::algorithms::ListItem<u64>> = (0..n)
            .map(|i| ppa_pregel::algorithms::ListItem {
                id: i,
                pred: if i == 0 { None } else { Some(i - 1) },
                value: 1,
            })
            .collect();
        let config = ppa_pregel::PregelConfig::with_workers(4).max_supersteps(1_000);
        let (out, _) = ppa_pregel::algorithms::list_ranking(items, &config);
        let new = out.into_iter().find(|(id, _)| *id == n - 1).unwrap().1;
        assert_eq!(legacy, new);
        assert_eq!(legacy, n);
    }
}
