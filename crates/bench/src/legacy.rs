//! The **pre-refactor** execution strategies, preserved verbatim-in-spirit
//! for the `message_plane` and `worker_pool` benchmarks.
//!
//! Three generations of replaced machinery live here:
//!
//! * the hash-grouping **message plane** (PR 1 replaced it with the
//!   sort-based plane): the runner delivered messages by building a
//!   `FxHashMap<Id, Vec<Message>>` per worker per superstep (one heap `Vec`
//!   per receiving vertex) and handed every vertex an owned `Vec<Message>`;
//!   the mini-MapReduce reduce phase did the same per-key `Vec` dance
//!   followed by a separate sort of the grouped entries;
//! * the **scoped-spawn dispatch** ([`scoped_run_per_worker`]; the engine PR
//!   replaced it with the persistent `ppa_pregel::engine::WorkerPool`): every
//!   compute/shuffle/map/reduce phase created a fresh `std::thread::scope`
//!   and spawned one thread per worker, paying a spawn + join per worker per
//!   phase;
//! * the **comparison-sort presort plane** (the radix PR replaced it with the
//!   stable LSD radix sort of `ppa_pregel::radix`): every shuffle presort ran
//!   pdqsort/merge sort over the packed keys. [`with_comparison_plane`]
//!   forces the production shuffles back onto a stable comparison sort, and
//!   [`comparison_sort_pairs`] exposes the raw pdqsort baseline for the
//!   `radix_sort` microbench.
//!
//! Keeping them alive — allocation and spawn behaviour intact — lets the
//! benchmarks and the `BENCH_message_plane.json` / `BENCH_worker_pool.json`
//! snapshots compare production code against the exact baselines it
//! replaced, inside one binary.
//!
//! Nothing outside the benchmarks should use this module.

use ppa_pregel::fxhash::{hash_one, FxHashMap};
use ppa_pregel::VertexKey;
use std::hash::Hash;

/// Runs `f` with every `ppa_pregel::radix` presort forced onto the stable
/// comparison-sort fallback — the pre-radix plane, measurable end to end
/// inside one binary. Not reentrant and process-global: bench use only.
pub fn with_comparison_plane<R>(f: impl FnOnce() -> R) -> R {
    ppa_pregel::radix::force_comparison_plane(true);
    let result = f();
    ppa_pregel::radix::force_comparison_plane(false);
    result
}

/// The raw pdqsort baseline the radix presort replaced: an unstable
/// comparison sort by key, as `runner.rs`/`mapreduce.rs` ran before the
/// radix plane.
pub fn comparison_sort_pairs<K: Ord + Copy, V>(records: &mut [(K, V)]) {
    records.sort_unstable_by_key(|r| r.0);
}

/// The pre-engine phase dispatch: runs `f(worker, input)` for every input on
/// a **freshly scoped-and-spawned** thread team and returns the results in
/// worker order — exactly what the runner, the mini MapReduce and
/// `VertexSet::convert` did once per phase before the persistent
/// `WorkerPool` landed. The `worker_pool` benchmark drives the same job
/// bodies through this and through the pool to isolate the dispatch cost.
pub fn scoped_run_per_worker<T, R, F>(inputs: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let mut results: Vec<R> = Vec::with_capacity(inputs.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = inputs
            .into_iter()
            .enumerate()
            .map(|(w, input)| {
                let f = &f;
                scope.spawn(move || f(w, input))
            })
            .collect();
        for h in handles {
            results.push(h.join().expect("scoped worker panicked"));
        }
    });
    results
}

/// The pre-refactor vertex-program interface: messages arrive as an owned
/// `Vec` allocated by the shuffle.
pub trait LegacyVertexProgram: Sync {
    /// Vertex identifier type.
    type Id: VertexKey;
    /// Per-vertex state.
    type Value: Send;
    /// Message type.
    type Message: Send;

    /// Whether messages to the same vertex are merged with
    /// [`combine`](LegacyVertexProgram::combine) during the shuffle
    /// (receiver-side only, as the old runner did).
    const USE_COMBINER: bool = false;

    /// The per-vertex computation.
    fn compute(
        &self,
        ctx: &mut LegacyContext<'_, Self>,
        id: Self::Id,
        value: &mut Self::Value,
        messages: Vec<Self::Message>,
    );

    /// Merges `incoming` into `acc` (combiner programs only).
    fn combine(&self, _acc: &mut Self::Message, _incoming: Self::Message) {
        unreachable!("combine() called but USE_COMBINER is false");
    }
}

/// Execution context handed to [`LegacyVertexProgram::compute`].
pub struct LegacyContext<'a, P: LegacyVertexProgram + ?Sized> {
    superstep: usize,
    num_workers: usize,
    outbox: &'a mut [Vec<(P::Id, P::Message)>],
    messages_sent: &'a mut u64,
    halt: bool,
}

impl<P: LegacyVertexProgram + ?Sized> LegacyContext<'_, P> {
    /// The current superstep number (0-based).
    #[inline]
    pub fn superstep(&self) -> usize {
        self.superstep
    }

    /// Sends a message to vertex `to`, delivered next superstep.
    #[inline]
    pub fn send_message(&mut self, to: P::Id, message: P::Message) {
        let dst = (hash_one(&to) % self.num_workers as u64) as usize;
        self.outbox[dst].push((to, message));
        *self.messages_sent += 1;
    }

    /// Votes to halt until a message arrives.
    #[inline]
    pub fn vote_to_halt(&mut self) {
        self.halt = true;
    }
}

/// One message buffer per destination worker.
type LegacyOutbox<P> = Vec<
    Vec<(
        <P as LegacyVertexProgram>::Id,
        <P as LegacyVertexProgram>::Message,
    )>,
>;

/// Final `(vertex, value)` pairs of a legacy run.
pub type LegacyPairs<P> = Vec<(
    <P as LegacyVertexProgram>::Id,
    <P as LegacyVertexProgram>::Value,
)>;

struct LegacyEntry<V> {
    value: V,
    halted: bool,
}

/// Job totals of a legacy run, for sanity-checking against the new plane.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LegacyMetrics {
    /// Supersteps executed.
    pub supersteps: usize,
    /// Logical messages sent.
    pub total_messages: u64,
}

/// The pre-refactor superstep loop: per-destination `Vec<Vec<_>>` outboxes
/// allocated fresh every superstep, and a `FxHashMap<Id, Vec<Message>>` inbox
/// built per worker per superstep.
pub fn run_legacy<P: LegacyVertexProgram>(
    program: &P,
    workers: usize,
    pairs: impl IntoIterator<Item = (P::Id, P::Value)>,
    max_supersteps: usize,
) -> (LegacyPairs<P>, LegacyMetrics) {
    let workers = workers.max(1);
    let mut parts: Vec<FxHashMap<P::Id, LegacyEntry<P::Value>>> =
        (0..workers).map(|_| FxHashMap::default()).collect();
    for (id, value) in pairs {
        let w = (hash_one(&id) % workers as u64) as usize;
        parts[w].insert(
            id,
            LegacyEntry {
                value,
                halted: false,
            },
        );
    }

    let mut inboxes: Vec<FxHashMap<P::Id, Vec<P::Message>>> =
        (0..workers).map(|_| FxHashMap::default()).collect();
    let mut metrics = LegacyMetrics::default();

    for superstep in 0..max_supersteps {
        // ---- compute phase (fresh outbox Vecs every superstep) -------------
        let mut results: Vec<(LegacyOutbox<P>, u64, bool)> = Vec::with_capacity(workers);
        {
            let worker_inputs: Vec<_> = parts
                .iter_mut()
                .zip(inboxes.iter_mut().map(std::mem::take))
                .collect();
            std::thread::scope(|scope| {
                let handles: Vec<_> = worker_inputs
                    .into_iter()
                    .map(|(part, mut inbox)| {
                        scope.spawn(move || {
                            let mut outbox: Vec<Vec<(P::Id, P::Message)>> =
                                (0..workers).map(|_| Vec::new()).collect();
                            let mut messages_sent = 0u64;
                            for (id, entry) in part.iter_mut() {
                                let msgs = inbox.remove(id).unwrap_or_default();
                                if entry.halted && msgs.is_empty() {
                                    continue;
                                }
                                entry.halted = false;
                                let mut ctx: LegacyContext<'_, P> = LegacyContext {
                                    superstep,
                                    num_workers: workers,
                                    outbox: &mut outbox,
                                    messages_sent: &mut messages_sent,
                                    halt: false,
                                };
                                program.compute(&mut ctx, *id, &mut entry.value, msgs);
                                entry.halted = ctx.halt;
                            }
                            let all_halted = part.values().all(|e| e.halted);
                            (outbox, messages_sent, all_halted)
                        })
                    })
                    .collect();
                for h in handles {
                    results.push(h.join().expect("legacy worker panicked"));
                }
            });
        }

        let mut messages_this_step = 0u64;
        let mut all_halted = true;
        for (_, sent, halted) in &results {
            messages_this_step += sent;
            all_halted &= halted;
        }

        // ---- shuffle phase (hash-grouping into per-vertex Vecs) ------------
        let mut incoming: Vec<LegacyOutbox<P>> =
            (0..workers).map(|_| Vec::with_capacity(workers)).collect();
        for (outbox, _, _) in results {
            for (dst, buf) in outbox.into_iter().enumerate() {
                incoming[dst].push(buf);
            }
        }
        inboxes.clear();
        std::thread::scope(|scope| {
            let handles: Vec<_> = incoming
                .into_iter()
                .map(|bufs| {
                    scope.spawn(move || {
                        let mut inbox: FxHashMap<P::Id, Vec<P::Message>> = FxHashMap::default();
                        for buf in bufs {
                            for (id, msg) in buf {
                                let slot = inbox.entry(id).or_default();
                                if P::USE_COMBINER && !slot.is_empty() {
                                    let acc = slot.last_mut().expect("non-empty");
                                    program.combine(acc, msg);
                                } else {
                                    slot.push(msg);
                                }
                            }
                        }
                        inbox
                    })
                })
                .collect();
            for h in handles {
                inboxes.push(h.join().expect("legacy shuffle worker panicked"));
            }
        });

        metrics.supersteps += 1;
        metrics.total_messages += messages_this_step;
        if messages_this_step == 0 && all_halted {
            break;
        }
    }

    let out = parts
        .into_iter()
        .flat_map(|p| p.into_iter().map(|(id, e)| (id, e.value)))
        .collect();
    (out, metrics)
}

/// The pre-refactor mini-MapReduce: reduce groups values into a
/// `FxHashMap<K, Vec<V>>`, then sorts the grouped entries for determinism —
/// one `Vec` per key plus a second ordering pass, exactly what the sort-based
/// grouping replaced.
pub fn legacy_map_reduce<I, K, V, O, MF, RF>(
    inputs: Vec<I>,
    workers: usize,
    map_fn: MF,
    reduce_fn: RF,
) -> Vec<O>
where
    I: Send,
    K: Hash + Eq + Ord + Send,
    V: Send,
    O: Send,
    MF: Fn(I) -> Vec<(K, V)> + Sync,
    RF: Fn(&K, Vec<V>) -> Vec<O> + Sync,
{
    let workers = workers.max(1);
    let chunk_size = inputs.len().div_ceil(workers).max(1);
    let mut chunks: Vec<Vec<I>> = Vec::with_capacity(workers);
    {
        let mut it = inputs.into_iter();
        for _ in 0..workers {
            chunks.push(it.by_ref().take(chunk_size).collect());
        }
    }
    let mut shuffled: Vec<Vec<Vec<(K, V)>>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                let map_fn = &map_fn;
                scope.spawn(move || {
                    let mut out: Vec<Vec<(K, V)>> = (0..workers).map(|_| Vec::new()).collect();
                    for item in chunk {
                        for (k, v) in map_fn(item) {
                            let dst = (hash_one(&k) % workers as u64) as usize;
                            out[dst].push((k, v));
                        }
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            shuffled.push(h.join().expect("legacy map worker panicked"));
        }
    });

    let mut incoming: Vec<Vec<Vec<(K, V)>>> = (0..workers).map(|_| Vec::new()).collect();
    for src in shuffled {
        for (dst, buf) in src.into_iter().enumerate() {
            incoming[dst].push(buf);
        }
    }

    let mut outputs: Vec<Vec<O>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = incoming
            .into_iter()
            .map(|bufs| {
                let reduce_fn = &reduce_fn;
                scope.spawn(move || {
                    let mut grouped: FxHashMap<K, Vec<V>> = FxHashMap::default();
                    for buf in bufs {
                        for (k, v) in buf {
                            grouped.entry(k).or_default().push(v);
                        }
                    }
                    let mut entries: Vec<(K, Vec<V>)> = grouped.into_iter().collect();
                    entries.sort_by(|a, b| a.0.cmp(&b.0));
                    let mut out = Vec::new();
                    for (k, vs) in entries {
                        out.extend(reduce_fn(&k, vs));
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            outputs.push(h.join().expect("legacy reduce worker panicked"));
        }
    });
    outputs.into_iter().flatten().collect()
}

/// The pre-refactor list-ranking program (the paper's Figure 1 BPPA), on the
/// legacy plane — the "message-heavy labeling on a synthetic chain" workload.
pub struct LegacyListRanking;

/// Per-element state of [`LegacyListRanking`].
#[derive(Debug, Clone)]
pub struct LegacyRankState {
    /// Predecessor element, `None` at the list head.
    pub pred: Option<u64>,
    /// Running sum from the head.
    pub sum: u64,
}

/// Messages of [`LegacyListRanking`].
#[derive(Debug, Clone)]
pub enum LegacyRankMsg {
    /// "Send me your sum and predecessor" — carries the requester's ID.
    Request(u64),
    /// The predecessor's reply.
    Response {
        /// The responder's running sum.
        sum: u64,
        /// The responder's predecessor.
        pred: Option<u64>,
    },
}

impl LegacyVertexProgram for LegacyListRanking {
    type Id = u64;
    type Value = LegacyRankState;
    type Message = LegacyRankMsg;

    fn compute(
        &self,
        ctx: &mut LegacyContext<'_, Self>,
        id: u64,
        value: &mut LegacyRankState,
        messages: Vec<LegacyRankMsg>,
    ) {
        let mut requesters: Vec<u64> = Vec::new();
        for msg in messages {
            match msg {
                LegacyRankMsg::Request(from) => requesters.push(from),
                LegacyRankMsg::Response { sum, pred } => {
                    value.sum += sum;
                    value.pred = pred;
                }
            }
        }
        for from in requesters {
            ctx.send_message(
                from,
                LegacyRankMsg::Response {
                    sum: value.sum,
                    pred: value.pred,
                },
            );
        }
        if ctx.superstep().is_multiple_of(2) {
            match value.pred {
                Some(p) => ctx.send_message(p, LegacyRankMsg::Request(id)),
                None => ctx.vote_to_halt(),
            }
        } else {
            ctx.vote_to_halt();
        }
    }
}

/// Runs legacy list ranking over a chain of `n` elements (each with value 1)
/// and returns the rank of the tail as a correctness witness.
pub fn legacy_chain_ranking(n: u64, workers: usize) -> u64 {
    let pairs = (0..n).map(|i| {
        (
            i,
            LegacyRankState {
                pred: if i == 0 { None } else { Some(i - 1) },
                sum: 1,
            },
        )
    });
    let (out, _) = run_legacy(&LegacyListRanking, workers, pairs, 4 * 64);
    out.into_iter()
        .find(|(id, _)| *id == n - 1)
        .map(|(_, st)| st.sum)
        .expect("tail exists")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legacy_chain_ranking_is_correct() {
        assert_eq!(legacy_chain_ranking(100, 3), 100);
        assert_eq!(legacy_chain_ranking(1, 2), 1);
    }

    #[test]
    fn legacy_map_reduce_matches_new_plane() {
        let inputs: Vec<u64> = (0..10_000).collect();
        let mut old = legacy_map_reduce(
            inputs.clone(),
            4,
            |x: u64| vec![(x % 97, 1u64)],
            |k: &u64, vs: Vec<u64>| vec![(*k, vs.into_iter().sum::<u64>())],
        );
        let mut new = ppa_pregel::map_reduce(
            inputs,
            4,
            |x: u64, out: &mut ppa_pregel::mapreduce::Emitter<'_, u64, u64>| out.emit(x % 97, 1),
            |k: &u64, vs: &mut [u64], out: &mut Vec<(u64, u64)>| {
                out.push((*k, vs.iter().sum::<u64>()))
            },
        );
        old.sort_unstable();
        new.sort_unstable();
        assert_eq!(old, new);
    }

    #[test]
    fn legacy_and_new_list_ranking_agree() {
        let n = 2_048u64;
        let legacy = legacy_chain_ranking(n, 4);
        let items: Vec<ppa_pregel::algorithms::ListItem<u64>> = (0..n)
            .map(|i| ppa_pregel::algorithms::ListItem {
                id: i,
                pred: if i == 0 { None } else { Some(i - 1) },
                value: 1,
            })
            .collect();
        let config = ppa_pregel::PregelConfig::with_workers(4).max_supersteps(1_000);
        let (out, _) = ppa_pregel::algorithms::list_ranking(items, &config);
        let new = out.into_iter().find(|(id, _)| *id == n - 1).unwrap().1;
        assert_eq!(legacy, new);
        assert_eq!(legacy, n);
    }
}
