//! Message-plane micro-benchmarks: the production sort-based shuffle vs. the
//! pre-refactor hash-grouping plane preserved in [`ppa_bench::legacy`].
//!
//! Two workloads, each benched on both planes:
//!
//! * **labeling_chain** — list ranking over a synthetic 65,536-element chain
//!   (message-heavy: every active vertex sends a request and receives a
//!   response every round);
//! * **shuffle_1m** — a mini-MapReduce pass over 1M key–value pairs with
//!   500,000 distinct keys (short value runs — the shape of DBG
//!   construction, where almost every canonical (k+1)-mer is its own key),
//!   sum reduce.
//!
//! `cargo bench -p ppa_bench --bench message_plane`. The committed snapshot
//! of these numbers lives in `BENCH_message_plane.json` (regenerate with
//! `cargo run -p ppa_bench --release --bin message_plane`).

use criterion::{criterion_group, criterion_main, Criterion};
use ppa_bench::legacy::{legacy_chain_ranking, legacy_map_reduce};
use ppa_pregel::algorithms::{list_ranking, ListItem};
use ppa_pregel::mapreduce::Emitter;
use ppa_pregel::{map_reduce, PregelConfig};
use std::hint::black_box;
use std::time::Duration;

const CHAIN: u64 = 65_536;
const PAIRS: u64 = 1_000_000;
const KEYS: u64 = 500_000;
const WORKERS: usize = 4;

fn chain_items(n: u64) -> Vec<ListItem<u64>> {
    (0..n)
        .map(|i| ListItem {
            id: i,
            pred: if i == 0 { None } else { Some(i - 1) },
            value: 1,
        })
        .collect()
}

fn bench_labeling_chain(c: &mut Criterion) {
    let config = PregelConfig::with_workers(WORKERS)
        .max_supersteps(10_000)
        .track_supersteps(false);
    let mut group = c.benchmark_group("message_plane/labeling_chain");
    group.bench_function("legacy_hash", |b| {
        b.iter(|| black_box(legacy_chain_ranking(CHAIN, WORKERS)))
    });
    group.bench_function("sorted", |b| {
        b.iter(|| {
            let (out, _) = list_ranking(chain_items(CHAIN), &config);
            black_box(out.len())
        })
    });
    group.finish();
}

fn bench_shuffle_1m(c: &mut Criterion) {
    let inputs: Vec<u64> = (0..PAIRS).collect();
    let mut group = c.benchmark_group("message_plane/shuffle_1m");
    group.bench_function("legacy_hash", |b| {
        b.iter(|| {
            let out = legacy_map_reduce(
                inputs.clone(),
                WORKERS,
                |x: u64| vec![(x % KEYS, 1u64)],
                |k: &u64, vs: Vec<u64>| vec![(*k, vs.into_iter().sum::<u64>())],
            );
            black_box(out.len())
        })
    });
    group.bench_function("sorted", |b| {
        b.iter(|| {
            let out = map_reduce(
                inputs.clone(),
                WORKERS,
                |x: u64, out: &mut Emitter<'_, u64, u64>| out.emit(x % KEYS, 1),
                |k: &u64, vs: &mut [u64], out: &mut Vec<(u64, u64)>| {
                    out.push((*k, vs.iter().sum::<u64>()))
                },
            );
            black_box(out.len())
        })
    });
    group.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_labeling_chain, bench_shuffle_1m
}
criterion_main!(benches);
