//! Criterion micro-benchmarks for the substrate pieces: k-mer manipulation,
//! packed adjacency, the two labeling primitives (list ranking vs. simplified
//! S-V) on synthetic chains, banded edit distance, the mini-MapReduce shuffle
//! and small end-to-end DBG constructions.
//!
//! These are deliberately small/fast; the paper-scale experiments live in the
//! `src/bin/` harnesses.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppa_assembler::ops::construct::{build_dbg, ConstructConfig};
use ppa_pregel::algorithms::{connected_components, list_ranking, ListItem};
use ppa_pregel::mapreduce::Emitter;
use ppa_pregel::{map_reduce, PregelConfig};
use ppa_readsim::{GenomeConfig, ReadSimConfig};
use ppa_seq::{banded_edit_distance, Base, DnaString, Kmer};
use std::hint::black_box;
use std::time::Duration;

fn bench_kmer_ops(c: &mut Criterion) {
    let kmers: Vec<Kmer> = (0..1024u64)
        .map(|i| Kmer::from_packed(i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 2, 31).unwrap())
        .collect();
    c.bench_function("kmer/canonicalise_1024_31mers", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for k in &kmers {
                acc ^= black_box(k.canonical().kmer.packed());
            }
            acc
        })
    });
    c.bench_function("kmer/slide_window_1024", |b| {
        b.iter(|| {
            let mut k = kmers[0];
            for i in 0..1024u32 {
                k = k.extend_right(Base::from_code((i & 3) as u8));
            }
            black_box(k)
        })
    });
}

fn bench_labeling_primitives(c: &mut Criterion) {
    let config = PregelConfig::with_workers(4)
        .max_supersteps(10_000)
        .track_supersteps(false);
    let mut group = c.benchmark_group("labeling_primitives");
    for &n in &[1_000u64, 10_000] {
        group.bench_with_input(BenchmarkId::new("list_ranking_chain", n), &n, |b, &n| {
            b.iter(|| {
                let items: Vec<ListItem<u64>> = (0..n)
                    .map(|i| ListItem {
                        id: i,
                        pred: if i == 0 { None } else { Some(i - 1) },
                        value: 1,
                    })
                    .collect();
                black_box(list_ranking(items, &config).0.len())
            })
        });
        group.bench_with_input(BenchmarkId::new("simplified_sv_chain", n), &n, |b, &n| {
            b.iter(|| {
                let adjacency: Vec<(u64, Vec<u64>)> = (0..n)
                    .map(|i| {
                        let mut nbrs = Vec::new();
                        if i > 0 {
                            nbrs.push(i - 1);
                        }
                        if i + 1 < n {
                            nbrs.push(i + 1);
                        }
                        (i, nbrs)
                    })
                    .collect();
                black_box(connected_components(adjacency, &config).0.len())
            })
        });
    }
    group.finish();
}

fn bench_edit_distance(c: &mut Criterion) {
    let a = GenomeConfig {
        length: 2_000,
        repeat_families: 0,
        seed: 1,
        ..Default::default()
    }
    .generate()
    .sequence;
    let mut bases = a.to_bases();
    for i in (0..bases.len()).step_by(400) {
        bases[i] = bases[i].complement();
    }
    let b = DnaString::from_bases(&bases);
    c.bench_function("edit_distance/banded_2kbp_5subs", |bch| {
        bch.iter(|| black_box(banded_edit_distance(&a, &b, 16)))
    });
}

fn bench_mapreduce(c: &mut Criterion) {
    let inputs: Vec<u64> = (0..100_000).collect();
    c.bench_function("mapreduce/100k_records_4_workers", |b| {
        b.iter(|| {
            let out = map_reduce(
                inputs.clone(),
                4,
                |x: u64, out: &mut Emitter<'_, u64, u64>| out.emit(x % 1024, 1),
                |k: &u64, vs: &mut [u64], out: &mut Vec<(u64, u64)>| {
                    out.push((*k, vs.iter().sum::<u64>()))
                },
            );
            black_box(out.len())
        })
    });
}

fn bench_dbg_construction(c: &mut Criterion) {
    let reference = GenomeConfig {
        length: 20_000,
        repeat_families: 2,
        seed: 3,
        ..Default::default()
    }
    .generate();
    let reads = ReadSimConfig {
        coverage: 15.0,
        ..ReadSimConfig::default()
    }
    .simulate(&reference);
    c.bench_function("construct/20kbp_15x", |b| {
        b.iter(|| {
            let out = build_dbg(
                &reads,
                &ConstructConfig {
                    k: 25,
                    min_coverage: 1,
                    batch_size: 512,
                },
                4,
            );
            black_box(out.vertices.len())
        })
    });
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_kmer_ops, bench_labeling_primitives, bench_edit_distance, bench_mapreduce, bench_dbg_construction
}
criterion_main!(benches);
