//! QUAST-like assembly quality assessment.
//!
//! The paper evaluates sequencing quality with QUAST (Tables IV and V):
//! reference-free statistics (number of contigs, total length, N50, largest
//! contig, GC%) and, when a reference sequence is available, reference-based
//! statistics (genome fraction, misassemblies, unaligned length, mismatches
//! and indels per 100 kbp, largest alignment). This crate reimplements the
//! subset of QUAST metrics the paper reports:
//!
//! * [`basic`] — reference-free statistics computed directly from contig
//!   lengths and sequences;
//! * [`align`] — anchor-based alignment of contigs against a reference and the
//!   derived reference-based metrics;
//! * [`report`] — a combined [`QuastReport`] that prints
//!   in the same shape as the paper's quality tables.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod align;
pub mod basic;
pub mod report;

pub use align::{align_contigs, AlignmentConfig, ReferenceMetrics};
pub use basic::{basic_stats, n50, nx, BasicStats};
pub use report::QuastReport;
