//! The combined quality report, printable in the shape of the paper's quality
//! tables (Tables IV and V).

use crate::align::{align_contigs, AlignmentConfig, ReferenceMetrics};
use crate::basic::{basic_stats, BasicStats};
use ppa_seq::DnaString;
use serde::{Deserialize, Serialize};

/// A QUAST-style quality report for one assembly.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct QuastReport {
    /// Name of the assembler that produced the assembly.
    pub assembler: String,
    /// Reference-free statistics.
    pub basic: BasicStats,
    /// Reference-based statistics, when a reference was supplied.
    pub reference: Option<ReferenceMetrics>,
}

impl QuastReport {
    /// Evaluates an assembly, optionally against a reference sequence.
    pub fn evaluate(
        assembler: impl Into<String>,
        contigs: &[DnaString],
        reference: Option<&DnaString>,
        min_contig_length: usize,
    ) -> QuastReport {
        QuastReport {
            assembler: assembler.into(),
            basic: basic_stats(contigs, min_contig_length),
            reference: reference.map(|r| align_contigs(contigs, r, &AlignmentConfig::default())),
        }
    }

    /// The metric rows of this report as `(name, value)` pairs, in the order
    /// the paper's Table IV lists them. Reference-based rows are omitted when
    /// no reference was supplied (as in Table V).
    pub fn rows(&self) -> Vec<(String, String)> {
        let mut rows = vec![
            (
                "# of contigs".to_string(),
                self.basic.num_contigs.to_string(),
            ),
            (
                "Total length".to_string(),
                self.basic.total_length.to_string(),
            ),
            ("N50".to_string(), self.basic.n50.to_string()),
            (
                "Largest contig".to_string(),
                self.basic.largest_contig.to_string(),
            ),
            (
                "GC (%)".to_string(),
                format!("{:.2}", self.basic.gc_percent),
            ),
        ];
        if let Some(r) = &self.reference {
            rows.extend([
                ("# Misassemblies".to_string(), r.misassemblies.to_string()),
                (
                    "Misassembled length".to_string(),
                    r.misassembled_length.to_string(),
                ),
                (
                    "Unaligned length".to_string(),
                    r.unaligned_length.to_string(),
                ),
                (
                    "Genome fraction (%)".to_string(),
                    format!("{:.3}", r.genome_fraction_percent),
                ),
                (
                    "# Mismatches per 100 kbp".to_string(),
                    format!("{:.2}", r.mismatches_per_100kbp),
                ),
                (
                    "# Indels per 100 kbp".to_string(),
                    format!("{:.2}", r.indels_per_100kbp),
                ),
                (
                    "Largest alignment".to_string(),
                    r.largest_alignment.to_string(),
                ),
            ]);
        }
        rows
    }
}

/// Formats several reports side by side (one column per assembler), matching
/// the layout of the paper's quality comparison tables.
pub fn format_comparison(reports: &[QuastReport]) -> String {
    if reports.is_empty() {
        return String::new();
    }
    let metric_names: Vec<String> = reports[0].rows().into_iter().map(|(n, _)| n).collect();
    let mut out = String::new();
    out.push_str(&format!("{:<28}", "Assembler"));
    for r in reports {
        out.push_str(&format!("{:>16}", r.assembler));
    }
    out.push('\n');
    for (i, name) in metric_names.iter().enumerate() {
        out.push_str(&format!("{name:<28}"));
        for r in reports {
            let rows = r.rows();
            let value = rows.get(i).map(|(_, v)| v.clone()).unwrap_or_default();
            out.push_str(&format!("{value:>16}"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppa_readsim::GenomeConfig;

    #[test]
    fn report_with_and_without_reference() {
        let reference = GenomeConfig {
            length: 3_000,
            repeat_families: 0,
            ..Default::default()
        }
        .generate()
        .sequence;
        let contigs = vec![
            reference.substring(0, 1_500),
            reference.substring(1_600, 1_200),
        ];
        let with_ref = QuastReport::evaluate("PPA", &contigs, Some(&reference), 500);
        assert_eq!(with_ref.basic.num_contigs, 2);
        assert!(with_ref.reference.is_some());
        assert_eq!(with_ref.rows().len(), 12);

        let without = QuastReport::evaluate("PPA", &contigs, None, 500);
        assert!(without.reference.is_none());
        assert_eq!(
            without.rows().len(),
            5,
            "Table V only reports reference-free rows"
        );
    }

    #[test]
    fn comparison_table_lists_all_assemblers() {
        let reference = GenomeConfig {
            length: 2_000,
            repeat_families: 0,
            ..Default::default()
        }
        .generate()
        .sequence;
        let a = QuastReport::evaluate("PPA", &[reference.substring(0, 1_800)], Some(&reference), 0);
        let b = QuastReport::evaluate(
            "AbyssLike",
            &[reference.substring(0, 900)],
            Some(&reference),
            0,
        );
        let table = format_comparison(&[a, b]);
        assert!(table.contains("PPA"));
        assert!(table.contains("AbyssLike"));
        assert!(table.contains("N50"));
        assert!(table.contains("Genome fraction"));
        assert!(table.lines().count() >= 12);
        assert!(format_comparison(&[]).is_empty());
    }
}
