//! Reference-based assembly assessment.
//!
//! When a reference sequence is available (the HC-2 / HC-X experiments of the
//! paper), QUAST aligns every contig against it and derives genome fraction,
//! misassembly counts and per-100-kbp mismatch/indel rates. This module
//! reimplements that pipeline with an anchor-and-verify strategy:
//!
//! 1. the reference is indexed by its forward k-mers;
//! 2. every contig is probed in both orientations with anchor k-mers sampled
//!    along its length; each anchor hit votes for a (orientation, offset)
//!    placement;
//! 3. the winning placement is verified base-by-base with a banded alignment
//!    that counts substitutions and indels exactly;
//! 4. contigs whose anchors vote for inconsistent placements are counted as
//!    misassembled, contigs with no anchor hits as unaligned.

use ppa_seq::{Base, DnaString};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Configuration of the reference alignment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlignmentConfig {
    /// Anchor k-mer size.
    pub anchor_k: usize,
    /// Distance between successive anchors sampled from a contig.
    pub anchor_stride: usize,
    /// Fraction of hitting anchors that must agree on one placement for the
    /// contig to count as correctly assembled (below this → misassembly).
    pub min_consistent_fraction: f64,
    /// Band half-width used by the verifying alignment.
    pub band: usize,
}

impl Default for AlignmentConfig {
    fn default() -> Self {
        AlignmentConfig {
            anchor_k: 21,
            anchor_stride: 32,
            min_consistent_fraction: 0.9,
            band: 24,
        }
    }
}

/// Reference-based metrics (the remaining rows of Table IV).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ReferenceMetrics {
    /// Percentage of reference positions covered by at least one aligned block.
    pub genome_fraction_percent: f64,
    /// Number of misassembled contigs.
    pub misassemblies: usize,
    /// Total length of misassembled contigs.
    pub misassembled_length: usize,
    /// Total length of contigs that could not be aligned at all.
    pub unaligned_length: usize,
    /// Substitution mismatches per 100 kbp of aligned bases.
    pub mismatches_per_100kbp: f64,
    /// Indels per 100 kbp of aligned bases.
    pub indels_per_100kbp: f64,
    /// Length of the largest single aligned block.
    pub largest_alignment: usize,
    /// Total aligned bases (contig side).
    pub aligned_length: usize,
    /// Absolute number of substitution mismatches.
    pub total_mismatches: usize,
    /// Absolute number of indel positions.
    pub total_indels: usize,
}

/// Counts of alignment differences.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct DiffCounts {
    substitutions: usize,
    indels: usize,
}

/// Global banded alignment that counts substitutions and indels exactly
/// (Needleman–Wunsch with unit costs restricted to a diagonal band).
fn banded_diff_counts(a: &[Base], b: &[Base], band: usize) -> DiffCounts {
    let (n, m) = (a.len(), b.len());
    if n == 0 {
        return DiffCounts {
            substitutions: 0,
            indels: m,
        };
    }
    if m == 0 {
        return DiffCounts {
            substitutions: 0,
            indels: n,
        };
    }
    let band = band.max(n.abs_diff(m) + 1);
    const INF: u32 = u32::MAX / 4;
    let width = 2 * band + 1;
    // dp[i][j - (i - band)] over the band; store cost only, then recompute the
    // operation split by retracing greedily — to keep memory small we instead
    // track (cost, subs) pairs, deriving indels as cost − subs.
    let idx = |i: usize, j: usize| -> Option<usize> {
        let lo = i.saturating_sub(band);
        if j < lo || j > i + band || j > m {
            None
        } else {
            Some(j - lo)
        }
    };
    let mut prev = vec![(INF, 0u32); width + 1];
    let mut curr = vec![(INF, 0u32); width + 1];
    // Row 0.
    for (j, cell) in prev.iter_mut().enumerate().take(band.min(m) + 1) {
        *cell = (j as u32, 0);
    }
    for i in 1..=n {
        curr.iter_mut().for_each(|c| *c = (INF, 0));
        let lo = i.saturating_sub(band);
        let hi = (i + band).min(m);
        for j in lo..=hi {
            let pos = idx(i, j).expect("within band");
            let mut best = (INF, 0u32);
            // Deletion from `a` (gap in b).
            if let Some(p) = idx(i - 1, j) {
                let (c, s) = prev[p];
                if c + 1 < best.0 {
                    best = (c + 1, s);
                }
            }
            // Insertion (gap in a).
            if j > 0 {
                if let Some(p) = idx(i, j - 1) {
                    let (c, s) = curr[p];
                    if c + 1 < best.0 {
                        best = (c + 1, s);
                    }
                }
            }
            // Match / substitution.
            if j > 0 {
                if let Some(p) = idx(i - 1, j - 1) {
                    let (c, s) = prev[p];
                    let is_sub = a[i - 1] != b[j - 1];
                    let cost = c + u32::from(is_sub);
                    if cost < best.0 {
                        best = (cost, s + u32::from(is_sub));
                    }
                }
            }
            curr[pos] = best;
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    let final_pos = idx(n, m).expect("final cell in band");
    let (cost, subs) = prev[final_pos];
    if cost >= INF {
        // Band too narrow (should not happen with the widened band): fall back
        // to calling everything a substitution.
        return DiffCounts {
            substitutions: n.max(m),
            indels: 0,
        };
    }
    DiffCounts {
        substitutions: subs as usize,
        indels: (cost - subs) as usize,
    }
}

/// Builds the forward k-mer index of the reference.
fn index_reference(reference: &DnaString, k: usize) -> HashMap<u64, Vec<usize>> {
    let mut index: HashMap<u64, Vec<usize>> = HashMap::new();
    for (pos, kmer) in reference.kmers(k).enumerate() {
        index.entry(kmer.packed()).or_default().push(pos);
    }
    index
}

/// The best placement found for one oriented contig.
struct Placement {
    votes: usize,
    hits: usize,
    offset: i64,
    reverse: bool,
}

fn best_placement(
    oriented: &DnaString,
    reverse: bool,
    index: &HashMap<u64, Vec<usize>>,
    config: &AlignmentConfig,
) -> Option<Placement> {
    let k = config.anchor_k;
    if oriented.len() < k {
        return None;
    }
    let mut offsets: HashMap<i64, usize> = HashMap::new();
    let mut hits = 0usize;
    let mut pos = 0usize;
    while pos + k <= oriented.len() {
        let anchor = oriented.kmer_at(pos, k).expect("anchor in range");
        if let Some(ref_positions) = index.get(&anchor.packed()) {
            hits += 1;
            for &rp in ref_positions.iter().take(8) {
                *offsets.entry(rp as i64 - pos as i64).or_insert(0) += 1;
            }
        }
        if pos + k == oriented.len() {
            break;
        }
        pos = (pos + config.anchor_stride).min(oriented.len() - k);
    }
    // Cluster offsets within the alignment band: a handful of small indels
    // shifts later anchors by a few positions but does not make the placement
    // inconsistent (only genuinely chimeric contigs should count as
    // misassembled).
    let tolerance = config.band as i64;
    let (offset, votes) = offsets
        .keys()
        .map(|&candidate| {
            let clustered: usize = offsets
                .iter()
                .filter(|(&o, _)| (o - candidate).abs() <= tolerance)
                .map(|(_, &v)| v)
                .sum();
            (candidate, clustered)
        })
        .max_by_key(|&(_, v)| v)?;
    Some(Placement {
        votes,
        hits,
        offset,
        reverse,
    })
}

/// Aligns every contig against the reference and accumulates the
/// reference-based metrics.
pub fn align_contigs(
    contigs: &[DnaString],
    reference: &DnaString,
    config: &AlignmentConfig,
) -> ReferenceMetrics {
    let index = index_reference(reference, config.anchor_k);
    let ref_bases = reference.to_bases();
    let mut covered = vec![false; reference.len()];
    let mut metrics = ReferenceMetrics::default();

    for contig in contigs {
        if contig.len() < config.anchor_k {
            metrics.unaligned_length += contig.len();
            continue;
        }
        let forward = best_placement(contig, false, &index, config);
        let rc = contig.reverse_complement();
        let backward = best_placement(&rc, true, &index, config);
        let placement = match (forward, backward) {
            (Some(f), Some(b)) => Some(if f.votes >= b.votes { f } else { b }),
            (Some(f), None) => Some(f),
            (None, Some(b)) => Some(b),
            (None, None) => None,
        };
        let Some(placement) = placement else {
            metrics.unaligned_length += contig.len();
            continue;
        };
        if placement.hits == 0 || placement.votes == 0 {
            metrics.unaligned_length += contig.len();
            continue;
        }
        let consistent = placement.votes as f64 / placement.hits as f64;
        if consistent < config.min_consistent_fraction {
            metrics.misassemblies += 1;
            metrics.misassembled_length += contig.len();
        }

        let oriented = if placement.reverse {
            rc.clone()
        } else {
            contig.clone()
        };
        let oriented_bases = oriented.to_bases();
        // Clip the contig to the reference window implied by the offset.
        let (contig_start, ref_start) = if placement.offset >= 0 {
            (0usize, placement.offset as usize)
        } else {
            ((-placement.offset) as usize, 0usize)
        };
        if ref_start >= reference.len() || contig_start >= oriented.len() {
            metrics.unaligned_length += contig.len();
            continue;
        }
        let span = (oriented.len() - contig_start).min(reference.len() - ref_start);
        let contig_part = &oriented_bases[contig_start..contig_start + span];
        let ref_part = &ref_bases[ref_start..ref_start + span];
        let diffs = banded_diff_counts(contig_part, ref_part, config.band);

        metrics.total_mismatches += diffs.substitutions;
        metrics.total_indels += diffs.indels;
        metrics.aligned_length += span;
        metrics.largest_alignment = metrics.largest_alignment.max(span);
        let clipped = contig.len() - span;
        metrics.unaligned_length += clipped;
        for flag in covered.iter_mut().skip(ref_start).take(span) {
            *flag = true;
        }
    }

    let covered_count = covered.iter().filter(|&&c| c).count();
    metrics.genome_fraction_percent = if reference.is_empty() {
        0.0
    } else {
        100.0 * covered_count as f64 / reference.len() as f64
    };
    if metrics.aligned_length > 0 {
        metrics.mismatches_per_100kbp =
            metrics.total_mismatches as f64 * 100_000.0 / metrics.aligned_length as f64;
        metrics.indels_per_100kbp =
            metrics.total_indels as f64 * 100_000.0 / metrics.aligned_length as f64;
    }
    metrics
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppa_readsim::GenomeConfig;

    fn reference(len: usize, seed: u64) -> DnaString {
        GenomeConfig {
            length: len,
            repeat_families: 0,
            seed,
            ..Default::default()
        }
        .generate()
        .sequence
    }

    fn cfg() -> AlignmentConfig {
        AlignmentConfig {
            anchor_k: 15,
            anchor_stride: 16,
            ..Default::default()
        }
    }

    #[test]
    fn perfect_contigs_cover_the_reference() {
        let reference = reference(5_000, 3);
        // Three contigs tiling the reference with a gap.
        let contigs = vec![
            reference.substring(0, 2_000),
            reference.substring(2_100, 1_900),
            reference.substring(4_100, 900),
        ];
        let m = align_contigs(&contigs, &reference, &cfg());
        assert_eq!(m.misassemblies, 0);
        assert_eq!(m.total_mismatches, 0);
        assert_eq!(m.total_indels, 0);
        assert_eq!(m.unaligned_length, 0);
        assert_eq!(m.largest_alignment, 2_000);
        assert_eq!(m.aligned_length, 4_800);
        // 4800 of 5000 covered → 96%.
        assert!((m.genome_fraction_percent - 96.0).abs() < 0.1);
    }

    #[test]
    fn reverse_complement_contigs_align() {
        let reference = reference(3_000, 7);
        let contigs = vec![reference.substring(500, 1_500).reverse_complement()];
        let m = align_contigs(&contigs, &reference, &cfg());
        assert_eq!(m.misassemblies, 0);
        assert_eq!(m.total_mismatches, 0);
        assert_eq!(m.aligned_length, 1_500);
        assert!((m.genome_fraction_percent - 50.0).abs() < 0.1);
    }

    #[test]
    fn substitutions_are_counted() {
        let reference = reference(2_000, 11);
        let mut bases = reference.substring(200, 1_000).to_bases();
        // Introduce 5 substitutions.
        for i in [100usize, 300, 500, 700, 900] {
            bases[i] = bases[i].complement();
        }
        let contig = DnaString::from_bases(&bases);
        let m = align_contigs(&[contig], &reference, &cfg());
        assert_eq!(m.misassemblies, 0);
        assert_eq!(m.total_mismatches, 5);
        assert_eq!(m.total_indels, 0);
        assert!((m.mismatches_per_100kbp - 500.0).abs() < 1.0);
    }

    #[test]
    fn indels_are_counted() {
        let reference = reference(2_000, 13);
        let mut bases = reference.substring(300, 800).to_bases();
        // Delete two bases and insert one elsewhere.
        bases.remove(100);
        bases.remove(400);
        bases.insert(600, Base::A);
        let contig = DnaString::from_bases(&bases);
        let m = align_contigs(&[contig], &reference, &cfg());
        assert!(
            m.total_indels >= 3,
            "expected ≥3 indels, got {}",
            m.total_indels
        );
        assert!(m.total_mismatches <= 2);
    }

    #[test]
    fn chimeric_contig_is_a_misassembly() {
        let reference = reference(6_000, 17);
        // Join two distant regions into one contig.
        let mut chimera = reference.substring(100, 800);
        chimera.extend_from(&reference.substring(4_500, 800));
        let m = align_contigs(&[chimera], &reference, &cfg());
        assert_eq!(m.misassemblies, 1);
        assert_eq!(m.misassembled_length, 1_600);
    }

    #[test]
    fn random_contig_is_unaligned() {
        let reference = reference(2_000, 19);
        let noise = reference.substring(0, 600).reverse_complement();
        // A sequence from a *different* genome does not anchor anywhere.
        let other = GenomeConfig {
            length: 600,
            repeat_families: 0,
            seed: 999,
            ..Default::default()
        }
        .generate()
        .sequence;
        let m = align_contigs(&[other], &reference, &cfg());
        assert_eq!(m.aligned_length, 0);
        assert_eq!(m.unaligned_length, 600);
        assert_eq!(m.genome_fraction_percent, 0.0);
        // Sanity: the rc control does align.
        let m2 = align_contigs(&[noise], &reference, &cfg());
        assert_eq!(m2.unaligned_length, 0);
    }

    #[test]
    fn short_contigs_below_anchor_size_are_unaligned() {
        let reference = reference(1_000, 23);
        let tiny = reference.substring(10, 10);
        let m = align_contigs(&[tiny], &reference, &cfg());
        assert_eq!(m.unaligned_length, 10);
    }

    #[test]
    fn banded_diff_counts_examples() {
        let a = DnaString::from_ascii("ACGTACGTAC").unwrap().to_bases();
        let b = DnaString::from_ascii("ACGTTCGTAC").unwrap().to_bases();
        let d = banded_diff_counts(&a, &b, 8);
        assert_eq!(
            d,
            DiffCounts {
                substitutions: 1,
                indels: 0
            }
        );
        let c = DnaString::from_ascii("ACGTCGTAC").unwrap().to_bases(); // one deletion
        let d = banded_diff_counts(&a, &c, 8);
        assert_eq!(
            d,
            DiffCounts {
                substitutions: 0,
                indels: 1
            }
        );
        let d = banded_diff_counts(&a, &[], 8);
        assert_eq!(
            d,
            DiffCounts {
                substitutions: 0,
                indels: 10
            }
        );
        let d = banded_diff_counts(&[], &[], 8);
        assert_eq!(
            d,
            DiffCounts {
                substitutions: 0,
                indels: 0
            }
        );
    }
}
