//! Reference-free assembly statistics.

use ppa_seq::DnaString;
use serde::{Deserialize, Serialize};

/// Reference-free assembly statistics (the metrics of Table V).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BasicStats {
    /// Number of contigs at least `min_contig_length` long.
    pub num_contigs: usize,
    /// Total length of those contigs, in base pairs.
    pub total_length: usize,
    /// N50 of those contigs.
    pub n50: usize,
    /// N90 of those contigs.
    pub n90: usize,
    /// Length of the largest contig.
    pub largest_contig: usize,
    /// GC percentage (0–100) over those contigs.
    pub gc_percent: f64,
    /// The length cutoff that was applied.
    pub min_contig_length: usize,
}

/// The length `L` such that contigs of length ≥ `L` cover at least `fraction`
/// of the total assembled bases (the Nx family: N50 is `fraction = 0.5`, N90
/// is `0.9`). Returns 0 for an empty input.
///
/// This is the single Nx implementation of the workspace;
/// `ppa_assembler::stats` re-exports [`n50`] for the workflow statistics.
pub fn nx(lengths: &[usize], fraction: f64) -> usize {
    if lengths.is_empty() {
        return 0;
    }
    let mut sorted = lengths.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let total: usize = sorted.iter().sum();
    let target = (total as f64 * fraction).ceil() as usize;
    let mut acc = 0usize;
    for len in sorted {
        acc += len;
        if acc >= target {
            return len;
        }
    }
    0
}

/// The N50 of a set of contig lengths: [`nx`] at `fraction = 0.5`.
pub fn n50(lengths: &[usize]) -> usize {
    nx(lengths, 0.5)
}

/// Computes reference-free statistics over contigs of length ≥
/// `min_contig_length` (QUAST's default cutoff is 500 bp; the paper reports
/// "the number of contigs whose length is larger than 500 bp").
pub fn basic_stats(contigs: &[DnaString], min_contig_length: usize) -> BasicStats {
    let kept: Vec<&DnaString> = contigs
        .iter()
        .filter(|c| c.len() >= min_contig_length)
        .collect();
    let lengths: Vec<usize> = kept.iter().map(|c| c.len()).collect();
    let total_length: usize = lengths.iter().sum();
    let gc_bases: usize = kept
        .iter()
        .map(|c| {
            let counts = c.base_counts();
            counts[1] + counts[2]
        })
        .sum();
    BasicStats {
        num_contigs: kept.len(),
        total_length,
        n50: nx(&lengths, 0.5),
        n90: nx(&lengths, 0.9),
        largest_contig: lengths.iter().copied().max().unwrap_or(0),
        gc_percent: if total_length == 0 {
            0.0
        } else {
            100.0 * gc_bases as f64 / total_length as f64
        },
        min_contig_length,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn contigs(lengths: &[usize]) -> Vec<DnaString> {
        lengths
            .iter()
            .map(|&l| DnaString::from_ascii(&"ACGT".repeat(l.div_ceil(4))[..l]).unwrap())
            .collect()
    }

    #[test]
    fn counts_and_lengths() {
        let c = contigs(&[1000, 600, 400, 80]);
        let stats = basic_stats(&c, 500);
        assert_eq!(stats.num_contigs, 2);
        assert_eq!(stats.total_length, 1600);
        assert_eq!(stats.largest_contig, 1000);
        assert_eq!(stats.n50, 1000);
        assert_eq!(stats.min_contig_length, 500);
        let all = basic_stats(&c, 0);
        assert_eq!(all.num_contigs, 4);
        assert_eq!(all.total_length, 2080);
    }

    #[test]
    fn n50_and_n90() {
        // Lengths 8,8,4,3,3,2,2,2 → total 32; N50 = 8; N90: need ≥ 28.8 → 8+8+4+3+3+2+2=30 → 2.
        let c = contigs(&[2, 2, 2, 3, 3, 4, 8, 8]);
        let stats = basic_stats(&c, 0);
        assert_eq!(stats.n50, 8);
        assert_eq!(stats.n90, 2);
    }

    #[test]
    fn gc_percent() {
        let c = vec![
            DnaString::from_ascii("GGGGCCCC").unwrap(),
            DnaString::from_ascii("AAAATTTT").unwrap(),
        ];
        let stats = basic_stats(&c, 0);
        assert!((stats.gc_percent - 50.0).abs() < 1e-9);
    }

    #[test]
    fn empty_input() {
        let stats = basic_stats(&[], 500);
        assert_eq!(stats.num_contigs, 0);
        assert_eq!(stats.total_length, 0);
        assert_eq!(stats.n50, 0);
        assert_eq!(stats.gc_percent, 0.0);
    }
}
