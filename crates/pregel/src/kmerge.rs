//! Shared k-way merge over pre-sorted `(key, value)` buffers.
//!
//! Both shuffle planes — the superstep runner and the mini-MapReduce reduce
//! phase — consume one pre-sorted buffer per source worker and need the
//! merged stream in `(key, source)` order (ties broken by the lower source
//! worker, which keeps the merge a pure function of the per-sender buffers
//! and therefore deterministic). The merge drains the buffers in place, so
//! callers get their `Vec` capacity back for reuse.
//!
//! Sources are tracked in a hand-rolled binary min-heap keyed by each
//! source's next key (a `std::collections::BinaryHeap` cannot peek into the
//! drains from its `Ord` impl), so each of the N merged records costs
//! O(log k) comparisons for k sources rather than the O(k) of a linear scan
//! — the difference between the sorted plane winning and losing once the
//! worker count matches a large machine's core count.

use std::vec::Drain;

/// Whether source `a` must be emitted before source `b` (smaller next key,
/// ties to the lower source index).
#[inline]
fn before<K: Ord, V>(drains: &[Drain<'_, (K, V)>], a: usize, b: usize) -> bool {
    let ka = &drains[a].as_slice()[0].0;
    let kb = &drains[b].as_slice()[0].0;
    match ka.cmp(kb) {
        std::cmp::Ordering::Less => true,
        std::cmp::Ordering::Greater => false,
        std::cmp::Ordering::Equal => a < b,
    }
}

fn sift_down<K: Ord, V>(heap: &mut [usize], drains: &[Drain<'_, (K, V)>], mut i: usize) {
    loop {
        let left = 2 * i + 1;
        let right = left + 1;
        let mut smallest = i;
        if left < heap.len() && before(drains, heap[left], heap[smallest]) {
            smallest = left;
        }
        if right < heap.len() && before(drains, heap[right], heap[smallest]) {
            smallest = right;
        }
        if smallest == i {
            return;
        }
        heap.swap(i, smallest);
        i = smallest;
    }
}

/// Merges the pre-sorted buffers into a single `(key, source)`-ordered stream,
/// invoking `emit` once per record. Buffers are drained (emptied, capacity
/// kept).
///
/// Every buffer must already be sorted by key; unsorted input produces an
/// unspecified (but memory-safe) emission order.
pub(crate) fn merge_sorted_buffers<K: Ord, V>(
    bufs: &mut [Vec<(K, V)>],
    mut emit: impl FnMut(K, V),
) {
    let mut drains: Vec<Drain<'_, (K, V)>> = bufs.iter_mut().map(|b| b.drain(..)).collect();
    let mut heap: Vec<usize> = (0..drains.len())
        .filter(|&s| !drains[s].as_slice().is_empty())
        .collect();
    for i in (0..heap.len() / 2).rev() {
        sift_down(&mut heap, &drains, i);
    }
    while let Some(&s) = heap.first() {
        let (k, v) = drains[s].next().expect("heap sources are non-empty");
        emit(k, v);
        if drains[s].as_slice().is_empty() {
            let last = heap.pop().expect("heap is non-empty");
            if !heap.is_empty() {
                heap[0] = last;
            }
        }
        sift_down(&mut heap, &drains, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type Buffers = Vec<Vec<(u64, u64)>>;

    fn merge_collect(mut bufs: Buffers) -> (Vec<(u64, u64)>, Buffers) {
        let mut out = Vec::new();
        merge_sorted_buffers(&mut bufs, |k, v| out.push((k, v)));
        (out, bufs)
    }

    #[test]
    fn merges_in_key_then_source_order() {
        let bufs = vec![
            vec![(1, 10), (3, 30), (3, 31)],
            vec![(1, 11), (2, 20)],
            vec![],
            vec![(0, 1), (4, 40)],
        ];
        let (out, drained) = merge_collect(bufs);
        assert_eq!(
            out,
            vec![(0, 1), (1, 10), (1, 11), (2, 20), (3, 30), (3, 31), (4, 40)]
        );
        assert!(drained.iter().all(|b| b.is_empty()), "buffers are drained");
    }

    #[test]
    fn single_source_is_a_passthrough() {
        let (out, _) = merge_collect(vec![vec![(5, 1), (6, 2), (7, 3)]]);
        assert_eq!(out, vec![(5, 1), (6, 2), (7, 3)]);
    }

    #[test]
    fn empty_input() {
        let (out, _) = merge_collect(vec![]);
        assert!(out.is_empty());
        let (out, _) = merge_collect(vec![vec![], vec![]]);
        assert!(out.is_empty());
    }

    #[test]
    fn equal_keys_prefer_lower_source_across_many_sources() {
        // 8 sources all carrying the same key: values must come out in
        // source order, exercising heap tie-breaking beyond two sources.
        let bufs: Vec<Vec<(u64, u64)>> = (0..8).map(|s| vec![(7, s)]).collect();
        let (out, _) = merge_collect(bufs);
        assert_eq!(
            out.iter().map(|&(_, v)| v).collect::<Vec<_>>(),
            (0..8).collect::<Vec<_>>()
        );
    }

    #[test]
    fn matches_naive_concat_sort_on_random_runs() {
        // Deterministic pseudo-random runs across a spread of source counts.
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for sources in [1usize, 2, 3, 5, 9, 16, 33] {
            let mut bufs: Vec<Vec<(u64, u64)>> = Vec::new();
            let mut naive: Vec<(u64, usize, u64)> = Vec::new();
            for s in 0..sources {
                let len = (next() % 50) as usize;
                let mut buf: Vec<(u64, u64)> = (0..len).map(|_| (next() % 20, next())).collect();
                buf.sort_unstable_by_key(|p| p.0);
                for &(k, v) in &buf {
                    naive.push((k, s, v));
                }
                bufs.push(buf);
            }
            naive.sort_by_key(|&(k, s, _)| (k, s));
            let mut out = Vec::new();
            merge_sorted_buffers(&mut bufs, |k, v| out.push((k, v)));
            assert_eq!(
                out,
                naive
                    .into_iter()
                    .map(|(k, _, v)| (k, v))
                    .collect::<Vec<_>>(),
                "sources = {sources}"
            );
        }
    }
}
