//! Columnar sorted vertex storage shared between consecutive Pregel jobs.
//!
//! Pregel+ distributes vertices to machines by hashing the vertex ID; a
//! [`VertexSet`] does the same over logical workers. *Within* a partition,
//! however, vertices are no longer a hash map: each partition is a
//! struct-of-arrays **columnar store sorted by vertex ID** —
//!
//! * `ids` — the sorted, strictly increasing ID column ("slot" order). For
//!   radix-capable key types this is an `IdColumn` of **delta/bit-packed
//!   128-ID frames** over the keys' `u64` radix images, each frame carrying
//!   its minimum (a skip index for `lower_bound`) and a fixed delta width —
//!   typically 2–3 bytes per ID instead of 8 (see
//!   [`VertexSet::id_column_bytes`]);
//! * `values` — the parallel value column (`None` marks a tombstoned slot);
//! * `halted` — one bit per slot, packed 64 slots to a word;
//! * `stamps` — one `u32` compute stamp per slot.
//!
//! The layout is what makes the runner's message delivery a **merge-join**:
//! the shuffle hands every worker its inbound messages sorted by destination
//! ID (see `runner.rs`), and sorted messages meeting a sorted ID column is a
//! single linear pass — no per-run hash probe, no bucket-array walk. The
//! straggler scan (active vertices that received nothing) becomes a walk over
//! the `halted` bitset, skipping 64 halted vertices per word compare, and a
//! full-partition scan touches three dense arrays instead of a hash table's
//! scattered buckets. The columns also drop the hash map's bucket/control
//! overhead; [`VertexSet::resident_bytes`] reports the footprint and the
//! `vertex_store` benchmark (`BENCH_vertex_store.json`) records the
//! before/after comparison against the hash store preserved in
//! `ppa_bench::legacy`.
//!
//! # Mutation model
//!
//! Point reads are a binary search. Point **inserts** go to a small sorted
//! `pending` side buffer (merged into the columns when it outgrows a
//! threshold) so they never shift the big columns; point **removes**
//! tombstone their slot (`values[slot] = None`) and the partition compacts
//! once tombstones dominate. [`retain`](VertexSet::retain) batch-tombstones
//! and compacts once. Compaction rebuilds the columns in one linear merge of
//! the live slots and the pending run; it resets the `halted`/`stamps`
//! bookkeeping, which is safe because every job begins by
//! re-activating (and compacting) the set via the crate-internal
//! `activate_all`.
//! Bulk construction ([`from_pairs`](VertexSet::from_pairs), the output side
//! of [`convert`](VertexSet::convert)) never goes through `pending`: pairs
//! are radix-sorted by ID (narrow key column only — payloads are moved once,
//! by a gather pass) and the columns are emitted directly.
//!
//! A sustained burst of point operations on a large partition — the
//! removal-churn shape where binary searches and pending memmoves used to
//! lose 0.56× to the old hash store — flips the partition into **sidecar
//! mode**: the columns drain wholesale into an `FxHashMap<I, V>` and every
//! point op, retain and scan runs on the map, so a churn-heavy phase pays
//! exactly what the old hash store paid (one probe, value inline). The
//! sidecar drains back at the next `compact`: its
//! pairs are radix-sorted and re-emitted as fresh columns (all-active, like
//! any compaction), so the steady-state delivery plane never sees it.
//!
//! The [`convert`](VertexSet::convert) method implements the paper's first
//! API extension (Section II, "Our Extensions to Pregel API"): the output
//! vertices of one job are transformed in place into the input vertices of
//! the next job and re-shuffled by the new vertex IDs, without a round-trip
//! through HDFS. Its sort-merge shuffle streams in ID order, so the merged
//! output *is* the new sorted column — no rebuild step.

use crate::engine::ExecCtx;
use crate::fxhash::{hash_one, FxHashMap};
use crate::kernels;
use crate::kernels::FRAME;
use crate::radix::SortKey;
use crate::vertex::VertexKey;

/// Sets or clears bit `slot` in a packed bitset.
#[inline]
pub(crate) fn set_bit(words: &mut [u64], slot: usize, on: bool) {
    let (w, m) = (slot >> 6, 1u64 << (slot & 63));
    if on {
        words[w] |= m;
    } else {
        words[w] &= !m;
    }
}

/// Reads bit `slot` of a packed bitset (test-only counterpart of
/// [`set_bit`]: the engine reads halt state word-at-a-time instead).
#[cfg(test)]
#[inline]
pub(crate) fn get_bit(words: &[u64], slot: usize) -> bool {
    words[slot >> 6] & (1u64 << (slot & 63)) != 0
}

/// Number of `u64` words needed for `slots` bits.
#[inline]
fn words_for(slots: usize) -> usize {
    slots.div_ceil(64)
}

/// First index `>= lo` at which `ids[index] >= *target` (i.e. the lower
/// bound), assuming `ids` is sorted ascending and everything before `lo` is
/// `< *target`.
///
/// Tuned for a monotone cursor walking message runs against the ID column: a
/// short linear probe wins when the frontier is dense (the next run lands a
/// few slots ahead); past that it gallops (exponential steps, then a binary
/// search inside the final window), so sparse frontiers cost
/// `O(log distance)` per run instead of a full linear walk.
pub(crate) fn lower_bound_from<I: Ord>(ids: &[I], mut lo: usize, target: &I) -> usize {
    let n = ids.len();
    for _ in 0..8 {
        if lo >= n || ids[lo] >= *target {
            return lo;
        }
        lo += 1;
    }
    let mut step = 8usize;
    let mut hi = lo + step;
    while hi < n && ids[hi] < *target {
        lo = hi + 1;
        step <<= 1;
        hi = lo + step;
    }
    let hi = hi.min(n);
    lo + ids[lo..hi].partition_point(|x| x < target)
}

/// Delta/bit-packed sorted-ID storage: the strictly increasing `u64` radix
/// images are sealed into [`FRAME`]-ID frames, each stored as fixed-width
/// deltas from the frame's first ID (its *base*). `bases` doubles as a
/// block-min skip index for [`lower_bound`](PackedIds::lower_bound); the
/// trailing `< FRAME` images wait un-packed in `tail`.
#[derive(Debug, Clone, Default)]
pub(crate) struct PackedIds {
    /// Bit-packed delta stream; each sealed frame starts at a word boundary.
    words: Vec<u64>,
    /// First ID image of each sealed frame (ascending — the skip index).
    bases: Vec<u64>,
    /// Word offset of each sealed frame within `words`.
    offsets: Vec<u32>,
    /// Delta bit width of each sealed frame.
    widths: Vec<u8>,
    /// Unsealed trailing images, `< FRAME` of them.
    tail: Vec<u64>,
}

impl PackedIds {
    #[inline]
    fn sealed(&self) -> usize {
        self.bases.len()
    }

    #[inline]
    fn len(&self) -> usize {
        self.sealed() * FRAME + self.tail.len()
    }

    /// Appends an image strictly greater than every stored one.
    fn push(&mut self, image: u64) {
        debug_assert!(
            self.last().is_none_or(|l| l < image),
            "PackedIds requires strictly ascending images"
        );
        self.tail.push(image);
        if self.tail.len() == FRAME {
            let base = self.tail[0];
            let width = match self.tail[FRAME - 1] - base {
                0 => 0,
                d => 64 - d.leading_zeros(),
            };
            self.offsets.push(self.words.len() as u32);
            self.widths.push(width as u8);
            self.bases.push(base);
            kernels::pack_frame(&self.tail, base, width, &mut self.words);
            self.tail.clear();
        }
    }

    fn last(&self) -> Option<u64> {
        if let Some(&t) = self.tail.last() {
            return Some(t);
        }
        let f = self.sealed().checked_sub(1)?;
        Some(self.get_in_frame(f, FRAME - 1))
    }

    /// Image at `idx % FRAME` within sealed frame `f`.
    #[inline]
    fn get_in_frame(&self, f: usize, idx: usize) -> u64 {
        kernels::unpack_one(
            &self.words[self.offsets[f] as usize..],
            self.bases[f],
            self.widths[f] as u32,
            idx,
        )
    }

    /// Image at global position `i`.
    fn get(&self, i: usize) -> u64 {
        let f = i / FRAME;
        if f < self.sealed() {
            self.get_in_frame(f, i % FRAME)
        } else {
            self.tail[i - self.sealed() * FRAME]
        }
    }

    /// Decodes sealed frame `f` into `out`.
    fn decode_frame(&self, f: usize, out: &mut [u64; FRAME]) {
        let start = self.offsets[f] as usize;
        let width = self.widths[f] as u32;
        let end = start + kernels::frame_words(FRAME, width);
        kernels::unpack_frame(&self.words[start..end], self.bases[f], width, &mut out[..]);
    }

    /// First position whose image is `>= image` (the global lower bound):
    /// binary search over the frame bases, then within one frame.
    fn lower_bound(&self, image: u64) -> usize {
        let sealed = self.sealed();
        let f = self.bases.partition_point(|&b| b <= image);
        if f == 0 {
            // No sealed frame starts at or below `image`: either the very
            // first sealed ID already exceeds it, or only the tail exists.
            if sealed > 0 {
                return 0;
            }
            return self.tail.partition_point(|&v| v < image);
        }
        let tf = f - 1;
        let (mut lo, mut hi) = (0usize, FRAME);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.get_in_frame(tf, mid) < image {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        if lo < FRAME {
            return tf * FRAME + lo;
        }
        if tf + 1 < sealed {
            // Frame `tf` is exhausted and frame `tf + 1` starts above
            // `image` (by choice of `tf`): its first slot is the bound.
            return (tf + 1) * FRAME;
        }
        sealed * FRAME + self.tail.partition_point(|&v| v < image)
    }

    /// Heap bytes of the packed representation.
    fn heap_bytes(&self) -> usize {
        self.words.capacity() * 8
            + self.bases.capacity() * 8
            + self.offsets.capacity() * 4
            + self.widths.capacity()
            + self.tail.capacity() * 8
    }

    /// Checks the sealed-frame invariants (debug builds only): equal-length
    /// frame tables, strictly increasing images within and across frames
    /// (which implies ascending bases), per-frame deltas that fit the
    /// recorded width, and an unsealed tail shorter than one frame.
    #[cfg(debug_assertions)]
    fn debug_validate(&self) {
        assert_eq!(
            self.bases.len(),
            self.offsets.len(),
            "frame table lengths diverge (bases vs offsets)"
        );
        assert_eq!(
            self.bases.len(),
            self.widths.len(),
            "frame table lengths diverge (bases vs widths)"
        );
        assert!(
            self.tail.len() < FRAME,
            "unsealed tail must stay below one frame"
        );
        let mut prev: Option<u64> = None;
        let mut frame = [0u64; FRAME];
        for f in 0..self.sealed() {
            self.decode_frame(f, &mut frame);
            assert_eq!(
                frame[0], self.bases[f],
                "frame {f} base must equal its first image"
            );
            let width = self.widths[f] as u32;
            for (k, &image) in frame.iter().enumerate() {
                assert!(
                    prev.is_none_or(|p| p < image),
                    "images must be strictly increasing (frame {f}, slot {k})"
                );
                let delta = image - self.bases[f];
                let fits = match width {
                    0 => delta == 0,
                    64 => true,
                    w => delta < (1u64 << w),
                };
                assert!(
                    fits,
                    "frame {f} slot {k}: delta {delta} exceeds width {width}"
                );
                prev = Some(image);
            }
        }
        for (k, &image) in self.tail.iter().enumerate() {
            assert!(
                prev.is_none_or(|p| p < image),
                "tail images must continue strictly increasing (slot {k})"
            );
            prev = Some(image);
        }
    }
}

/// The sorted ID column of one partition: plain element storage for key
/// types without a radix image (or when
/// [`kernels::force_plain_id_columns`] is engaged at construction time),
/// delta/bit-packed [`PackedIds`] frames otherwise.
#[derive(Debug, Clone)]
pub(crate) enum IdColumn<I> {
    /// One element per slot.
    Plain(Vec<I>),
    /// Packed radix-key images, decoded on access.
    Packed(PackedIds),
}

impl<I: VertexKey + SortKey> IdColumn<I> {
    fn new() -> IdColumn<I> {
        if I::RADIX && !kernels::plain_id_columns_forced() {
            IdColumn::Packed(PackedIds::default())
        } else {
            IdColumn::Plain(Vec::new())
        }
    }

    pub(crate) fn len(&self) -> usize {
        match self {
            IdColumn::Plain(v) => v.len(),
            IdColumn::Packed(p) => p.len(),
        }
    }

    fn reserve(&mut self, additional: usize) {
        match self {
            IdColumn::Plain(v) => v.reserve(additional),
            IdColumn::Packed(p) => {
                // Only the frame metadata is cheap to pre-size; the delta
                // stream's width is unknown until the IDs arrive.
                let frames = additional / FRAME;
                p.bases.reserve(frames);
                p.offsets.reserve(frames);
                p.widths.reserve(frames);
            }
        }
    }

    /// Appends an ID strictly greater than every stored one.
    fn push(&mut self, id: I) {
        match self {
            IdColumn::Plain(v) => v.push(id),
            IdColumn::Packed(p) => p.push(id.radix_key()),
        }
    }

    fn last(&self) -> Option<I> {
        match self {
            IdColumn::Plain(v) => v.last().copied(),
            IdColumn::Packed(p) => p.last().map(I::from_radix_key),
        }
    }

    /// `slice::binary_search` over the column.
    fn binary_search(&self, id: &I) -> Result<usize, usize> {
        match self {
            IdColumn::Plain(v) => v.binary_search(id),
            IdColumn::Packed(p) => {
                let image = id.radix_key();
                let lb = p.lower_bound(image);
                if lb < p.len() && p.get(lb) == image {
                    Ok(lb)
                } else {
                    Err(lb)
                }
            }
        }
    }

    /// Iterates the IDs in slot order, decoding packed frames once each.
    pub(crate) fn iter(&self) -> IdColumnIter<'_, I> {
        IdColumnIter {
            col: self,
            pos: 0,
            len: self.len(),
            frame: usize::MAX,
            buf: [0; FRAME],
        }
    }

    /// A decoding cursor for the runner's monotone merge-join walk.
    pub(crate) fn cursor(&self) -> IdCursor<'_, I> {
        IdCursor {
            col: self,
            frame: usize::MAX,
            buf: [0; FRAME],
        }
    }

    /// Consumes the column into a plain `Vec` (one transient decode for
    /// packed columns — the `into_entries` path).
    fn into_vec(self) -> Vec<I> {
        match self {
            IdColumn::Plain(v) => v,
            IdColumn::Packed(_) => {
                let mut out = Vec::with_capacity(self.len());
                out.extend(self.iter());
                out
            }
        }
    }

    /// `(actual heap bytes, plain-equivalent bytes)` — the compression
    /// numerator and denominator surfaced in `SuperstepMetrics`.
    fn footprint(&self) -> (usize, usize) {
        (self.heap_bytes(), self.len() * std::mem::size_of::<I>())
    }

    /// Checks the representation-specific invariants (debug builds only):
    /// packed columns validate their sealed-frame structure. The generic
    /// strict-ordering invariant is checked by the partition, which sees
    /// the decoded IDs for both representations.
    #[cfg(debug_assertions)]
    fn debug_validate(&self) {
        if let IdColumn::Packed(p) = self {
            p.debug_validate();
        }
    }
}

impl<I> IdColumn<I> {
    /// An empty column pinned to the `Plain` representation regardless of
    /// the key type — the spill layer's extent window, whose IDs are decoded
    /// exactly once at fault-in and then read positionally.
    pub(crate) fn plain() -> IdColumn<I> {
        IdColumn::Plain(Vec::new())
    }

    /// The backing vector of a `Plain` column. Callers construct the column
    /// via [`IdColumn::plain`]; a `Packed` column here is a programming
    /// error.
    pub(crate) fn as_plain_mut(&mut self) -> &mut Vec<I> {
        match self {
            IdColumn::Plain(v) => v,
            IdColumn::Packed(_) => unreachable!("spill window columns are always plain"),
        }
    }

    /// Heap bytes actually held by the column.
    pub(crate) fn heap_bytes(&self) -> usize {
        match self {
            IdColumn::Plain(v) => v.capacity() * std::mem::size_of::<I>(),
            IdColumn::Packed(p) => p.heap_bytes(),
        }
    }
}

/// Iterator over an [`IdColumn`]'s IDs in slot order, caching one decoded
/// frame at a time.
pub(crate) struct IdColumnIter<'a, I> {
    col: &'a IdColumn<I>,
    pos: usize,
    len: usize,
    frame: usize,
    buf: [u64; FRAME],
}

impl<I: VertexKey + SortKey> Iterator for IdColumnIter<'_, I> {
    type Item = I;

    fn next(&mut self) -> Option<I> {
        if self.pos >= self.len {
            return None;
        }
        let i = self.pos;
        self.pos += 1;
        Some(match self.col {
            IdColumn::Plain(v) => v[i],
            IdColumn::Packed(p) => {
                let f = i / FRAME;
                if f < p.sealed() {
                    if self.frame != f {
                        p.decode_frame(f, &mut self.buf);
                        self.frame = f;
                    }
                    I::from_radix_key(self.buf[i % FRAME])
                } else {
                    I::from_radix_key(p.tail[i - p.sealed() * FRAME])
                }
            }
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.len - self.pos;
        (rem, Some(rem))
    }
}

impl<I: VertexKey + SortKey> ExactSizeIterator for IdColumnIter<'_, I> {}

/// A monotone read cursor over an [`IdColumn`]: the runner's merge-join and
/// straggler sweep walk slots in ascending order, so each packed frame is
/// decoded at most once per pass.
pub(crate) struct IdCursor<'a, I> {
    col: &'a IdColumn<I>,
    frame: usize,
    buf: [u64; FRAME],
}

impl<I: VertexKey + SortKey> IdCursor<'_, I> {
    /// [`lower_bound_from`] over the column.
    pub(crate) fn lower_bound_from(&mut self, lo: usize, target: &I) -> usize {
        match self.col {
            IdColumn::Plain(v) => lower_bound_from(v, lo, target),
            IdColumn::Packed(p) => {
                packed_lower_bound_from(p, &mut self.frame, &mut self.buf, lo, target.radix_key())
            }
        }
    }

    /// The ID at `slot`.
    pub(crate) fn get(&mut self, slot: usize) -> I {
        match self.col {
            IdColumn::Plain(v) => v[slot],
            IdColumn::Packed(p) => {
                let f = slot / FRAME;
                if f < p.sealed() {
                    if self.frame != f {
                        p.decode_frame(f, &mut self.buf);
                        self.frame = f;
                    }
                    I::from_radix_key(self.buf[slot % FRAME])
                } else {
                    I::from_radix_key(p.tail[slot - p.sealed() * FRAME])
                }
            }
        }
    }
}

/// [`lower_bound_from`] on a packed column, reusing the cursor's decoded
/// frame: probe the cached/current frame first (the merge-join common case),
/// then skip whole frames via the base index.
fn packed_lower_bound_from(
    p: &PackedIds,
    frame: &mut usize,
    buf: &mut [u64; FRAME],
    lo: usize,
    image: u64,
) -> usize {
    let n = p.len();
    if lo >= n {
        return n;
    }
    let sealed = p.sealed();
    let lf = lo / FRAME;
    if lf < sealed {
        // Last frame at or after `lf` whose base is `<= image`; by the
        // contract everything before `lo` is `< image`, so frames before
        // `lf` cannot hold the bound. A monotone cursor almost always finds
        // it in the current or next frame, so probe those two before binary
        // searching the rest of the skip index.
        let rel = if lf + 1 >= sealed || p.bases[lf + 1] > image {
            usize::from(p.bases[lf] <= image)
        } else if lf + 2 >= sealed || p.bases[lf + 2] > image {
            2
        } else {
            2 + p.bases[lf + 2..].partition_point(|&b| b <= image)
        };
        if rel == 0 {
            // Even frame `lf` starts above `image`: the bound is `lo`.
            return lo;
        }
        let tf = lf + rel - 1;
        if *frame != tf {
            p.decode_frame(tf, buf);
            *frame = tf;
        }
        let start = if tf == lf { lo - lf * FRAME } else { 0 };
        let pos = kernels::lower_bound_u64(&buf[..], start, image);
        if pos < FRAME {
            return tf * FRAME + pos;
        }
        if tf + 1 < sealed {
            // Frame `tf + 1` starts above `image` by choice of `tf`.
            return (tf + 1) * FRAME;
        }
        // Fall through to the tail.
    }
    let tail_off = sealed * FRAME;
    tail_off + kernels::lower_bound_u64(&p.tail, lo.saturating_sub(tail_off), image)
}

/// Either-style iterator over a partition's two storage modes.
enum ModeIter<C, S> {
    Columns(C),
    Sidecar(S),
}

impl<T, C: Iterator<Item = T>, S: Iterator<Item = T>> Iterator for ModeIter<C, S> {
    type Item = T;
    #[inline]
    fn next(&mut self) -> Option<T> {
        match self {
            ModeIter::Columns(c) => c.next(),
            ModeIter::Sidecar(s) => s.next(),
        }
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            ModeIter::Columns(c) => c.size_hint(),
            ModeIter::Sidecar(s) => s.size_hint(),
        }
    }
}

/// Point operations on the sorted path before a partition enters sidecar
/// mode.
const SIDECAR_AFTER_OPS: u32 = 64;

/// Minimum partition size for the sidecar: below this the binary searches
/// are cheap enough that the map would cost more than it saves.
const SIDECAR_MIN_LEN: usize = 4096;

/// One partition of a [`VertexSet`]: parallel columns sorted by vertex ID.
///
/// Invariants: `ids` is strictly increasing; `values[slot]` is `Some` unless
/// the slot is tombstoned (`dead` counts tombstones); `halted` has one bit
/// and `stamps` one entry per slot, with all bits beyond the slot count zero;
/// `pending` is sorted, duplicate-free, and ID-disjoint from `ids` (a
/// re-inserted tombstoned ID revives its slot instead).
#[derive(Debug, Clone)]
pub(crate) struct Partition<I, V> {
    ids: IdColumn<I>,
    values: Vec<Option<V>>,
    halted: Vec<u64>,
    stamps: Vec<u32>,
    dead: usize,
    pending: Vec<(I, V)>,
    /// Hash sidecar (`Some` only in sidecar mode — see the module docs).
    /// While present it holds *every* entry and the columns are empty.
    sidecar: Option<FxHashMap<I, V>>,
    /// Point operations on the sorted path since the last compaction; the
    /// sidecar trigger counter.
    point_ops: u32,
}

/// Mutable view of a compacted partition's columns, handed to the runner for
/// the duration of a compute phase. Field-level borrows let the delivery loop
/// hold a value `&mut` while flipping halt bits.
pub(crate) struct RunColumns<'a, I, V> {
    /// The sorted ID column (decode through [`IdColumn::cursor`]).
    pub(crate) ids: &'a IdColumn<I>,
    /// The value column; every slot is `Some` (no tombstones during a run).
    pub(crate) values: &'a mut [Option<V>],
    /// Halt bits, one per slot.
    pub(crate) halted: &'a mut [u64],
    /// Compute stamps, one per slot.
    pub(crate) stamps: &'a mut [u32],
}

impl<I: VertexKey + SortKey, V: Send> Partition<I, V> {
    fn empty() -> Partition<I, V> {
        Partition {
            ids: IdColumn::new(),
            values: Vec::new(),
            halted: Vec::new(),
            stamps: Vec::new(),
            dead: 0,
            pending: Vec::new(),
            sidecar: None,
            point_ops: 0,
        }
    }

    /// Live vertices stored in the columns (excluding `pending`).
    #[inline]
    fn live(&self) -> usize {
        self.ids.len() - self.dead
    }

    fn len(&self) -> usize {
        match &self.sidecar {
            Some(map) => map.len(),
            None => self.live() + self.pending.len(),
        }
    }

    /// Appends a vertex with an ID greater than every stored one — the bulk
    /// build path (`from_unsorted`, `convert`'s merge output).
    fn push_sorted(&mut self, id: I, value: V) {
        debug_assert!(
            self.pending.is_empty() && self.ids.last().is_none_or(|last| last < id),
            "push_sorted requires strictly ascending IDs into a pending-free partition"
        );
        if self.ids.len().is_multiple_of(64) {
            self.halted.push(0);
        }
        self.ids.push(id);
        self.values.push(Some(value));
        self.stamps.push(0);
    }

    /// Builds a partition from arbitrarily ordered pairs; later duplicates
    /// replace earlier ones. Sorts a narrow `(id, index)` key column with the
    /// radix plane, then gathers each winning payload once.
    fn from_unsorted(pairs: Vec<(I, V)>) -> Partition<I, V> {
        assert!(
            pairs.len() <= u32::MAX as usize,
            "a partition is capped at u32::MAX staged pairs"
        );
        // Point inserts into an ascending key space arrive pre-sorted (e.g.
        // sequential vertex IDs staged in input order); skip the sort and the
        // duplicate merge outright.
        if pairs.windows(2).all(|w| w[0].0 < w[1].0) {
            let mut part = Partition::empty();
            part.ids.reserve(pairs.len());
            part.values.reserve(pairs.len());
            part.stamps.reserve(pairs.len());
            for (id, value) in pairs {
                part.push_sorted(id, value);
            }
            part.debug_validate();
            return part;
        }
        let mut keys: Vec<(I, u32)> = pairs
            .iter()
            .enumerate()
            .map(|(i, (id, _))| (*id, i as u32))
            .collect();
        let mut scratch: Vec<(I, u32)> = Vec::new();
        crate::radix::sort_pairs(&mut keys, &mut scratch);
        let mut values: Vec<Option<V>> = pairs.into_iter().map(|(_, v)| Some(v)).collect();
        let mut part = Partition::empty();
        part.ids.reserve(keys.len());
        part.values.reserve(keys.len());
        part.stamps.reserve(keys.len());
        let mut it = keys.into_iter().peekable();
        while let Some((id, index)) = it.next() {
            // The sort is stable, so the last entry of an equal-ID run is the
            // latest insertion — the one that wins.
            if it.peek().is_some_and(|(next, _)| *next == id) {
                values[index as usize] = None;
                continue;
            }
            let value = values[index as usize]
                .take()
                .expect("each index gathered once");
            part.push_sorted(id, value);
        }
        part.debug_validate();
        part
    }

    /// Merges `pending` into the columns and drops tombstones: one linear
    /// pass rebuilding the four parallel arrays. Resets `halted`/`stamps`
    /// (every job re-activates the set before running, so the bookkeeping
    /// carries no information across mutations).
    fn compact(&mut self) {
        self.drop_sidecar();
        if self.dead == 0 && self.pending.is_empty() {
            self.debug_validate();
            return;
        }
        let len = self.live() + self.pending.len();
        let mut ids: IdColumn<I> = IdColumn::new();
        ids.reserve(len);
        let mut values: Vec<Option<V>> = Vec::with_capacity(len);
        let old_ids = std::mem::replace(&mut self.ids, IdColumn::new());
        let old_values = std::mem::take(&mut self.values);
        let mut pending = std::mem::take(&mut self.pending).into_iter().peekable();
        for (id, value) in old_ids.iter().zip(old_values) {
            let Some(value) = value else { continue };
            while pending.peek().is_some_and(|(pid, _)| *pid < id) {
                let (pid, pv) = pending.next().expect("peeked");
                ids.push(pid);
                values.push(Some(pv));
            }
            ids.push(id);
            values.push(Some(value));
        }
        for (pid, pv) in pending {
            ids.push(pid);
            values.push(Some(pv));
        }
        debug_assert_eq!(ids.len(), len);
        self.ids = ids;
        self.values = values;
        self.dead = 0;
        self.halted.clear();
        self.halted.resize(words_for(len), 0);
        self.stamps.clear();
        self.stamps.resize(len, 0);
        self.debug_validate();
    }

    /// Flushes `pending` once it outgrows its threshold. `√live` balances the
    /// two point-insert costs — the sorted-insert memmove (∝ pending length,
    /// paid per insert) against the linear column merge (∝ live, paid per
    /// flush) — so a burst of n point inserts costs O(n^1.5) instead of the
    /// O(n²) either extreme would.
    fn maybe_flush_pending(&mut self) {
        if self.pending.len() >= 64.max(2 * self.live().isqrt()) {
            self.compact();
        }
    }

    /// Compacts once tombstones dominate the columns.
    fn maybe_drop_tombstones(&mut self) {
        if self.dead > 32 && self.dead * 2 > self.ids.len() {
            self.compact();
        }
    }

    /// Leaves sidecar mode: radix-sorts the map's pairs and re-emits them as
    /// fresh columns (all slots active, stamps zero — the same reset every
    /// compaction performs), then resets the trigger counter.
    fn drop_sidecar(&mut self) {
        if let Some(map) = self.sidecar.take() {
            debug_assert!(
                self.ids.len() == 0 && self.pending.is_empty() && self.dead == 0,
                "sidecar mode keeps the columns empty"
            );
            let mut pairs: Vec<(I, V)> = map.into_iter().collect();
            let mut scratch: Vec<(I, V)> = Vec::new();
            crate::radix::sort_pairs(&mut pairs, &mut scratch);
            self.ids.reserve(pairs.len());
            self.values.reserve(pairs.len());
            self.stamps.reserve(pairs.len());
            for (id, value) in pairs {
                self.push_sorted(id, value);
            }
        }
        self.point_ops = 0;
    }

    /// Counts a point operation on the sorted path and flips the partition
    /// into sidecar mode once a sustained burst meets the size floor: the
    /// columns (live slots + pending) drain wholesale into the map, so every
    /// subsequent op costs exactly one hash probe with the value inline —
    /// the old hash store's price.
    #[inline]
    fn maybe_enter_sidecar(&mut self) {
        if self.sidecar.is_some() {
            return;
        }
        self.point_ops += 1;
        if self.point_ops < SIDECAR_AFTER_OPS || self.len() < SIDECAR_MIN_LEN {
            return;
        }
        self.enter_sidecar();
    }

    /// The cold half of [`Self::maybe_enter_sidecar`]: drains the columns
    /// into the overlay map.
    fn enter_sidecar(&mut self) {
        let mut map: FxHashMap<I, V> = FxHashMap::default();
        map.reserve(self.len());
        let ids = std::mem::replace(&mut self.ids, IdColumn::new());
        let values = std::mem::take(&mut self.values);
        for (id, value) in ids.iter().zip(values) {
            if let Some(value) = value {
                map.insert(id, value);
            }
        }
        for (id, value) in std::mem::take(&mut self.pending) {
            map.insert(id, value);
        }
        self.halted.clear();
        self.stamps.clear();
        self.dead = 0;
        self.sidecar = Some(map);
    }

    // The point ops keep the one-probe sidecar path inline (matching what
    // the dense hash store's calls compiled to) and push the sorted-column
    // fallback into outlined `*_sorted` twins.

    #[inline]
    fn insert(&mut self, id: I, value: V) -> Option<V> {
        self.maybe_enter_sidecar();
        if let Some(map) = &mut self.sidecar {
            return map.insert(id, value);
        }
        self.insert_sorted(id, value)
    }

    fn insert_sorted(&mut self, id: I, value: V) -> Option<V> {
        match self.ids.binary_search(&id) {
            Ok(slot) => {
                let prev = self.values[slot].replace(value);
                if prev.is_none() {
                    self.dead -= 1; // revived a tombstoned slot
                }
                set_bit(&mut self.halted, slot, false);
                self.stamps[slot] = 0;
                prev
            }
            Err(_) => match self.pending.binary_search_by(|(pid, _)| pid.cmp(&id)) {
                Ok(p) => Some(std::mem::replace(&mut self.pending[p].1, value)),
                Err(p) => {
                    self.pending.insert(p, (id, value));
                    self.maybe_flush_pending();
                    None
                }
            },
        }
    }

    #[inline]
    fn remove(&mut self, id: &I) -> Option<V> {
        self.maybe_enter_sidecar();
        if let Some(map) = &mut self.sidecar {
            return map.remove(id);
        }
        self.remove_sorted(id)
    }

    fn remove_sorted(&mut self, id: &I) -> Option<V> {
        match self.ids.binary_search(id) {
            Ok(slot) => {
                let prev = self.values[slot].take()?;
                self.dead += 1;
                set_bit(&mut self.halted, slot, false);
                self.maybe_drop_tombstones();
                Some(prev)
            }
            Err(_) => match self.pending.binary_search_by(|(pid, _)| pid.cmp(id)) {
                Ok(p) => Some(self.pending.remove(p).1),
                Err(_) => None,
            },
        }
    }

    #[inline]
    fn get(&self, id: &I) -> Option<&V> {
        if let Some(map) = &self.sidecar {
            return map.get(id);
        }
        self.get_sorted(id)
    }

    fn get_sorted(&self, id: &I) -> Option<&V> {
        match self.ids.binary_search(id) {
            Ok(slot) => self.values[slot].as_ref(),
            Err(_) => self
                .pending
                .binary_search_by(|(pid, _)| pid.cmp(id))
                .ok()
                .map(|p| &self.pending[p].1),
        }
    }

    #[inline]
    fn get_mut(&mut self, id: &I) -> Option<&mut V> {
        self.maybe_enter_sidecar();
        if self.sidecar.is_some() {
            return self.sidecar.as_mut().and_then(|map| map.get_mut(id));
        }
        self.get_mut_sorted(id)
    }

    fn get_mut_sorted(&mut self, id: &I) -> Option<&mut V> {
        match self.ids.binary_search(id) {
            Ok(slot) => self.values[slot].as_mut(),
            Err(_) => match self.pending.binary_search_by(|(pid, _)| pid.cmp(id)) {
                Ok(p) => Some(&mut self.pending[p].1),
                Err(_) => None,
            },
        }
    }

    fn retain(&mut self, keep: &mut impl FnMut(&I, &V) -> bool) {
        // A churn-heavy phase mixes batch sweeps with point ops; keeping the
        // sidecar engaged across the sweep avoids rebuilding it per round.
        if let Some(map) = &mut self.sidecar {
            map.retain(|id, v| keep(id, v));
            return;
        }
        for (id, value) in self.ids.iter().zip(self.values.iter_mut()) {
            if value.as_ref().is_some_and(|v| !keep(&id, v)) {
                *value = None;
                self.dead += 1;
            }
        }
        self.pending.retain(|(id, v)| keep(id, v));
        self.maybe_drop_tombstones();
    }

    /// Live `(id, value)` entries: column slots in ID order, then pending
    /// (IDs decode by value — [`VertexKey`] is `Copy`). In sidecar mode the
    /// map streams in hash order instead.
    fn iter(&self) -> impl Iterator<Item = (I, &V)> {
        match &self.sidecar {
            Some(map) => ModeIter::Sidecar(map.iter().map(|(id, v)| (*id, v))),
            None => ModeIter::Columns(
                self.ids
                    .iter()
                    .zip(&self.values)
                    .filter_map(|(id, v)| v.as_ref().map(|v| (id, v)))
                    .chain(self.pending.iter().map(|(id, v)| (*id, v))),
            ),
        }
    }

    fn iter_mut(&mut self) -> impl Iterator<Item = (I, &mut V)> {
        match &mut self.sidecar {
            Some(map) => ModeIter::Sidecar(map.iter_mut().map(|(id, v)| (*id, v))),
            None => ModeIter::Columns(
                self.ids
                    .iter()
                    .zip(&mut self.values)
                    .filter_map(|(id, v)| v.as_mut().map(|v| (id, v)))
                    .chain(self.pending.iter_mut().map(|(id, v)| (*id, v))),
            ),
        }
    }

    /// Consumes the partition into its live `(id, value)` pairs.
    fn into_entries(mut self) -> impl Iterator<Item = (I, V)> {
        self.drop_sidecar(); // fold the map back into sorted columns
        self.ids
            .into_vec()
            .into_iter()
            .zip(self.values)
            .filter_map(|(id, v)| v.map(|v| (id, v)))
            .chain(self.pending)
    }

    /// Compacts and zeroes the activity bookkeeping — the per-partition half
    /// of [`VertexSet::activate_all`].
    fn reset_activity(&mut self) {
        self.compact();
        self.halted.iter_mut().for_each(|w| *w = 0);
        self.stamps.iter_mut().for_each(|s| *s = 0);
    }

    /// The columns of a compacted partition, for the runner's compute phase.
    pub(crate) fn run_columns(&mut self) -> RunColumns<'_, I, V> {
        debug_assert!(
            self.dead == 0 && self.pending.is_empty() && self.sidecar.is_none(),
            "run_columns requires a compacted partition (activate_all compacts)"
        );
        RunColumns {
            ids: &self.ids,
            values: &mut self.values,
            halted: &mut self.halted,
            stamps: &mut self.stamps,
        }
    }

    /// Drains the partition's columns into on-disk extents, leaving the
    /// columns empty; the runner computes against the returned seal one
    /// extent window at a time. Requires a compacted partition (the job
    /// start's `activate_all` compacts). On error the drained data is lost —
    /// the caller abandons the job with a spill error, and recovery goes
    /// through checkpoint/resume, not through the half-sealed store.
    pub(crate) fn seal_to(
        &mut self,
        dir: &std::sync::Arc<crate::spill::SpillDir>,
        part_index: usize,
        id_codec: crate::spill::Codec<I>,
        value_codec: crate::spill::Codec<V>,
    ) -> Result<crate::spill::PartSeal<I, V>, crate::spill::SpillError> {
        debug_assert!(
            self.dead == 0 && self.pending.is_empty() && self.sidecar.is_none(),
            "sealing requires a compacted partition (activate_all compacts)"
        );
        let mut seal = crate::spill::PartSeal::new(
            std::sync::Arc::clone(dir),
            part_index,
            id_codec,
            value_codec,
        );
        let ids = std::mem::replace(&mut self.ids, IdColumn::new());
        let values = std::mem::take(&mut self.values);
        let words = std::mem::take(&mut self.halted);
        let stamps = std::mem::take(&mut self.stamps);
        seal.seal_slots(ids.iter().zip(values).zip(stamps).enumerate().map(
            |(slot, ((id, value), stamp))| {
                let halted = words
                    .get(slot >> 6)
                    .is_some_and(|w| (w >> (slot & 63)) & 1 == 1);
                (id, value, halted, stamp)
            },
        ))?;
        self.dead = 0;
        Ok(seal)
    }

    /// Rebuilds the partition's columns from a seal's extents (ascending ID
    /// order, so the column append path applies directly), restoring the
    /// halt bits and compute stamps each slot carried at its last writeback.
    /// The partition must be empty (it is — [`Partition::seal_to`] drained
    /// it).
    pub(crate) fn unseal_from(
        &mut self,
        seal: &mut crate::spill::PartSeal<I, V>,
    ) -> Result<(), crate::spill::SpillError> {
        debug_assert!(
            self.ids.len() == 0 && self.pending.is_empty() && self.sidecar.is_none(),
            "unsealing into a non-empty partition"
        );
        let total = seal.total_slots();
        self.ids.reserve(total);
        self.values.reserve(total);
        self.stamps.reserve(total);
        self.halted.clear();
        self.halted.resize(words_for(total), 0);
        let ids = &mut self.ids;
        let values = &mut self.values;
        let stamps = &mut self.stamps;
        let words = &mut self.halted;
        let mut dead = 0usize;
        let mut slot = 0usize;
        seal.drain_slots(|id, value, halted, stamp| {
            ids.push(id);
            if value.is_none() {
                dead += 1;
            }
            values.push(value);
            stamps.push(stamp);
            set_bit(words, slot, halted);
            slot += 1;
        })?;
        self.dead = dead;
        self.debug_validate();
        Ok(())
    }

    /// Estimated heap bytes held by the columns themselves (excluding any
    /// heap owned by the values).
    fn resident_bytes(&self) -> usize {
        self.ids.heap_bytes()
            + self.values.capacity() * std::mem::size_of::<Option<V>>()
            + self.halted.capacity() * std::mem::size_of::<u64>()
            + self.stamps.capacity() * std::mem::size_of::<u32>()
            + self.pending.capacity() * std::mem::size_of::<(I, V)>()
            + self.sidecar.as_ref().map_or(0, |map| {
                map.capacity() * (std::mem::size_of::<(I, V)>() + 1)
            })
    }

    /// `(actual, plain-equivalent)` heap bytes of the ID column — the
    /// compression ratio surfaced in `SuperstepMetrics`.
    fn id_column_footprint(&self) -> (usize, usize) {
        self.ids.footprint()
    }

    /// Checks the documented partition invariants (debug builds only) — see
    /// the struct docs. Called at the compaction boundaries so every job
    /// starts from a provably consistent store.
    #[cfg(debug_assertions)]
    fn debug_validate(&self) {
        if let Some(_map) = &self.sidecar {
            assert!(
                self.ids.len() == 0
                    && self.values.is_empty()
                    && self.pending.is_empty()
                    && self.dead == 0,
                "sidecar mode keeps the columns empty"
            );
            return;
        }
        let len = self.ids.len();
        assert_eq!(self.values.len(), len, "values column length != id count");
        assert_eq!(self.stamps.len(), len, "stamps column length != id count");
        assert_eq!(
            self.halted.len(),
            words_for(len),
            "halted bitset sized for the slot count"
        );
        let used = len % 64;
        if used != 0 {
            if let Some(&last) = self.halted.last() {
                assert_eq!(
                    last & !((1u64 << used) - 1),
                    0,
                    "halt bits beyond the slot count must be zero"
                );
            }
        }
        let mut prev: Option<I> = None;
        for id in self.ids.iter() {
            assert!(
                prev.is_none_or(|p| p < id),
                "ids must be strictly increasing"
            );
            prev = Some(id);
        }
        self.ids.debug_validate();
        assert_eq!(
            self.dead,
            self.values.iter().filter(|v| v.is_none()).count(),
            "dead must count exactly the tombstoned slots"
        );
        let mut prev_pending: Option<I> = None;
        for (id, _) in &self.pending {
            assert!(
                prev_pending.is_none_or(|p| p < *id),
                "pending must be sorted and duplicate-free"
            );
            assert!(
                self.ids.binary_search(id).is_err(),
                "pending IDs must be disjoint from the columns"
            );
            prev_pending = Some(*id);
        }
    }

    /// Release builds: invariant checking compiles to nothing.
    #[cfg(not(debug_assertions))]
    #[inline(always)]
    fn debug_validate(&self) {}
}

/// A collection of vertices hash-partitioned over a fixed number of workers,
/// each partition a sorted columnar store (see the module docs).
#[derive(Debug, Clone)]
pub struct VertexSet<I, V> {
    pub(crate) parts: Vec<Partition<I, V>>,
}

impl<I: VertexKey + SortKey, V: Send> VertexSet<I, V> {
    /// Creates an empty vertex set partitioned over `workers` workers.
    pub fn new(workers: usize) -> VertexSet<I, V> {
        let workers = workers.max(1);
        VertexSet {
            parts: (0..workers).map(|_| Partition::empty()).collect(),
        }
    }

    /// Builds a vertex set from `(id, value)` pairs. Later duplicates replace
    /// earlier ones.
    ///
    /// This is the bulk path: pairs are staged per partition, the ID column
    /// is radix-sorted, and the columns are emitted directly — cheaper than a
    /// loop of point [`insert`](VertexSet::insert)s.
    pub fn from_pairs(workers: usize, pairs: impl IntoIterator<Item = (I, V)>) -> VertexSet<I, V> {
        let workers = workers.max(1);
        let mut staged: Vec<Vec<(I, V)>> = (0..workers).map(|_| Vec::new()).collect();
        for (id, value) in pairs {
            let w = (hash_one(&id) % workers as u64) as usize;
            staged[w].push((id, value));
        }
        VertexSet {
            parts: staged.into_iter().map(Partition::from_unsorted).collect(),
        }
    }

    /// The number of workers (partitions).
    pub fn workers(&self) -> usize {
        self.parts.len()
    }

    /// The worker that owns vertex `id`.
    #[inline]
    pub fn worker_of(&self, id: &I) -> usize {
        (hash_one(id) % self.parts.len() as u64) as usize
    }

    /// Inserts or replaces a vertex. Returns the previous value if present.
    #[inline]
    pub fn insert(&mut self, id: I, value: V) -> Option<V> {
        let w = self.worker_of(&id);
        self.parts[w].insert(id, value)
    }

    /// Removes a vertex, returning its value.
    #[inline]
    pub fn remove(&mut self, id: &I) -> Option<V> {
        let w = self.worker_of(id);
        self.parts[w].remove(id)
    }

    /// Total number of vertices.
    pub fn len(&self) -> usize {
        self.parts.iter().map(|p| p.len()).sum()
    }

    /// Whether there are no vertices.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether a vertex with this ID exists.
    pub fn contains(&self, id: &I) -> bool {
        self.get(id).is_some()
    }

    /// Shared access to a vertex value.
    #[inline]
    pub fn get(&self, id: &I) -> Option<&V> {
        self.parts[self.worker_of(id)].get(id)
    }

    /// Mutable access to a vertex value.
    #[inline]
    pub fn get_mut(&mut self, id: &I) -> Option<&mut V> {
        let w = self.worker_of(id);
        self.parts[w].get_mut(id)
    }

    /// Iterates over `(id, value)` pairs. Within a partition the stored
    /// columns stream in ID order (pending point inserts trail them); across
    /// partitions the order is unspecified. IDs are yielded by value —
    /// packed columns decode them on the fly ([`VertexKey`] is `Copy`).
    pub fn iter(&self) -> impl Iterator<Item = (I, &V)> {
        self.parts.iter().flat_map(|p| p.iter())
    }

    /// Iterates mutably over `(id, value)` pairs (same order as
    /// [`iter`](VertexSet::iter)).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (I, &mut V)> {
        self.parts.iter_mut().flat_map(|p| p.iter_mut())
    }

    /// Consumes the set and returns all values (order as per
    /// [`iter`](VertexSet::iter)).
    pub fn into_values(self) -> Vec<V> {
        self.parts
            .into_iter()
            .flat_map(|p| p.into_entries().map(|(_, v)| v))
            .collect()
    }

    /// Consumes the set and returns all `(id, value)` pairs (order as per
    /// [`iter`](VertexSet::iter)).
    pub fn into_pairs(self) -> Vec<(I, V)> {
        self.parts
            .into_iter()
            .flat_map(|p| p.into_entries())
            .collect()
    }

    /// Estimated heap bytes held by the store's columns across all
    /// partitions. Counts the ID/value/halted/stamp arrays and the pending
    /// buffers; heap owned by the values themselves (e.g. adjacency `Vec`s)
    /// is not visible from here.
    pub fn resident_bytes(&self) -> usize {
        self.parts.iter().map(|p| p.resident_bytes()).sum()
    }

    /// `(actual, plain-equivalent)` heap bytes of the sorted ID columns
    /// across all partitions. With bit-packed columns the first number is
    /// the delta/bit-packed footprint; with plain columns the two are equal.
    pub fn id_column_bytes(&self) -> (usize, usize) {
        self.parts.iter().fold((0, 0), |(a, b), p| {
            let (pa, pb) = p.id_column_footprint();
            (a + pa, b + pb)
        })
    }

    /// Marks every vertex active and clears compute stamps (called at the
    /// start of a job). Also compacts every partition — merging pending
    /// inserts and dropping tombstones — so the runner sees pure columns.
    pub(crate) fn activate_all(&mut self) {
        for p in &mut self.parts {
            p.reset_activity();
        }
        self.debug_validate();
    }

    /// Checks the documented column invariants of every partition in debug
    /// builds — strictly increasing sorted IDs, bitset/stamps column
    /// lengths, tombstone accounting, and sealed-frame delta monotonicity
    /// in packed ID columns — panicking on the first violation. Runs at
    /// every compaction boundary (e.g. `activate_all` at job start);
    /// release builds compile it to nothing. Tests may call it directly
    /// after a mutation burst.
    #[inline]
    pub fn debug_validate(&self) {
        for p in &self.parts {
            p.debug_validate();
        }
    }

    /// The halt flag of a vertex, if it exists (testing hook: halt state is
    /// otherwise engine-internal).
    #[cfg(test)]
    pub(crate) fn halted_of(&self, id: &I) -> Option<bool> {
        let p = &self.parts[self.worker_of(id)];
        if let Some(map) = &p.sidecar {
            // Sidecar mode follows a mutation burst, which (like compaction)
            // resets every vertex to active.
            return map.contains_key(id).then_some(false);
        }
        match p.ids.binary_search(id) {
            Ok(slot) if p.values[slot].is_some() => Some(get_bit(&p.halted, slot)),
            _ => p.pending.iter().any(|(pid, _)| pid == id).then_some(false),
        }
    }

    /// Removes every vertex for which the predicate returns `false`.
    pub fn retain(&mut self, mut keep: impl FnMut(&I, &V) -> bool) {
        for p in &mut self.parts {
            p.retain(&mut keep);
        }
    }

    /// In-memory job concatenation (the paper's `convert(v)` UDF).
    ///
    /// Every vertex of the finished job is transformed by `f` into zero or
    /// more `(id, value)` pairs for the next job; the generated pairs are then
    /// shuffled to their new owner workers. The transformation runs in
    /// parallel, one pool worker per partition, mirroring how "each machine
    /// generates a set of objects of type V<sub>j'</sub> by calling
    /// convert(.) on its assigned vertices".
    ///
    /// If several pairs share an ID, `merge` folds the later value into the
    /// earlier one (needed e.g. when two half-built adjacency lists of the
    /// same k-mer must be unioned). Merge order is deterministic: pairs of
    /// one source worker fold in emission order, sources fold in worker
    /// order.
    ///
    /// Runs on a private single-pass pool; inside a workflow, prefer
    /// [`convert_on`](VertexSet::convert_on) with the shared context.
    pub fn convert<I2, V2, F, M>(self, f: F, merge: M) -> VertexSet<I2, V2>
    where
        I2: VertexKey + SortKey,
        V2: Send,
        F: Fn(I, V) -> Vec<(I2, V2)> + Sync,
        M: Fn(&mut V2, V2) + Sync,
        V: Send,
        I: Send,
    {
        let ctx = ExecCtx::new(self.workers());
        self.convert_on(&ctx, f, merge)
    }

    /// [`convert`](VertexSet::convert) on a caller-provided execution
    /// context (which must match the set's worker count).
    ///
    /// Like the runner's and the mini MapReduce's shuffles, grouping is
    /// **sort-based**: every source worker presorts its per-destination
    /// buffers by the new vertex ID (stable, so same-ID pairs keep their
    /// emission order) and each destination k-way-merges the pre-sorted
    /// buffers, folding duplicate-ID runs with `merge` as they stream past.
    /// The merged stream arrives in ascending ID order, so it is appended
    /// **directly onto the new sorted columns** — the destination partition
    /// is built without any regrouping step.
    pub fn convert_on<I2, V2, F, M>(self, ctx: &ExecCtx, f: F, merge: M) -> VertexSet<I2, V2>
    where
        I2: VertexKey + SortKey,
        V2: Send,
        F: Fn(I, V) -> Vec<(I2, V2)> + Sync,
        M: Fn(&mut V2, V2) + Sync,
        V: Send,
        I: Send,
    {
        let workers = self.workers();
        ctx.assert_matches(workers, "VertexSet partitioning");
        // Phase 1: per-worker transformation into per-destination buffers,
        // each presorted by destination ID with the stable LSD radix sort of
        // `crate::radix` (stability keeps same-ID emission order, so the
        // merge fold order matches the sequential semantics). One scratch
        // serves all of a worker's destination buffers.
        let shuffled: Vec<Vec<Vec<(I2, V2)>>> =
            ctx.pool().run_per_worker(self.parts, |_w, part| {
                let mut out: Vec<Vec<(I2, V2)>> = (0..workers).map(|_| Vec::new()).collect();
                for (id, value) in part.into_entries() {
                    for (nid, nval) in f(id, value) {
                        let dst = (hash_one(&nid) % workers as u64) as usize;
                        out[dst].push((nid, nval));
                    }
                }
                let mut scratch: Vec<(I2, V2)> = Vec::new();
                for buf in out.iter_mut() {
                    crate::radix::sort_pairs(buf, &mut scratch);
                }
                out
            });
        // Phase 2: transpose, then k-way-merge per destination worker
        // straight into the new columns.
        let mut incoming: Vec<Vec<Vec<(I2, V2)>>> = (0..workers).map(|_| Vec::new()).collect();
        for src in shuffled {
            for (dst, buf) in src.into_iter().enumerate() {
                incoming[dst].push(buf);
            }
        }
        // Cooperative control poll at the convert shuffle barrier, raised on
        // the coordinator thread so a trip never reaches the pool workers.
        // Convert has no superstep counter or bookkept store — 0 for both.
        if let Some(control) = ctx.control() {
            if let Some(reason) = control.poll(0) {
                std::panic::panic_any(crate::engine::EngineError::Cancelled {
                    reason,
                    superstep: 0,
                });
            }
        }
        let parts: Vec<Partition<I2, V2>> = ctx.pool().run_per_worker(incoming, |_w, mut bufs| {
            // Duplicate IDs arrive as one contiguous run of the merged
            // stream (ties prefer the lower source worker), so folding
            // needs only the previous record, and each distinct ID is
            // appended to the sorted columns exactly once.
            let mut part: Partition<I2, V2> = Partition::empty();
            let mut open: Option<(I2, V2)> = None;
            crate::kmerge::merge_sorted_buffers(&mut bufs, |id, val| match &mut open {
                Some((last, acc)) if *last == id => merge(acc, val),
                _ => {
                    if let Some((last, acc)) = open.take() {
                        part.push_sorted(last, acc);
                    }
                    open = Some((id, val));
                }
            });
            if let Some((last, acc)) = open {
                part.push_sorted(last, acc);
            }
            part
        });
        VertexSet { parts }
    }

    /// Repartitions the set over a different number of workers.
    pub fn repartition(self, workers: usize) -> VertexSet<I, V> {
        let workers = workers.max(1);
        VertexSet::from_pairs(workers, self.into_pairs())
    }
}

impl<I: VertexKey + SortKey, V: Send> Default for VertexSet<I, V> {
    fn default() -> Self {
        VertexSet::new(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fxhash::FxHashMap;

    #[test]
    fn insert_get_remove() {
        let mut s: VertexSet<u64, String> = VertexSet::new(4);
        assert!(s.is_empty());
        assert_eq!(s.insert(1, "a".into()), None);
        assert_eq!(s.insert(1, "b".into()), Some("a".into()));
        s.insert(2, "c".into());
        assert_eq!(s.len(), 2);
        assert!(s.contains(&1));
        assert_eq!(s.get(&1).unwrap(), "b");
        *s.get_mut(&2).unwrap() = "d".into();
        assert_eq!(s.get(&2).unwrap(), "d");
        assert_eq!(s.remove(&1), Some("b".into()));
        assert!(!s.contains(&1));
        assert_eq!(s.get(&99), None);
    }

    #[test]
    fn partitioning_is_consistent() {
        let s: VertexSet<u64, ()> = VertexSet::from_pairs(8, (0..1000).map(|i| (i, ())));
        assert_eq!(s.len(), 1000);
        for (id, _) in s.iter() {
            let w = s.worker_of(&id);
            assert!(s.parts[w].get(&id).is_some());
        }
        // every partition got something
        assert!(s.parts.iter().all(|p| p.len() > 0));
    }

    #[test]
    fn columns_stream_in_sorted_id_order() {
        let s: VertexSet<u64, u64> =
            VertexSet::from_pairs(3, (0..500).rev().map(|i| (i * 7 % 501, i)));
        for p in &s.parts {
            let ids: Vec<u64> = p.iter().map(|(id, _)| id).collect();
            assert!(
                ids.windows(2).all(|w| w[0] < w[1]),
                "sorted, duplicate-free"
            );
        }
    }

    #[test]
    fn tombstoned_slot_revives_on_reinsert() {
        let mut s: VertexSet<u64, u64> = VertexSet::from_pairs(2, (0..10).map(|i| (i, i)));
        assert_eq!(s.remove(&4), Some(4));
        assert!(!s.contains(&4));
        assert_eq!(s.len(), 9);
        assert_eq!(s.insert(4, 44), None, "tombstoned slot looks absent");
        assert_eq!(s.get(&4), Some(&44));
        assert_eq!(s.len(), 10);
    }

    #[test]
    fn pending_inserts_flush_into_the_columns() {
        let mut s: VertexSet<u64, u64> = VertexSet::new(1);
        // Enough point inserts to cross the pending threshold several times.
        for i in 0..1000u64 {
            s.insert(i * 17 % 1001, i);
        }
        assert_eq!(s.len(), 1000);
        // Every key readable regardless of which side (columns/pending) holds it.
        for i in 0..1000u64 {
            assert!(s.contains(&(i * 17 % 1001)), "missing {i}");
        }
    }

    #[test]
    fn removal_heavy_churn_stays_consistent() {
        let mut s: VertexSet<u64, u64> = VertexSet::from_pairs(2, (0..512).map(|i| (i, i)));
        // Remove enough to trigger tombstone compaction, then reinsert.
        for i in (0..512).step_by(2) {
            assert_eq!(s.remove(&i), Some(i));
        }
        assert_eq!(s.len(), 256);
        for i in (0..512).step_by(4) {
            assert_eq!(s.insert(i, i + 1000), None);
        }
        assert_eq!(s.len(), 256 + 128);
        assert_eq!(s.get(&4), Some(&1004));
        assert_eq!(s.get(&2), None);
        assert_eq!(s.get(&3), Some(&3));
    }

    #[test]
    fn retain_and_into_values() {
        let mut s: VertexSet<u64, u64> = VertexSet::from_pairs(3, (0..100).map(|i| (i, i * 2)));
        s.retain(|_, v| *v % 4 == 0);
        assert_eq!(s.len(), 50);
        let mut vals = s.into_values();
        vals.sort_unstable();
        assert_eq!(vals[0], 0);
        assert_eq!(vals.len(), 50);
        assert!(vals.iter().all(|v| v % 4 == 0));
    }

    #[test]
    fn resident_bytes_tracks_the_columns() {
        let empty: VertexSet<u64, u64> = VertexSet::new(2);
        assert_eq!(empty.resident_bytes(), 0);
        let _guard = COLUMN_MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let s: VertexSet<u64, u64> = VertexSet::from_pairs(2, (0..1000).map(|i| (i, i)));
        let bytes = s.resident_bytes();
        // At least the value column for 1000 vertices (the bit-packed ID
        // column shrinks well below 8 B/ID); far less than a hash map with
        // per-entry overhead would need.
        assert!(bytes >= 1000 * 16);
        assert!(bytes < 1000 * 64);
        let (packed, plain) = s.id_column_bytes();
        assert_eq!(plain, 1000 * 8);
        assert!(
            packed < plain,
            "dense u64 IDs must compress: {packed} vs {plain}"
        );
    }

    #[test]
    fn convert_reshuffles_and_merges() {
        // Each input vertex i emits two pairs keyed by i/2 with value 1; the
        // merge adds them up, so each output vertex has value 4 (two inputs ×
        // two emissions).
        let s: VertexSet<u64, u64> = VertexSet::from_pairs(4, (0..100).map(|i| (i, 0)));
        let out: VertexSet<u64, u64> =
            s.convert(|id, _v| vec![(id / 2, 1), (id / 2, 1)], |acc, v| *acc += v);
        assert_eq!(out.len(), 50);
        for (_, v) in out.iter() {
            assert_eq!(*v, 4);
        }
    }

    #[test]
    fn convert_can_change_types_and_drop() {
        let s: VertexSet<u64, u64> = VertexSet::from_pairs(2, (0..10).map(|i| (i, i)));
        // Keep only even vertices, as strings keyed by (i, 0) tuples.
        let out: VertexSet<(u64, u8), String> = s.convert(
            |id, v| {
                if id % 2 == 0 {
                    vec![((id, 0u8), format!("v{v}"))]
                } else {
                    vec![]
                }
            },
            |_, _| panic!("no duplicates expected"),
        );
        assert_eq!(out.len(), 5);
        assert_eq!(out.get(&(4, 0)).unwrap(), "v4");
    }

    #[test]
    fn repartition_preserves_contents() {
        let s: VertexSet<u64, u64> = VertexSet::from_pairs(2, (0..50).map(|i| (i, i + 1)));
        let r = s.clone().repartition(7);
        assert_eq!(r.workers(), 7);
        assert_eq!(r.len(), 50);
        let mut a = s.into_pairs();
        let mut b = r.into_pairs();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn zero_workers_clamped_to_one() {
        let s: VertexSet<u64, ()> = VertexSet::new(0);
        assert_eq!(s.workers(), 1);
    }

    #[test]
    fn convert_on_shared_ctx_works_across_conversions() {
        let ctx = ExecCtx::new(3);
        let s: VertexSet<u64, u64> = VertexSet::from_pairs(3, (0..90).map(|i| (i, 1)));
        let once: VertexSet<u64, u64> =
            s.convert_on(&ctx, |id, v| vec![(id / 3, v)], |acc, v| *acc += v);
        assert_eq!(once.len(), 30);
        let twice: VertexSet<u64, u64> =
            once.convert_on(&ctx, |id, v| vec![(id / 3, v)], |acc, v| *acc += v);
        assert_eq!(twice.len(), 10);
        assert!(twice.iter().all(|(_, v)| *v == 9));
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn convert_on_rejects_mismatched_ctx() {
        let ctx = ExecCtx::new(2);
        let s: VertexSet<u64, u64> = VertexSet::from_pairs(3, (0..9).map(|i| (i, 1)));
        let _: VertexSet<u64, u64> = s.convert_on(&ctx, |id, v| vec![(id, v)], |acc, v| *acc += v);
    }

    #[test]
    fn lower_bound_from_galloping_matches_partition_point() {
        let ids: Vec<u64> = (0..10_000).map(|i| i * 3).collect();
        for lo in [0usize, 1, 100, 9_999, 10_000] {
            for target in [0u64, 1, 2, 3, 299, 300, 15_000, 29_997, 29_998, 50_000] {
                if lo <= ids.partition_point(|x| *x < target) {
                    assert_eq!(
                        lower_bound_from(&ids, lo, &target),
                        ids.partition_point(|x| *x < target),
                        "lo={lo} target={target}"
                    );
                }
            }
        }
        assert_eq!(lower_bound_from::<u64>(&[], 0, &5), 0);
    }

    #[test]
    fn bitset_helpers_round_trip() {
        let mut words = vec![0u64; 3];
        set_bit(&mut words, 0, true);
        set_bit(&mut words, 63, true);
        set_bit(&mut words, 64, true);
        set_bit(&mut words, 130, true);
        assert!(get_bit(&words, 0) && get_bit(&words, 63));
        assert!(get_bit(&words, 64) && get_bit(&words, 130));
        assert!(!get_bit(&words, 1) && !get_bit(&words, 129));
        set_bit(&mut words, 63, false);
        assert!(!get_bit(&words, 63));
        assert!(get_bit(&words, 0), "clearing one bit leaves the others");
    }

    // ---- property tests ------------------------------------------------------

    use proptest::prelude::*;

    // The columnar store must behave exactly like the hash store it replaced
    // under arbitrary interleavings of point inserts, removes, lookups and
    // batch retains — the legacy-equivalence pin for the mutation API (the
    // delivery path has its own pin in `runner.rs`). Ops are encoded as
    // `(kind, key, value)` tuples: 0–3 insert, 4–6 remove, 7–8 lookup,
    // 9 retain-even.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_store_matches_hash_oracle(
            seed in proptest::collection::vec((0u64..300, 0u64..1_000), 0..200),
            ops in proptest::collection::vec((0u8..10, 0u64..300, 0u64..1_000), 0..300),
            workers in 1usize..6,
        ) {
            let mut store: VertexSet<u64, u64> = VertexSet::from_pairs(workers, seed.clone());
            let mut oracle: FxHashMap<u64, u64> = FxHashMap::default();
            for (k, v) in seed {
                oracle.insert(k, v);
            }
            for (kind, k, v) in ops {
                match kind {
                    0..=3 => {
                        prop_assert_eq!(store.insert(k, v), oracle.insert(k, v));
                    }
                    4..=6 => {
                        prop_assert_eq!(store.remove(&k), oracle.remove(&k));
                    }
                    7..=8 => {
                        prop_assert_eq!(store.get(&k), oracle.get(&k));
                        prop_assert_eq!(store.contains(&k), oracle.contains_key(&k));
                    }
                    _ => {
                        store.retain(|_, v| *v % 2 == 0);
                        oracle.retain(|_, v| *v % 2 == 0);
                    }
                }
                prop_assert_eq!(store.len(), oracle.len());
            }
            let mut got = store.into_pairs();
            got.sort_unstable();
            let mut expected: Vec<(u64, u64)> = oracle.into_iter().collect();
            expected.sort_unstable();
            prop_assert_eq!(got, expected);
        }
    }

    // ---- property tests: sort-merge convert vs. hash-grouping oracle --------

    /// The pre-migration hash-grouping semantics: fold every emitted pair, in
    /// (source worker, emission order), into a map via entry lookup.
    fn hash_grouping_oracle<F>(set: &VertexSet<u64, u64>, f: F) -> Vec<(u64, Vec<u64>)>
    where
        F: Fn(u64, u64) -> Vec<(u64, u64)>,
    {
        let mut grouped: FxHashMap<u64, Vec<u64>> = FxHashMap::default();
        for (id, value) in set.iter() {
            for (nid, nval) in f(id, *value) {
                grouped.entry(nid).or_default().push(nval);
            }
        }
        let mut out: Vec<(u64, Vec<u64>)> = grouped.into_iter().collect();
        out.sort_unstable();
        out
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_convert_matches_hash_grouping(
            pairs in proptest::collection::vec((0u64..200, 1u64..1_000), 0..150),
            workers in 1usize..6,
            fan in 1u64..4,
        ) {
            let set: VertexSet<u64, u64> = VertexSet::from_pairs(workers, pairs.clone());
            // Fan each vertex out to `fan` destination IDs to force ID
            // collisions across (and within) source workers.
            let f = move |id: u64, v: u64| -> Vec<(u64, u64)> {
                (0..fan).map(|i| (id % (17 + i), v + i)).collect()
            };
            let expected = hash_grouping_oracle(&set, f);
            // Fold with an order-sensitive merge: append to a per-ID list.
            let got: VertexSet<u64, Vec<u64>> = set.convert(
                move |id, v| f(id, v).into_iter().map(|(nid, nval)| (nid, vec![nval])).collect(),
                |acc, mut v| acc.append(&mut v),
            );
            let mut got: Vec<(u64, Vec<u64>)> = got.into_pairs();
            got.sort_unstable();
            prop_assert_eq!(got.len(), expected.len());
            for ((gid, gvals), (eid, evals)) in got.into_iter().zip(expected) {
                prop_assert_eq!(gid, eid);
                // The multiset of folded values must agree; the fold order of
                // the sort-merge path is additionally checked for determinism
                // below.
                let mut gvals = gvals;
                let mut evals = evals;
                gvals.sort_unstable();
                evals.sort_unstable();
                prop_assert_eq!(gvals, evals);
            }
        }

        #[test]
        fn prop_convert_is_deterministic_with_order_sensitive_merge(
            pairs in proptest::collection::vec((0u64..100, 1u64..1_000), 0..120),
            workers in 1usize..5,
        ) {
            // `merge` keeps the concatenation order, so equality between two
            // runs proves the whole shuffle (presort + k-way merge + fold) is
            // a pure function of the input.
            let build = || -> Vec<(u64, Vec<u64>)> {
                let set: VertexSet<u64, u64> = VertexSet::from_pairs(workers, pairs.clone());
                let out: VertexSet<u64, Vec<u64>> = set.convert(
                    |id, v| vec![(id % 13, vec![v]), (id % 7, vec![v + 1])],
                    |acc, mut v| acc.append(&mut v),
                );
                let mut out = out.into_pairs();
                out.sort_unstable();
                out
            };
            let first = build();
            for _ in 0..2 {
                prop_assert_eq!(build(), first.clone());
            }
        }

        #[test]
        fn prop_convert_is_identical_across_worker_counts(
            pairs in proptest::collection::vec((0u64..100, 1u64..1_000), 0..120),
        ) {
            // With a commutative-associative merge, the radix-backed shuffle
            // must yield byte-identical contents for any worker count (the
            // partitioning changes which buffers exist, not what folds).
            let mut reference: Option<Vec<(u64, u64)>> = None;
            for workers in [1usize, 2, 5] {
                let set: VertexSet<u64, u64> = VertexSet::from_pairs(workers, pairs.clone());
                let out: VertexSet<u64, u64> = set.convert(
                    |id, v| vec![(id % 11, v), (id % 5, v + 1)],
                    |acc, v| *acc += v,
                );
                let mut out = out.into_pairs();
                out.sort_unstable();
                match &reference {
                    Some(r) => prop_assert_eq!(r, &out),
                    None => reference = Some(out),
                }
            }
        }
    }

    // ---- packed ID column vs. plain oracle ----------------------------------

    /// Builds a packed column and its plain oracle from a sorted,
    /// deduplicated list of IDs.
    fn packed_and_plain(ids: &[u64]) -> (PackedIds, Vec<u64>) {
        let mut packed = PackedIds::default();
        for &id in ids {
            packed.push(id);
        }
        (packed, ids.to_vec())
    }

    /// Sorted, deduplicated IDs from arbitrary seeds (spread across the full
    /// `u64` range so frames see both tiny and huge delta widths).
    fn spread_ids(seeds: &[(u64, u64)]) -> Vec<u64> {
        let mut ids: Vec<u64> = seeds.iter().map(|&(hi, lo)| (hi << 32) ^ lo).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    #[test]
    fn packed_ids_tiny_and_frame_boundaries() {
        for n in [0usize, 1, 2, FRAME - 1, FRAME, FRAME + 1, 3 * FRAME] {
            let ids: Vec<u64> = (0..n as u64).map(|i| i * 5).collect();
            let (packed, plain) = packed_and_plain(&ids);
            assert_eq!(packed.len(), plain.len());
            for (i, &id) in plain.iter().enumerate() {
                assert_eq!(packed.get(i), id, "n={n} i={i}");
            }
            assert_eq!(packed.last(), plain.last().copied());
            for probe in [0u64, 1, 4, 5, 6, (n as u64 * 5).saturating_sub(1), u64::MAX] {
                assert_eq!(
                    packed.lower_bound(probe),
                    plain.partition_point(|&v| v < probe),
                    "n={n} probe={probe}"
                );
            }
        }
    }

    /// Serializes tests that flip [`kernels::force_plain_id_columns`] against
    /// tests that assert on the packed representation.
    static COLUMN_MODE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn id_column_picks_packed_only_for_radix_keys() {
        let _guard = COLUMN_MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let col: IdColumn<u64> = IdColumn::new();
        assert!(matches!(col, IdColumn::Packed(_)));
        // Keys without a radix image must stay plain.
        let col: IdColumn<(u64, u64)> = IdColumn::new();
        assert!(matches!(col, IdColumn::Plain(_)));
        // The escape hatch forces plain storage even for radix keys.
        kernels::force_plain_id_columns(true);
        let col: IdColumn<u64> = IdColumn::new();
        kernels::force_plain_id_columns(false);
        assert!(matches!(col, IdColumn::Plain(_)));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn prop_packed_column_matches_plain_oracle(
            seeds in proptest::collection::vec((0u64..=u64::MAX, 0u64..=u64::MAX), 0..700),
            probes in proptest::collection::vec((0u64..=u64::MAX, 0u64..=u64::MAX), 0..40),
        ) {
            let ids = spread_ids(&seeds);
            let (packed, plain) = packed_and_plain(&ids);
            prop_assert_eq!(packed.len(), plain.len());
            // Random access and full iteration agree with the oracle.
            let mut col = IdColumn::Packed(packed.clone());
            let decoded: Vec<u64> = col.iter().collect();
            prop_assert_eq!(&decoded, &plain);
            for (i, &id) in plain.iter().enumerate() {
                prop_assert_eq!(packed.get(i), id);
            }
            // Stateless lower_bound and binary_search agree with the oracle.
            for &(hi, lo) in &probes {
                let probe = (hi << 32) ^ lo;
                prop_assert_eq!(
                    packed.lower_bound(probe),
                    plain.partition_point(|&v| v < probe)
                );
                prop_assert_eq!(col.binary_search(&probe), plain.binary_search(&probe));
            }
            // push after cloning keeps the two in sync (tail re-packing).
            if let Some(&last) = plain.last() {
                if last < u64::MAX {
                    col.push(last + 1);
                    prop_assert_eq!(col.len(), plain.len() + 1);
                    prop_assert_eq!(col.last(), Some(last + 1));
                }
            }
        }

        #[test]
        fn prop_cursor_lower_bound_matches_plain_oracle(
            seeds in proptest::collection::vec((0u64..=u64::MAX, 0u64..=u64::MAX), 0..700),
            probes in proptest::collection::vec((0u64..=u64::MAX, 0u64..=u64::MAX), 1..40),
        ) {
            let ids = spread_ids(&seeds);
            let (packed, plain) = packed_and_plain(&ids);
            let col = IdColumn::<u64>::Packed(packed);
            let mut cur = col.cursor();
            // The cursor contract is monotone: sort the probes and walk the
            // lower bounds forward, exactly as the merge-join does.
            let mut probes: Vec<u64> = probes.iter().map(|&(hi, lo)| (hi << 32) ^ lo).collect();
            probes.sort_unstable();
            let mut lo = 0usize;
            for probe in probes {
                let expect = plain.partition_point(|&v| v < probe);
                if lo > expect {
                    continue; // contract requires everything before lo < probe
                }
                lo = cur.lower_bound_from(lo, &probe);
                prop_assert_eq!(lo, expect);
                if lo < plain.len() {
                    prop_assert_eq!(cur.get(lo), plain[lo]);
                }
            }
        }
    }

    // ---- hash sidecar -------------------------------------------------------

    #[test]
    fn hash_sidecar_builds_and_drains() {
        // One partition, enough vertices to clear SIDECAR_MIN_LEN.
        let n = 6000u64;
        let mut s: VertexSet<u64, u64> = VertexSet::from_pairs(1, (0..n).map(|i| (i, i)));
        let mut oracle: FxHashMap<u64, u64> = (0..n).map(|i| (i, i)).collect();
        assert!(s.parts[0].sidecar.is_none());
        // A churn burst of point ops: removes, re-inserts (including
        // tombstoned twins), fresh inserts past the end, updates.
        let mut x = 0x2545_f491_4f6c_dd1du64;
        for step in 0..2000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let k = x % (n + 500);
            match step % 4 {
                0 => assert_eq!(s.remove(&k), oracle.remove(&k), "remove {k}"),
                1 => assert_eq!(s.insert(k, step), oracle.insert(k, step), "insert {k}"),
                2 => assert_eq!(s.get(&k), oracle.get(&k), "get {k}"),
                _ => assert_eq!(s.get_mut(&k), oracle.get_mut(&k), "get_mut {k}"),
            }
            assert_eq!(s.len(), oracle.len());
        }
        assert!(
            s.parts[0].sidecar.is_some(),
            "a sustained point-op burst on a large partition must enter sidecar mode"
        );
        // Compaction (job start) drains the sidecar back into sorted columns.
        s.activate_all();
        assert!(s.parts[0].sidecar.is_none());
        assert!(s.parts[0].pending.is_empty() && s.parts[0].dead == 0);
        let mut got = s.iter().map(|(id, v)| (id, *v)).collect::<Vec<_>>();
        got.sort_unstable();
        let mut expected: Vec<(u64, u64)> = oracle.into_iter().collect();
        expected.sort_unstable();
        assert_eq!(got, expected);
        let ids: Vec<u64> = s.parts[0].ids.iter().collect();
        assert!(
            ids.windows(2).all(|w| w[0] < w[1]),
            "columns sorted after drain"
        );
    }

    #[test]
    fn sidecar_retain_and_iter_stay_consistent() {
        let n = 5000u64;
        let mut s: VertexSet<u64, u64> = VertexSet::from_pairs(1, (0..n).map(|i| (i, i)));
        for k in 0..200u64 {
            s.remove(&(k * 7 % n));
            s.insert(n + k, k);
        }
        assert!(s.parts[0].sidecar.is_some());
        // retain() runs on the map without leaving sidecar mode; the next
        // compaction (activate_all) folds everything back into columns.
        s.retain(|_, v| *v % 2 == 0);
        assert!(s.parts[0].sidecar.is_some());
        assert!(s.iter().all(|(_, v)| *v % 2 == 0));
        let survivors = s.len();
        s.activate_all();
        assert!(s.parts[0].sidecar.is_none());
        assert_eq!(s.len(), survivors);
        assert!(s.iter().all(|(_, v)| *v % 2 == 0));
        let ids: Vec<u64> = s.parts[0].ids.iter().collect();
        assert!(
            ids.windows(2).all(|w| w[0] < w[1]),
            "columns sorted after drain"
        );
    }

    /// `debug_validate` holds through every lifecycle phase a partition can
    /// reach: bulk build (sealed packed frames + tail), point inserts into
    /// `pending`, tombstones, sidecar mode, and the compaction that folds
    /// it all back into columns.
    #[test]
    fn debug_validate_accepts_every_lifecycle_phase() {
        // Bulk build large enough to seal several 128-ID frames, sparse
        // enough (stride 3) to exercise non-trivial delta widths.
        let mut s: VertexSet<u64, u64> = VertexSet::from_pairs(2, (0..2000u64).map(|i| (i * 3, i)));
        s.debug_validate();

        // Point mutations: pending inserts + tombstones on both partitions.
        for k in 0..40u64 {
            s.insert(k * 3 + 1, k);
            s.remove(&(k * 9));
        }
        s.debug_validate();

        // Compaction boundary merges pending and drops tombstones.
        s.activate_all();
        s.debug_validate();
        assert!(s
            .iter()
            .all(|(id, _)| id % 3 != 0 || id % 9 != 0 || id >= 40 * 9));

        // A sustained point-op burst flips a partition into sidecar mode;
        // the validator accepts it and the next boundary folds it back.
        let mut s: VertexSet<u64, u64> = VertexSet::from_pairs(1, (0..5000u64).map(|i| (i, i)));
        for k in 0..200u64 {
            s.insert(5000 + k, k);
        }
        assert!(s.parts[0].sidecar.is_some());
        s.debug_validate();
        s.activate_all();
        s.debug_validate();
        assert_eq!(s.len(), 5200);
    }
}
