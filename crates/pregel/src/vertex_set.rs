//! Hash-partitioned vertex storage shared between consecutive Pregel jobs.
//!
//! Pregel+ distributes vertices to machines by hashing the vertex ID; a
//! [`VertexSet`] does the same over logical workers. The
//! [`convert`](VertexSet::convert) method implements the paper's first API
//! extension (Section II, "Our Extensions to Pregel API"): the output vertices
//! of one job are transformed in place into the input vertices of the next job
//! and re-shuffled by the new vertex IDs, without a round-trip through HDFS.

use crate::engine::ExecCtx;
use crate::fxhash::{hash_one, FxHashMap};
use crate::radix::SortKey;
use crate::vertex::VertexKey;

/// Per-vertex bookkeeping kept by the engine alongside the user value.
#[derive(Debug, Clone)]
pub(crate) struct VertexEntry<V> {
    pub(crate) value: V,
    pub(crate) halted: bool,
    /// Superstep stamp (superstep + 1) of the last `compute` invocation; lets
    /// the runner's straggler scan skip vertices already computed via the
    /// sorted message-run walk. Reset by [`VertexSet::activate_all`] so stamps
    /// never leak between consecutive jobs on the same set.
    pub(crate) stamp: usize,
}

/// A collection of vertices hash-partitioned over a fixed number of workers.
#[derive(Debug, Clone)]
pub struct VertexSet<I, V> {
    pub(crate) parts: Vec<FxHashMap<I, VertexEntry<V>>>,
}

impl<I: VertexKey, V: Send> VertexSet<I, V> {
    /// Creates an empty vertex set partitioned over `workers` workers.
    pub fn new(workers: usize) -> VertexSet<I, V> {
        let workers = workers.max(1);
        VertexSet {
            parts: (0..workers).map(|_| FxHashMap::default()).collect(),
        }
    }

    /// Builds a vertex set from `(id, value)` pairs. Later duplicates replace
    /// earlier ones.
    pub fn from_pairs(workers: usize, pairs: impl IntoIterator<Item = (I, V)>) -> VertexSet<I, V> {
        let mut set = VertexSet::new(workers);
        for (id, value) in pairs {
            set.insert(id, value);
        }
        set
    }

    /// The number of workers (partitions).
    pub fn workers(&self) -> usize {
        self.parts.len()
    }

    /// The worker that owns vertex `id`.
    #[inline]
    pub fn worker_of(&self, id: &I) -> usize {
        (hash_one(id) % self.parts.len() as u64) as usize
    }

    /// Inserts or replaces a vertex. Returns the previous value if present.
    pub fn insert(&mut self, id: I, value: V) -> Option<V> {
        let w = self.worker_of(&id);
        self.parts[w]
            .insert(
                id,
                VertexEntry {
                    value,
                    halted: false,
                    stamp: 0,
                },
            )
            .map(|e| e.value)
    }

    /// Removes a vertex, returning its value.
    pub fn remove(&mut self, id: &I) -> Option<V> {
        let w = self.worker_of(id);
        self.parts[w].remove(id).map(|e| e.value)
    }

    /// Total number of vertices.
    pub fn len(&self) -> usize {
        self.parts.iter().map(|p| p.len()).sum()
    }

    /// Whether there are no vertices.
    pub fn is_empty(&self) -> bool {
        self.parts.iter().all(|p| p.is_empty())
    }

    /// Whether a vertex with this ID exists.
    pub fn contains(&self, id: &I) -> bool {
        self.parts[self.worker_of(id)].contains_key(id)
    }

    /// Shared access to a vertex value.
    pub fn get(&self, id: &I) -> Option<&V> {
        self.parts[self.worker_of(id)].get(id).map(|e| &e.value)
    }

    /// Mutable access to a vertex value.
    pub fn get_mut(&mut self, id: &I) -> Option<&mut V> {
        let w = self.worker_of(id);
        self.parts[w].get_mut(id).map(|e| &mut e.value)
    }

    /// Iterates over `(id, value)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&I, &V)> {
        self.parts
            .iter()
            .flat_map(|p| p.iter().map(|(k, e)| (k, &e.value)))
    }

    /// Iterates mutably over `(id, value)` pairs in unspecified order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (&I, &mut V)> {
        self.parts
            .iter_mut()
            .flat_map(|p| p.iter_mut().map(|(k, e)| (k, &mut e.value)))
    }

    /// Consumes the set and returns all values (order unspecified).
    pub fn into_values(self) -> Vec<V> {
        self.parts
            .into_iter()
            .flat_map(|p| p.into_values().map(|e| e.value))
            .collect()
    }

    /// Consumes the set and returns all `(id, value)` pairs (order unspecified).
    pub fn into_pairs(self) -> Vec<(I, V)> {
        self.parts
            .into_iter()
            .flat_map(|p| p.into_iter().map(|(k, e)| (k, e.value)))
            .collect()
    }

    /// Marks every vertex active and clears compute stamps (called at the
    /// start of a job).
    pub(crate) fn activate_all(&mut self) {
        for p in &mut self.parts {
            for e in p.values_mut() {
                e.halted = false;
                e.stamp = 0;
            }
        }
    }

    /// Removes every vertex for which the predicate returns `false`.
    pub fn retain(&mut self, mut keep: impl FnMut(&I, &V) -> bool) {
        for p in &mut self.parts {
            p.retain(|k, e| keep(k, &e.value));
        }
    }

    /// In-memory job concatenation (the paper's `convert(v)` UDF).
    ///
    /// Every vertex of the finished job is transformed by `f` into zero or
    /// more `(id, value)` pairs for the next job; the generated pairs are then
    /// shuffled to their new owner workers. The transformation runs in
    /// parallel, one pool worker per partition, mirroring how "each machine
    /// generates a set of objects of type V<sub>j'</sub> by calling
    /// convert(.) on its assigned vertices".
    ///
    /// If several pairs share an ID, `merge` folds the later value into the
    /// earlier one (needed e.g. when two half-built adjacency lists of the
    /// same k-mer must be unioned). Merge order is deterministic: pairs of
    /// one source worker fold in emission order, sources fold in worker
    /// order.
    ///
    /// Runs on a private single-pass pool; inside a workflow, prefer
    /// [`convert_on`](VertexSet::convert_on) with the shared context.
    pub fn convert<I2, V2, F, M>(self, f: F, merge: M) -> VertexSet<I2, V2>
    where
        I2: VertexKey + SortKey,
        V2: Send,
        F: Fn(I, V) -> Vec<(I2, V2)> + Sync,
        M: Fn(&mut V2, V2) + Sync,
        V: Send,
        I: Send,
    {
        let ctx = ExecCtx::new(self.workers());
        self.convert_on(&ctx, f, merge)
    }

    /// [`convert`](VertexSet::convert) on a caller-provided execution
    /// context (which must match the set's worker count).
    ///
    /// Like the runner's and the mini MapReduce's shuffles, grouping is
    /// **sort-based**: every source worker presorts its per-destination
    /// buffers by the new vertex ID (stable, so same-ID pairs keep their
    /// emission order) and each destination k-way-merges the pre-sorted
    /// buffers, folding duplicate-ID runs with `merge` as they stream past —
    /// one hash-map insert per *distinct* ID instead of one lookup per pair.
    pub fn convert_on<I2, V2, F, M>(self, ctx: &ExecCtx, f: F, merge: M) -> VertexSet<I2, V2>
    where
        I2: VertexKey + SortKey,
        V2: Send,
        F: Fn(I, V) -> Vec<(I2, V2)> + Sync,
        M: Fn(&mut V2, V2) + Sync,
        V: Send,
        I: Send,
    {
        let workers = self.workers();
        ctx.assert_matches(workers, "VertexSet partitioning");
        // Phase 1: per-worker transformation into per-destination buffers,
        // each presorted by destination ID with the stable LSD radix sort of
        // `crate::radix` (stability keeps same-ID emission order, so the
        // merge fold order matches the sequential semantics). One scratch
        // serves all of a worker's destination buffers.
        let shuffled: Vec<Vec<Vec<(I2, V2)>>> =
            ctx.pool().run_per_worker(self.parts, |_w, part| {
                let mut out: Vec<Vec<(I2, V2)>> = (0..workers).map(|_| Vec::new()).collect();
                for (id, entry) in part {
                    for (nid, nval) in f(id, entry.value) {
                        let dst = (hash_one(&nid) % workers as u64) as usize;
                        out[dst].push((nid, nval));
                    }
                }
                let mut scratch: Vec<(I2, V2)> = Vec::new();
                for buf in out.iter_mut() {
                    crate::radix::sort_pairs(buf, &mut scratch);
                }
                out
            });
        // Phase 2: transpose, then k-way-merge per destination worker.
        let mut incoming: Vec<Vec<Vec<(I2, V2)>>> = (0..workers).map(|_| Vec::new()).collect();
        for src in shuffled {
            for (dst, buf) in src.into_iter().enumerate() {
                incoming[dst].push(buf);
            }
        }
        let parts: Vec<FxHashMap<I2, VertexEntry<V2>>> =
            ctx.pool().run_per_worker(incoming, |_w, mut bufs| {
                // Duplicate IDs arrive as one contiguous run of the merged
                // stream (ties prefer the lower source worker), so folding
                // needs only the previous record, and the map sees each ID
                // exactly once.
                let mut map: FxHashMap<I2, VertexEntry<V2>> = FxHashMap::default();
                let mut open: Option<(I2, VertexEntry<V2>)> = None;
                crate::kmerge::merge_sorted_buffers(&mut bufs, |id, val| match &mut open {
                    Some((last, entry)) if *last == id => merge(&mut entry.value, val),
                    _ => {
                        if let Some((last, entry)) = open.take() {
                            map.insert(last, entry);
                        }
                        open = Some((
                            id,
                            VertexEntry {
                                value: val,
                                halted: false,
                                stamp: 0,
                            },
                        ));
                    }
                });
                if let Some((last, entry)) = open {
                    map.insert(last, entry);
                }
                map
            });
        VertexSet { parts }
    }

    /// Repartitions the set over a different number of workers.
    pub fn repartition(self, workers: usize) -> VertexSet<I, V> {
        let workers = workers.max(1);
        let mut out = VertexSet::new(workers);
        for (id, value) in self.into_pairs() {
            out.insert(id, value);
        }
        out
    }
}

impl<I: VertexKey, V: Send> Default for VertexSet<I, V> {
    fn default() -> Self {
        VertexSet::new(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let mut s: VertexSet<u64, String> = VertexSet::new(4);
        assert!(s.is_empty());
        assert_eq!(s.insert(1, "a".into()), None);
        assert_eq!(s.insert(1, "b".into()), Some("a".into()));
        s.insert(2, "c".into());
        assert_eq!(s.len(), 2);
        assert!(s.contains(&1));
        assert_eq!(s.get(&1).unwrap(), "b");
        *s.get_mut(&2).unwrap() = "d".into();
        assert_eq!(s.get(&2).unwrap(), "d");
        assert_eq!(s.remove(&1), Some("b".into()));
        assert!(!s.contains(&1));
        assert_eq!(s.get(&99), None);
    }

    #[test]
    fn partitioning_is_consistent() {
        let s: VertexSet<u64, ()> = VertexSet::from_pairs(8, (0..1000).map(|i| (i, ())));
        assert_eq!(s.len(), 1000);
        for (id, _) in s.iter() {
            let w = s.worker_of(id);
            assert!(s.parts[w].contains_key(id));
        }
        // every partition got something
        assert!(s.parts.iter().all(|p| !p.is_empty()));
    }

    #[test]
    fn retain_and_into_values() {
        let mut s: VertexSet<u64, u64> = VertexSet::from_pairs(3, (0..100).map(|i| (i, i * 2)));
        s.retain(|_, v| *v % 4 == 0);
        assert_eq!(s.len(), 50);
        let mut vals = s.into_values();
        vals.sort_unstable();
        assert_eq!(vals[0], 0);
        assert_eq!(vals.len(), 50);
        assert!(vals.iter().all(|v| v % 4 == 0));
    }

    #[test]
    fn convert_reshuffles_and_merges() {
        // Each input vertex i emits two pairs keyed by i/2 with value 1; the
        // merge adds them up, so each output vertex has value 4 (two inputs ×
        // two emissions).
        let s: VertexSet<u64, u64> = VertexSet::from_pairs(4, (0..100).map(|i| (i, 0)));
        let out: VertexSet<u64, u64> =
            s.convert(|id, _v| vec![(id / 2, 1), (id / 2, 1)], |acc, v| *acc += v);
        assert_eq!(out.len(), 50);
        for (_, v) in out.iter() {
            assert_eq!(*v, 4);
        }
    }

    #[test]
    fn convert_can_change_types_and_drop() {
        let s: VertexSet<u64, u64> = VertexSet::from_pairs(2, (0..10).map(|i| (i, i)));
        // Keep only even vertices, as strings keyed by (i, 0) tuples.
        let out: VertexSet<(u64, u8), String> = s.convert(
            |id, v| {
                if id % 2 == 0 {
                    vec![((id, 0u8), format!("v{v}"))]
                } else {
                    vec![]
                }
            },
            |_, _| panic!("no duplicates expected"),
        );
        assert_eq!(out.len(), 5);
        assert_eq!(out.get(&(4, 0)).unwrap(), "v4");
    }

    #[test]
    fn repartition_preserves_contents() {
        let s: VertexSet<u64, u64> = VertexSet::from_pairs(2, (0..50).map(|i| (i, i + 1)));
        let r = s.clone().repartition(7);
        assert_eq!(r.workers(), 7);
        assert_eq!(r.len(), 50);
        let mut a = s.into_pairs();
        let mut b = r.into_pairs();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn zero_workers_clamped_to_one() {
        let s: VertexSet<u64, ()> = VertexSet::new(0);
        assert_eq!(s.workers(), 1);
    }

    #[test]
    fn convert_on_shared_ctx_works_across_conversions() {
        let ctx = ExecCtx::new(3);
        let s: VertexSet<u64, u64> = VertexSet::from_pairs(3, (0..90).map(|i| (i, 1)));
        let once: VertexSet<u64, u64> =
            s.convert_on(&ctx, |id, v| vec![(id / 3, v)], |acc, v| *acc += v);
        assert_eq!(once.len(), 30);
        let twice: VertexSet<u64, u64> =
            once.convert_on(&ctx, |id, v| vec![(id / 3, v)], |acc, v| *acc += v);
        assert_eq!(twice.len(), 10);
        assert!(twice.iter().all(|(_, v)| *v == 9));
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn convert_on_rejects_mismatched_ctx() {
        let ctx = ExecCtx::new(2);
        let s: VertexSet<u64, u64> = VertexSet::from_pairs(3, (0..9).map(|i| (i, 1)));
        let _: VertexSet<u64, u64> = s.convert_on(&ctx, |id, v| vec![(id, v)], |acc, v| *acc += v);
    }

    // ---- property tests: sort-merge convert vs. hash-grouping oracle --------

    use proptest::prelude::*;

    /// The pre-migration hash-grouping semantics: fold every emitted pair, in
    /// (source worker, emission order), into a map via entry lookup.
    fn hash_grouping_oracle<F>(set: &VertexSet<u64, u64>, f: F) -> Vec<(u64, Vec<u64>)>
    where
        F: Fn(u64, u64) -> Vec<(u64, u64)>,
    {
        let mut grouped: FxHashMap<u64, Vec<u64>> = FxHashMap::default();
        for part in &set.parts {
            for (id, entry) in part {
                for (nid, nval) in f(*id, entry.value) {
                    grouped.entry(nid).or_default().push(nval);
                }
            }
        }
        let mut out: Vec<(u64, Vec<u64>)> = grouped.into_iter().collect();
        out.sort_unstable();
        out
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_convert_matches_hash_grouping(
            pairs in proptest::collection::vec((0u64..200, 1u64..1_000), 0..150),
            workers in 1usize..6,
            fan in 1u64..4,
        ) {
            let set: VertexSet<u64, u64> = VertexSet::from_pairs(workers, pairs.clone());
            // Fan each vertex out to `fan` destination IDs to force ID
            // collisions across (and within) source workers.
            let f = move |id: u64, v: u64| -> Vec<(u64, u64)> {
                (0..fan).map(|i| (id % (17 + i), v + i)).collect()
            };
            let expected = hash_grouping_oracle(&set, f);
            // Fold with an order-sensitive merge: append to a per-ID list.
            let got: VertexSet<u64, Vec<u64>> = set.convert(
                move |id, v| f(id, v).into_iter().map(|(nid, nval)| (nid, vec![nval])).collect(),
                |acc, mut v| acc.append(&mut v),
            );
            let mut got: Vec<(u64, Vec<u64>)> = got.into_pairs();
            got.sort_unstable();
            prop_assert_eq!(got.len(), expected.len());
            for ((gid, gvals), (eid, evals)) in got.into_iter().zip(expected) {
                prop_assert_eq!(gid, eid);
                // The multiset of folded values must agree; the fold order of
                // the sort-merge path is additionally checked for determinism
                // below.
                let mut gvals = gvals;
                let mut evals = evals;
                gvals.sort_unstable();
                evals.sort_unstable();
                prop_assert_eq!(gvals, evals);
            }
        }

        #[test]
        fn prop_convert_is_deterministic_with_order_sensitive_merge(
            pairs in proptest::collection::vec((0u64..100, 1u64..1_000), 0..120),
            workers in 1usize..5,
        ) {
            // `merge` keeps the concatenation order, so equality between two
            // runs proves the whole shuffle (presort + k-way merge + fold) is
            // a pure function of the input.
            let build = || -> Vec<(u64, Vec<u64>)> {
                let set: VertexSet<u64, u64> = VertexSet::from_pairs(workers, pairs.clone());
                let out: VertexSet<u64, Vec<u64>> = set.convert(
                    |id, v| vec![(id % 13, vec![v]), (id % 7, vec![v + 1])],
                    |acc, mut v| acc.append(&mut v),
                );
                let mut out = out.into_pairs();
                out.sort_unstable();
                out
            };
            let first = build();
            for _ in 0..2 {
                prop_assert_eq!(build(), first.clone());
            }
        }

        #[test]
        fn prop_convert_is_identical_across_worker_counts(
            pairs in proptest::collection::vec((0u64..100, 1u64..1_000), 0..120),
        ) {
            // With a commutative-associative merge, the radix-backed shuffle
            // must yield byte-identical contents for any worker count (the
            // partitioning changes which buffers exist, not what folds).
            let mut reference: Option<Vec<(u64, u64)>> = None;
            for workers in [1usize, 2, 5] {
                let set: VertexSet<u64, u64> = VertexSet::from_pairs(workers, pairs.clone());
                let out: VertexSet<u64, u64> = set.convert(
                    |id, v| vec![(id % 11, v), (id % 5, v + 1)],
                    |acc, v| *acc += v,
                );
                let mut out = out.into_pairs();
                out.sort_unstable();
                match &reference {
                    Some(r) => prop_assert_eq!(r, &out),
                    None => reference = Some(out),
                }
            }
        }
    }
}
