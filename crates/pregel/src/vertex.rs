//! The vertex-centric programming interface: [`VertexProgram`] and [`Context`].

use crate::aggregate::Aggregate;
use crate::fxhash::hash_one;
use std::fmt::Debug;
use std::hash::Hash;

/// Requirements for a vertex identifier.
///
/// The assembler uses 64-bit integers (Figure 7 of the paper); the framework
/// only needs identifiers to be small, hashable, ordered and sendable.
pub trait VertexKey: Copy + Eq + Hash + Ord + Send + Sync + Debug + 'static {}

impl<T> VertexKey for T where T: Copy + Eq + Hash + Ord + Send + Sync + Debug + 'static {}

/// A vertex-centric program in the Pregel model.
///
/// Implementations define how a single vertex reacts to its incoming messages
/// in a superstep: it may update its own value, send messages to any vertex by
/// ID, contribute to the global aggregator and vote to halt. The engine calls
/// [`compute`](VertexProgram::compute) for every vertex that is active or has
/// pending messages.
pub trait VertexProgram: Sync {
    /// Vertex identifier type. The [`SortKey`](crate::radix::SortKey) bound
    /// lets the message plane presort outboxes with the LSD radix sort when
    /// the ID has a monotone `u64` image (it does for the assembler's packed
    /// 64-bit IDs), falling back to comparison sorting otherwise.
    type Id: VertexKey + crate::radix::SortKey;
    /// Per-vertex state (including the adjacency list, following Pregel's
    /// "think like a vertex" model where the vertex owns its edges).
    type Value: Send;
    /// Message type exchanged between vertices. (`'static` because the
    /// engine parks the shuffle planes holding messages in the
    /// [`ExecCtx`](crate::engine::ExecCtx) scratch cache between jobs.)
    type Message: Send + 'static;
    /// Global aggregator value.
    type Aggregate: Aggregate;

    /// Whether messages destined to the same vertex should be merged with
    /// [`combine`](VertexProgram::combine) before delivery.
    const USE_COMBINER: bool = false;

    /// The per-vertex computation executed once per superstep for every active
    /// vertex (or any halted vertex that received messages, which reactivates
    /// it).
    ///
    /// `messages` is a mutable view into the engine's sorted delivery buffer:
    /// the contiguous run of messages addressed to this vertex. The slice is
    /// only valid for the duration of the call — programs that need to keep a
    /// message must copy it out. Handing out a slice (instead of an owned
    /// `Vec` per vertex, as earlier revisions did) is what makes steady-state
    /// supersteps allocation-free on the delivery path.
    fn compute(
        &self,
        ctx: &mut Context<'_, Self>,
        id: Self::Id,
        value: &mut Self::Value,
        messages: &mut [Self::Message],
    );

    /// Merges `incoming` into `acc`. Only called when
    /// [`USE_COMBINER`](VertexProgram::USE_COMBINER) is `true`.
    fn combine(&self, _acc: &mut Self::Message, _incoming: Self::Message) {
        unreachable!("combine() called but USE_COMBINER is false");
    }

    /// Optional global termination check evaluated after every superstep with
    /// the aggregate produced by that superstep. Returning `true` stops the
    /// job even if vertices are still active (used e.g. by the simplified S-V
    /// algorithm to stop once no parent pointer changed in a round).
    fn should_terminate(&self, _aggregate: &Self::Aggregate, _superstep: usize) -> bool {
        false
    }

    /// Opt-in to bounded-memory (out-of-core) execution: the byte codecs the
    /// engine needs to spill this program's IDs, values, and messages to
    /// disk. The default `None` keeps the program fully in RAM even when a
    /// [`SpillPolicy`](crate::SpillPolicy) cap is installed on the context —
    /// only programs whose associated types implement
    /// [`SpillCodec`](crate::SpillCodec) can run out of core, and they opt in
    /// by returning `Some(SpillCodecs::new())`.
    fn spill_codecs() -> Option<crate::spill::SpillCodecs<Self>>
    where
        Self: Sized,
    {
        None
    }
}

/// Per-superstep, per-worker execution context handed to
/// [`VertexProgram::compute`].
pub struct Context<'a, P: VertexProgram + ?Sized> {
    pub(crate) superstep: usize,
    pub(crate) worker: usize,
    pub(crate) num_workers: usize,
    pub(crate) total_vertices: usize,
    pub(crate) prev_aggregate: &'a P::Aggregate,
    pub(crate) local_aggregate: &'a mut P::Aggregate,
    /// One outgoing buffer per destination worker.
    pub(crate) outbox: &'a mut [Vec<(P::Id, P::Message)>],
    pub(crate) messages_sent: &'a mut u64,
    pub(crate) halt: bool,
}

impl<'a, P: VertexProgram + ?Sized> Context<'a, P> {
    /// The current superstep number (0-based).
    #[inline]
    pub fn superstep(&self) -> usize {
        self.superstep
    }

    /// The index of the worker executing this vertex.
    #[inline]
    pub fn worker(&self) -> usize {
        self.worker
    }

    /// Total number of workers in the job.
    #[inline]
    pub fn num_workers(&self) -> usize {
        self.num_workers
    }

    /// Total number of vertices in the job (as of job start).
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.total_vertices
    }

    /// The aggregate combined over all vertices in the *previous* superstep.
    #[inline]
    pub fn aggregated(&self) -> &P::Aggregate {
        self.prev_aggregate
    }

    /// Contributes a value to the aggregator for this superstep.
    #[inline]
    pub fn aggregate(&mut self, value: P::Aggregate) {
        self.local_aggregate.combine(&value);
    }

    /// Sends a message to the vertex identified by `to`, to be delivered at
    /// the beginning of the next superstep.
    #[inline]
    pub fn send_message(&mut self, to: P::Id, message: P::Message) {
        let dst = (hash_one(&to) % self.num_workers as u64) as usize;
        self.outbox[dst].push((to, message));
        *self.messages_sent += 1;
    }

    /// Votes to halt: the vertex becomes inactive until it receives a message.
    #[inline]
    pub fn vote_to_halt(&mut self) {
        self.halt = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::SumU64;

    struct Dummy;
    impl VertexProgram for Dummy {
        type Id = u64;
        type Value = ();
        type Message = u64;
        type Aggregate = SumU64;
        fn compute(
            &self,
            _ctx: &mut Context<'_, Self>,
            _id: u64,
            _value: &mut (),
            _messages: &mut [u64],
        ) {
        }
    }

    #[test]
    fn context_accessors_and_sending() {
        let prev = SumU64(7);
        let mut local = SumU64(0);
        let mut outbox = vec![Vec::new(), Vec::new(), Vec::new()];
        let mut sent = 0u64;
        let mut ctx: Context<'_, Dummy> = Context {
            superstep: 3,
            worker: 1,
            num_workers: 3,
            total_vertices: 10,
            prev_aggregate: &prev,
            local_aggregate: &mut local,
            outbox: &mut outbox,
            messages_sent: &mut sent,
            halt: false,
        };
        assert_eq!(ctx.superstep(), 3);
        assert_eq!(ctx.worker(), 1);
        assert_eq!(ctx.num_workers(), 3);
        assert_eq!(ctx.num_vertices(), 10);
        assert_eq!(ctx.aggregated().0, 7);
        ctx.aggregate(SumU64(5));
        ctx.aggregate(SumU64(2));
        ctx.send_message(42, 100);
        ctx.send_message(43, 200);
        ctx.vote_to_halt();
        assert!(ctx.halt);
        assert_eq!(sent, 2);
        assert_eq!(local.0, 7);
        let total: usize = outbox.iter().map(|b| b.len()).sum();
        assert_eq!(total, 2);
    }

    #[test]
    fn default_should_terminate_is_false() {
        assert!(!Dummy.should_terminate(&SumU64(5), 10));
    }

    #[test]
    #[should_panic]
    fn default_combine_panics() {
        let mut a = 1u64;
        Dummy.combine(&mut a, 2);
    }
}
