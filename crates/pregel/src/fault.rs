//! Deterministic fault injection for crash-recovery testing.
//!
//! Real fault tolerance cannot be validated with real crashes: a test needs a
//! *deterministic* failure at a chosen point in the ①②③(④⑤②③)×r workflow so
//! that resume-after-crash output can be compared byte-for-byte against an
//! uninterrupted run. A [`FaultPlan`] describes such failures — "panic on
//! worker `w` at superstep `k` of stage `s`", "fail the `n`-th checkpoint
//! write" — and is armed on an [`ExecCtx`](crate::ExecCtx) via
//! [`ExecCtx::inject_faults`](crate::ExecCtx::inject_faults). The engine,
//! superstep runner, and (in `ppa_assembler`) pipeline/checkpoint layers probe
//! the armed plan at their natural crash points and fail *once* per fault,
//! exactly as an external crash would, after which a retry proceeds cleanly.
//!
//! This is a testing hook: production runs never arm a plan, and the probes
//! reduce to a cheap `Option` check that is hoisted out of the hot loops.
//!
//! Stages are identified by their **flattened 0-based position** in the
//! pipeline (repeat blocks unrolled), matching the stage numbering used by
//! checkpoint manifests.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Marker for "no stage entered yet".
const NO_STAGE: usize = usize::MAX;

/// One deterministic failure point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Panic on entry to flattened stage `stage`, before any work runs —
    /// a crash exactly at a stage boundary.
    StageEntry {
        /// Flattened 0-based stage position.
        stage: usize,
    },
    /// Panic on worker `worker` during the compute phase of superstep
    /// `superstep` (0-based) of flattened stage `stage` — a crash at a
    /// mid-stage superstep barrier.
    Superstep {
        /// Flattened 0-based stage position.
        stage: usize,
        /// 0-based superstep index within the stage's Pregel job.
        superstep: usize,
        /// Worker index to fail on.
        worker: usize,
    },
    /// Fail the `nth` checkpoint write (1-based) with an I/O error instead of
    /// a panic, exercising the typed checkpoint-error path.
    CheckpointWrite {
        /// 1-based index of the checkpoint save to fail.
        nth: usize,
    },
    /// Sleep `millis` on the coordinator at the boundary of superstep
    /// `superstep` — the first Pregel job to reach that boundary stalls,
    /// regardless of stage. Not a crash: the job continues afterwards. This
    /// makes deadline trips of the job-control plane testable without
    /// wall-clock flakiness (the stall guarantees the deadline has passed by
    /// the time the boundary poll runs).
    Stall {
        /// 0-based superstep boundary to stall at.
        superstep: usize,
        /// How long to sleep, in milliseconds.
        millis: u64,
    },
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::StageEntry { stage } => write!(f, "entry to stage {stage}"),
            Fault::Superstep {
                stage,
                superstep,
                worker,
            } => write!(
                f,
                "worker {worker} at superstep {superstep} of stage {stage}"
            ),
            Fault::CheckpointWrite { nth } => write!(f, "checkpoint write #{nth}"),
            Fault::Stall { superstep, millis } => {
                write!(f, "{millis}ms stall at superstep {superstep}")
            }
        }
    }
}

/// A set of faults to inject into one run. Build with [`FaultPlan::new`] and
/// arm via [`ExecCtx::inject_faults`](crate::ExecCtx::inject_faults).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Adds a fault (builder style).
    pub fn with(mut self, fault: Fault) -> FaultPlan {
        self.faults.push(fault);
        self
    }

    /// A plan with a single fault.
    pub fn single(fault: Fault) -> FaultPlan {
        FaultPlan::new().with(fault)
    }

    /// The faults in the plan.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }
}

/// An armed [`FaultPlan`]: the plan plus the mutable bookkeeping (current
/// stage, per-fault fired flags, checkpoint-write counter) shared across the
/// layers that probe it. Each fault fires at most once.
#[derive(Debug)]
pub struct ArmedFaults {
    faults: Vec<Fault>,
    fired: Vec<AtomicBool>,
    current_stage: AtomicUsize,
    checkpoint_writes: AtomicUsize,
}

impl ArmedFaults {
    /// Arms a plan.
    pub fn new(plan: FaultPlan) -> ArmedFaults {
        let fired = plan.faults.iter().map(|_| AtomicBool::new(false)).collect();
        ArmedFaults {
            faults: plan.faults,
            fired,
            current_stage: AtomicUsize::new(NO_STAGE),
            checkpoint_writes: AtomicUsize::new(0),
        }
    }

    /// Records that flattened stage `stage` is about to run. Called by the
    /// pipeline before each stage so superstep probes know their stage.
    pub fn enter_stage(&self, stage: usize) {
        self.current_stage.store(stage, Ordering::SeqCst);
    }

    /// Atomically claims fault `i`: true exactly once.
    fn claim(&self, i: usize) -> bool {
        !self.fired[i].swap(true, Ordering::SeqCst)
    }

    /// Panics if an unfired [`Fault::StageEntry`] matches the current stage.
    /// Probed by the pipeline right after [`enter_stage`](Self::enter_stage),
    /// inside the region whose panics become typed stage errors.
    pub fn probe_stage_entry(&self) {
        let stage = self.current_stage.load(Ordering::SeqCst);
        for (i, f) in self.faults.iter().enumerate() {
            if let Fault::StageEntry { stage: s } = *f {
                if s == stage && self.claim(i) {
                    panic!("injected fault: {f}");
                }
            }
        }
    }

    /// Panics if an unfired [`Fault::Superstep`] matches (current stage,
    /// `superstep`, `worker`). Probed by the superstep runner at the start of
    /// each worker's compute job.
    pub fn probe_superstep(&self, superstep: usize, worker: usize) {
        let stage = self.current_stage.load(Ordering::SeqCst);
        for (i, f) in self.faults.iter().enumerate() {
            if let Fault::Superstep {
                stage: s,
                superstep: k,
                worker: w,
            } = *f
            {
                if s == stage && k == superstep && w == worker && self.claim(i) {
                    panic!("injected fault: {f}");
                }
            }
        }
    }

    /// Reports the sleep duration of an unfired [`Fault::Stall`] matching
    /// `superstep`, claiming it. Probed by the superstep runner on the
    /// **coordinator** thread at each superstep boundary, right before the
    /// job-control poll; the caller performs the sleep.
    pub fn probe_stall(&self, superstep: usize) -> Option<u64> {
        for (i, f) in self.faults.iter().enumerate() {
            if let Fault::Stall {
                superstep: k,
                millis,
            } = *f
            {
                if k == superstep && self.claim(i) {
                    return Some(millis);
                }
            }
        }
        None
    }

    /// Counts a checkpoint write and reports whether an unfired
    /// [`Fault::CheckpointWrite`] claims it. The caller (checkpoint save)
    /// turns `true` into a typed I/O error rather than a panic.
    pub fn probe_checkpoint_write(&self) -> bool {
        let nth = self.checkpoint_writes.fetch_add(1, Ordering::SeqCst) + 1;
        for (i, f) in self.faults.iter().enumerate() {
            if let Fault::CheckpointWrite { nth: n } = *f {
                if n == nth && self.claim(i) {
                    return true;
                }
            }
        }
        false
    }

    /// Whether every fault in the plan has fired.
    pub fn all_fired(&self) -> bool {
        self.fired.iter().all(|f| f.load(Ordering::SeqCst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn stage_entry_fires_once_on_matching_stage() {
        let armed = ArmedFaults::new(FaultPlan::single(Fault::StageEntry { stage: 2 }));
        armed.enter_stage(0);
        armed.probe_stage_entry(); // no match, no panic
        armed.enter_stage(2);
        let r = catch_unwind(AssertUnwindSafe(|| armed.probe_stage_entry()));
        assert!(r.is_err(), "must fire on stage 2");
        assert!(armed.all_fired());
        armed.probe_stage_entry(); // fired already: clean
    }

    #[test]
    fn superstep_fault_matches_all_three_coordinates() {
        let armed = ArmedFaults::new(FaultPlan::single(Fault::Superstep {
            stage: 1,
            superstep: 3,
            worker: 0,
        }));
        armed.enter_stage(1);
        armed.probe_superstep(3, 1); // wrong worker
        armed.probe_superstep(2, 0); // wrong superstep
        armed.enter_stage(0);
        armed.probe_superstep(3, 0); // wrong stage
        armed.enter_stage(1);
        let r = catch_unwind(AssertUnwindSafe(|| armed.probe_superstep(3, 0)));
        assert!(r.is_err());
        armed.probe_superstep(3, 0); // fired already: clean
    }

    #[test]
    fn checkpoint_write_fault_claims_the_nth_save() {
        let armed = ArmedFaults::new(FaultPlan::single(Fault::CheckpointWrite { nth: 2 }));
        assert!(!armed.probe_checkpoint_write()); // save #1
        assert!(armed.probe_checkpoint_write()); // save #2 fails
        assert!(!armed.probe_checkpoint_write()); // save #3 clean
        assert!(armed.all_fired());
    }

    #[test]
    fn stall_fires_once_on_its_superstep_boundary() {
        let armed = ArmedFaults::new(FaultPlan::single(Fault::Stall {
            superstep: 2,
            millis: 7,
        }));
        assert_eq!(armed.probe_stall(0), None);
        assert_eq!(armed.probe_stall(2), Some(7), "must claim its boundary");
        assert_eq!(armed.probe_stall(2), None, "claim-once semantics");
        assert!(armed.all_fired());
        assert!(Fault::Stall {
            superstep: 2,
            millis: 7,
        }
        .to_string()
        .contains("7ms stall"));
    }

    #[test]
    fn plan_builder_and_display() {
        let plan = FaultPlan::new()
            .with(Fault::StageEntry { stage: 1 })
            .with(Fault::CheckpointWrite { nth: 3 });
        assert_eq!(plan.faults().len(), 2);
        assert!(plan.faults()[0].to_string().contains("stage 1"));
        assert!(plan.faults()[1].to_string().contains("#3"));
        let f = Fault::Superstep {
            stage: 4,
            superstep: 2,
            worker: 1,
        };
        let s = f.to_string();
        assert!(s.contains('4') && s.contains('2') && s.contains('1'));
    }
}
