//! Out-of-core spill layer: bounded-memory execution for the data plane.
//!
//! Two independent mechanisms share this module's framing, codecs, and typed
//! errors:
//!
//! * **Shuffle-run spilling** — when a superstep's (or the mini-MapReduce
//!   map phase's) per-destination outbox grows past its share of the
//!   [`SpillPolicy`] byte cap, each destination buffer is radix-presorted
//!   (and pre-combined when the program declares a combiner) and written out
//!   as one sorted on-disk run (`write_run`). Delivery then merges disk
//!   runs and the in-RAM remainder with the same key-then-source order as
//!   the in-memory `kmerge` (`merge_run_sources`), so spilled and
//!   unspilled executions are byte-identical.
//! * **Partition column sealing** — when a job starts with
//!   `store_resident_bytes` above the cap, every `VertexSet` partition
//!   drains its ID/value/halted/stamp columns into fixed-size *extents*
//!   (`PartSeal`) appended to per-partition generation files. The runner
//!   then computes one extent window at a time (bounding residency to
//!   roughly `workers × extent bytes`), writing each window back after use;
//!   compaction rewrites the generation file once superseded extent images
//!   outweigh the live ones.
//!
//! All file formats share one framing: an 8-byte magic (`PPASPIL1`), a
//! `u32` format version, a `u64` record/slot count, then `u32`
//! length-prefixed records read back through the streaming
//! `serde::bin::FrameReader`. Per the PR 8 codec contract the entire module
//! is panic-free outside tests: truncated or corrupt spill files surface as
//! [`SpillError`] values, never as panics, and the `ppa_lint`
//! `panic-free-codecs` rule enforces this at CI time.
//!
//! Temporary files live in a per-job `SpillDir` under the system temp
//! directory; the directory and every run/generation file are removed by
//! RAII `Drop` impls, including on the cancellation unwind path.

use crate::vertex::VertexProgram;
use crate::vertex_set::{IdColumn, RunColumns};
use serde::bin::{FrameError, FrameReader};
use serde::{Deserialize, Serialize};
use std::collections::BinaryHeap;
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// File magic shared by run files, partition generation files, and spill
/// round-trip files: `PPASPIL1` as a little-endian `u64`.
const MAGIC: u64 = u64::from_le_bytes(*b"PPASPIL1");

/// Format version written after the magic.
const VERSION: u32 = 1;

/// Upper bound on a single frame; a corrupt length prefix fails fast as
/// [`SpillError::Corrupt`] instead of triggering a gigantic allocation.
const MAX_FRAME: u32 = 1 << 30;

/// Slots per sealed partition extent. Small enough that one faulted-in
/// window per worker stays far below any useful memory cap, large enough to
/// amortise the per-extent seek + header cost.
pub(crate) const EXTENT_SLOTS: usize = 1024;

/// When a job may spill to disk, and at what threshold.
///
/// Installed on the [`ExecCtx`](crate::ExecCtx) (usually via
/// `AssemblyConfig.spill`); [`SpillPolicy::Off`] keeps every code path
/// byte-for-byte identical to the pre-spill engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum SpillPolicy {
    /// Never spill; everything stays in RAM (the default).
    #[default]
    Off,
    /// Spill once the job's resident bytes exceed this cap: partitions seal
    /// their columns when the store starts above the cap, and each worker's
    /// outbox spills sorted runs once it exceeds `cap / (4 × workers)`.
    At(u64),
}

impl SpillPolicy {
    /// The byte cap, or `None` when spilling is off.
    pub fn cap(&self) -> Option<u64> {
        match *self {
            SpillPolicy::Off => None,
            SpillPolicy::At(bytes) => Some(bytes),
        }
    }
}

/// Typed failure of a spill I/O or decode operation.
///
/// Spill files are transient scratch state, so errors carry the offending
/// path plus a rendered detail string (keeping the type `Clone + Eq`, which
/// `std::io::Error` is not). They surface from `try_run`/`try_assemble` via
/// `EngineError::Spill` instead of panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpillError {
    /// An operating-system I/O operation failed.
    Io {
        /// The file or directory involved.
        path: String,
        /// What was being attempted (e.g. `"create spill dir"`).
        op: &'static str,
        /// The rendered `std::io::Error`.
        message: String,
    },
    /// A spill file ended before the expected data.
    Truncated {
        /// The file involved.
        path: String,
        /// Where and what was missing.
        detail: String,
    },
    /// A spill file's contents were structurally invalid.
    Corrupt {
        /// The file involved.
        path: String,
        /// What was wrong.
        detail: String,
    },
}

impl std::fmt::Display for SpillError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpillError::Io { path, op, message } => {
                write!(f, "spill I/O error ({op}) on {path}: {message}")
            }
            SpillError::Truncated { path, detail } => {
                write!(f, "truncated spill file {path}: {detail}")
            }
            SpillError::Corrupt { path, detail } => {
                write!(f, "corrupt spill file {path}: {detail}")
            }
        }
    }
}

impl std::error::Error for SpillError {}

fn io_err(path: &Path, op: &'static str, e: std::io::Error) -> SpillError {
    SpillError::Io {
        path: path.display().to_string(),
        op,
        message: e.to_string(),
    }
}

fn frame_err(path: &Path, e: FrameError) -> SpillError {
    let path = path.display().to_string();
    match e {
        FrameError::Io { op, message } => SpillError::Io { path, op, message },
        FrameError::Truncated {
            offset,
            needed,
            got,
        } => SpillError::Truncated {
            path,
            detail: format!("at offset {offset}: needed {needed} bytes, got {got}"),
        },
        FrameError::Invalid { offset, what } => SpillError::Corrupt {
            path,
            detail: format!("at offset {offset}: {what}"),
        },
    }
}

/// A minimal binary codec for spill files (moved here from `chain`, which
/// re-exports it for compatibility).
///
/// Implementations must be able to reconstruct the value from the bytes they
/// wrote; framing (length prefixes, headers) is handled by this module.
/// `decode` returns `None` on truncated or invalid input — it must never
/// panic, per the workspace's panic-free codec contract.
pub trait SpillCodec: Sized {
    /// Appends the binary encoding of `self` to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);
    /// Decodes one value from the front of `buf`, advancing it.
    fn decode(buf: &mut &[u8]) -> Option<Self>;
}

impl SpillCodec for u64 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        if buf.len() < 8 {
            return None;
        }
        let (head, rest) = buf.split_at(8);
        *buf = rest;
        Some(u64::from_le_bytes(head.try_into().ok()?))
    }
}

impl SpillCodec for u32 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        if buf.len() < 4 {
            return None;
        }
        let (head, rest) = buf.split_at(4);
        *buf = rest;
        Some(u32::from_le_bytes(head.try_into().ok()?))
    }
}

impl SpillCodec for u8 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(*self);
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        let (&head, rest) = buf.split_first()?;
        *buf = rest;
        Some(head)
    }
}

impl SpillCodec for bool {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(u8::from(*self));
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        match u8::decode(buf)? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }
}

impl SpillCodec for Vec<u8> {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.len() as u64).encode(buf);
        buf.extend_from_slice(self);
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        let len = u64::decode(buf)? as usize;
        if buf.len() < len {
            return None;
        }
        let (head, rest) = buf.split_at(len);
        *buf = rest;
        Some(head.to_vec())
    }
}

impl<A: SpillCodec, B: SpillCodec> SpillCodec for (A, B) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        Some((A::decode(buf)?, B::decode(buf)?))
    }
}

impl<A: SpillCodec, B: SpillCodec, C: SpillCodec> SpillCodec for (A, B, C) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
        self.2.encode(buf);
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        Some((A::decode(buf)?, B::decode(buf)?, C::decode(buf)?))
    }
}

/// An erased [`SpillCodec`] vtable for one concrete type.
///
/// A pair of plain function pointers, so it is `Copy` regardless of `T` and
/// can be threaded through worker closures without trait-object allocation.
pub struct Codec<T> {
    /// Appends the encoding of the value to the buffer.
    pub encode: fn(&T, &mut Vec<u8>),
    /// Decodes one value from the front of the slice, advancing it.
    pub decode: fn(&mut &[u8]) -> Option<T>,
}

impl<T> Clone for Codec<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Codec<T> {}

/// The [`Codec`] vtable of a [`SpillCodec`] type.
pub fn codec_of<T: SpillCodec>() -> Codec<T> {
    Codec {
        encode: <T as SpillCodec>::encode,
        decode: <T as SpillCodec>::decode,
    }
}

/// The codecs a [`VertexProgram`] supplies to opt into out-of-core
/// execution: one per associated type the engine must persist.
///
/// Programs that return `None` from [`VertexProgram::spill_codecs`] (the
/// default) run fully in RAM even when a [`SpillPolicy`] cap is installed.
pub struct SpillCodecs<P: VertexProgram + ?Sized> {
    /// Codec for `P::Id` (vertex identifiers in run files and extents).
    pub id: Codec<P::Id>,
    /// Codec for `P::Value` (vertex values in sealed extents).
    pub value: Codec<P::Value>,
    /// Codec for `P::Message` (payloads in spilled shuffle runs).
    pub message: Codec<P::Message>,
}

impl<P: VertexProgram + ?Sized> Clone for SpillCodecs<P> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<P: VertexProgram + ?Sized> Copy for SpillCodecs<P> {}

impl<P: VertexProgram + ?Sized> SpillCodecs<P>
where
    P::Id: SpillCodec,
    P::Value: SpillCodec,
    P::Message: SpillCodec,
{
    /// Builds the vtables from the associated types' [`SpillCodec`] impls.
    pub fn new() -> Self {
        SpillCodecs {
            id: codec_of::<P::Id>(),
            value: codec_of::<P::Value>(),
            message: codec_of::<P::Message>(),
        }
    }
}

impl<P: VertexProgram + ?Sized> Default for SpillCodecs<P>
where
    P::Id: SpillCodec,
    P::Value: SpillCodec,
    P::Message: SpillCodec,
{
    fn default() -> Self {
        Self::new()
    }
}

/// RAII per-job temp directory holding every spill artefact of one job.
///
/// Shared via `Arc` by run files and partition seals; removing it (with all
/// remaining contents) happens when the last reference drops — including on
/// the cancellation unwind path, which is what guarantees "temp files
/// cleaned on cancel".
pub(crate) struct SpillDir {
    path: PathBuf,
}

impl SpillDir {
    /// Creates a fresh uniquely-named directory under the system temp dir.
    pub(crate) fn create(label: &str) -> Result<Arc<SpillDir>, SpillError> {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("ppa-spill-{}-{label}-{n}", std::process::id()));
        std::fs::create_dir_all(&path).map_err(|e| io_err(&path, "create spill dir", e))?;
        Ok(Arc::new(SpillDir { path }))
    }

    /// A path for `name` inside the directory.
    pub(crate) fn file(&self, name: &str) -> PathBuf {
        self.path.join(name)
    }
}

impl Drop for SpillDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

/// Writes the shared header (magic, version, record count) into `buf`.
fn encode_header(buf: &mut Vec<u8>, count: u64) {
    MAGIC.encode(buf);
    VERSION.encode(buf);
    count.encode(buf);
}

/// Reads and validates the shared header, returning the record count.
fn read_header<R: Read>(frames: &mut FrameReader<R>, path: &Path) -> Result<u64, SpillError> {
    let magic = frames.u64().map_err(|e| frame_err(path, e))?;
    if magic != MAGIC {
        return Err(SpillError::Corrupt {
            path: path.display().to_string(),
            detail: format!("bad magic {magic:#018x}"),
        });
    }
    let version = frames.u32().map_err(|e| frame_err(path, e))?;
    if version != VERSION {
        return Err(SpillError::Corrupt {
            path: path.display().to_string(),
            detail: format!("unsupported spill format version {version}"),
        });
    }
    frames.u64().map_err(|e| frame_err(path, e))
}

/// Encodes `items` into the shared spill framing (header + one
/// length-prefixed frame per item) entirely in memory.
pub fn encode_spill_bytes<T: SpillCodec>(items: &[T]) -> Vec<u8> {
    let mut buf = Vec::new();
    encode_header(&mut buf, items.len() as u64);
    let mut scratch = Vec::new();
    for item in items {
        scratch.clear();
        item.encode(&mut scratch);
        (scratch.len() as u32).encode(&mut buf);
        buf.extend_from_slice(&scratch);
    }
    buf
}

/// Decodes a spill stream (as produced by [`encode_spill_bytes`] or
/// [`write_spill_file`]) from any reader. `origin` names the source in
/// errors (a path, or `"<memory>"`).
pub fn decode_spill_stream<T: SpillCodec, R: Read>(
    src: R,
    origin: &str,
) -> Result<Vec<T>, SpillError> {
    let path = Path::new(origin);
    let mut frames = FrameReader::new(src, MAX_FRAME);
    let count = read_header(&mut frames, path)?;
    let mut out = Vec::new();
    out.try_reserve(usize::try_from(count).unwrap_or(usize::MAX).min(1 << 20))
        .map_err(|_| SpillError::Corrupt {
            path: origin.to_string(),
            detail: format!("record count {count} exceeds available memory"),
        })?;
    for i in 0..count {
        let mut frame = frames.frame().map_err(|e| frame_err(path, e))?;
        let item = T::decode(&mut frame).ok_or_else(|| SpillError::Corrupt {
            path: origin.to_string(),
            detail: format!("record {i} failed to decode"),
        })?;
        if !frame.is_empty() {
            return Err(SpillError::Corrupt {
                path: origin.to_string(),
                detail: format!(
                    "record {i} left {} trailing bytes in its frame",
                    frame.len()
                ),
            });
        }
        out.push(item);
    }
    Ok(out)
}

/// Writes `items` to `path` in the shared spill framing, returning the bytes
/// written. Used by `chain::spill_roundtrip`'s on-disk mode.
pub fn write_spill_file<T: SpillCodec>(path: &Path, items: &[T]) -> Result<u64, SpillError> {
    let bytes = encode_spill_bytes(items);
    let file = std::fs::File::create(path).map_err(|e| io_err(path, "create spill file", e))?;
    let mut w = BufWriter::new(file);
    w.write_all(&bytes)
        .map_err(|e| io_err(path, "write spill file", e))?;
    w.flush().map_err(|e| io_err(path, "flush spill file", e))?;
    Ok(bytes.len() as u64)
}

/// Reads back a file written by [`write_spill_file`], streaming record by
/// record (the whole file is never buffered).
pub fn read_spill_file<T: SpillCodec>(path: &Path) -> Result<Vec<T>, SpillError> {
    let file = std::fs::File::open(path).map_err(|e| io_err(path, "open spill file", e))?;
    decode_spill_stream(std::io::BufReader::new(file), &path.display().to_string())
}

/// One sorted on-disk shuffle run: `(key, value)` records in ascending key
/// order, in the shared spill framing. The file is deleted when the handle
/// drops (delivery consumes runs exactly once).
pub(crate) struct DiskRun {
    path: PathBuf,
    /// Bytes written, including the header.
    pub(crate) bytes: u64,
    /// Keeps the owning directory alive until the run is consumed.
    _dir: Arc<SpillDir>,
}

impl DiskRun {
    /// The on-disk location (error reporting, reader construction).
    pub(crate) fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for DiskRun {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Writes one sorted run of `(key, value)` records into `dir` and returns
/// its handle. `records` must already be key-sorted; this is not checked.
pub(crate) fn write_run<K, V>(
    dir: &Arc<SpillDir>,
    name: &str,
    records: &[(K, V)],
    kc: &Codec<K>,
    vc: &Codec<V>,
) -> Result<DiskRun, SpillError> {
    let path = dir.file(name);
    let file = std::fs::File::create(&path).map_err(|e| io_err(&path, "create run file", e))?;
    let mut w = BufWriter::new(file);
    let mut head = Vec::new();
    encode_header(&mut head, records.len() as u64);
    w.write_all(&head)
        .map_err(|e| io_err(&path, "write run header", e))?;
    let mut bytes = head.len() as u64;
    let mut scratch = Vec::new();
    let mut prefix = Vec::new();
    for (k, v) in records {
        scratch.clear();
        (kc.encode)(k, &mut scratch);
        (vc.encode)(v, &mut scratch);
        prefix.clear();
        (scratch.len() as u32).encode(&mut prefix);
        w.write_all(&prefix)
            .map_err(|e| io_err(&path, "write run record", e))?;
        w.write_all(&scratch)
            .map_err(|e| io_err(&path, "write run record", e))?;
        bytes += (prefix.len() + scratch.len()) as u64;
    }
    w.flush().map_err(|e| io_err(&path, "flush run file", e))?;
    Ok(DiskRun {
        path,
        bytes,
        _dir: Arc::clone(dir),
    })
}

/// Streaming reader over one [`DiskRun`]: yields `(key, value)` records in
/// file order without buffering the run in memory.
pub(crate) struct RunReader<K, V> {
    frames: FrameReader<std::io::BufReader<std::fs::File>>,
    remaining: u64,
    kc: Codec<K>,
    vc: Codec<V>,
    path: PathBuf,
}

impl<K, V> RunReader<K, V> {
    /// Opens a run file and validates its header.
    pub(crate) fn open(path: &Path, kc: Codec<K>, vc: Codec<V>) -> Result<Self, SpillError> {
        let file = std::fs::File::open(path).map_err(|e| io_err(path, "open run file", e))?;
        let mut frames = FrameReader::new(std::io::BufReader::new(file), MAX_FRAME);
        let remaining = read_header(&mut frames, path)?;
        Ok(RunReader {
            frames,
            remaining,
            kc,
            vc,
            path: path.to_path_buf(),
        })
    }

    /// The next record, `None` once the declared count is exhausted.
    pub(crate) fn next(&mut self) -> Result<Option<(K, V)>, SpillError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        let (kc, vc) = (self.kc, self.vc);
        let mut frame = match self.frames.frame() {
            Ok(f) => f,
            Err(e) => return Err(frame_err(&self.path, e)),
        };
        let corrupt = |detail: String| SpillError::Corrupt {
            path: self.path.display().to_string(),
            detail,
        };
        let k = (kc.decode)(&mut frame)
            .ok_or_else(|| corrupt("record key failed to decode".to_string()))?;
        let v = (vc.decode)(&mut frame)
            .ok_or_else(|| corrupt("record value failed to decode".to_string()))?;
        if !frame.is_empty() {
            return Err(corrupt(format!(
                "record left {} trailing bytes in its frame",
                frame.len()
            )));
        }
        Ok(Some((k, v)))
    }

    /// Bytes consumed from the file so far.
    pub(crate) fn bytes_read(&self) -> u64 {
        self.frames.offset()
    }
}

/// One input to [`merge_run_sources`]: either a drained in-RAM sorted buffer
/// or a streaming disk run.
pub(crate) enum MergeSource<K, V> {
    /// Sorted in-memory records (the unspilled remainder of an outbox).
    Ram(std::vec::IntoIter<(K, V)>),
    /// A sorted on-disk run.
    Disk(RunReader<K, V>),
}

impl<K, V> MergeSource<K, V> {
    fn next(&mut self) -> Result<Option<(K, V)>, SpillError> {
        match self {
            MergeSource::Ram(it) => Ok(it.next()),
            MergeSource::Disk(r) => r.next(),
        }
    }
}

/// Heap entry ordered by `(key, source index)` — the same tie-break as the
/// in-memory `kmerge` (equal keys drain lower-indexed sources first), which
/// is what makes spilled delivery byte-identical to unspilled delivery.
struct HeapEntry<K, V> {
    key: K,
    src: usize,
    val: V,
}

impl<K: Ord, V> PartialEq for HeapEntry<K, V> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.src == other.src
    }
}
impl<K: Ord, V> Eq for HeapEntry<K, V> {}
impl<K: Ord, V> PartialOrd for HeapEntry<K, V> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<K: Ord, V> Ord for HeapEntry<K, V> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key).then(self.src.cmp(&other.src))
    }
}

/// Merges pre-sorted sources into a single `(key, source)`-ordered stream,
/// invoking `emit` once per record. Returns the total bytes read from disk
/// sources. Source order matters: for equal keys, records surface in
/// ascending source index, so callers must list each sender's runs in spill
/// order followed by its RAM remainder, senders in worker order.
pub(crate) fn merge_run_sources<K: Ord, V>(
    mut sources: Vec<MergeSource<K, V>>,
    mut emit: impl FnMut(K, V),
) -> Result<u64, SpillError> {
    let mut heap = BinaryHeap::with_capacity(sources.len());
    for (src, s) in sources.iter_mut().enumerate() {
        if let Some((key, val)) = s.next()? {
            heap.push(std::cmp::Reverse(HeapEntry { key, src, val }));
        }
    }
    while let Some(std::cmp::Reverse(HeapEntry { key, src, val })) = heap.pop() {
        emit(key, val);
        if let Some(s) = sources.get_mut(src) {
            if let Some((key, val)) = s.next()? {
                heap.push(std::cmp::Reverse(HeapEntry { key, src, val }));
            }
        }
    }
    let mut disk_bytes = 0;
    for s in &sources {
        if let MergeSource::Disk(r) = s {
            disk_bytes += r.bytes_read();
        }
    }
    Ok(disk_bytes)
}

/// One append-only partition generation file.
struct GenFile {
    path: PathBuf,
    /// Bytes written so far (the append offset).
    len: u64,
}

/// Location and summary of one sealed extent image.
pub(crate) struct ExtentMeta<I> {
    /// Index into the seal's generation files.
    file: usize,
    /// Byte offset of the image within that file.
    offset: u64,
    /// Byte length of the image.
    len: u64,
    /// Vertex slots in the extent.
    pub(crate) slots: usize,
    /// Smallest vertex ID in the extent (ascending, immutable for the job).
    pub(crate) first: I,
    /// Largest vertex ID in the extent.
    pub(crate) last: I,
    /// Halted slots at the last writeback (drives quiescence detection and
    /// lets fully-halted extents skip the pass-2 fault-in entirely).
    pub(crate) halted: u64,
}

/// A `VertexSet` partition whose columns have been sealed to disk.
///
/// The partition's ID/value/halted/stamp columns are drained into
/// [`EXTENT_SLOTS`]-sized extents appended to per-partition generation
/// files. The runner then faults one extent *window* at a time back into
/// the reusable buffers held here, computes against it through the ordinary
/// `RunColumns` view, and writes the image back. Because vertex IDs never
/// change during a job, extent key ranges are fixed at seal time; only
/// values, stamps, and halt bits are rewritten. Writebacks append (old
/// images become garbage), and [`PartSeal::maybe_compact`] rewrites the
/// live extents into a fresh generation file once garbage outweighs them.
///
/// Dropping the seal — including on a cancellation unwind — deletes its
/// generation files; the owning [`SpillDir`] removes anything left.
pub(crate) struct PartSeal<I, V> {
    dir: Arc<SpillDir>,
    files: Vec<GenFile>,
    /// Extent directory, in ascending key order.
    pub(crate) extents: Vec<ExtentMeta<I>>,
    id_codec: Codec<I>,
    value_codec: Codec<V>,
    part_index: usize,
    next_gen: u64,
    /// Bytes in the generation files owned by superseded extent images.
    garbage_bytes: u64,
    /// Extent index currently materialised in the window buffers.
    loaded: Option<usize>,
    // Reusable single-extent window buffers (always the `Plain` ID variant).
    win_ids: IdColumn<I>,
    win_values: Vec<Option<V>>,
    win_halted: Vec<u64>,
    win_stamps: Vec<u32>,
    scratch: Vec<u8>,
    // I/O counters since the last `take_counters`.
    spilled_bytes: u64,
    spill_read_bytes: u64,
    spilled_extents: u64,
}

/// Whether `slot`'s bit is set in the packed halt words.
fn bit(words: &[u64], slot: usize) -> bool {
    words
        .get(slot >> 6)
        .is_some_and(|w| (w >> (slot & 63)) & 1 == 1)
}

impl<I: Copy + Ord, V> PartSeal<I, V> {
    /// An empty seal for partition `part_index`, spilling into `dir`.
    pub(crate) fn new(
        dir: Arc<SpillDir>,
        part_index: usize,
        id_codec: Codec<I>,
        value_codec: Codec<V>,
    ) -> Self {
        PartSeal {
            dir,
            files: Vec::new(),
            extents: Vec::new(),
            id_codec,
            value_codec,
            part_index,
            next_gen: 0,
            garbage_bytes: 0,
            loaded: None,
            win_ids: IdColumn::plain(),
            win_values: Vec::new(),
            win_halted: Vec::new(),
            win_stamps: Vec::new(),
            scratch: Vec::new(),
            spilled_bytes: 0,
            spill_read_bytes: 0,
            spilled_extents: 0,
        }
    }

    fn internal(&self, detail: &str) -> SpillError {
        SpillError::Corrupt {
            path: self.dir.file("").display().to_string(),
            detail: format!("internal seal invariant violated: {detail}"),
        }
    }

    fn clear_window(&mut self) {
        self.win_ids.as_plain_mut().clear();
        self.win_values.clear();
        self.win_halted.clear();
        self.win_stamps.clear();
    }

    /// Seals a partition's slots (ascending ID order) into extents.
    pub(crate) fn seal_slots(
        &mut self,
        slots: impl IntoIterator<Item = (I, Option<V>, bool, u32)>,
    ) -> Result<(), SpillError> {
        self.clear_window();
        for (id, value, halted, stamp) in slots {
            if self.win_values.len() == EXTENT_SLOTS {
                self.flush_window_as_extent()?;
                self.clear_window();
            }
            let slot = self.win_values.len();
            self.win_ids.as_plain_mut().push(id);
            self.win_values.push(value);
            self.win_stamps.push(stamp);
            if slot & 63 == 0 {
                self.win_halted.push(0);
            }
            if halted {
                if let Some(w) = self.win_halted.last_mut() {
                    *w |= 1 << (slot & 63);
                }
            }
        }
        if !self.win_values.is_empty() {
            self.flush_window_as_extent()?;
        }
        self.clear_window();
        self.loaded = None;
        Ok(())
    }

    /// Encodes the window into `scratch`: slot count, halt words, then one
    /// `(id, stamp, presence, value)` record per slot.
    fn encode_window(&mut self) {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        (self.win_values.len() as u32).encode(&mut scratch);
        for w in &self.win_halted {
            w.encode(&mut scratch);
        }
        let ids = self.win_ids.as_plain_mut();
        for ((id, value), stamp) in ids.iter().zip(&self.win_values).zip(&self.win_stamps) {
            (self.id_codec.encode)(id, &mut scratch);
            stamp.encode(&mut scratch);
            match value {
                Some(v) => {
                    1u8.encode(&mut scratch);
                    (self.value_codec.encode)(v, &mut scratch);
                }
                None => 0u8.encode(&mut scratch),
            }
        }
        self.scratch = scratch;
    }

    /// Decodes an extent image from `scratch` into the window buffers.
    fn decode_window(&mut self, expect_slots: usize, origin: &Path) -> Result<(), SpillError> {
        let corrupt = |detail: String| SpillError::Corrupt {
            path: origin.display().to_string(),
            detail,
        };
        self.clear_window();
        let scratch = std::mem::take(&mut self.scratch);
        let result = (|| {
            let mut buf = scratch.as_slice();
            let slots = u32::decode(&mut buf)
                .ok_or_else(|| corrupt("extent slot count missing".into()))?
                as usize;
            if slots != expect_slots {
                return Err(corrupt(format!(
                    "extent holds {slots} slots, directory says {expect_slots}"
                )));
            }
            for _ in 0..slots.div_ceil(64) {
                let w = u64::decode(&mut buf)
                    .ok_or_else(|| corrupt("extent halt words truncated".into()))?;
                self.win_halted.push(w);
            }
            for i in 0..slots {
                let id = (self.id_codec.decode)(&mut buf)
                    .ok_or_else(|| corrupt(format!("extent slot {i}: id failed to decode")))?;
                let stamp = u32::decode(&mut buf)
                    .ok_or_else(|| corrupt(format!("extent slot {i}: stamp truncated")))?;
                let value = match u8::decode(&mut buf) {
                    Some(0) => None,
                    Some(1) => Some((self.value_codec.decode)(&mut buf).ok_or_else(|| {
                        corrupt(format!("extent slot {i}: value failed to decode"))
                    })?),
                    _ => return Err(corrupt(format!("extent slot {i}: bad value presence flag"))),
                };
                self.win_ids.as_plain_mut().push(id);
                self.win_values.push(value);
                self.win_stamps.push(stamp);
            }
            if !buf.is_empty() {
                return Err(corrupt(format!("extent left {} trailing bytes", buf.len())));
            }
            Ok(())
        })();
        self.scratch = scratch;
        result
    }

    /// Appends `scratch` to the active generation file, returning the image
    /// location.
    fn append_image(&mut self) -> Result<(usize, u64, u64), SpillError> {
        if self.files.is_empty() {
            self.push_gen_file();
        }
        let idx = self.files.len() - 1;
        let gf = self.files.get_mut(idx).ok_or_else(|| SpillError::Corrupt {
            path: String::new(),
            detail: "internal: active generation file missing".into(),
        })?;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&gf.path)
            .map_err(|e| io_err(&gf.path, "open generation file", e))?;
        f.write_all(&self.scratch)
            .map_err(|e| io_err(&gf.path, "append extent image", e))?;
        let offset = gf.len;
        let len = self.scratch.len() as u64;
        gf.len += len;
        self.spilled_bytes += len;
        self.spilled_extents += 1;
        Ok((idx, offset, len))
    }

    fn push_gen_file(&mut self) {
        let name = format!("p{}-g{}.col", self.part_index, self.next_gen);
        self.next_gen += 1;
        self.files.push(GenFile {
            path: self.dir.file(&name),
            len: 0,
        });
    }

    /// Writes the current window out as a brand-new extent (seal time only).
    fn flush_window_as_extent(&mut self) -> Result<(), SpillError> {
        let slots = self.win_values.len();
        let ids = self.win_ids.as_plain_mut();
        let (first, last) = match (ids.first().copied(), ids.last().copied()) {
            (Some(f), Some(l)) => (f, l),
            _ => return Err(self.internal("empty extent window")),
        };
        let halted = self.win_halted.iter().map(|w| w.count_ones() as u64).sum();
        self.encode_window();
        let (file, offset, len) = self.append_image()?;
        self.extents.push(ExtentMeta {
            file,
            offset,
            len,
            slots,
            first,
            last,
            halted,
        });
        Ok(())
    }

    /// Faults extent `e` into the window buffers (no-op if already loaded).
    pub(crate) fn load_extent(&mut self, e: usize) -> Result<(), SpillError> {
        if self.loaded == Some(e) {
            return Ok(());
        }
        let meta = self
            .extents
            .get(e)
            .ok_or_else(|| self.internal("extent index out of range"))?;
        let (file, offset, len, slots) = (meta.file, meta.offset, meta.len, meta.slots);
        let gf = self
            .files
            .get(file)
            .ok_or_else(|| self.internal("extent references a missing generation file"))?;
        let path = gf.path.clone();
        let mut f =
            std::fs::File::open(&path).map_err(|e| io_err(&path, "open generation file", e))?;
        f.seek(SeekFrom::Start(offset))
            .map_err(|e| io_err(&path, "seek to extent", e))?;
        self.scratch.clear();
        let got = f
            .take(len)
            .read_to_end(&mut self.scratch)
            .map_err(|e| io_err(&path, "read extent image", e))?;
        if (got as u64) < len {
            return Err(SpillError::Truncated {
                path: path.display().to_string(),
                detail: format!("extent at offset {offset}: needed {len} bytes, got {got}"),
            });
        }
        self.decode_window(slots, &path)?;
        self.spill_read_bytes += len;
        self.loaded = Some(e);
        Ok(())
    }

    /// Writes the (possibly modified) window back as the new image of extent
    /// `e`, superseding the previous one.
    pub(crate) fn store_extent(&mut self, e: usize) -> Result<(), SpillError> {
        if self.loaded != Some(e) {
            return Err(self.internal("storing an extent that is not loaded"));
        }
        let halted = self.win_halted.iter().map(|w| w.count_ones() as u64).sum();
        self.encode_window();
        let (file, offset, len) = self.append_image()?;
        let meta = self.extents.get_mut(e).ok_or_else(|| SpillError::Corrupt {
            path: String::new(),
            detail: "internal: extent index out of range".into(),
        })?;
        self.garbage_bytes += meta.len;
        meta.file = file;
        meta.offset = offset;
        meta.len = len;
        meta.halted = halted;
        Ok(())
    }

    /// The window's columns, viewed exactly like a resident partition's.
    pub(crate) fn window_columns(&mut self) -> RunColumns<'_, I, V> {
        RunColumns {
            ids: &self.win_ids,
            values: &mut self.win_values,
            halted: &mut self.win_halted,
            stamps: &mut self.win_stamps,
        }
    }

    /// Rewrites live extents into a fresh generation file once superseded
    /// images outweigh them, deleting the old files.
    pub(crate) fn maybe_compact(&mut self) -> Result<(), SpillError> {
        let live: u64 = self.extents.iter().map(|m| m.len).sum();
        if self.garbage_bytes <= live.max(1) {
            return Ok(());
        }
        self.push_gen_file();
        let new_idx = self.files.len() - 1;
        let (new_path, mut new_len) = match self.files.get(new_idx) {
            Some(gf) => (gf.path.clone(), gf.len),
            None => return Err(self.internal("fresh generation file missing")),
        };
        let mut out = BufWriter::new(
            std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&new_path)
                .map_err(|e| io_err(&new_path, "open generation file", e))?,
        );
        for e in 0..self.extents.len() {
            let (file, offset, len) = match self.extents.get(e) {
                Some(m) => (m.file, m.offset, m.len),
                None => return Err(self.internal("extent index out of range")),
            };
            let path = match self.files.get(file) {
                Some(gf) => gf.path.clone(),
                None => return Err(self.internal("extent references a missing file")),
            };
            let mut f =
                std::fs::File::open(&path).map_err(|e| io_err(&path, "open generation file", e))?;
            f.seek(SeekFrom::Start(offset))
                .map_err(|e| io_err(&path, "seek to extent", e))?;
            self.scratch.clear();
            let got = f
                .take(len)
                .read_to_end(&mut self.scratch)
                .map_err(|e| io_err(&path, "read extent image", e))?;
            if (got as u64) < len {
                return Err(SpillError::Truncated {
                    path: path.display().to_string(),
                    detail: format!("extent at offset {offset}: needed {len} bytes, got {got}"),
                });
            }
            out.write_all(&self.scratch)
                .map_err(|e| io_err(&new_path, "append extent image", e))?;
            self.spill_read_bytes += len;
            self.spilled_bytes += len;
            if let Some(m) = self.extents.get_mut(e) {
                m.file = new_idx;
                m.offset = new_len;
            }
            new_len += len;
        }
        out.flush()
            .map_err(|e| io_err(&new_path, "flush generation file", e))?;
        drop(out);
        // Retire every pre-compaction file and renumber the survivor to 0.
        let old: Vec<GenFile> = self.files.drain(..new_idx).collect();
        for gf in &old {
            let _ = std::fs::remove_file(&gf.path);
        }
        if let Some(gf) = self.files.first_mut() {
            gf.len = new_len;
        }
        for m in &mut self.extents {
            m.file = 0;
        }
        self.garbage_bytes = 0;
        Ok(())
    }

    /// Loads every extent in order and hands each slot to `f` (unseal).
    pub(crate) fn drain_slots(
        &mut self,
        mut f: impl FnMut(I, Option<V>, bool, u32),
    ) -> Result<(), SpillError> {
        for e in 0..self.extents.len() {
            self.load_extent(e)?;
            let ids = std::mem::take(self.win_ids.as_plain_mut());
            let values = std::mem::take(&mut self.win_values);
            let stamps = std::mem::take(&mut self.win_stamps);
            let words = std::mem::take(&mut self.win_halted);
            self.loaded = None;
            for (slot, ((id, value), stamp)) in
                ids.iter().copied().zip(values).zip(stamps).enumerate()
            {
                f(id, value, bit(&words, slot), stamp);
            }
            // Give the capacity back to the window for the next extent.
            *self.win_ids.as_plain_mut() = ids;
            self.win_ids.as_plain_mut().clear();
        }
        Ok(())
    }

    /// Total vertex slots across all extents.
    pub(crate) fn total_slots(&self) -> usize {
        self.extents.iter().map(|m| m.slots).sum()
    }

    /// Halted slots across all extents (as of each extent's last writeback).
    pub(crate) fn total_halted(&self) -> u64 {
        self.extents.iter().map(|m| m.halted).sum()
    }

    /// Heap bytes of the window buffers, scratch, and extent directory —
    /// the seal's actual RAM footprint, reported in `store_resident_bytes`
    /// while the partition is sealed.
    pub(crate) fn resident_bytes(&self) -> usize {
        self.win_ids.heap_bytes()
            + self.win_values.capacity() * std::mem::size_of::<Option<V>>()
            + self.win_halted.capacity() * 8
            + self.win_stamps.capacity() * 4
            + self.scratch.capacity()
            + self.extents.capacity() * std::mem::size_of::<ExtentMeta<I>>()
    }

    /// Drains the I/O counters: `(bytes written, bytes read, extent images
    /// written)` since the previous call.
    pub(crate) fn take_counters(&mut self) -> (u64, u64, u64) {
        let out = (
            self.spilled_bytes,
            self.spill_read_bytes,
            self.spilled_extents,
        );
        self.spilled_bytes = 0;
        self.spill_read_bytes = 0;
        self.spilled_extents = 0;
        out
    }
}

impl<I, V> Drop for PartSeal<I, V> {
    fn drop(&mut self) {
        for gf in &self.files {
            let _ = std::fs::remove_file(&gf.path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spill_dir_is_removed_on_drop() {
        let dir = SpillDir::create("unit").expect("create spill dir");
        let path = dir
            .file("probe.bin")
            .parent()
            .map(std::path::Path::to_path_buf);
        let path = path.expect("spill dir has a path");
        assert!(path.is_dir());
        drop(dir);
        assert!(!path.exists(), "spill dir must vanish with its last handle");
    }

    #[test]
    fn run_roundtrip_streams_in_order() {
        let dir = SpillDir::create("unit").expect("create spill dir");
        let records: Vec<(u64, u64)> = (0..3000).map(|i| (i, i * 31)).collect();
        let kc = codec_of::<u64>();
        let vc = codec_of::<u64>();
        let run = write_run(&dir, "a.run", &records, &kc, &vc).expect("write run");
        assert!(run.bytes > 0);
        let mut rd = RunReader::open(run.path(), kc, vc).expect("open run");
        let mut back = Vec::new();
        while let Some(rec) = rd.next().expect("read record") {
            back.push(rec);
        }
        assert_eq!(back, records);
        assert_eq!(rd.bytes_read(), run.bytes);
        let path = run.path().to_path_buf();
        drop(rd);
        drop(run);
        assert!(!path.exists(), "run file must vanish when its handle drops");
    }

    #[test]
    fn truncated_run_is_a_typed_error() {
        let dir = SpillDir::create("unit").expect("create spill dir");
        let records: Vec<(u64, u64)> = (0..100).map(|i| (i, i)).collect();
        let kc = codec_of::<u64>();
        let vc = codec_of::<u64>();
        let run = write_run(&dir, "t.run", &records, &kc, &vc).expect("write run");
        let bytes = std::fs::read(run.path()).expect("read back");
        std::fs::write(run.path(), &bytes[..bytes.len() / 2]).expect("truncate");
        let mut rd = RunReader::open(run.path(), kc, vc).expect("header still intact");
        let err = loop {
            match rd.next() {
                Ok(Some(_)) => continue,
                Ok(None) => panic!("truncated run must not read to completion"),
                Err(e) => break e,
            }
        };
        assert!(matches!(err, SpillError::Truncated { .. }), "got {err:?}");
    }

    #[test]
    fn corrupt_magic_is_a_typed_error() {
        let dir = SpillDir::create("unit").expect("create spill dir");
        let path = dir.file("bad.run");
        std::fs::write(&path, b"NOTSPILLxxxxxxxxxxxxxxxx").expect("write garbage");
        let err = RunReader::<u64, u64>::open(&path, codec_of(), codec_of())
            .err()
            .expect("garbage header must not open");
        assert!(
            matches!(
                err,
                SpillError::Corrupt { .. } | SpillError::Truncated { .. }
            ),
            "got {err:?}"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn merge_breaks_key_ties_by_source_index() {
        let dir = SpillDir::create("unit").expect("create spill dir");
        let kc = codec_of::<u64>();
        let vc = codec_of::<u64>();
        // Key 5 appears in every source; values encode the source so the
        // emission order is observable.
        let run_a = write_run(&dir, "a.run", &[(1u64, 10u64), (5, 50)], &kc, &vc).expect("run a");
        let run_b = write_run(&dir, "b.run", &[(5u64, 51u64), (7, 70)], &kc, &vc).expect("run b");
        let sources = vec![
            MergeSource::Disk(RunReader::open(run_a.path(), kc, vc).expect("open a")),
            MergeSource::Disk(RunReader::open(run_b.path(), kc, vc).expect("open b")),
            MergeSource::Ram(vec![(5u64, 52u64), (6, 60)].into_iter()),
        ];
        let mut merged = Vec::new();
        let read = merge_run_sources(sources, |k, v| merged.push((k, v))).expect("merge");
        assert_eq!(
            merged,
            vec![(1, 10), (5, 50), (5, 51), (5, 52), (6, 60), (7, 70)]
        );
        assert_eq!(read, run_a.bytes + run_b.bytes);
    }

    #[test]
    fn part_seal_roundtrips_slots_across_extents() {
        let dir = SpillDir::create("unit").expect("create spill dir");
        let n = EXTENT_SLOTS * 2 + 123;
        let mut seal: PartSeal<u64, u64> =
            PartSeal::new(Arc::clone(&dir), 0, codec_of(), codec_of());
        seal.seal_slots((0..n).map(|i| {
            let id = (i as u64) * 3;
            (id, Some(id * 7), i % 5 == 0, i as u32)
        }))
        .expect("seal slots");
        assert_eq!(seal.total_slots(), n);
        assert_eq!(seal.extents.len(), 3);
        assert_eq!(
            seal.total_halted(),
            (0..n).filter(|i| i % 5 == 0).count() as u64
        );
        let (written, _, images) = seal.take_counters();
        assert!(written > 0 && images == 3);
        let mut back = Vec::new();
        seal.drain_slots(|id, value, halted, stamp| back.push((id, value, halted, stamp)))
            .expect("drain slots");
        let expected: Vec<_> = (0..n)
            .map(|i| {
                let id = (i as u64) * 3;
                (id, Some(id * 7), i % 5 == 0, i as u32)
            })
            .collect();
        assert_eq!(back, expected);
    }
}
