//! Cooperative job control: cancellation, deadlines, and memory budgets.
//!
//! A [`JobControl`] is a cloneable handle shared between the party running an
//! assembly and the party supervising it. The supervisor side may
//! [`cancel`](JobControl::cancel) the job, arm a wall-clock deadline, or cap
//! the vertex store's resident bytes; the engine side polls the handle
//! **cooperatively at BSP barriers only** — every superstep boundary of the
//! [`runner`](crate::runner), the map→reduce hand-off of the
//! [mini MapReduce](crate::mapreduce), and the shuffle boundary of
//! [`VertexSet::convert_on`](crate::vertex_set::VertexSet::convert_on) — the
//! same superstep-boundary consistency discipline the BSP model already
//! enforces for fault tolerance.
//!
//! A trip is **latched**: the first reason to fire wins and every later poll
//! reports it. The engine surfaces a trip as
//! [`EngineError::Cancelled`](crate::engine::EngineError::Cancelled) raised on
//! the *coordinator* thread (never inside a pool worker), so the persistent
//! [`WorkerPool`](crate::engine::WorkerPool) stays reusable exactly like the
//! fault-injection panic path. Higher layers (the assembler's `Pipeline`)
//! additionally poll at stage boundaries and translate the trip into their
//! own typed error.
//!
//! The handle is installed on an [`ExecCtx`](crate::engine::ExecCtx) via
//! [`set_control`](crate::engine::ExecCtx::set_control) and removed with
//! [`clear_control`](crate::engine::ExecCtx::clear_control); with no handle
//! installed the engine pays one `Option` check per barrier.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a job was cancelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CancelReason {
    /// [`JobControl::cancel`] was called (an operator or supervisor request).
    Requested,
    /// The wall-clock deadline armed with
    /// [`set_deadline_in`](JobControl::set_deadline_in) passed.
    Deadline,
    /// The vertex store's resident bytes exceeded the budget armed with
    /// [`set_memory_budget`](JobControl::set_memory_budget).
    MemoryBudget,
}

impl std::fmt::Display for CancelReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CancelReason::Requested => write!(f, "cancellation requested"),
            CancelReason::Deadline => write!(f, "deadline exceeded"),
            CancelReason::MemoryBudget => write!(f, "memory budget exceeded"),
        }
    }
}

/// `cancelled` encoding: 0 = live, otherwise `reason_code(reason)`.
const LIVE: u8 = 0;

fn reason_code(reason: CancelReason) -> u8 {
    match reason {
        CancelReason::Requested => 1,
        CancelReason::Deadline => 2,
        CancelReason::MemoryBudget => 3,
    }
}

fn code_reason(code: u8) -> Option<CancelReason> {
    match code {
        1 => Some(CancelReason::Requested),
        2 => Some(CancelReason::Deadline),
        3 => Some(CancelReason::MemoryBudget),
        _ => None,
    }
}

/// Shared state behind every clone of one [`JobControl`].
struct ControlInner {
    /// `LIVE` until the first trip latches its reason code.
    cancelled: AtomicU8,
    /// Deadline as nanoseconds after `epoch`; 0 = no deadline armed.
    deadline_nanos: AtomicU64,
    /// Reference instant for the deadline encoding (atomics cannot hold an
    /// `Instant` directly).
    epoch: Instant,
    /// Resident-bytes cap; 0 = no budget armed.
    memory_budget: AtomicU64,
    /// Total number of cooperative polls across all barriers.
    checks: AtomicU64,
}

/// A shared cancel token with an optional deadline and memory budget.
///
/// See the [module docs](crate::control) for the polling contract. Clones
/// share one latch: cancelling any clone cancels the job.
#[derive(Clone)]
pub struct JobControl {
    inner: Arc<ControlInner>,
}

impl Default for JobControl {
    fn default() -> Self {
        JobControl::new()
    }
}

impl std::fmt::Debug for JobControl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobControl")
            .field("cancelled", &self.reason())
            .field("checks", &self.checks())
            .finish()
    }
}

impl JobControl {
    /// A live handle with no deadline and no memory budget.
    pub fn new() -> JobControl {
        JobControl {
            inner: Arc::new(ControlInner {
                cancelled: AtomicU8::new(LIVE),
                deadline_nanos: AtomicU64::new(0),
                epoch: Instant::now(),
                memory_budget: AtomicU64::new(0),
                checks: AtomicU64::new(0),
            }),
        }
    }

    /// Requests cancellation: the next cooperative poll trips with
    /// [`CancelReason::Requested`]. Idempotent; an already-latched reason
    /// (e.g. an earlier deadline trip) is kept.
    pub fn cancel(&self) {
        self.latch(CancelReason::Requested);
    }

    /// Arms (or re-arms) a deadline `timeout` from now. Polls after the
    /// deadline trip with [`CancelReason::Deadline`].
    pub fn set_deadline_in(&self, timeout: Duration) {
        let nanos = (self.inner.epoch.elapsed() + timeout).as_nanos();
        // Saturate: a u64 of nanoseconds is ~584 years of runway.
        self.inner.deadline_nanos.store(
            u64::try_from(nanos).unwrap_or(u64::MAX).max(1),
            Ordering::SeqCst,
        );
    }

    /// Chainable [`set_deadline_in`](JobControl::set_deadline_in).
    #[must_use]
    pub fn with_deadline_in(self, timeout: Duration) -> JobControl {
        self.set_deadline_in(timeout);
        self
    }

    /// Arms a resident-bytes budget for the vertex store: a superstep
    /// boundary observing more than `bytes` resident trips with
    /// [`CancelReason::MemoryBudget`]. A budget of 0 disarms the guard.
    pub fn set_memory_budget(&self, bytes: u64) {
        self.inner.memory_budget.store(bytes, Ordering::SeqCst);
    }

    /// Chainable [`set_memory_budget`](JobControl::set_memory_budget).
    #[must_use]
    pub fn with_memory_budget(self, bytes: u64) -> JobControl {
        self.set_memory_budget(bytes);
        self
    }

    /// One cooperative poll from a BSP barrier: records the check, evaluates
    /// the deadline and the budget against `resident_bytes`, and returns the
    /// (latched) reason if the job must stop. Called by the engine on the
    /// coordinator thread; callers raise
    /// [`EngineError::Cancelled`](crate::engine::EngineError::Cancelled) on
    /// `Some`.
    pub fn poll(&self, resident_bytes: u64) -> Option<CancelReason> {
        self.inner.checks.fetch_add(1, Ordering::Relaxed);
        if let Some(reason) = self.reason() {
            return Some(reason);
        }
        let deadline = self.inner.deadline_nanos.load(Ordering::SeqCst);
        if deadline != 0 && self.inner.epoch.elapsed().as_nanos() as u64 >= deadline {
            return Some(self.latch(CancelReason::Deadline));
        }
        let budget = self.inner.memory_budget.load(Ordering::SeqCst);
        if budget != 0 && resident_bytes > budget {
            return Some(self.latch(CancelReason::MemoryBudget));
        }
        None
    }

    /// Whether a trip has latched.
    pub fn is_cancelled(&self) -> bool {
        self.reason().is_some()
    }

    /// The latched reason, if any.
    pub fn reason(&self) -> Option<CancelReason> {
        code_reason(self.inner.cancelled.load(Ordering::SeqCst))
    }

    /// Total cooperative polls so far, across every barrier and every clone —
    /// the control plane's own cost/liveness meter.
    pub fn checks(&self) -> u64 {
        self.inner.checks.load(Ordering::Relaxed)
    }

    /// Latches `reason` if no reason is latched yet; returns the winner.
    fn latch(&self, reason: CancelReason) -> CancelReason {
        match self.inner.cancelled.compare_exchange(
            LIVE,
            reason_code(reason),
            Ordering::SeqCst,
            Ordering::SeqCst,
        ) {
            Ok(_) => reason,
            Err(prev) => code_reason(prev).unwrap_or(reason),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_handle_is_live_and_counts_checks() {
        let control = JobControl::new();
        assert!(!control.is_cancelled());
        assert_eq!(control.poll(u64::MAX), None);
        assert_eq!(control.poll(0), None);
        assert_eq!(control.checks(), 2);
    }

    #[test]
    fn cancel_latches_requested_across_clones() {
        let control = JobControl::new();
        let clone = control.clone();
        clone.cancel();
        assert_eq!(control.poll(0), Some(CancelReason::Requested));
        assert_eq!(control.reason(), Some(CancelReason::Requested));
        // The first reason wins; a later deadline cannot overwrite it.
        control.set_deadline_in(Duration::ZERO);
        assert_eq!(control.poll(0), Some(CancelReason::Requested));
    }

    #[test]
    fn expired_deadline_trips_on_poll() {
        let control = JobControl::new().with_deadline_in(Duration::ZERO);
        assert!(!control.is_cancelled(), "deadlines fire on poll, not arm");
        assert_eq!(control.poll(0), Some(CancelReason::Deadline));
        assert!(control.is_cancelled());
    }

    #[test]
    fn distant_deadline_does_not_trip() {
        let control = JobControl::new().with_deadline_in(Duration::from_secs(3600));
        assert_eq!(control.poll(0), None);
    }

    #[test]
    fn memory_budget_trips_only_above_the_cap() {
        let control = JobControl::new().with_memory_budget(1024);
        assert_eq!(control.poll(1024), None, "at the cap is within budget");
        assert_eq!(control.poll(1025), Some(CancelReason::MemoryBudget));
        // Latched: even a small follow-up poll reports the trip.
        assert_eq!(control.poll(0), Some(CancelReason::MemoryBudget));
    }

    #[test]
    fn zero_budget_means_unlimited() {
        let control = JobControl::new();
        assert_eq!(control.poll(u64::MAX), None);
    }

    #[test]
    fn reasons_render_for_operators() {
        assert_eq!(
            CancelReason::Requested.to_string(),
            "cancellation requested"
        );
        assert_eq!(CancelReason::Deadline.to_string(), "deadline exceeded");
        assert_eq!(
            CancelReason::MemoryBudget.to_string(),
            "memory budget exceeded"
        );
    }
}
