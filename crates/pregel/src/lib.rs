//! An in-process Pregel-like vertex-centric BSP framework.
//!
//! This crate is the substrate of the PPA-assembler reproduction. The paper
//! builds its assembler on *Pregel+*, a distributed implementation of Google's
//! Pregel model; here the same programming model is provided as a
//! multi-threaded, single-process engine:
//!
//! * vertices are hash-partitioned over a configurable number of **workers**
//!   (the stand-in for cluster machines), each driven by its own thread;
//!   within a partition they live in sorted struct-of-arrays **columns**
//!   (see [`vertex_set`]), not a hash map;
//! * computation proceeds in **supersteps**; in each superstep every active
//!   vertex (or every vertex with incoming messages) executes a user-defined
//!   [`VertexProgram::compute`] which may mutate its value, send messages to
//!   other vertices and vote to halt;
//! * messages are delivered at the start of the next superstep, optionally
//!   merged through a **combiner**;
//! * a global **aggregator** value is combined across all vertices each
//!   superstep and made available to every vertex in the next superstep;
//! * the engine records [`Metrics`] (supersteps, messages, wall time, per-
//!   superstep breakdown), which is exactly the data reported in Tables II and
//!   III of the paper.
//!
//! The two API extensions described in Section II of the paper are also
//! provided:
//!
//! * [`mapreduce`] — the *mini MapReduce* procedure used to build vertices
//!   from input that is not one-line-per-vertex (DBG construction, contig
//!   merging and bubble filtering all use it);
//! * [`VertexSet::convert`] — in-memory job concatenation: the output vertices
//!   of one job are transformed into the input vertices of the next job and
//!   re-shuffled by vertex ID without a round-trip through external storage
//!   ([`chain`] additionally provides an explicit "spill" emulation of that
//!   round-trip for ablation experiments).
//!
//! Finally, [`algorithms`] contains generic *Practical Pregel Algorithms*
//! (list ranking and the simplified Shiloach–Vishkin connected components)
//! reviewed in Section II, reusable outside of genome assembly.
//!
//! # Message-plane architecture
//!
//! Both the superstep engine and the mini MapReduce move data through the
//! same **sort-based, buffer-reusing shuffle** instead of hash-grouping into
//! per-key containers:
//!
//! * **sorted delivery** — senders append `(destination, payload)` records to
//!   one flat buffer per destination worker and sort each buffer before the
//!   hand-off; receivers k-way-merge the pre-sorted buffers (linear, ties
//!   broken by source worker) and hand every destination its records as a
//!   contiguous **slice** of a flat array. Every presort runs through
//!   [`radix`]: a stable LSD radix sort over the packed integer keys
//!   ([`SortKey`]), ping-ponging through reusable scratch buffers, with a
//!   stable comparison fallback for keys without a monotone `u64` image.
//!   [`VertexProgram::compute`] receives
//!   `&mut [Message]` and the mini-MapReduce reduce UDF receives
//!   `&mut [Value]` plus an output sink — no owned `Vec` per vertex or key on
//!   either side.
//! * **merge-join delivery into sorted columns** — each partition of a
//!   [`VertexSet`] stores its vertices as ID-sorted struct-of-arrays
//!   columns, so the sorted message runs meet the vertex store in a single
//!   linear merge-join (a galloping cursor, no hash probe per run), and the
//!   straggler scan walks a packed halted bitset instead of iterating a
//!   hash map. The pre-columnar hash store is preserved in
//!   `ppa_bench::legacy`; `BENCH_vertex_store.json` records the comparison.
//! * **sender-side combining** — when a program sets
//!   [`USE_COMBINER`](VertexProgram::USE_COMBINER), duplicate destinations are
//!   folded in the sorted outbound buffers before the hand-off (and again
//!   across senders during the merge), so at most one physical message per
//!   (sender, vertex) crosses the shuffle.
//! * **buffer reuse** — outboxes, the merged id/message arrays and the
//!   combine scratch live in per-worker planes allocated once per job; a
//!   steady-state superstep performs no per-vertex or per-superstep container
//!   allocation. Map UDFs likewise emit through
//!   [`mapreduce::Emitter`] straight into the shuffle buffers.
//!
//! The pre-refactor hash-grouping plane is preserved in the bench crate
//! (`ppa_bench::legacy`); `cargo bench -p ppa_bench --bench message_plane`
//! compares the two and `BENCH_message_plane.json` records the snapshot
//! (≈3× on message-heavy labeling, ≈7× on a 1M-pair shuffle).
//!
//! # Execution engine
//!
//! All of the parallel entry points — the superstep runner's compute and
//! shuffle phases, the mini MapReduce's map and reduce phases, and
//! [`VertexSet::convert`] — execute on the persistent worker pool of
//! [`engine`] (per-superstep aggregate folding is a cheap O(workers) pass
//! that stays on the dispatching thread): threads are spawned once per
//! [`ExecCtx`] and phases are handed
//! to the parked workers, instead of creating a fresh `std::thread::scope`
//! team per superstep/phase. An `ExecCtx` travels inside
//! [`PregelConfig::exec`](config::PregelConfig::exec) (and, one level up,
//! `AssemblyConfig::exec` in `ppa_assembler`), so a whole multi-job workflow
//! runs on one worker team; entry points called without a context build a
//! private single-job pool. The `ExecCtx` also owns the runner's shuffle
//! planes between jobs, extending buffer reuse across whole job chains. The
//! per-phase scoped-spawn dispatch this replaced is preserved in
//! `ppa_bench::legacy`; `BENCH_worker_pool.json` records the comparison on a
//! short-superstep chain workload.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod aggregate;
pub mod algorithms;
pub mod chain;
pub mod config;
pub mod control;
pub mod engine;
pub mod fault;
pub mod fxhash;
pub mod kernels;
mod kmerge;
pub mod mapreduce;
pub mod metrics;
pub mod radix;
pub mod runner;
pub mod spill;
pub mod vertex;
pub mod vertex_set;

pub use aggregate::{Aggregate, BoolOr, Count, MaxU64, MinU64, NoAggregate, SumU64};
pub use chain::ChainMode;
pub use config::PregelConfig;
pub use control::{CancelReason, JobControl};
pub use engine::{EngineError, ExecCtx, WorkerPool};
pub use fault::{ArmedFaults, Fault, FaultPlan};
pub use mapreduce::{
    map_reduce, map_reduce_on, map_reduce_spillable_on, map_reduce_with_metrics,
    map_reduce_with_metrics_on, MapReduceMetrics,
};
pub use metrics::{Metrics, SuperstepMetrics};
pub use radix::SortKey;
pub use runner::{run, run_from_pairs, run_on, try_run_on};
pub use spill::{SpillCodec, SpillCodecs, SpillError, SpillPolicy};
pub use vertex::{Context, VertexKey, VertexProgram};
pub use vertex_set::VertexSet;
