//! Aggregators: Pregel's mechanism for global communication.
//!
//! Each vertex may contribute a value to the aggregator during
//! `compute(.)`; the engine combines all contributions and makes the combined
//! value available to every vertex in the *next* superstep (and to the
//! program's termination check). The assembler uses aggregators to detect
//! convergence of the simplified S-V algorithm, to count active vertices for
//! the list-ranking cycle fallback, and to count newly created `⟨1⟩`-typed
//! vertices between tip-removal phases.

/// A commutative, associative aggregation value with an identity element.
pub trait Aggregate: Send + Sync + Clone + 'static {
    /// The identity element (the value before any contribution).
    fn identity() -> Self;
    /// Folds `other` into `self`.
    fn combine(&mut self, other: &Self);
}

/// The trivial aggregator for programs that do not need one.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoAggregate;

impl Aggregate for NoAggregate {
    fn identity() -> Self {
        NoAggregate
    }
    fn combine(&mut self, _other: &Self) {}
}

/// Sum of `u64` contributions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SumU64(pub u64);

impl Aggregate for SumU64 {
    fn identity() -> Self {
        SumU64(0)
    }
    fn combine(&mut self, other: &Self) {
        self.0 += other.0;
    }
}

/// Counter of contributions (each vertex contributes 1 by constructing `Count(1)`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Count(pub u64);

impl Aggregate for Count {
    fn identity() -> Self {
        Count(0)
    }
    fn combine(&mut self, other: &Self) {
        self.0 += other.0;
    }
}

/// Logical OR of boolean contributions (e.g. "did any vertex change?").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BoolOr(pub bool);

impl Aggregate for BoolOr {
    fn identity() -> Self {
        BoolOr(false)
    }
    fn combine(&mut self, other: &Self) {
        self.0 |= other.0;
    }
}

/// Maximum of `u64` contributions (identity is 0).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaxU64(pub u64);

impl Aggregate for MaxU64 {
    fn identity() -> Self {
        MaxU64(0)
    }
    fn combine(&mut self, other: &Self) {
        self.0 = self.0.max(other.0);
    }
}

/// Minimum of `u64` contributions (identity is `u64::MAX`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MinU64(pub u64);

impl Default for MinU64 {
    fn default() -> Self {
        MinU64(u64::MAX)
    }
}

impl Aggregate for MinU64 {
    fn identity() -> Self {
        MinU64(u64::MAX)
    }
    fn combine(&mut self, other: &Self) {
        self.0 = self.0.min(other.0);
    }
}

/// A pair of aggregates combined component-wise, for programs that need two
/// global values at once (e.g. "number of active vertices" and "any change").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Pair<A, B>(pub A, pub B);

impl<A: Aggregate, B: Aggregate> Aggregate for Pair<A, B> {
    fn identity() -> Self {
        Pair(A::identity(), B::identity())
    }
    fn combine(&mut self, other: &Self) {
        self.0.combine(&other.0);
        self.1.combine(&other.1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_and_count() {
        let mut s = SumU64::identity();
        s.combine(&SumU64(5));
        s.combine(&SumU64(7));
        assert_eq!(s, SumU64(12));
        let mut c = Count::identity();
        c.combine(&Count(1));
        c.combine(&Count(1));
        assert_eq!(c.0, 2);
    }

    #[test]
    fn bool_or() {
        let mut b = BoolOr::identity();
        assert!(!b.0);
        b.combine(&BoolOr(false));
        assert!(!b.0);
        b.combine(&BoolOr(true));
        b.combine(&BoolOr(false));
        assert!(b.0);
    }

    #[test]
    fn min_max() {
        let mut mx = MaxU64::identity();
        mx.combine(&MaxU64(3));
        mx.combine(&MaxU64(9));
        mx.combine(&MaxU64(1));
        assert_eq!(mx.0, 9);
        let mut mn = MinU64::identity();
        mn.combine(&MinU64(3));
        mn.combine(&MinU64(9));
        assert_eq!(mn.0, 3);
        assert_eq!(MinU64::default(), MinU64::identity());
    }

    #[test]
    fn pair_combines_componentwise() {
        let mut p = Pair::<Count, BoolOr>::identity();
        p.combine(&Pair(Count(2), BoolOr(false)));
        p.combine(&Pair(Count(3), BoolOr(true)));
        assert_eq!(p.0 .0, 5);
        assert!(p.1 .0);
    }

    #[test]
    fn no_aggregate_is_noop() {
        let mut n = NoAggregate::identity();
        n.combine(&NoAggregate);
        assert_eq!(n, NoAggregate);
    }
}
