//! Execution metrics of a Pregel job.
//!
//! Tables II and III of the paper report, per contig-labeling algorithm and
//! dataset, the number of supersteps, the number of messages and the running
//! time. [`Metrics`] captures exactly those quantities (plus a per-superstep
//! breakdown when enabled), so the bench harnesses simply print this struct.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Metrics of a single superstep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuperstepMetrics {
    /// Superstep number (0-based).
    pub superstep: usize,
    /// Number of vertices for which `compute` was invoked.
    pub active_vertices: usize,
    /// Messages sent during this superstep.
    pub messages_sent: u64,
    /// Messages that could not be delivered because the destination vertex
    /// does not exist.
    pub messages_dropped: u64,
    /// Wall-clock time of the superstep (compute + message shuffle).
    pub elapsed: Duration,
    /// Wall-clock time of the compute phase alone.
    pub compute_elapsed: Duration,
    /// Wall-clock time of the shuffle phase alone.
    pub shuffle_elapsed: Duration,
    /// Fraction of the worker pool's capacity spent executing jobs during
    /// this superstep: worker busy time summed over the pool, divided by
    /// `workers × (compute + shuffle wall-clock)`. Values near 1.0 mean the
    /// phases kept every thread busy; low values on short supersteps expose
    /// dispatch overhead and load imbalance.
    pub pool_utilization: f64,
    /// Fraction of the job's vertices whose `compute` ran this superstep
    /// (active / total). 1.0 means a dense frontier where the columnar
    /// store's linear scans dominate; values near 0 mean a sparse frontier
    /// where the bitset walk skips nearly everything.
    pub frontier_density: f64,
    /// Estimated heap bytes held by the vertex store's columns (IDs, values,
    /// halt bits, stamps) at the end of this superstep. Heap owned by the
    /// vertex values themselves is not included.
    pub store_resident_bytes: u64,
    /// Bytes held by the store's sorted ID columns divided by what plain
    /// element storage would need (delta/bit-packed columns push this well
    /// below 1.0; exactly 1.0 when the columns are plain or empty).
    pub id_column_compression: f64,
    /// Cooperative job-control polls performed at this superstep's boundary:
    /// 1 when a [`JobControl`](crate::control::JobControl) was installed on
    /// the context, 0 otherwise.
    pub cancellation_checks: u64,
    /// Bytes written to disk by the spill layer during this superstep:
    /// sorted outbox run files plus sealed-extent writebacks and compaction
    /// rewrites. 0 unless a [`SpillPolicy`](crate::SpillPolicy) cap engaged.
    pub spilled_bytes: u64,
    /// Bytes read back from spill files during this superstep (run merges
    /// at delivery, extent fault-ins, compaction copies).
    pub spill_read_bytes: u64,
    /// Spill artefacts written this superstep: sorted run files plus extent
    /// images (initial seals, writebacks, and compaction copies).
    pub spilled_runs: u64,
}

/// Metrics of a whole Pregel job.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// Number of supersteps executed.
    pub supersteps: usize,
    /// Total messages sent across all supersteps.
    pub total_messages: u64,
    /// Total messages dropped (sent to non-existent vertices).
    pub total_dropped: u64,
    /// Sum over supersteps of the number of `compute` invocations.
    pub total_compute_calls: u64,
    /// Wall-clock time of the whole job.
    pub elapsed: Duration,
    /// Whether the job terminated by convergence (vs. hitting the superstep cap).
    pub converged: bool,
    /// Mean over all supersteps of
    /// [`frontier_density`](SuperstepMetrics::frontier_density). Recorded
    /// even when per-superstep tracking is disabled. (The *peak* is always
    /// 1.0 — every job starts with all vertices active — so the mean is the
    /// figure that distinguishes sparse-frontier jobs from dense ones.)
    pub avg_frontier_density: f64,
    /// Peak over all supersteps of
    /// [`store_resident_bytes`](SuperstepMetrics::store_resident_bytes).
    /// Recorded even when per-superstep tracking is disabled.
    pub peak_store_resident_bytes: u64,
    /// Total cooperative job-control polls across all superstep boundaries
    /// (see [`cancellation_checks`](SuperstepMetrics::cancellation_checks)).
    /// Recorded even when per-superstep tracking is disabled; 0 when no
    /// control handle was installed.
    pub total_cancellation_checks: u64,
    /// Total spill bytes written across the job (see
    /// [`spilled_bytes`](SuperstepMetrics::spilled_bytes)); includes the
    /// initial partition seal and the final unseal bookkeeping, which happen
    /// outside any single superstep. Recorded even when per-superstep
    /// tracking is disabled.
    pub spilled_bytes: u64,
    /// Total spill bytes read back across the job (see
    /// [`spill_read_bytes`](SuperstepMetrics::spill_read_bytes)).
    pub spill_read_bytes: u64,
    /// Total spill artefacts written across the job (see
    /// [`spilled_runs`](SuperstepMetrics::spilled_runs)).
    pub spilled_runs: u64,
    /// Per-superstep breakdown (empty unless tracking is enabled).
    pub per_superstep: Vec<SuperstepMetrics>,
}

impl Metrics {
    /// Merges another job's metrics into this one (used when an operation runs
    /// several Pregel jobs back to back, e.g. list ranking plus its S-V cycle
    /// fallback, and we want the combined cost).
    pub fn absorb(&mut self, other: &Metrics) {
        self.supersteps += other.supersteps;
        self.total_messages += other.total_messages;
        self.total_dropped += other.total_dropped;
        self.total_compute_calls += other.total_compute_calls;
        self.elapsed += other.elapsed;
        self.converged &= other.converged;
        // Supersteps-weighted mean (self.supersteps was already summed
        // above), so absorbing a long sparse job and a short dense one lands
        // where it should.
        if self.supersteps > 0 {
            let own = (self.supersteps - other.supersteps) as f64;
            self.avg_frontier_density = (self.avg_frontier_density * own
                + other.avg_frontier_density * other.supersteps as f64)
                / self.supersteps as f64;
        }
        self.peak_store_resident_bytes = self
            .peak_store_resident_bytes
            .max(other.peak_store_resident_bytes);
        self.total_cancellation_checks += other.total_cancellation_checks;
        self.spilled_bytes += other.spilled_bytes;
        self.spill_read_bytes += other.spill_read_bytes;
        self.spilled_runs += other.spilled_runs;
        self.per_superstep
            .extend(other.per_superstep.iter().cloned());
    }

    /// Messages per superstep, averaged.
    pub fn avg_messages_per_superstep(&self) -> f64 {
        if self.supersteps == 0 {
            0.0
        } else {
            self.total_messages as f64 / self.supersteps as f64
        }
    }
}

impl std::fmt::Display for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "supersteps={} messages={} runtime={:.3}s converged={}",
            self.supersteps,
            self.total_messages,
            self.elapsed.as_secs_f64(),
            self.converged
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_adds_up() {
        let mut a = Metrics {
            supersteps: 3,
            total_messages: 10,
            total_dropped: 1,
            total_compute_calls: 30,
            elapsed: Duration::from_millis(5),
            converged: true,
            avg_frontier_density: 0.5,
            peak_store_resident_bytes: 100,
            total_cancellation_checks: 3,
            spilled_bytes: 100,
            spill_read_bytes: 50,
            spilled_runs: 2,
            per_superstep: vec![],
        };
        let b = Metrics {
            supersteps: 2,
            total_messages: 7,
            total_dropped: 0,
            total_compute_calls: 20,
            elapsed: Duration::from_millis(3),
            converged: true,
            avg_frontier_density: 0.75,
            peak_store_resident_bytes: 64,
            total_cancellation_checks: 2,
            spilled_bytes: 10,
            spill_read_bytes: 5,
            spilled_runs: 1,
            per_superstep: vec![SuperstepMetrics {
                superstep: 0,
                active_vertices: 4,
                messages_sent: 7,
                messages_dropped: 0,
                elapsed: Duration::from_millis(3),
                compute_elapsed: Duration::from_millis(2),
                shuffle_elapsed: Duration::from_millis(1),
                pool_utilization: 0.5,
                frontier_density: 0.75,
                store_resident_bytes: 64,
                id_column_compression: 1.0,
                cancellation_checks: 1,
                spilled_bytes: 10,
                spill_read_bytes: 5,
                spilled_runs: 1,
            }],
        };
        a.absorb(&b);
        assert_eq!(a.supersteps, 5);
        assert_eq!(a.total_messages, 17);
        assert_eq!(a.total_compute_calls, 50);
        assert_eq!(a.per_superstep.len(), 1);
        assert_eq!(a.total_cancellation_checks, 5);
        assert!(a.converged);
        // Density is a supersteps-weighted mean (3 steps at 0.5, 2 at 0.75);
        // the footprint peak takes the max across absorbed jobs.
        assert!((a.avg_frontier_density - 0.6).abs() < 1e-12);
        assert_eq!(a.peak_store_resident_bytes, 100);
        assert_eq!(a.spilled_bytes, 110);
        assert_eq!(a.spill_read_bytes, 55);
        assert_eq!(a.spilled_runs, 3);
    }

    #[test]
    fn absorb_propagates_non_convergence() {
        let mut a = Metrics {
            converged: true,
            ..Default::default()
        };
        let b = Metrics {
            converged: false,
            ..Default::default()
        };
        a.absorb(&b);
        assert!(!a.converged);
    }

    #[test]
    fn avg_messages() {
        let m = Metrics {
            supersteps: 4,
            total_messages: 10,
            ..Default::default()
        };
        assert!((m.avg_messages_per_superstep() - 2.5).abs() < 1e-12);
        assert_eq!(Metrics::default().avg_messages_per_superstep(), 0.0);
    }

    #[test]
    fn display_contains_key_numbers() {
        let m = Metrics {
            supersteps: 4,
            total_messages: 10,
            converged: true,
            ..Default::default()
        };
        let s = m.to_string();
        assert!(s.contains("supersteps=4") && s.contains("messages=10"));
    }
}
