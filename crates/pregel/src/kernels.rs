//! Vectorized data-plane kernels with runtime dispatch and scalar twins.
//!
//! PRs 4–5 rebuilt the message plane and the vertex store around sorting, so
//! every steady-state hot loop is a branch-light linear pass over flat
//! arrays: radix histogramming, merge-join `lower_bound` probes, halted-bitset
//! scans, and the quiescence popcount. This module collects explicitly
//! vectorized versions of those passes plus the bit-packing codec behind the
//! compressed sorted-ID column ([`pack_frame`]/[`unpack_frame`]).
//!
//! # Dispatch strategy
//!
//! No new dependencies and no compile-time feature requirements: every kernel
//! is a safe public function that picks an implementation at runtime.
//!
//! 1. If the scalar override is on ([`force_scalar_kernels`] or the
//!    `PPA_SCALAR_KERNELS` environment variable), the portable scalar twin
//!    runs. This is the CI forced-fallback path and the bench baseline.
//! 2. Otherwise, on `x86_64`, `is_x86_feature_detected!` probes AVX2 / POPCNT
//!    once (cached in an atomic) and the widest supported implementation
//!    runs. SSE2 is the `x86_64` baseline, so the "scalar" twins already
//!    autovectorize to SSE2 where profitable; the explicit paths target the
//!    instruction sets the default target *cannot* assume (AVX2, POPCNT).
//! 3. On every other architecture the scalar twin is the only path, so the
//!    crate builds and behaves identically on ARM, WASM, etc.
//!
//! # Safety argument
//!
//! All `unsafe` in this module is of exactly two shapes:
//!
//! * **`#[target_feature]` calls.** Functions compiled with
//!   `#[target_feature(enable = "avx2")]` (or `"popcnt"`) are only reachable
//!   through the dispatcher, which first checks the cached
//!   `is_x86_feature_detected!` result for that exact feature. Calling them
//!   is therefore never undefined behaviour on the running CPU.
//! * **Unaligned vector loads inside those functions.** Every
//!   `_mm256_loadu_si256` reads 32 bytes at `ptr.add(i)` where the
//!   surrounding loop guarantees `i + 4 <= slice.len()` for a `&[u64]`
//!   slice; `loadu` has no alignment requirement. No pointer is ever written
//!   through, and no reference outlives the call.
//!
//! Nothing here transmutes, extends lifetimes, or touches uninitialized
//! memory; every kernel is a pure function of its input slices.
//!
//! # Adding a kernel
//!
//! 1. Write the portable scalar implementation first and make it the body of
//!    the public function's fallback arm.
//! 2. Add the `#[cfg(target_arch = "x86_64")] #[target_feature(...)]`
//!    variant, reachable only via `use_avx2`/`use_popcnt`-style guards,
//!    with a `// SAFETY:` comment on each unsafe block per the argument
//!    above.
//! 3. Pin equivalence in the `tests` module with a proptest that sweeps
//!    lengths across lane boundaries (empty, sub-lane, exact multiple,
//!    ragged tail) and misaligned sub-slices (`&data[off..]`).
//! 4. Give the bench bin (`ppa_bench --bin simd_kernels`) a shape that hits
//!    it, measured against the scalar twin via
//!    [`force_scalar_kernels`].

#[cfg(target_arch = "x86_64")]
use std::sync::atomic::AtomicU8;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

// ---------------------------------------------------------------------------
// Toggles and dispatch
// ---------------------------------------------------------------------------

/// When `true`, every kernel runs its portable scalar twin.
static FORCE_SCALAR: AtomicBool = AtomicBool::new(false);

/// When `true`, newly built vertex-store partitions keep their sorted ID
/// column as a plain `Vec` instead of the delta/bit-packed frames.
static FORCE_PLAIN_COLUMNS: AtomicBool = AtomicBool::new(false);

fn env_scalar() -> bool {
    static ENV: OnceLock<bool> = OnceLock::new();
    *ENV.get_or_init(|| std::env::var_os("PPA_SCALAR_KERNELS").is_some_and(|v| v != "0"))
}

/// Forces (or releases) the portable scalar implementation of every kernel.
///
/// Process-global, like `radix::force_comparison_plane`; benches and the CI
/// fallback job use it to measure/exercise the scalar twins. The
/// `PPA_SCALAR_KERNELS` environment variable (any value but `"0"`) forces
/// scalar independently of this switch.
pub fn force_scalar_kernels(on: bool) {
    FORCE_SCALAR.store(on, Ordering::Relaxed);
}

/// Whether the scalar twins are currently forced (switch or environment).
pub fn scalar_kernels_forced() -> bool {
    FORCE_SCALAR.load(Ordering::Relaxed) || env_scalar()
}

/// Forces (or releases) plain `Vec` sorted-ID columns in newly built
/// vertex-store partitions, disabling delta/bit-packing.
///
/// Construction-time: partitions built while the switch is on stay plain for
/// their lifetime. Used by benches to measure packed vs plain columns.
pub fn force_plain_id_columns(on: bool) {
    FORCE_PLAIN_COLUMNS.store(on, Ordering::Relaxed);
}

/// Whether plain sorted-ID columns are currently forced.
pub fn plain_id_columns_forced() -> bool {
    FORCE_PLAIN_COLUMNS.load(Ordering::Relaxed)
}

/// Cached CPU feature probe: bit 0 = probed, bit 1 = AVX2, bit 2 = POPCNT.
#[cfg(target_arch = "x86_64")]
fn features() -> u8 {
    static CACHE: AtomicU8 = AtomicU8::new(0);
    let mut f = CACHE.load(Ordering::Relaxed);
    if f == 0 {
        f = 1;
        if std::arch::is_x86_feature_detected!("avx2") {
            f |= 2;
        }
        if std::arch::is_x86_feature_detected!("popcnt") {
            f |= 4;
        }
        CACHE.store(f, Ordering::Relaxed);
    }
    f
}

#[cfg(target_arch = "x86_64")]
#[inline]
fn use_avx2() -> bool {
    !scalar_kernels_forced() && features() & 2 != 0
}

#[cfg(target_arch = "x86_64")]
#[inline]
fn use_popcnt() -> bool {
    !scalar_kernels_forced() && features() & 4 != 0
}

// ---------------------------------------------------------------------------
// Key envelope + adaptive digit planning (radix sort)
// ---------------------------------------------------------------------------

/// Bitwise `(OR, AND)` envelope of a key column: the exact set of bit
/// positions on which the keys disagree is `or ^ and`.
///
/// The radix sorter derives its digit schedule from this: a digit whose span
/// has `or == and` is constant across all keys and permutes nothing, so it
/// is skipped *provably* (the pre-PR-7 sorter discovered the same fact from
/// a full 256-counter histogram). Empty input yields `(0, u64::MAX)`.
pub fn key_envelope(keys: &[u64]) -> (u64, u64) {
    #[cfg(target_arch = "x86_64")]
    if use_avx2() && keys.len() >= 8 {
        // SAFETY: AVX2 verified by the dispatcher.
        return unsafe { key_envelope_avx2(keys) };
    }
    key_envelope_scalar(keys)
}

fn key_envelope_scalar(keys: &[u64]) -> (u64, u64) {
    // Four independent accumulators so the loop is not one serial dep chain.
    let mut or4 = [0u64; 4];
    let mut and4 = [u64::MAX; 4];
    let chunks = keys.chunks_exact(4);
    let rem = chunks.remainder();
    for c in chunks {
        for i in 0..4 {
            or4[i] |= c[i];
            and4[i] &= c[i];
        }
    }
    let mut or_acc = or4[0] | or4[1] | or4[2] | or4[3];
    let mut and_acc = and4[0] & and4[1] & and4[2] & and4[3];
    for &k in rem {
        or_acc |= k;
        and_acc &= k;
    }
    (or_acc, and_acc)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
// SAFETY: callers must ensure AVX2 is available; the dispatcher gates every
// call site behind `use_avx2()`.
unsafe fn key_envelope_avx2(keys: &[u64]) -> (u64, u64) {
    use core::arch::x86_64::*;
    let mut or_v = _mm256_setzero_si256();
    let mut and_v = _mm256_set1_epi64x(-1);
    let chunks = keys.chunks_exact(4);
    let rem = chunks.remainder();
    for c in chunks {
        // SAFETY: `c` is exactly 4 u64s (32 readable bytes); loadu is
        // alignment-free.
        let v = unsafe { _mm256_loadu_si256(c.as_ptr() as *const __m256i) };
        or_v = _mm256_or_si256(or_v, v);
        and_v = _mm256_and_si256(and_v, v);
    }
    let mut o = [0u64; 4];
    let mut a = [0u64; 4];
    // SAFETY: both arrays are 32 writable bytes; storeu is alignment-free.
    unsafe {
        _mm256_storeu_si256(o.as_mut_ptr() as *mut __m256i, or_v);
        _mm256_storeu_si256(a.as_mut_ptr() as *mut __m256i, and_v);
    }
    let mut or_acc = o[0] | o[1] | o[2] | o[3];
    let mut and_acc = a[0] & a[1] & a[2] & a[3];
    for &k in rem {
        or_acc |= k;
        and_acc &= k;
    }
    (or_acc, and_acc)
}

/// Maximum number of digits a [`DigitPlan`] can schedule.
pub const MAX_DIGITS: usize = 8;

/// Number of buckets a wide (11-bit) digit needs; the narrow (8-bit)
/// schedule uses 256.
pub const WIDE_BUCKETS: usize = 1 << 11;

/// An adaptive LSD digit schedule derived from the exact key envelope.
///
/// Narrow mode is the classic byte-per-digit schedule restricted to the
/// bytes on which keys actually differ. When six or more bytes are active —
/// the uniform full-width shape that regressed 0.85× vs the comparison sort
/// in `BENCH_radix_sort.json` — the plan switches to six 11-bit digits,
/// trading larger (but still stack-resident) histograms for two fewer
/// scatter passes.
#[derive(Debug, Clone, Copy)]
pub struct DigitPlan {
    /// Bit shift of each active digit, ascending (LSD order).
    pub shifts: [u32; MAX_DIGITS],
    /// Bit width of each active digit (8, or 9–11 in wide mode).
    pub widths: [u32; MAX_DIGITS],
    /// Number of active digits.
    pub len: usize,
    /// Whether the wide (11-bit) schedule was selected.
    pub wide: bool,
}

impl DigitPlan {
    /// Bucket count of digit `i`.
    #[inline]
    pub fn buckets(&self, i: usize) -> usize {
        1usize << self.widths[i]
    }
}

/// Builds the digit schedule for keys with the given envelope.
///
/// `allow_wide` gates the 11-bit schedule; callers pass `false` for small
/// inputs where zeroing the 2048-counter histograms would dominate.
pub fn digit_plan(or_acc: u64, and_acc: u64, allow_wide: bool) -> DigitPlan {
    let diff = or_acc ^ and_acc;
    let mut plan = DigitPlan {
        shifts: [0; MAX_DIGITS],
        widths: [0; MAX_DIGITS],
        len: 0,
        wide: false,
    };
    let active_bytes = (0..8).filter(|d| (diff >> (8 * d)) & 0xFF != 0).count();
    if allow_wide && active_bytes >= 6 {
        plan.wide = true;
        let mut shift = 0u32;
        while shift < 64 {
            let width = 11.min(64 - shift);
            let mask = if width == 64 {
                u64::MAX
            } else {
                (1u64 << width) - 1
            };
            if (diff >> shift) & mask != 0 {
                plan.shifts[plan.len] = shift;
                plan.widths[plan.len] = width;
                plan.len += 1;
            }
            shift += 11;
        }
    } else {
        for d in 0..8u32 {
            if (diff >> (8 * d)) & 0xFF != 0 {
                plan.shifts[plan.len] = 8 * d;
                plan.widths[plan.len] = 8;
                plan.len += 1;
            }
        }
    }
    plan
}

/// Scalar reference histogrammer: all eight byte-digit histograms in one
/// pass over a contiguous key column (the pre-adaptive shape, kept as the
/// benchmarkable baseline for the planned histogrammer).
pub fn histograms8(keys: &[u64], hist: &mut [[u32; 256]; 8]) {
    for &k in keys {
        for (d, h) in hist.iter_mut().enumerate() {
            h[((k >> (8 * d)) & 0xFF) as usize] += 1;
        }
    }
}

/// Envelope-planned histogrammer over a contiguous key column: one pass,
/// counting only the plan's active digits into `hist`, which must hold
/// `plan.len` stripes of [`WIDE_BUCKETS`] counters each.
pub fn histograms_planned(keys: &[u64], plan: &DigitPlan, hist: &mut [u32]) {
    assert!(hist.len() >= plan.len * WIDE_BUCKETS);
    for &k in keys {
        for d in 0..plan.len {
            let b = ((k >> plan.shifts[d]) & ((1u64 << plan.widths[d]) - 1)) as usize;
            hist[d * WIDE_BUCKETS + b] += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// Sorted-ID lower bound (merge-join probe)
// ---------------------------------------------------------------------------

/// First index `>= lo` whose ID is `>= target`, assuming `ids` is sorted
/// ascending and everything before `lo` is `< target`.
///
/// The u64 twin of `vertex_set::lower_bound_from`, used on radix-key images
/// (decoded column frames, packed tails). The AVX2 path runs a branchless
/// 4-lane probe — compare, movemask, count — over a short window before
/// falling back to galloping, because merge-join targets usually land within
/// a few slots of the cursor.
pub fn lower_bound_u64(ids: &[u64], lo: usize, target: u64) -> usize {
    #[cfg(target_arch = "x86_64")]
    if use_avx2() {
        // SAFETY: AVX2 verified by the dispatcher.
        return unsafe { lower_bound_u64_avx2(ids, lo, target) };
    }
    lower_bound_u64_scalar(ids, lo, target)
}

fn lower_bound_u64_scalar(ids: &[u64], lo: usize, target: u64) -> usize {
    let n = ids.len();
    let mut i = lo;
    // Short linear probe: merge joins usually advance by a few slots.
    let probe_end = n.min(i + 8);
    while i < probe_end {
        if ids[i] >= target {
            return i;
        }
        i += 1;
    }
    if i == n {
        return n;
    }
    // Gallop, then binary search the final window.
    let mut step = 8usize;
    let mut hi = i + step;
    while hi < n && ids[hi] < target {
        i = hi + 1;
        step <<= 1;
        hi = i + step;
    }
    let hi = hi.min(n);
    i + ids[i..hi].partition_point(|&x| x < target)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
// SAFETY: callers must ensure AVX2 is available; the dispatcher gates every
// call site behind `use_avx2()`.
unsafe fn lower_bound_u64_avx2(ids: &[u64], lo: usize, target: u64) -> usize {
    use core::arch::x86_64::*;
    let n = ids.len();
    let mut i = lo;
    // AVX2 has only a *signed* 64-bit compare; XOR with the sign bit maps
    // unsigned order onto signed order.
    let sign = _mm256_set1_epi64x(i64::MIN);
    let t = _mm256_xor_si256(_mm256_set1_epi64x(target as i64), sign);
    let mut probes = 0;
    while i + 4 <= n && probes < 8 {
        // SAFETY: `i + 4 <= n` guarantees 32 readable bytes at `ids[i..]`;
        // loadu is alignment-free.
        let v = unsafe { _mm256_loadu_si256(ids.as_ptr().add(i) as *const __m256i) };
        let lt = _mm256_cmpgt_epi64(t, _mm256_xor_si256(v, sign));
        let mask = _mm256_movemask_epi8(lt) as u32;
        if mask != u32::MAX {
            // Lanes are 8 mask bytes each; the first lane with any clear
            // byte is the first ID `>= target`.
            return i + (mask.trailing_ones() / 8) as usize;
        }
        i += 4;
        probes += 1;
    }
    if i + 4 > n {
        while i < n {
            if ids[i] >= target {
                return i;
            }
            i += 1;
        }
        return n;
    }
    // Probe exhausted: the target is far, gallop like the scalar path.
    let mut step = 4usize;
    let mut hi = i + step;
    while hi < n && ids[hi] < target {
        i = hi + 1;
        step <<= 1;
        hi = i + step;
    }
    let hi = hi.min(n);
    i + ids[i..hi].partition_point(|&x| x < target)
}

// ---------------------------------------------------------------------------
// Halted-bitset kernels (quiescence popcount + pass-2 word scan)
// ---------------------------------------------------------------------------

/// Total set bits across the words — the runner's quiescence count over the
/// halted bitset.
///
/// The default `x86_64` target lowers `count_ones` to a SWAR sequence
/// (POPCNT is post-SSE2); the dispatched path compiles the same loop with
/// the `popcnt` feature enabled, one instruction per word.
pub fn popcount(words: &[u64]) -> u64 {
    #[cfg(target_arch = "x86_64")]
    if use_popcnt() {
        // SAFETY: POPCNT verified by the dispatcher.
        return unsafe { popcount_hw(words) };
    }
    popcount_scalar(words)
}

fn popcount_scalar(words: &[u64]) -> u64 {
    words.iter().map(|w| w.count_ones() as u64).sum()
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "popcnt")]
// SAFETY: callers must ensure POPCNT is available; the dispatcher gates
// every call site behind `use_popcnt()`. The body itself has no unsafe
// operations — the attribute alone makes the fn unsafe to call.
unsafe fn popcount_hw(words: &[u64]) -> u64 {
    // Four accumulators so the popcnts pipeline instead of serializing on
    // one register.
    let mut c = [0u64; 4];
    let chunks = words.chunks_exact(4);
    let rem = chunks.remainder();
    for w in chunks {
        c[0] += w[0].count_ones() as u64;
        c[1] += w[1].count_ones() as u64;
        c[2] += w[2].count_ones() as u64;
        c[3] += w[3].count_ones() as u64;
    }
    c[0] + c[1] + c[2] + c[3] + rem.iter().map(|w| w.count_ones() as u64).sum::<u64>()
}

/// Index of the first word at or after `from` that is not all-ones, i.e.
/// still has an unhalted slot — the runner's pass-2 scan skips whole halted
/// words with one wide compare instead of loading them one by one.
pub fn next_word_with_zero(words: &[u64], from: usize) -> Option<usize> {
    #[cfg(target_arch = "x86_64")]
    if use_avx2() && words.len().saturating_sub(from) >= 8 {
        // SAFETY: AVX2 verified by the dispatcher.
        return unsafe { next_word_with_zero_avx2(words, from) };
    }
    next_word_with_zero_scalar(words, from)
}

fn next_word_with_zero_scalar(words: &[u64], from: usize) -> Option<usize> {
    words
        .get(from..)?
        .iter()
        .position(|&w| w != u64::MAX)
        .map(|i| from + i)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
// SAFETY: callers must ensure AVX2 is available; the dispatcher gates every
// call site behind `use_avx2()`.
unsafe fn next_word_with_zero_avx2(words: &[u64], from: usize) -> Option<usize> {
    use core::arch::x86_64::*;
    let n = words.len();
    let ones = _mm256_set1_epi64x(-1);
    let mut i = from;
    while i + 4 <= n {
        // SAFETY: `i + 4 <= n` guarantees 32 readable bytes; loadu is
        // alignment-free.
        let v = unsafe { _mm256_loadu_si256(words.as_ptr().add(i) as *const __m256i) };
        let eq = _mm256_cmpeq_epi64(v, ones);
        let mask = _mm256_movemask_epi8(eq) as u32;
        if mask != u32::MAX {
            // 8 mask bytes per lane: the first lane with a clear byte is
            // the first word that is not all-ones.
            return Some(i + (mask.trailing_ones() / 8) as usize);
        }
        i += 4;
    }
    words[i..n]
        .iter()
        .position(|&w| w != u64::MAX)
        .map(|p| i + p)
}

// ---------------------------------------------------------------------------
// Bit-packed ID frame codec (compressed sorted-ID column)
// ---------------------------------------------------------------------------

/// Number of IDs per sealed frame of a packed sorted-ID column.
pub const FRAME: usize = 128;

/// Number of `u64` words a frame of `count` values at `width` bits occupies.
#[inline]
pub fn frame_words(count: usize, width: u32) -> usize {
    (count * width as usize).div_ceil(64)
}

/// Appends `ids.len()` deltas (`id - base`, each `< 2^width`) to `out` as an
/// LSB-first bitstream of `width`-bit fields, padded up to a word boundary.
///
/// `width == 0` (every ID equals `base`) appends nothing.
pub fn pack_frame(ids: &[u64], base: u64, width: u32, out: &mut Vec<u64>) {
    debug_assert!(width <= 64);
    if width == 0 {
        return;
    }
    let start = out.len();
    out.resize(start + frame_words(ids.len(), width), 0);
    let words = &mut out[start..];
    let mut bit = 0usize;
    for &id in ids {
        let d = id - base;
        debug_assert!(
            width == 64 || d < (1u64 << width),
            "delta exceeds frame width"
        );
        let (wi, sh) = (bit >> 6, bit & 63);
        words[wi] |= d << sh;
        if sh + width as usize > 64 {
            // Spill implies sh > 0, so `64 - sh` is a valid shift.
            words[wi + 1] |= d >> (64 - sh);
        }
        bit += width as usize;
    }
}

/// Decodes `out.len()` consecutive `width`-bit deltas from the frame's words
/// and writes `base + delta` into `out`.
pub fn unpack_frame(words: &[u64], base: u64, width: u32, out: &mut [u64]) {
    if width == 0 {
        out.fill(base);
        return;
    }
    let mask = if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    };
    let mut bit = 0usize;
    for o in out.iter_mut() {
        let (wi, sh) = (bit >> 6, bit & 63);
        let mut v = words[wi] >> sh;
        if sh + width as usize > 64 {
            v |= words[wi + 1] << (64 - sh);
        }
        *o = base + (v & mask);
        bit += width as usize;
    }
}

/// Decodes the single `width`-bit delta at `idx` and returns `base + delta`.
pub fn unpack_one(words: &[u64], base: u64, width: u32, idx: usize) -> u64 {
    if width == 0 {
        return base;
    }
    let mask = if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    };
    let bit = idx * width as usize;
    let (wi, sh) = (bit >> 6, bit & 63);
    let mut v = words[wi] >> sh;
    if sh + width as usize > 64 {
        v |= words[wi + 1] << (64 - sh);
    }
    base + (v & mask)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::Mutex;

    /// Kernel dispatch is process-global; tests that flip it serialize here.
    static SCALAR_LOCK: Mutex<()> = Mutex::new(());

    struct ForcedScalar(#[allow(dead_code)] std::sync::MutexGuard<'static, ()>);

    impl ForcedScalar {
        fn new() -> ForcedScalar {
            let guard = SCALAR_LOCK.lock().unwrap_or_else(|e| e.into_inner());
            force_scalar_kernels(true);
            ForcedScalar(guard)
        }
    }

    impl Drop for ForcedScalar {
        fn drop(&mut self) {
            force_scalar_kernels(false);
        }
    }

    fn oracle_envelope(keys: &[u64]) -> (u64, u64) {
        keys.iter().fold((0, u64::MAX), |(o, a), &k| (o | k, a & k))
    }

    #[test]
    fn envelope_of_empty_is_identity() {
        assert_eq!(key_envelope(&[]), (0, u64::MAX));
    }

    #[test]
    fn digit_plan_skips_constant_digits() {
        // Keys differ only in byte 2.
        let plan = digit_plan(0xAA_00_00, 0x05_00_00, true);
        assert_eq!(plan.len, 1);
        assert_eq!(plan.shifts[0], 16);
        assert_eq!(plan.widths[0], 8);
        assert!(!plan.wide);
    }

    #[test]
    fn digit_plan_goes_wide_on_full_width_keys() {
        let plan = digit_plan(u64::MAX, 0, true);
        assert!(plan.wide);
        assert_eq!(plan.len, 6);
        assert_eq!(plan.shifts[..6], [0, 11, 22, 33, 44, 55]);
        assert_eq!(plan.widths[5], 9);
        // The same envelope without permission stays narrow with all 8 bytes.
        let narrow = digit_plan(u64::MAX, 0, false);
        assert!(!narrow.wide);
        assert_eq!(narrow.len, 8);
    }

    #[test]
    fn digit_plan_covers_every_differing_bit() {
        for (or_acc, and_acc) in [
            (u64::MAX, 0),
            (0xFF00_FF00_FF00_FF00, 0x0F00_0F00_0000_0000),
            (1, 0),
            (u64::MAX, u64::MAX >> 1),
        ] {
            for allow_wide in [false, true] {
                let plan = digit_plan(or_acc, and_acc, allow_wide);
                let mut covered = 0u64;
                for d in 0..plan.len {
                    let mask = if plan.widths[d] == 64 {
                        u64::MAX
                    } else {
                        (1u64 << plan.widths[d]) - 1
                    };
                    covered |= mask << plan.shifts[d];
                }
                assert_eq!(
                    (or_acc ^ and_acc) & !covered,
                    0,
                    "plan must cover all differing bits"
                );
            }
        }
    }

    #[test]
    fn planned_histograms_match_reference() {
        let keys: Vec<u64> = (0..1000u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .collect();
        let (or_acc, and_acc) = key_envelope(&keys);
        let plan = digit_plan(or_acc, and_acc, true);
        let mut hist = vec![0u32; plan.len * WIDE_BUCKETS];
        histograms_planned(&keys, &plan, &mut hist);
        for d in 0..plan.len {
            let total: u64 = hist[d * WIDE_BUCKETS..(d + 1) * WIDE_BUCKETS]
                .iter()
                .map(|&c| c as u64)
                .sum();
            assert_eq!(total, keys.len() as u64, "digit {d} counts every key");
        }
    }

    #[test]
    fn lower_bound_handles_empty_and_tiny() {
        assert_eq!(lower_bound_u64(&[], 0, 7), 0);
        assert_eq!(lower_bound_u64(&[3], 0, 3), 0);
        assert_eq!(lower_bound_u64(&[3], 0, 4), 1);
        assert_eq!(lower_bound_u64(&[3, 9], 1, 9), 1);
    }

    #[test]
    fn pack_frame_width_zero_and_64() {
        let mut out = Vec::new();
        pack_frame(&[5, 5, 5], 5, 0, &mut out);
        assert!(out.is_empty());
        let mut dec = [0u64; 3];
        unpack_frame(&out, 5, 0, &mut dec);
        assert_eq!(dec, [5, 5, 5]);

        let ids = [0u64, u64::MAX - 1, u64::MAX];
        let mut out = Vec::new();
        pack_frame(&ids, 0, 64, &mut out);
        assert_eq!(out.len(), 3);
        let mut dec = [0u64; 3];
        unpack_frame(&out, 0, 64, &mut dec);
        assert_eq!(dec, ids);
        assert_eq!(unpack_one(&out, 0, 64, 1), u64::MAX - 1);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn prop_envelope_matches_oracle(
            data in proptest::collection::vec(0u64..=u64::MAX, 0..64),
            off in 0usize..8,
        ) {
            let s = &data[off.min(data.len())..];
            prop_assert_eq!(key_envelope(s), oracle_envelope(s));
            let _g = ForcedScalar::new();
            prop_assert_eq!(key_envelope(s), oracle_envelope(s));
        }

        #[test]
        fn prop_popcount_matches_oracle(
            data in proptest::collection::vec(0u64..=u64::MAX, 0..64),
            off in 0usize..8,
        ) {
            let s = &data[off.min(data.len())..];
            let oracle: u64 = s.iter().map(|w| w.count_ones() as u64).sum();
            prop_assert_eq!(popcount(s), oracle);
            let _g = ForcedScalar::new();
            prop_assert_eq!(popcount(s), oracle);
        }

        #[test]
        fn prop_next_word_with_zero_matches_oracle(
            data in proptest::collection::vec(0u8..2, 0..64),
            from in 0usize..70,
        ) {
            // bools → words: true = all-ones, false = one clear bit.
            let words: Vec<u64> = data
                .into_iter()
                .enumerate()
                .map(|(i, full)| if full != 0 { u64::MAX } else { u64::MAX ^ (1 << (i % 64)) })
                .collect();
            let oracle = words
                .iter()
                .enumerate()
                .skip(from.min(words.len()))
                .find(|(_, &w)| w != u64::MAX)
                .map(|(i, _)| i);
            prop_assert_eq!(next_word_with_zero(&words, from), oracle);
            let _g = ForcedScalar::new();
            prop_assert_eq!(next_word_with_zero(&words, from), oracle);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn prop_lower_bound_matches_partition_point(
            ids in proptest::collection::vec(0u64..1000, 0..80),
            lo_frac in 0usize..80,
            target in 0u64..1100,
        ) {
            let mut ids = ids;
            ids.sort_unstable();
            ids.dedup();
            let full = ids.partition_point(|&x| x < target);
            // Contract: everything before `lo` must already be < target.
            let lo = lo_frac.min(full);
            prop_assert_eq!(lower_bound_u64(&ids, lo, target), full);
            let _g = ForcedScalar::new();
            prop_assert_eq!(lower_bound_u64(&ids, lo, target), full);
        }

        #[test]
        fn prop_lower_bound_wide_range(
            ids in proptest::collection::vec(0u64..=u64::MAX, 0..300),
            target in 0u64..=u64::MAX,
        ) {
            let mut ids = ids;
            ids.sort_unstable();
            let full = ids.partition_point(|&x| x < target);
            prop_assert_eq!(lower_bound_u64(&ids, 0, target), full);
        }

        #[test]
        fn prop_pack_roundtrip(
            deltas in proptest::collection::vec(0u64..=u64::MAX, 1..200),
            base in 0u64..1_000_000,
            width in 1u32..=64,
        ) {
            let mask = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
            // Clamp so `base + delta` cannot overflow; re-derive the exact
            // width afterwards, sweeping 1..=64 via the generated mask.
            let ids: Vec<u64> = deltas
                .iter()
                .map(|d| base + (d & mask).min(u64::MAX - base))
                .collect();
            let width_needed = ids
                .iter()
                .map(|id| 64 - (id - base).leading_zeros())
                .max()
                .unwrap_or(0)
                .max(1);
            let mut words = Vec::new();
            pack_frame(&ids, base, width_needed, &mut words);
            prop_assert_eq!(words.len(), frame_words(ids.len(), width_needed));
            let mut out = vec![0u64; ids.len()];
            unpack_frame(&words, base, width_needed, &mut out);
            prop_assert_eq!(&out, &ids);
            for (i, &id) in ids.iter().enumerate() {
                prop_assert_eq!(unpack_one(&words, base, width_needed, i), id);
            }
        }
    }
}
