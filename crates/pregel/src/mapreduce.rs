//! The *mini MapReduce* procedure of the paper's second API extension.
//!
//! Some assembly steps are not naturally vertex-centric: DBG construction
//! turns reads into (k+1)-mers and then into k-mer vertices, contig merging
//! groups labeled vertices by contig label, and bubble filtering groups
//! contigs by their pair of ambiguous end vertices. The paper extends Pregel+
//! with a mini MapReduce pass: a `map(.)` UDF emits key–value pairs, the pairs
//! are shuffled by key to workers, sorted/grouped, and a `reduce(.)` UDF
//! processes each group.
//!
//! [`map_reduce`] reproduces that pass with one thread per worker. The
//! partitioned variant [`map_reduce_partitioned`] exposes which worker
//! produced each output, which contig merging needs in order to mint contig
//! IDs of the form `worker ‖ ordinal` (Figure 7c).

use crate::fxhash::{hash_one, FxHashMap};
use serde::{Deserialize, Serialize};
use std::hash::Hash;
use std::time::{Duration, Instant};

/// Metrics of one mini-MapReduce execution.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MapReduceMetrics {
    /// Number of input records fed to `map`.
    pub input_records: u64,
    /// Number of key–value pairs emitted by `map` (the shuffle volume).
    pub pairs_shuffled: u64,
    /// Number of distinct keys (groups) processed by `reduce`.
    pub groups: u64,
    /// Number of output records produced by `reduce`.
    pub output_records: u64,
    /// Wall-clock time of the whole pass.
    pub elapsed: Duration,
}

/// Runs a mini-MapReduce pass and returns the outputs of every group,
/// concatenated in worker order (deterministic for a fixed worker count).
pub fn map_reduce<I, K, V, O, MF, RF>(
    inputs: Vec<I>,
    workers: usize,
    map_fn: MF,
    reduce_fn: RF,
) -> Vec<O>
where
    I: Send,
    K: Hash + Eq + Ord + Send,
    V: Send,
    O: Send,
    MF: Fn(I) -> Vec<(K, V)> + Sync,
    RF: Fn(&K, Vec<V>) -> Vec<O> + Sync,
{
    map_reduce_with_metrics(inputs, workers, map_fn, reduce_fn).0
}

/// Like [`map_reduce`] but also returns [`MapReduceMetrics`].
pub fn map_reduce_with_metrics<I, K, V, O, MF, RF>(
    inputs: Vec<I>,
    workers: usize,
    map_fn: MF,
    reduce_fn: RF,
) -> (Vec<O>, MapReduceMetrics)
where
    I: Send,
    K: Hash + Eq + Ord + Send,
    V: Send,
    O: Send,
    MF: Fn(I) -> Vec<(K, V)> + Sync,
    RF: Fn(&K, Vec<V>) -> Vec<O> + Sync,
{
    let (per_worker, metrics) =
        map_reduce_partitioned(inputs, workers, map_fn, |_w, k, vs| reduce_fn(k, vs));
    (per_worker.into_iter().flatten().collect(), metrics)
}

/// The fully general mini-MapReduce: the reduce UDF additionally receives the
/// index of the worker executing it, and the outputs are returned per worker.
pub fn map_reduce_partitioned<I, K, V, O, MF, RF>(
    inputs: Vec<I>,
    workers: usize,
    map_fn: MF,
    reduce_fn: RF,
) -> (Vec<Vec<O>>, MapReduceMetrics)
where
    I: Send,
    K: Hash + Eq + Ord + Send,
    V: Send,
    O: Send,
    MF: Fn(I) -> Vec<(K, V)> + Sync,
    RF: Fn(usize, &K, Vec<V>) -> Vec<O> + Sync,
{
    let workers = workers.max(1);
    let start = Instant::now();
    let input_records = inputs.len() as u64;

    // ---- map phase: split inputs into `workers` chunks and map in parallel.
    let chunk_size = inputs.len().div_ceil(workers).max(1);
    let mut chunks: Vec<Vec<I>> = Vec::with_capacity(workers);
    {
        let mut it = inputs.into_iter();
        for _ in 0..workers {
            chunks.push(it.by_ref().take(chunk_size).collect());
        }
    }
    let mut shuffled: Vec<Vec<Vec<(K, V)>>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                let map_fn = &map_fn;
                scope.spawn(move || {
                    let mut out: Vec<Vec<(K, V)>> = (0..workers).map(|_| Vec::new()).collect();
                    for item in chunk {
                        for (k, v) in map_fn(item) {
                            let dst = (hash_one(&k) % workers as u64) as usize;
                            out[dst].push((k, v));
                        }
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            shuffled.push(h.join().expect("map worker panicked"));
        }
    });

    // ---- shuffle: transpose the per-source buffers to per-destination.
    let mut pairs_shuffled = 0u64;
    let mut incoming: Vec<Vec<Vec<(K, V)>>> = (0..workers).map(|_| Vec::new()).collect();
    for src in shuffled {
        for (dst, buf) in src.into_iter().enumerate() {
            pairs_shuffled += buf.len() as u64;
            incoming[dst].push(buf);
        }
    }

    // ---- reduce phase: group by key (sorted, as in the paper) and reduce.
    let mut outputs: Vec<Vec<O>> = Vec::with_capacity(workers);
    let mut groups = 0u64;
    std::thread::scope(|scope| {
        let handles: Vec<_> = incoming
            .into_iter()
            .enumerate()
            .map(|(w, bufs)| {
                let reduce_fn = &reduce_fn;
                scope.spawn(move || {
                    let mut grouped: FxHashMap<K, Vec<V>> = FxHashMap::default();
                    for buf in bufs {
                        for (k, v) in buf {
                            grouped.entry(k).or_default().push(v);
                        }
                    }
                    // Sort keys so that group processing order (and thus output
                    // order) is deterministic, mirroring the sort-by-key step
                    // described in the paper.
                    let mut entries: Vec<(K, Vec<V>)> = grouped.into_iter().collect();
                    entries.sort_by(|a, b| a.0.cmp(&b.0));
                    let group_count = entries.len() as u64;
                    let mut out = Vec::new();
                    for (k, vs) in entries {
                        out.extend(reduce_fn(w, &k, vs));
                    }
                    (out, group_count)
                })
            })
            .collect();
        for h in handles {
            let (out, g) = h.join().expect("reduce worker panicked");
            groups += g;
            outputs.push(out);
        }
    });

    let output_records = outputs.iter().map(|o| o.len() as u64).sum();
    let metrics = MapReduceMetrics {
        input_records,
        pairs_shuffled,
        groups,
        output_records,
        elapsed: start.elapsed(),
    };
    (outputs, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_count() {
        let docs = vec!["a b a", "b c", "a", ""];
        let inputs: Vec<String> = docs.iter().map(|s| s.to_string()).collect();
        let (counts, metrics) = map_reduce_with_metrics(
            inputs,
            3,
            |doc: String| {
                doc.split_whitespace().map(|w| (w.to_string(), 1u64)).collect::<Vec<_>>()
            },
            |k: &String, vs: Vec<u64>| vec![(k.clone(), vs.into_iter().sum::<u64>())],
        );
        let mut counts: Vec<(String, u64)> = counts;
        counts.sort();
        assert_eq!(
            counts,
            vec![("a".to_string(), 3), ("b".to_string(), 2), ("c".to_string(), 1)]
        );
        assert_eq!(metrics.input_records, 4);
        assert_eq!(metrics.pairs_shuffled, 6);
        assert_eq!(metrics.groups, 3);
        assert_eq!(metrics.output_records, 3);
    }

    #[test]
    fn reduce_can_filter_groups() {
        // Keep only keys whose total exceeds a threshold — the same pattern as
        // the coverage filter θ in DBG construction.
        let inputs: Vec<u64> = (0..100).collect();
        let out = map_reduce(
            inputs,
            4,
            |x: u64| vec![(x % 10, 1u64)],
            |k: &u64, vs: Vec<u64>| {
                let total: u64 = vs.iter().sum();
                if total >= 10 && *k % 2 == 0 {
                    vec![*k]
                } else {
                    vec![]
                }
            },
        );
        let mut out = out;
        out.sort();
        assert_eq!(out, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn partitioned_exposes_worker_index() {
        let inputs: Vec<u64> = (0..50).collect();
        let (per_worker, _) = map_reduce_partitioned(
            inputs,
            4,
            |x: u64| vec![(x, x)],
            |w: usize, _k: &u64, vs: Vec<u64>| vs.into_iter().map(move |v| (w, v)).collect::<Vec<_>>(),
        );
        assert_eq!(per_worker.len(), 4);
        // Every output is tagged with the worker that produced it, and the
        // owning worker is consistent with the hash partitioning.
        for (w, outs) in per_worker.iter().enumerate() {
            for (tag, v) in outs {
                assert_eq!(*tag, w);
                assert_eq!((hash_one(v) % 4) as usize, w);
            }
        }
        let total: usize = per_worker.iter().map(|o| o.len()).sum();
        assert_eq!(total, 50);
    }

    #[test]
    fn empty_input() {
        let (out, metrics) = map_reduce_with_metrics(
            Vec::<u64>::new(),
            4,
            |x: u64| vec![(x, x)],
            |_k: &u64, vs: Vec<u64>| vs,
        );
        assert!(out.is_empty());
        assert_eq!(metrics.groups, 0);
    }

    #[test]
    fn single_worker_is_sequential_but_correct() {
        let inputs: Vec<u64> = (0..20).collect();
        let out = map_reduce(
            inputs,
            1,
            |x: u64| vec![(x % 2, x)],
            |k: &u64, vs: Vec<u64>| vec![(*k, vs.len())],
        );
        let mut out = out;
        out.sort();
        assert_eq!(out, vec![(0, 10), (1, 10)]);
    }

    #[test]
    fn group_order_is_sorted_within_worker() {
        // With one worker, outputs must appear in ascending key order.
        let inputs: Vec<u64> = vec![5, 3, 9, 1, 7];
        let out = map_reduce(
            inputs,
            1,
            |x: u64| vec![(x, ())],
            |k: &u64, _vs: Vec<()>| vec![*k],
        );
        assert_eq!(out, vec![1, 3, 5, 7, 9]);
    }
}
