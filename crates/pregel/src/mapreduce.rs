//! The *mini MapReduce* procedure of the paper's second API extension.
//!
//! Some assembly steps are not naturally vertex-centric: DBG construction
//! turns reads into (k+1)-mers and then into k-mer vertices, contig merging
//! groups labeled vertices by contig label, and bubble filtering groups
//! contigs by their pair of ambiguous end vertices. The paper extends Pregel+
//! with a mini MapReduce pass: a `map(.)` UDF emits key–value pairs, the pairs
//! are shuffled by key to workers, sorted/grouped, and a `reduce(.)` UDF
//! processes each group.
//!
//! [`map_reduce`] reproduces that pass with one thread per worker. Grouping is
//! **sort-based**: every reduce worker concatenates the pair buffers addressed
//! to it into one flat buffer, sorts it by key once, and hands each group to
//! the reduce UDF as a mutable slice of values carved out of a single flat
//! value array — there is no per-key `Vec` and no hash map on the reduce path
//! (this literally is the "sorted and grouped by key" step of the paper's
//! procedure, and it also makes group order deterministic: ascending by key).
//! The map-side presort is the stable LSD radix sort of [`crate::radix`]
//! (packed integer keys take counting passes, everything else a stable
//! comparison fallback), so equal-key values reach `reduce` in emission
//! order.
//!
//! The partitioned variant [`map_reduce_partitioned`] exposes which worker
//! produced each output, which contig merging needs in order to mint contig
//! IDs of the form `worker ‖ ordinal` (Figure 7c).
//!
//! Both phases dispatch onto a persistent [`ExecCtx`] worker pool: the `*_on`
//! variants run on a caller-provided context (one pool shared by a whole
//! workflow), while the plain variants build a private single-pass context —
//! either way, no per-phase thread scope is created.
//!
//! # Out-of-core execution
//!
//! [`map_reduce_spillable_on`] is the bounded-memory entry: when the context
//! carries a [`SpillPolicy`](crate::SpillPolicy) byte cap, each map worker
//! presorts and writes its buffered pairs out as sorted run files (see
//! [`crate::spill`]) whenever the buffered estimate crosses
//! `cap / (4 × workers)`, and each reduce worker streams those runs back in a
//! k-way merge with the in-RAM remainders. The merge breaks key ties by
//! ascending source (each source's runs in spill order, its RAM remainder
//! last), so grouping and per-key value order are byte-identical to the
//! all-in-RAM pass.

use crate::engine::{EngineError, ExecCtx};
use crate::fxhash::hash_one;
use crate::radix::SortKey;
use crate::spill::{
    codec_of, merge_run_sources, write_run, Codec, DiskRun, MergeSource, RunReader, SpillCodec,
    SpillDir, SpillError,
};
use serde::{Deserialize, Serialize};
use std::hash::Hash;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Sink the map UDF writes its key–value pairs into.
///
/// [`emit`](Emitter::emit) routes each pair straight into the flat buffer of
/// its destination reduce worker — the map side allocates nothing per record
/// (earlier revisions had `map` return a `Vec<(K, V)>` per input record,
/// which put one heap allocation on the hot path of every read/vertex/contig
/// fed through a shuffle).
pub struct Emitter<'a, K, V> {
    out: &'a mut [Vec<(K, V)>],
    /// Pairs emitted through this worker's map phase so far (drives the
    /// spillable variant's O(1) buffered-bytes estimate).
    emitted: u64,
}

impl<K: Hash, V> Emitter<'_, K, V> {
    /// Emits one key–value pair into the shuffle.
    #[inline]
    pub fn emit(&mut self, key: K, value: V) {
        let dst = (hash_one(&key) % self.out.len() as u64) as usize;
        self.out[dst].push((key, value));
        self.emitted += 1;
    }
}

/// Metrics of one mini-MapReduce execution.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MapReduceMetrics {
    /// Number of input records fed to `map`.
    pub input_records: u64,
    /// Number of key–value pairs emitted by `map` (the shuffle volume).
    pub pairs_shuffled: u64,
    /// Number of distinct keys (groups) processed by `reduce`.
    pub groups: u64,
    /// Number of output records produced by `reduce`.
    pub output_records: u64,
    /// Wall-clock time of the whole pass.
    pub elapsed: Duration,
    /// Bytes written to sorted map-side run files. 0 unless the pass ran via
    /// [`map_reduce_spillable_on`] under a [`SpillPolicy`](crate::SpillPolicy)
    /// cap that tripped.
    pub spilled_bytes: u64,
    /// Bytes streamed back from run files by the reduce-side merge.
    pub spill_read_bytes: u64,
    /// Sorted run files written by the map phase.
    pub spilled_runs: u64,
}

/// Runs a mini-MapReduce pass and returns the outputs of every group,
/// concatenated in worker order (deterministic for a fixed worker count).
///
/// The reduce UDF receives each group as `(&key, &mut [value])` — the slice
/// is a window into the worker's flat, key-sorted value buffer (it may be
/// reordered freely, e.g. sorted, but only lives for the duration of the
/// call) — and pushes its outputs into the worker's shared output vector, so
/// neither side of the shuffle allocates a container per key.
pub fn map_reduce<I, K, V, O, MF, RF>(
    inputs: Vec<I>,
    workers: usize,
    map_fn: MF,
    reduce_fn: RF,
) -> Vec<O>
where
    I: Send,
    K: Hash + Eq + Ord + SortKey + Send,
    V: Send,
    O: Send,
    MF: Fn(I, &mut Emitter<'_, K, V>) + Sync,
    RF: Fn(&K, &mut [V], &mut Vec<O>) + Sync,
{
    map_reduce_with_metrics(inputs, workers, map_fn, reduce_fn).0
}

/// Like [`map_reduce`] but also returns [`MapReduceMetrics`].
pub fn map_reduce_with_metrics<I, K, V, O, MF, RF>(
    inputs: Vec<I>,
    workers: usize,
    map_fn: MF,
    reduce_fn: RF,
) -> (Vec<O>, MapReduceMetrics)
where
    I: Send,
    K: Hash + Eq + Ord + SortKey + Send,
    V: Send,
    O: Send,
    MF: Fn(I, &mut Emitter<'_, K, V>) + Sync,
    RF: Fn(&K, &mut [V], &mut Vec<O>) + Sync,
{
    map_reduce_with_metrics_on(&ExecCtx::new(workers), inputs, map_fn, reduce_fn)
}

/// [`map_reduce`] on a caller-provided execution context (the worker count is
/// the context's pool size).
pub fn map_reduce_on<I, K, V, O, MF, RF>(
    ctx: &ExecCtx,
    inputs: Vec<I>,
    map_fn: MF,
    reduce_fn: RF,
) -> Vec<O>
where
    I: Send,
    K: Hash + Eq + Ord + SortKey + Send,
    V: Send,
    O: Send,
    MF: Fn(I, &mut Emitter<'_, K, V>) + Sync,
    RF: Fn(&K, &mut [V], &mut Vec<O>) + Sync,
{
    map_reduce_with_metrics_on(ctx, inputs, map_fn, reduce_fn).0
}

/// [`map_reduce_with_metrics`] on a caller-provided execution context.
pub fn map_reduce_with_metrics_on<I, K, V, O, MF, RF>(
    ctx: &ExecCtx,
    inputs: Vec<I>,
    map_fn: MF,
    reduce_fn: RF,
) -> (Vec<O>, MapReduceMetrics)
where
    I: Send,
    K: Hash + Eq + Ord + SortKey + Send,
    V: Send,
    O: Send,
    MF: Fn(I, &mut Emitter<'_, K, V>) + Sync,
    RF: Fn(&K, &mut [V], &mut Vec<O>) + Sync,
{
    let (per_worker, metrics) =
        map_reduce_partitioned_on(ctx, inputs, map_fn, |_w, k, vs, out| reduce_fn(k, vs, out));
    (per_worker.into_iter().flatten().collect(), metrics)
}

/// The fully general mini-MapReduce: the reduce UDF additionally receives the
/// index of the worker executing it, and the outputs are returned per worker.
pub fn map_reduce_partitioned<I, K, V, O, MF, RF>(
    inputs: Vec<I>,
    workers: usize,
    map_fn: MF,
    reduce_fn: RF,
) -> (Vec<Vec<O>>, MapReduceMetrics)
where
    I: Send,
    K: Hash + Eq + Ord + SortKey + Send,
    V: Send,
    O: Send,
    MF: Fn(I, &mut Emitter<'_, K, V>) + Sync,
    RF: Fn(usize, &K, &mut [V], &mut Vec<O>) + Sync,
{
    map_reduce_partitioned_on(&ExecCtx::new(workers), inputs, map_fn, reduce_fn)
}

/// [`map_reduce_partitioned`] on a caller-provided execution context: both
/// the map and the reduce phase dispatch onto the context's persistent pool
/// instead of spawning a thread scope each.
pub fn map_reduce_partitioned_on<I, K, V, O, MF, RF>(
    ctx: &ExecCtx,
    inputs: Vec<I>,
    map_fn: MF,
    reduce_fn: RF,
) -> (Vec<Vec<O>>, MapReduceMetrics)
where
    I: Send,
    K: Hash + Eq + Ord + SortKey + Send,
    V: Send,
    O: Send,
    MF: Fn(I, &mut Emitter<'_, K, V>) + Sync,
    RF: Fn(usize, &K, &mut [V], &mut Vec<O>) + Sync,
{
    map_reduce_inner(ctx, inputs, map_fn, reduce_fn, None)
}

/// The bounded-memory mini MapReduce: like [`map_reduce_partitioned_on`], but
/// when the context carries a [`SpillPolicy`](crate::SpillPolicy) byte cap the
/// map phase spills presorted run files to disk once a worker's buffered
/// pairs exceed `cap / (4 × workers)` bytes, and the reduce phase streams
/// them back in a source-ordered k-way merge. Without a cap (or with
/// [`SpillPolicy::Off`](crate::SpillPolicy::Off)) it is exactly the resident
/// pass — same outputs, byte for byte, either way.
///
/// `K` and `V` must be spill-codable; UDF-borrowed lifetimes are fine for
/// resident passes but spillable keys/values must own their data.
///
/// # Panics
///
/// Raises [`EngineError::Spill`] via panic (caught by `try_run`-style
/// wrappers) if run-file I/O fails; spill files are transient scratch, so
/// there is nothing to recover mid-pass.
pub fn map_reduce_spillable_on<I, K, V, O, MF, RF>(
    ctx: &ExecCtx,
    inputs: Vec<I>,
    map_fn: MF,
    reduce_fn: RF,
) -> (Vec<Vec<O>>, MapReduceMetrics)
where
    I: Send,
    K: Hash + Eq + Ord + SortKey + SpillCodec + Send,
    V: SpillCodec + Send,
    O: Send,
    MF: Fn(I, &mut Emitter<'_, K, V>) + Sync,
    RF: Fn(usize, &K, &mut [V], &mut Vec<O>) + Sync,
{
    let spill = ctx
        .spill()
        .and_then(|p| p.cap())
        .map(|cap| (cap, codec_of::<K>(), codec_of::<V>()));
    map_reduce_inner(ctx, inputs, map_fn, reduce_fn, spill)
}

/// What one map worker hands to the shuffle: its in-RAM remainder buffers,
/// any run files it spilled (per destination, in spill order), and its spill
/// counters.
struct MapSide<K, V> {
    out: Vec<Vec<(K, V)>>,
    runs: Vec<Vec<DiskRun>>,
    spilled_pairs: u64,
    spilled_bytes: u64,
    spilled_runs: u64,
}

/// Spill plumbing resolved at pass entry: the job-scoped temp dir, the
/// per-worker buffer budget and the pair codecs.
type SpillSetup<K, V> = Option<(Arc<SpillDir>, usize, Codec<K>, Codec<V>)>;

/// One destination's view of one source worker: that source's sorted on-disk
/// runs (in spill order) plus its sorted in-RAM remainder.
type ShuffleSources<K, V> = Vec<(Vec<DiskRun>, Vec<(K, V)>)>;

/// One reduce worker's outcome: its outputs, group count and spill-read
/// bytes — or the first disk error it hit.
type ReduceSide<O> = Result<(Vec<O>, u64, u64), SpillError>;

/// Shared body of the resident and spillable passes. `spill` carries the
/// byte cap and codecs when the caller opted in *and* a policy cap is
/// installed; `None` runs fully in RAM.
fn map_reduce_inner<I, K, V, O, MF, RF>(
    ctx: &ExecCtx,
    inputs: Vec<I>,
    map_fn: MF,
    reduce_fn: RF,
    spill: Option<(u64, Codec<K>, Codec<V>)>,
) -> (Vec<Vec<O>>, MapReduceMetrics)
where
    I: Send,
    K: Hash + Eq + Ord + SortKey + Send,
    V: Send,
    O: Send,
    MF: Fn(I, &mut Emitter<'_, K, V>) + Sync,
    RF: Fn(usize, &K, &mut [V], &mut Vec<O>) + Sync,
{
    let workers = ctx.workers();
    let start = Instant::now();
    let input_records = inputs.len() as u64;
    let spill: SpillSetup<K, V> = spill.map(|(cap, kc, vc)| {
        let dir =
            SpillDir::create("mr").unwrap_or_else(|e| std::panic::panic_any(EngineError::Spill(e)));
        // Each map worker may buffer a quarter of its even share of the cap
        // before writing a run.
        let budget = ((cap as usize) / (4 * workers)).max(1);
        (dir, budget, kc, vc)
    });

    // ---- map phase: split inputs into `workers` chunks and map in parallel.
    let chunk_size = inputs.len().div_ceil(workers).max(1);
    let mut chunks: Vec<Vec<I>> = Vec::with_capacity(workers);
    {
        let mut it = inputs.into_iter();
        for _ in 0..workers {
            chunks.push(it.by_ref().take(chunk_size).collect());
        }
    }
    let mapped: Vec<Result<MapSide<K, V>, SpillError>> =
        ctx.pool().run_per_worker(chunks, |w, chunk| {
            let mut out: Vec<Vec<(K, V)>> = (0..workers).map(|_| Vec::new()).collect();
            let mut runs: Vec<Vec<DiskRun>> = (0..workers).map(|_| Vec::new()).collect();
            // One radix scratch serves all of this worker's destination
            // buffers (it cannot be parked in the ExecCtx: `(K, V)` may
            // borrow non-'static data, which the TypeId-keyed scratch cache
            // cannot hold).
            let mut scratch: Vec<(K, V)> = Vec::new();
            let mut emitted = 0u64;
            let (mut spilled_pairs, mut spilled_bytes, mut spilled_runs) = (0u64, 0u64, 0u64);
            let mut seq = 0u64;
            for item in chunk {
                let mut emitter = Emitter {
                    out: &mut out,
                    emitted,
                };
                map_fn(item, &mut emitter);
                emitted = emitter.emitted;
                // Budget check after every input record: O(1) while under
                // budget; over it, every non-empty destination buffer is
                // presorted and written out as one sorted run file.
                if let Some((dir, budget, kc, vc)) = &spill {
                    let buffered = (emitted - spilled_pairs) as usize;
                    if buffered * std::mem::size_of::<(K, V)>() > *budget {
                        for (dst, buf) in out.iter_mut().enumerate() {
                            if buf.is_empty() {
                                continue;
                            }
                            crate::radix::sort_pairs(buf, &mut scratch);
                            let name = format!("m{w}-d{dst}-s{seq}.run");
                            seq += 1;
                            let run = write_run(dir, &name, buf, kc, vc)?;
                            spilled_pairs += buf.len() as u64;
                            spilled_bytes += run.bytes;
                            spilled_runs += 1;
                            runs[dst].push(run);
                            buf.clear();
                        }
                    }
                }
            }
            // Presort the remainders per destination so that the reduce side
            // only k-way-merges: the sort work runs here, parallel across
            // all map workers.
            for buf in out.iter_mut() {
                crate::radix::sort_pairs(buf, &mut scratch);
            }
            Ok(MapSide {
                out,
                runs,
                spilled_pairs,
                spilled_bytes,
                spilled_runs,
            })
        });
    let mapped: Vec<MapSide<K, V>> = mapped
        .into_iter()
        .collect::<Result<_, _>>()
        .unwrap_or_else(|e| std::panic::panic_any(EngineError::Spill(e)));

    // ---- shuffle: transpose the per-source buffers to per-destination,
    // keeping each destination's sources in worker order (each source's runs
    // in spill order, its RAM remainder last — the tie-break order the merge
    // relies on).
    let mut pairs_shuffled = 0u64;
    let (mut spilled_bytes, mut spilled_runs) = (0u64, 0u64);
    let mut incoming: Vec<ShuffleSources<K, V>> =
        (0..workers).map(|_| Vec::with_capacity(workers)).collect();
    let mut spill_active = false;
    for side in mapped {
        pairs_shuffled += side.spilled_pairs;
        spilled_bytes += side.spilled_bytes;
        spilled_runs += side.spilled_runs;
        for (dst, (runs, buf)) in side.runs.into_iter().zip(side.out).enumerate() {
            pairs_shuffled += buf.len() as u64;
            spill_active |= !runs.is_empty();
            incoming[dst].push((runs, buf));
        }
    }

    // Cooperative control poll at the map→reduce barrier (the pass's one BSP
    // boundary): raised on the coordinator thread, so a trip unwinds without
    // the pool ever seeing it. No superstep or store here — resident bytes 0.
    // An unwind here drops `incoming`, deleting any spilled run files.
    if let Some(control) = ctx.control() {
        if let Some(reason) = control.poll(0) {
            std::panic::panic_any(EngineError::Cancelled {
                reason,
                superstep: 0,
            });
        }
    }

    // ---- reduce phase: flat sort-based grouping, then reduce each key run.
    let codecs = spill.as_ref().map(|(_, _, kc, vc)| (*kc, *vc));
    let results: Vec<ReduceSide<O>> = ctx.pool().run_per_worker(incoming, |w, srcs| {
        // K-way merge of the pre-sorted sources straight into one key
        // per group plus a flat value buffer; each group is the
        // contiguous value run of its key. This replaces the hash map
        // *and* the sorted-key pass the hash-based grouping needed for
        // determinism (ties prefer the lower source, so the merge is
        // deterministic).
        let ram_total: usize = srcs.iter().map(|(_, ram)| ram.len()).sum();
        let mut group_keys: Vec<(K, usize)> = Vec::new();
        let mut vals: Vec<V> = Vec::with_capacity(ram_total);
        let mut sink = |k: K, v: V| {
            let new_group = match group_keys.last() {
                Some((last, _)) => *last != k,
                None => true,
            };
            if new_group {
                group_keys.push((k, vals.len()));
            }
            vals.push(v);
        };
        let mut read_bytes = 0u64;
        if spill_active {
            let (kc, vc) = codecs.expect("runs exist only when spilling is armed");
            let mut sources: Vec<MergeSource<K, V>> = Vec::new();
            // Keeps the consumed run files alive until the merge
            // finishes; dropping them afterwards deletes the files.
            let mut consumed: Vec<DiskRun> = Vec::new();
            for (runs, ram) in srcs {
                for run in runs {
                    sources.push(MergeSource::Disk(RunReader::open(run.path(), kc, vc)?));
                    consumed.push(run);
                }
                sources.push(MergeSource::Ram(ram.into_iter()));
            }
            read_bytes = merge_run_sources(sources, &mut sink)?;
        } else {
            let mut bufs: Vec<Vec<(K, V)>> = srcs.into_iter().map(|(_, ram)| ram).collect();
            crate::kmerge::merge_sorted_buffers(&mut bufs, sink);
        }
        let group_count = group_keys.len() as u64;
        let mut out = Vec::new();
        for g in 0..group_keys.len() {
            let start = group_keys[g].1;
            let end = group_keys.get(g + 1).map(|(_, s)| *s).unwrap_or(vals.len());
            reduce_fn(w, &group_keys[g].0, &mut vals[start..end], &mut out);
        }
        Ok((out, group_count, read_bytes))
    });
    let mut outputs: Vec<Vec<O>> = Vec::with_capacity(workers);
    let mut groups = 0u64;
    let mut spill_read_bytes = 0u64;
    for r in results {
        let (out, g, read) = r.unwrap_or_else(|e| std::panic::panic_any(EngineError::Spill(e)));
        groups += g;
        spill_read_bytes += read;
        outputs.push(out);
    }

    let output_records = outputs.iter().map(|o| o.len() as u64).sum();
    let metrics = MapReduceMetrics {
        input_records,
        pairs_shuffled,
        groups,
        output_records,
        elapsed: start.elapsed(),
        spilled_bytes,
        spill_read_bytes,
        spilled_runs,
    };
    (outputs, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn word_count() {
        let docs = ["a b a", "b c", "a", ""];
        let inputs: Vec<String> = docs.iter().map(|s| s.to_string()).collect();
        let (counts, metrics) = map_reduce_with_metrics(
            inputs,
            3,
            |doc: String, out: &mut Emitter<'_, String, u64>| {
                for w in doc.split_whitespace() {
                    out.emit(w.to_string(), 1u64);
                }
            },
            |k: &String, vs: &mut [u64], out: &mut Vec<(String, u64)>| {
                out.push((k.clone(), vs.iter().sum::<u64>()))
            },
        );
        let mut counts: Vec<(String, u64)> = counts;
        counts.sort();
        assert_eq!(
            counts,
            vec![
                ("a".to_string(), 3),
                ("b".to_string(), 2),
                ("c".to_string(), 1)
            ]
        );
        assert_eq!(metrics.input_records, 4);
        assert_eq!(metrics.pairs_shuffled, 6);
        assert_eq!(metrics.groups, 3);
        assert_eq!(metrics.output_records, 3);
    }

    #[test]
    fn reduce_can_filter_groups() {
        // Keep only keys whose total exceeds a threshold — the same pattern as
        // the coverage filter θ in DBG construction.
        let inputs: Vec<u64> = (0..100).collect();
        let out = map_reduce(
            inputs,
            4,
            |x: u64, out: &mut Emitter<'_, u64, u64>| out.emit(x % 10, 1),
            |k: &u64, vs: &mut [u64], out: &mut Vec<u64>| {
                let total: u64 = vs.iter().sum();
                if total >= 10 && (*k).is_multiple_of(2) {
                    out.push(*k);
                }
            },
        );
        let mut out = out;
        out.sort();
        assert_eq!(out, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn partitioned_exposes_worker_index() {
        let inputs: Vec<u64> = (0..50).collect();
        let (per_worker, _) = map_reduce_partitioned(
            inputs,
            4,
            |x: u64, out: &mut Emitter<'_, u64, u64>| out.emit(x, x),
            |w: usize, _k: &u64, vs: &mut [u64], out: &mut Vec<(usize, u64)>| {
                out.extend(vs.iter().map(|&v| (w, v)));
            },
        );
        assert_eq!(per_worker.len(), 4);
        // Every output is tagged with the worker that produced it, and the
        // owning worker is consistent with the hash partitioning.
        for (w, outs) in per_worker.iter().enumerate() {
            for (tag, v) in outs {
                assert_eq!(*tag, w);
                assert_eq!((hash_one(v) % 4) as usize, w);
            }
        }
        let total: usize = per_worker.iter().map(|o| o.len()).sum();
        assert_eq!(total, 50);
    }

    #[test]
    fn shared_ctx_reused_across_passes() {
        // One pool drives several consecutive passes — the workflow shape.
        let ctx = ExecCtx::new(3);
        for round in 1u64..=4 {
            let inputs: Vec<u64> = (0..60).collect();
            let mut out = map_reduce_on(
                &ctx,
                inputs,
                |x: u64, out: &mut Emitter<'_, u64, u64>| out.emit(x % 5, x * round),
                |k: &u64, vs: &mut [u64], out: &mut Vec<(u64, u64)>| {
                    out.push((*k, vs.iter().sum::<u64>()))
                },
            );
            out.sort_unstable();
            let expected: u64 = (0..60u64).map(|x| x * round).sum();
            assert_eq!(out.iter().map(|&(_, s)| s).sum::<u64>(), expected);
            assert_eq!(out.len(), 5);
        }
        assert!(ctx.pool().busy_nanos() > 0);
    }

    #[test]
    fn empty_input() {
        let (out, metrics) = map_reduce_with_metrics(
            Vec::<u64>::new(),
            4,
            |x: u64, out: &mut Emitter<'_, u64, u64>| out.emit(x, x),
            |_k: &u64, vs: &mut [u64], out: &mut Vec<u64>| out.extend_from_slice(vs),
        );
        assert!(out.is_empty());
        assert_eq!(metrics.groups, 0);
    }

    #[test]
    fn single_worker_is_sequential_but_correct() {
        let inputs: Vec<u64> = (0..20).collect();
        let out = map_reduce(
            inputs,
            1,
            |x: u64, out: &mut Emitter<'_, u64, u64>| out.emit(x % 2, x),
            |k: &u64, vs: &mut [u64], out: &mut Vec<(u64, usize)>| out.push((*k, vs.len())),
        );
        let mut out = out;
        out.sort();
        assert_eq!(out, vec![(0, 10), (1, 10)]);
    }

    #[test]
    fn group_order_is_sorted_within_worker() {
        // With one worker, outputs must appear in ascending key order.
        let inputs: Vec<u64> = vec![5, 3, 9, 1, 7];
        let out = map_reduce(
            inputs,
            1,
            |x: u64, out: &mut Emitter<'_, u64, ()>| out.emit(x, ()),
            |k: &u64, _vs: &mut [()], out: &mut Vec<u64>| out.push(*k),
        );
        assert_eq!(out, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn reduce_may_mutate_its_slice() {
        // The reduce UDF is allowed to reorder its group in place (bubble
        // filtering sorts candidates by contig ID, for example).
        let inputs: Vec<u64> = vec![9, 3, 7, 1, 5];
        let out = map_reduce(
            inputs,
            2,
            |x: u64, out: &mut Emitter<'_, u64, u64>| out.emit(x % 2, x),
            |_k: &u64, vs: &mut [u64], out: &mut Vec<Vec<u64>>| {
                vs.sort_unstable();
                out.push(vs.to_vec());
            },
        );
        for group in out {
            assert!(group.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn spillable_pass_matches_resident_pass() {
        // Word-count-shaped pass with enough volume to force many runs under
        // a tiny cap; per-key value order must survive spilling, so the
        // reduce folds order-sensitively (first value wins a slot).
        let run = |cap: Option<u64>| -> (Vec<(u64, u64, u64)>, MapReduceMetrics) {
            let ctx = ExecCtx::new(4);
            if let Some(cap) = cap {
                ctx.set_spill(crate::spill::SpillPolicy::At(cap));
            }
            let inputs: Vec<u64> = (0..20_000).collect();
            let (out, metrics) = map_reduce_spillable_on(
                &ctx,
                inputs,
                |x: u64, out: &mut Emitter<'_, u64, u64>| out.emit(x % 257, x),
                |_w: usize, k: &u64, vs: &mut [u64], out: &mut Vec<(u64, u64, u64)>| {
                    // (key, first value, sum): `first` pins the within-key
                    // order, `sum` pins the membership.
                    out.push((*k, vs[0], vs.iter().sum()));
                },
            );
            ctx.clear_spill();
            let mut flat: Vec<(u64, u64, u64)> = out.into_iter().flatten().collect();
            flat.sort_unstable();
            (flat, metrics)
        };
        let (baseline, base_metrics) = run(None);
        assert_eq!(base_metrics.spilled_runs, 0);
        let (off, off_metrics) = run(Some(1 << 30));
        assert_eq!(off, baseline, "huge cap must not change the outputs");
        assert_eq!(off_metrics.spilled_runs, 0, "huge cap must not spill");
        let (spilled, spill_metrics) = run(Some(8192));
        assert_eq!(spilled, baseline, "spilled pass diverged from resident");
        assert!(spill_metrics.spilled_runs > 0, "tiny cap must spill runs");
        assert!(spill_metrics.spilled_bytes > 0);
        assert!(spill_metrics.spill_read_bytes > 0);
        assert_eq!(spill_metrics.pairs_shuffled, base_metrics.pairs_shuffled);
        assert_eq!(spill_metrics.groups, base_metrics.groups);
    }

    /// Hash-grouping oracle shared by the property tests below.
    fn hash_grouped_sums(pairs: &[(u64, u64)]) -> crate::fxhash::FxHashMap<u64, u64> {
        let mut grouped: crate::fxhash::FxHashMap<u64, u64> = crate::fxhash::FxHashMap::default();
        for &(k, v) in pairs {
            *grouped.entry(k).or_insert(0) += v;
        }
        grouped
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_sort_grouping_matches_hash_grouping(
            pairs in proptest::collection::vec((0u64..64, 1u64..1000), 0..300),
            workers in 1usize..6,
        ) {
            // Aggregating reduce (the combiner-style shape).
            let expected = hash_grouped_sums(&pairs);
            let out = map_reduce(
                pairs.clone(),
                workers,
                |p: (u64, u64), out: &mut Emitter<'_, u64, u64>| out.emit(p.0, p.1),
                |k: &u64, vs: &mut [u64], out: &mut Vec<(u64, u64)>| out.push((*k, vs.iter().sum::<u64>())),
            );
            prop_assert_eq!(out.len(), expected.len());
            for (k, sum) in out {
                prop_assert_eq!(sum, expected[&k]);
            }

            // Identity reduce (the non-combiner shape): every value survives,
            // grouped with its key.
            let out = map_reduce(
                pairs.clone(),
                workers,
                |p: (u64, u64), out: &mut Emitter<'_, u64, u64>| out.emit(p.0, p.1),
                |k: &u64, vs: &mut [u64], out: &mut Vec<(u64, u64)>| out.extend(vs.iter().map(|&v| (*k, v))),
            );
            let mut got = out;
            let mut want = pairs.clone();
            got.sort_unstable();
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }

        #[test]
        fn prop_worker_count_does_not_change_results(
            pairs in proptest::collection::vec((0u64..32, 1u64..100), 0..200),
        ) {
            let mut reference: Option<Vec<(u64, u64)>> = None;
            for workers in [1usize, 2, 5] {
                let mut out = map_reduce(
                    pairs.clone(),
                    workers,
                    |p: (u64, u64), out: &mut Emitter<'_, u64, u64>| out.emit(p.0, p.1),
                    |k: &u64, vs: &mut [u64], out: &mut Vec<(u64, u64)>| out.push((*k, vs.iter().sum::<u64>())),
                );
                out.sort_unstable();
                match &reference {
                    Some(r) => prop_assert_eq!(r, &out),
                    None => reference = Some(out),
                }
            }
        }
    }
}
