//! Stable LSD radix sort for the message plane's fixed-width keys.
//!
//! Every presort in this workspace — the runner's per-destination outbox
//! presort, the mini-MapReduce shuffle presort, `VertexSet::convert`'s
//! presort and construct phase (i)'s (k+1)-mer counting — sorts records by a
//! packed integer key (vertex IDs, shuffle keys, canonical k-mers are all
//! `u64`). [`sort_pairs`] and [`sort_keys`] replace the comparison sorts on
//! those sites with a **stable least-significant-digit radix sort**:
//!
//! * an **adaptive digit schedule**: a cheap envelope pass folds the bitwise
//!   OR and AND of every key, which proves exactly which bits differ
//!   ([`kernels::key_envelope`] is the
//!   vectorized form). Digits on which every key agrees are **skipped** —
//!   partition-clustered or small-range keys (the common case: k-mer counts,
//!   contig labels and vertex IDs rarely span all 64 bits) sort in 2–4
//!   byte-digit passes;
//! * when six or more bytes are active (uniform full-width keys — the shape
//!   that used to lose 0.85× to pdqsort), large inputs switch to six
//!   **11-bit digits** with 2048-bucket stack histograms, two fewer scatter
//!   passes over the data;
//! * histograms for all scheduled digits are built in **one** read pass;
//! * inputs at or below [`INSERTION_CUTOFF`] use an in-place insertion sort
//!   instead (the per-destination buffers of a fine-grained shuffle are often
//!   tiny);
//! * scatter passes **ping-pong** between the record buffer and one caller
//!   supplied scratch buffer of the same type, so sorting allocates nothing
//!   beyond that scratch — the superstep runner keeps the scratch in its
//!   per-worker `WorkerPlane`, which the engine parks in the
//!   [`ExecCtx`](crate::engine::ExecCtx) typed scratch cache between jobs,
//!   making steady-state sorting allocation-free across supersteps *and*
//!   jobs. (The mini-MapReduce and `convert` shuffles reuse one scratch
//!   across all of a worker's destination buffers within a pass; their
//!   records may borrow non-`'static` data, which the `ExecCtx` cache —
//!   keyed by `TypeId` — cannot hold.)
//!
//! # When radix wins
//!
//! LSD radix is O(passes · n) with sequential reads and bucketed writes,
//! versus pdqsort's O(n log n) comparisons with data-dependent branches. On
//! the message plane's regime — tens of thousands to millions of 16-byte
//! `(u64, payload)` records per buffer, keys far narrower than 64 bits — the
//! 2–4 skip-reduced passes beat the ~16–20 comparison levels of a large
//! pdqsort by 1.5–4× (see `BENCH_radix_sort.json`). Comparison sorting
//! remains the right tool for tiny buffers (hence the insertion cutoff),
//! for keys without a cheap monotone integer image (hence the [`SortKey`]
//! fallback), and for nearly-sorted data where pdqsort's run detection is
//! hard to beat.
//!
//! Keys opt in through [`SortKey`]: types with a monotone, injective `u64`
//! image (`RADIX = true`) take the radix path; everything else (strings,
//! wide tuples) falls back to a stable comparison sort, so generic shuffle
//! code routes through this module unconditionally. The pre-radix
//! comparison plane stays reachable for benchmarking via
//! [`force_comparison_plane`] (wrapped by `ppa_bench::legacy`).

use crate::kernels;
use std::sync::atomic::{AtomicBool, Ordering};

/// Inputs of at most this many records are sorted with an in-place insertion
/// sort instead of counting passes.
pub const INSERTION_CUTOFF: usize = 64;

/// Inputs below this size never take the wide (11-bit) digit schedule: its
/// 48 KiB of histograms and 16 KiB of scatter offsets would dominate the
/// sort itself.
pub const WIDE_CUTOFF: usize = 1 << 15;

/// Bench-only switch forcing every [`sort_pairs`]/[`sort_keys`] call onto the
/// comparison-sort fallback.
static FORCE_COMPARISON: AtomicBool = AtomicBool::new(false);

/// Forces (or stops forcing) the comparison-sort fallback globally.
///
/// This exists so `ppa_bench` can measure the pre-radix comparison plane
/// end-to-end inside one binary (`ppa_bench::legacy::with_comparison_plane`);
/// nothing else should call it. The forced path is the same **stable** sort
/// contract, just implemented by `slice::sort_by` instead of counting passes.
pub fn force_comparison_plane(on: bool) {
    FORCE_COMPARISON.store(on, Ordering::Relaxed);
}

/// Whether [`force_comparison_plane`] is currently engaged.
pub fn comparison_plane_forced() -> bool {
    FORCE_COMPARISON.load(Ordering::Relaxed)
}

/// A sort key of the message plane.
///
/// Implementors either expose a **monotone, injective** `u64` image
/// (`RADIX = true`: `a < b ⟺ a.radix_key() < b.radix_key()`, and equal
/// images imply equal keys) and get the LSD radix path, or keep the default
/// `RADIX = false` and get a stable comparison sort. The invariant matters:
/// the downstream k-way merges compare keys with `Ord`, so a radix order
/// that disagrees with `Ord` would silently corrupt grouping.
pub trait SortKey: Ord {
    /// Whether [`radix_key`](SortKey::radix_key) provides a monotone,
    /// injective `u64` image of this type.
    const RADIX: bool = false;

    /// The `u64` image used by the radix passes. Only called when
    /// [`RADIX`](SortKey::RADIX) is `true`.
    fn radix_key(&self) -> u64 {
        debug_assert!(!Self::RADIX, "RADIX keys must override radix_key()");
        0
    }

    /// Inverse of [`radix_key`](SortKey::radix_key): reconstructs the key
    /// from its `u64` image. Only called on images actually produced by
    /// `radix_key` and only when [`RADIX`](SortKey::RADIX) is `true` — the
    /// compressed sorted-ID columns of `VertexSet` store the image and
    /// decode on access.
    fn from_radix_key(image: u64) -> Self
    where
        Self: Sized,
    {
        let _ = image;
        unreachable!("from_radix_key is only defined for RADIX keys")
    }
}

macro_rules! radix_unsigned {
    ($($t:ty),*) => {$(
        impl SortKey for $t {
            const RADIX: bool = true;
            #[inline(always)]
            fn radix_key(&self) -> u64 {
                *self as u64
            }
            #[inline(always)]
            fn from_radix_key(image: u64) -> Self {
                image as $t
            }
        }
    )*};
}

radix_unsigned!(u8, u16, u32, u64, usize);

macro_rules! radix_signed {
    ($($t:ty),*) => {$(
        impl SortKey for $t {
            const RADIX: bool = true;
            #[inline(always)]
            fn radix_key(&self) -> u64 {
                // Widen, then flip the sign bit: negative values map below
                // positive ones, preserving `Ord`.
                (*self as i64 as u64) ^ (1u64 << 63)
            }
            #[inline(always)]
            fn from_radix_key(image: u64) -> Self {
                (image ^ (1u64 << 63)) as i64 as $t
            }
        }
    )*};
}

radix_signed!(i8, i16, i32, i64, isize);

impl SortKey for bool {
    const RADIX: bool = true;
    #[inline(always)]
    fn radix_key(&self) -> u64 {
        *self as u64
    }
    #[inline(always)]
    fn from_radix_key(image: u64) -> Self {
        image != 0
    }
}

impl SortKey for char {
    const RADIX: bool = true;
    #[inline(always)]
    fn radix_key(&self) -> u64 {
        *self as u64
    }
    #[inline(always)]
    fn from_radix_key(image: u64) -> Self {
        // The image is always a value previously produced by `radix_key`,
        // i.e. a valid scalar.
        char::from_u32(image as u32).expect("radix image of a char")
    }
}

// Comparison-sort fallbacks: no cheap monotone u64 image (or none that fits).
impl SortKey for String {}
impl SortKey for &'static str {}
impl<A: Ord, B: Ord> SortKey for (A, B) {}
impl<A: Ord, B: Ord, C: Ord> SortKey for (A, B, C) {}

/// Stably sorts `(key, payload)` records by key.
///
/// Radix keys take the LSD path using `scratch` as the ping-pong buffer;
/// other keys use a stable comparison sort. Either way the sort is **stable**
/// — records with equal keys keep their input order, which the fold-by-run
/// duplicate merging of `VertexSet::convert` and the per-sender delivery
/// order of the runner rely on. On return `scratch` is empty (capacity
/// kept); reuse it across calls to keep steady-state sorting allocation-free.
pub fn sort_pairs<K: SortKey, V>(records: &mut Vec<(K, V)>, scratch: &mut Vec<(K, V)>) {
    if !K::RADIX || comparison_plane_forced() {
        records.sort_by(|a, b| a.0.cmp(&b.0));
        return;
    }
    lsd_radix(records, scratch, |r: &(K, V)| r.0.radix_key());
}

/// Sorts bare keys (no payload). Stability is meaningless here, so the
/// comparison fallback uses the in-place unstable sort; the radix path is
/// shared with [`sort_pairs`]. On return `scratch` is empty (capacity kept).
pub fn sort_keys<K: SortKey>(keys: &mut Vec<K>, scratch: &mut Vec<K>) {
    if !K::RADIX || comparison_plane_forced() {
        keys.sort_unstable();
        return;
    }
    lsd_radix(keys, scratch, |k: &K| k.radix_key());
}

/// Stable insertion sort by a `u64` image (used below the cutoff).
fn insertion_by_key<T>(v: &mut [T], key: &impl Fn(&T) -> u64) {
    for i in 1..v.len() {
        let mut j = i;
        while j > 0 && key(&v[j - 1]) > key(&v[j]) {
            v.swap(j - 1, j);
            j -= 1;
        }
    }
}

/// The LSD driver: an exact OR/AND key-envelope pass picks the digit
/// schedule ([`kernels::digit_plan`]), one histogram pass counts the
/// scheduled digits, then one stable scatter pass per digit ping-pongs
/// between `records` and `scratch`. Postcondition: `records` sorted,
/// `scratch` empty. Everything transient lives on the stack, preserving the
/// zero-allocation steady state pinned by `ppa_tests/radix_alloc`.
fn lsd_radix<T>(records: &mut Vec<T>, scratch: &mut Vec<T>, key: impl Fn(&T) -> u64) {
    let n = records.len();
    if n <= INSERTION_CUTOFF {
        insertion_by_key(records, &key);
        return;
    }
    assert!(
        n <= u32::MAX as usize,
        "radix buffers are capped at u32::MAX records"
    );
    let (mut or_acc, mut and_acc) = (0u64, u64::MAX);
    for r in records.iter() {
        let k = key(r);
        or_acc |= k;
        and_acc &= k;
    }
    if or_acc == and_acc {
        // Every key is identical; stability makes this a provable no-op.
        return;
    }
    let plan = kernels::digit_plan(or_acc, and_acc, n >= WIDE_CUTOFF);
    if plan.wide {
        wide_lsd(records, scratch, &key, &plan);
        return;
    }
    // Narrow schedule: byte digits, histograms indexed by plan position.
    let mut hist = [[0u32; 256]; kernels::MAX_DIGITS];
    for r in records.iter() {
        let k = key(r);
        for d in 0..plan.len {
            hist[d][((k >> plan.shifts[d]) & 0xFF) as usize] += 1;
        }
    }
    let mut in_records = true;
    for (h, &shift) in hist.iter().zip(&plan.shifts).take(plan.len) {
        if in_records {
            scatter(records, scratch, shift, h, &key);
        } else {
            scatter(scratch, records, shift, h, &key);
        }
        in_records = !in_records;
    }
    if !in_records {
        std::mem::swap(records, scratch);
    }
}

/// The wide-digit driver for uniform full-width keys: six 11-bit digits
/// instead of eight bytes, two fewer scatter passes. The 48 KiB histogram
/// block stays on the stack (zero-allocation contract); `inline(never)`
/// keeps that frame off the narrow path.
#[inline(never)]
fn wide_lsd<T>(
    records: &mut Vec<T>,
    scratch: &mut Vec<T>,
    key: &impl Fn(&T) -> u64,
    plan: &kernels::DigitPlan,
) {
    let mut hist = [[0u32; kernels::WIDE_BUCKETS]; 6];
    debug_assert!(plan.len <= 6, "11-bit digits cover u64 in six passes");
    for r in records.iter() {
        let k = key(r);
        for d in 0..plan.len {
            hist[d][((k >> plan.shifts[d]) as usize) & (kernels::WIDE_BUCKETS - 1)] += 1;
        }
    }
    let mut in_records = true;
    for (h, &shift) in hist.iter().zip(&plan.shifts).take(plan.len) {
        if in_records {
            scatter(records, scratch, shift, h, key);
        } else {
            scatter(scratch, records, shift, h, key);
        }
        in_records = !in_records;
    }
    if !in_records {
        std::mem::swap(records, scratch);
    }
}

/// One counting-sort pass: moves every record of `src` into `dst` at the
/// position dictated by its digit at `shift` (bucket count `B`, a power of
/// two), preserving input order within each bucket (what makes LSD stable).
/// `src` is left empty, capacity kept.
fn scatter<T, const B: usize>(
    src: &mut Vec<T>,
    dst: &mut Vec<T>,
    shift: u32,
    counts: &[u32; B],
    key: &impl Fn(&T) -> u64,
) {
    let n = src.len();
    let mut offsets = [0usize; B];
    let mut run = 0usize;
    for (slot, &c) in offsets.iter_mut().zip(counts.iter()) {
        *slot = run;
        run += c as usize;
    }
    debug_assert_eq!(run, n, "histogram must cover every record");
    dst.clear();
    dst.reserve(n);
    let dst_ptr = dst.as_mut_ptr();
    for item in src.drain(..) {
        let b = ((key(&item) >> shift) as usize) & (B - 1);
        // SAFETY: `offsets` partitions `0..n` by the per-byte counts of this
        // exact input, so every record writes to a distinct index < n within
        // `dst`'s reserved capacity. `dst` has length 0 throughout the loop,
        // so no initialised element is overwritten; `set_len` below only runs
        // after all `n` slots are written. If `key` panicked mid-loop the
        // written items would leak (len is still 0), which is safe.
        unsafe { std::ptr::write(dst_ptr.add(offsets[b]), item) };
        offsets[b] += 1;
    }
    // SAFETY: exactly `n` distinct slots in `0..n` were initialised above.
    unsafe { dst.set_len(n) };
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Serialises the tests that flip or depend on the process-global
    /// comparison-plane toggle (the test harness runs siblings in parallel).
    static PLANE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    /// RAII engagement of the forced comparison plane: resets on drop even
    /// if the holding test panics, so a failure cannot poison other tests.
    struct ForcedPlane;

    impl ForcedPlane {
        fn engage() -> ForcedPlane {
            force_comparison_plane(true);
            ForcedPlane
        }
    }

    impl Drop for ForcedPlane {
        fn drop(&mut self) {
            force_comparison_plane(false);
        }
    }

    fn radix_sorted(mut records: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
        let mut scratch = Vec::new();
        sort_pairs(&mut records, &mut scratch);
        assert!(scratch.is_empty(), "scratch is drained on return");
        records
    }

    #[test]
    fn empty_single_and_all_equal() {
        assert_eq!(radix_sorted(vec![]), vec![]);
        assert_eq!(radix_sorted(vec![(7, 1)]), vec![(7, 1)]);
        // All-equal keys: stability means payloads keep input order, both
        // below and above the insertion cutoff.
        for n in [5u64, 1000] {
            let records: Vec<(u64, u64)> = (0..n).map(|i| (42, i)).collect();
            assert_eq!(radix_sorted(records.clone()), records);
        }
    }

    #[test]
    fn keys_differing_only_in_the_top_byte() {
        // Bytes 0..7 are constant: every pass but the top-byte one is
        // skipped. 1000 records keeps us above the insertion cutoff.
        let records: Vec<(u64, u64)> = (0..1000u64)
            .rev()
            .map(|i| (((i % 256) << 56) | 0xABCD, i))
            .collect();
        let mut expected = records.clone();
        expected.sort_by_key(|r| r.0);
        assert_eq!(radix_sorted(records), expected);
    }

    #[test]
    fn large_uniform_matches_comparison_sort() {
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let records: Vec<(u64, u64)> = (0..10_000).map(|i| (next(), i)).collect();
        let mut expected = records.clone();
        expected.sort_by_key(|r| r.0);
        assert_eq!(radix_sorted(records), expected);
    }

    #[test]
    fn wide_schedule_sorts_uniform_full_width_keys() {
        // Above WIDE_CUTOFF with all 8 bytes active: takes the 11-bit digit
        // schedule. Stability is still required on the (rare) duplicates.
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let records: Vec<(u64, u64)> = (0..(WIDE_CUTOFF as u64 + 1000))
            .map(|i| (next(), i))
            .collect();
        let mut expected = records.clone();
        expected.sort_by_key(|r| r.0);
        assert_eq!(radix_sorted(records), expected);
    }

    #[test]
    fn from_radix_key_inverts_radix_key() {
        for v in [0u64, 1, u64::MAX, 0xDEAD_BEEF] {
            assert_eq!(u64::from_radix_key(v.radix_key()), v);
        }
        for v in [i64::MIN, -1, 0, 1, i64::MAX] {
            assert_eq!(i64::from_radix_key(v.radix_key()), v);
        }
        for v in [i32::MIN, -7, 0, i32::MAX] {
            assert_eq!(i32::from_radix_key(v.radix_key()), v);
        }
        for v in [u8::MIN, 7, u8::MAX] {
            assert_eq!(u8::from_radix_key(v.radix_key()), v);
        }
        for v in [false, true] {
            assert_eq!(bool::from_radix_key(v.radix_key()), v);
        }
        for v in ['a', '\u{10FFFF}', '中'] {
            assert_eq!(char::from_radix_key(v.radix_key()), v);
        }
    }

    #[test]
    fn signed_keys_order_like_ord() {
        let mut records: Vec<(i64, u64)> = (0..1000u64)
            .map(|i| ((i as i64 % 7 - 3) * (1 << 40), i))
            .collect();
        let mut expected = records.clone();
        expected.sort_by_key(|r| r.0);
        let mut scratch = Vec::new();
        sort_pairs(&mut records, &mut scratch);
        assert_eq!(records, expected);
    }

    #[test]
    fn non_radix_keys_fall_back_to_stable_comparison() {
        let mut records: Vec<((u64, u64), u64)> =
            vec![((2, 1), 0), ((1, 9), 1), ((2, 1), 2), ((1, 0), 3)];
        let mut scratch = Vec::new();
        sort_pairs(&mut records, &mut scratch);
        assert_eq!(
            records,
            vec![((1, 0), 3), ((1, 9), 1), ((2, 1), 0), ((2, 1), 2)]
        );
    }

    #[test]
    fn sort_keys_sorts_bare_keys() {
        let mut keys: Vec<u64> = (0..5000u64)
            .map(|i| (i * 2_654_435_761) % 100_003)
            .collect();
        let mut expected = keys.clone();
        expected.sort_unstable();
        let mut scratch = Vec::new();
        sort_keys(&mut keys, &mut scratch);
        assert_eq!(keys, expected);
        assert!(scratch.is_empty());
    }

    #[test]
    fn forced_comparison_plane_produces_the_same_order() {
        let _serial = PLANE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let records: Vec<(u64, u64)> = (0..500u64).map(|i| ((i * 37) % 64, i)).collect();
        let radix = radix_sorted(records.clone());
        let forced = {
            let _plane = ForcedPlane::engage();
            radix_sorted(records)
        };
        assert_eq!(radix, forced, "both paths are stable sorts by key");
    }

    #[test]
    fn scratch_capacity_is_reused_across_sorts() {
        // Asserts radix-path behavior, so it must not overlap the forced-
        // plane test above.
        let _serial = PLANE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let mut scratch: Vec<(u64, u64)> = Vec::new();
        let mut records: Vec<(u64, u64)> = (0..4096u64).rev().map(|i| (i, i)).collect();
        sort_pairs(&mut records, &mut scratch);
        let cap = scratch.capacity();
        assert!(cap >= 4096, "scratch warmed to input size");
        for round in 0..3u64 {
            records.clear();
            records.extend((0..4096u64).map(|i| ((i * 997 + round) % 4096, i)));
            sort_pairs(&mut records, &mut scratch);
            assert_eq!(scratch.capacity(), cap, "no regrowth at steady state");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_radix_matches_sort_unstable_by_key(
            pairs in proptest::collection::vec((0u64..1u64 << 48, 0u64..1000), 0..400),
        ) {
            // Key multisets agree with pdqsort's; sizes straddle the
            // insertion cutoff so both paths are exercised.
            let mut expected = pairs.clone();
            expected.sort_unstable_by_key(|p| p.0);
            let got = radix_sorted(pairs);
            prop_assert_eq!(
                got.iter().map(|p| p.0).collect::<Vec<_>>(),
                expected.iter().map(|p| p.0).collect::<Vec<_>>()
            );
        }

        #[test]
        fn prop_radix_is_stable(
            keys in proptest::collection::vec(0u64..32, 0..300),
        ) {
            // Payload = input position: within every equal-key run the
            // positions must stay ascending.
            let records: Vec<(u64, u64)> =
                keys.into_iter().enumerate().map(|(i, k)| (k, i as u64)).collect();
            let sorted = radix_sorted(records);
            for w in sorted.windows(2) {
                prop_assert!(w[0].0 <= w[1].0);
                if w[0].0 == w[1].0 {
                    prop_assert!(w[0].1 < w[1].1, "equal keys keep input order");
                }
            }
        }
    }
}
