//! The superstep execution engine.
//!
//! [`run`] drives a [`VertexProgram`] over a [`VertexSet`] until no vertex is
//! active and no message is in flight (or the program's
//! [`should_terminate`](VertexProgram::should_terminate) fires), collecting
//! [`Metrics`] along the way. Each superstep has two parallel phases:
//!
//! 1. **compute** — every worker thread walks its own partition and invokes
//!    `compute` for each vertex that is active or has pending messages,
//!    buffering outgoing messages per destination worker;
//! 2. **shuffle** — the outgoing buffers are transposed and every worker
//!    groups the messages addressed to its vertices by vertex ID (applying
//!    the combiner if the program enables one).
//!
//! This mirrors the bulk-synchronous structure of Pregel+ with the network
//! replaced by in-memory buffer handoff.

use crate::aggregate::Aggregate;
use crate::config::PregelConfig;
use crate::fxhash::FxHashMap;
use crate::metrics::{Metrics, SuperstepMetrics};
use crate::vertex::{Context, VertexProgram};
use crate::vertex_set::VertexSet;
use std::time::Instant;

/// Per-worker output of one compute phase.
struct WorkerResult<P: VertexProgram> {
    outbox: Vec<Vec<(P::Id, P::Message)>>,
    local_aggregate: P::Aggregate,
    messages_sent: u64,
    messages_dropped: u64,
    active: usize,
    all_halted: bool,
}

/// Runs `program` over `vertices` until convergence and returns the metrics.
///
/// The vertex set keeps the final vertex values; a typical operation runs a
/// job and then inspects or [`convert`](VertexSet::convert)s the set.
///
/// # Panics
///
/// Panics if `config.workers` differs from the partitioning of `vertices`
/// (construct the set with the same worker count), or if the superstep cap is
/// exceeded with `debug_assertions` enabled.
pub fn run<P: VertexProgram>(
    program: &P,
    config: &PregelConfig,
    vertices: &mut VertexSet<P::Id, P::Value>,
) -> Metrics {
    assert_eq!(
        config.workers,
        vertices.workers(),
        "PregelConfig.workers ({}) must match VertexSet partitioning ({})",
        config.workers,
        vertices.workers()
    );
    let workers = vertices.workers();
    let total_vertices = vertices.len();
    let job_start = Instant::now();

    vertices.activate_all();
    let mut inboxes: Vec<FxHashMap<P::Id, Vec<P::Message>>> =
        (0..workers).map(|_| FxHashMap::default()).collect();
    let mut prev_aggregate = P::Aggregate::identity();
    let mut metrics = Metrics { converged: false, ..Metrics::default() };
    let mut superstep = 0usize;

    loop {
        if superstep >= config.max_supersteps {
            metrics.converged = false;
            break;
        }
        let step_start = Instant::now();

        // ---- compute phase -------------------------------------------------
        let mut results: Vec<WorkerResult<P>> = Vec::with_capacity(workers);
        {
            let prev_agg = &prev_aggregate;
            let mut worker_inputs: Vec<(
                &mut FxHashMap<P::Id, crate::vertex_set::VertexEntry<P::Value>>,
                FxHashMap<P::Id, Vec<P::Message>>,
            )> = vertices
                .parts
                .iter_mut()
                .zip(inboxes.iter_mut().map(std::mem::take))
                .collect();
            std::thread::scope(|scope| {
                let handles: Vec<_> = worker_inputs
                    .drain(..)
                    .enumerate()
                    .map(|(w, (part, mut inbox))| {
                        scope.spawn(move || {
                            let mut outbox: Vec<Vec<(P::Id, P::Message)>> =
                                (0..workers).map(|_| Vec::new()).collect();
                            let mut local_aggregate = P::Aggregate::identity();
                            let mut messages_sent = 0u64;
                            let mut active = 0usize;
                            for (id, entry) in part.iter_mut() {
                                let msgs = inbox.remove(id).unwrap_or_default();
                                if entry.halted && msgs.is_empty() {
                                    continue;
                                }
                                entry.halted = false;
                                active += 1;
                                let mut ctx: Context<'_, P> = Context {
                                    superstep,
                                    worker: w,
                                    num_workers: workers,
                                    total_vertices,
                                    prev_aggregate: prev_agg,
                                    local_aggregate: &mut local_aggregate,
                                    outbox: &mut outbox,
                                    messages_sent: &mut messages_sent,
                                    halt: false,
                                };
                                program.compute(&mut ctx, *id, &mut entry.value, msgs);
                                entry.halted = ctx.halt;
                            }
                            // Whatever remains in the inbox was addressed to
                            // vertices this worker does not host.
                            let messages_dropped =
                                inbox.values().map(|v| v.len() as u64).sum::<u64>();
                            let all_halted = part.values().all(|e| e.halted);
                            WorkerResult::<P> {
                                outbox,
                                local_aggregate,
                                messages_sent,
                                messages_dropped,
                                active,
                                all_halted,
                            }
                        })
                    })
                    .collect();
                for h in handles {
                    results.push(h.join().expect("pregel worker panicked"));
                }
            });
        }

        // ---- aggregate & bookkeeping ---------------------------------------
        let mut aggregate = P::Aggregate::identity();
        let mut messages_this_step = 0u64;
        let mut dropped_this_step = 0u64;
        let mut active_this_step = 0usize;
        let mut all_halted = true;
        for r in &results {
            aggregate.combine(&r.local_aggregate);
            messages_this_step += r.messages_sent;
            dropped_this_step += r.messages_dropped;
            active_this_step += r.active;
            all_halted &= r.all_halted;
        }

        // ---- shuffle phase --------------------------------------------------
        let mut incoming: Vec<Vec<Vec<(P::Id, P::Message)>>> =
            (0..workers).map(|_| Vec::with_capacity(workers)).collect();
        for r in results {
            for (dst, buf) in r.outbox.into_iter().enumerate() {
                incoming[dst].push(buf);
            }
        }
        inboxes.clear();
        std::thread::scope(|scope| {
            let handles: Vec<_> = incoming
                .into_iter()
                .map(|bufs| {
                    scope.spawn(move || {
                        let mut inbox: FxHashMap<P::Id, Vec<P::Message>> = FxHashMap::default();
                        for buf in bufs {
                            for (id, msg) in buf {
                                let slot = inbox.entry(id).or_default();
                                if P::USE_COMBINER && !slot.is_empty() {
                                    let acc = slot.last_mut().expect("non-empty");
                                    program.combine(acc, msg);
                                } else {
                                    slot.push(msg);
                                }
                            }
                        }
                        inbox
                    })
                })
                .collect();
            for h in handles {
                inboxes.push(h.join().expect("pregel shuffle worker panicked"));
            }
        });

        // ---- metrics & termination ------------------------------------------
        metrics.supersteps += 1;
        metrics.total_messages += messages_this_step;
        metrics.total_dropped += dropped_this_step;
        metrics.total_compute_calls += active_this_step as u64;
        if config.track_supersteps {
            metrics.per_superstep.push(SuperstepMetrics {
                superstep,
                active_vertices: active_this_step,
                messages_sent: messages_this_step,
                messages_dropped: dropped_this_step,
                elapsed: step_start.elapsed(),
            });
        }

        if program.should_terminate(&aggregate, superstep) {
            metrics.converged = true;
            break;
        }
        if messages_this_step == 0 && all_halted {
            metrics.converged = true;
            break;
        }
        prev_aggregate = aggregate;
        superstep += 1;
    }

    metrics.elapsed = job_start.elapsed();
    metrics
}

/// Convenience wrapper: partitions `pairs` over `config.workers` workers, runs
/// the program, and returns both the final vertex set and the metrics.
pub fn run_from_pairs<P: VertexProgram>(
    program: &P,
    config: &PregelConfig,
    pairs: impl IntoIterator<Item = (P::Id, P::Value)>,
) -> (VertexSet<P::Id, P::Value>, Metrics) {
    let mut set = VertexSet::from_pairs(config.workers, pairs);
    let metrics = run(program, config, &mut set);
    (set, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::{BoolOr, NoAggregate, SumU64};

    /// Each vertex starts with a number and floods the maximum over a ring;
    /// classic Pregel smoke test exercising reactivation and halting.
    struct MaxFlood {
        ring: usize,
    }

    #[derive(Debug, Clone)]
    struct MaxState {
        value: u64,
        next: u64,
    }

    impl VertexProgram for MaxFlood {
        type Id = u64;
        type Value = MaxState;
        type Message = u64;
        type Aggregate = NoAggregate;

        fn compute(
            &self,
            ctx: &mut Context<'_, Self>,
            _id: u64,
            value: &mut MaxState,
            messages: Vec<u64>,
        ) {
            let before = value.value;
            for m in messages {
                value.value = value.value.max(m);
            }
            if ctx.superstep() == 0 || value.value > before {
                ctx.send_message(value.next, value.value);
            }
            ctx.vote_to_halt();
        }
    }

    #[test]
    fn max_flood_on_ring_converges() {
        let n = 64u64;
        let program = MaxFlood { ring: n as usize };
        let config = PregelConfig::with_workers(4);
        let pairs = (0..n).map(|i| (i, MaxState { value: i * 7 % 97, next: (i + 1) % n }));
        let (set, metrics) = run_from_pairs(&program, &config, pairs);
        let expected = (0..n).map(|i| i * 7 % 97).max().unwrap();
        for (_, v) in set.iter() {
            assert_eq!(v.value, expected);
        }
        assert!(metrics.converged);
        assert!(metrics.supersteps >= program.ring, "needs at least n supersteps on a ring");
        assert!(metrics.total_messages > 0);
        assert_eq!(metrics.total_dropped, 0);
        assert_eq!(metrics.per_superstep.len(), metrics.supersteps);
    }

    /// Counts vertices via the aggregator and terminates via should_terminate.
    struct CountAndStop;

    impl VertexProgram for CountAndStop {
        type Id = u64;
        type Value = ();
        type Message = ();
        type Aggregate = SumU64;

        fn compute(&self, ctx: &mut Context<'_, Self>, _id: u64, _v: &mut (), _m: Vec<()>) {
            ctx.aggregate(SumU64(1));
            // Never vote to halt: termination must come from should_terminate.
        }

        fn should_terminate(&self, agg: &SumU64, _superstep: usize) -> bool {
            agg.0 > 0
        }
    }

    #[test]
    fn aggregator_and_forced_termination() {
        let config = PregelConfig::with_workers(3);
        let (_, metrics) = run_from_pairs(&CountAndStop, &config, (0..10).map(|i| (i, ())));
        assert!(metrics.converged);
        assert_eq!(metrics.supersteps, 1);
        assert_eq!(metrics.total_compute_calls, 10);
    }

    /// Sums incoming messages with a combiner; each of 100 vertices sends 1 to
    /// vertex 0 in superstep 0, and vertex 0 should observe a total of 100
    /// regardless of how many physical messages were merged.
    struct SumToRoot;

    impl VertexProgram for SumToRoot {
        type Id = u64;
        type Value = u64;
        type Message = u64;
        type Aggregate = NoAggregate;
        const USE_COMBINER: bool = true;

        fn compute(&self, ctx: &mut Context<'_, Self>, _id: u64, value: &mut u64, msgs: Vec<u64>) {
            if ctx.superstep() == 0 {
                ctx.send_message(0, 1);
            } else {
                *value += msgs.into_iter().sum::<u64>();
            }
            ctx.vote_to_halt();
        }

        fn combine(&self, acc: &mut u64, incoming: u64) {
            *acc += incoming;
        }
    }

    #[test]
    fn combiner_merges_messages() {
        let config = PregelConfig::with_workers(4);
        let (set, metrics) = run_from_pairs(&SumToRoot, &config, (0..100).map(|i| (i, 0u64)));
        assert_eq!(*set.get(&0).unwrap(), 100);
        // 100 logical messages were sent even though the combiner merged them.
        assert_eq!(metrics.total_messages, 100);
        assert!(metrics.converged);
    }

    /// Messages to unknown vertices are dropped and counted, not fatal.
    struct SendToNowhere;
    impl VertexProgram for SendToNowhere {
        type Id = u64;
        type Value = ();
        type Message = ();
        type Aggregate = BoolOr;
        fn compute(&self, ctx: &mut Context<'_, Self>, _id: u64, _v: &mut (), _m: Vec<()>) {
            if ctx.superstep() == 0 {
                ctx.send_message(9999, ());
            }
            ctx.vote_to_halt();
        }
    }

    #[test]
    fn messages_to_missing_vertices_are_dropped() {
        let config = PregelConfig::with_workers(2);
        let (_, metrics) = run_from_pairs(&SendToNowhere, &config, (0..5).map(|i| (i, ())));
        assert_eq!(metrics.total_dropped, 5);
        assert!(metrics.converged);
    }

    /// A program that never halts hits the superstep cap and reports
    /// non-convergence instead of looping forever.
    struct NeverHalts;
    impl VertexProgram for NeverHalts {
        type Id = u64;
        type Value = ();
        type Message = ();
        type Aggregate = NoAggregate;
        fn compute(&self, _ctx: &mut Context<'_, Self>, _id: u64, _v: &mut (), _m: Vec<()>) {}
    }

    #[test]
    fn superstep_cap_stops_runaway_jobs() {
        let config = PregelConfig::with_workers(2).max_supersteps(5);
        let (_, metrics) = run_from_pairs(&NeverHalts, &config, (0..3).map(|i| (i, ())));
        assert!(!metrics.converged);
        assert_eq!(metrics.supersteps, 5);
    }

    #[test]
    fn empty_vertex_set_converges_immediately() {
        let config = PregelConfig::with_workers(2);
        let (set, metrics) =
            run_from_pairs(&NeverHalts, &config, std::iter::empty::<(u64, ())>());
        assert!(set.is_empty());
        assert!(metrics.converged);
        assert_eq!(metrics.supersteps, 1);
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn mismatched_worker_count_panics() {
        let mut set: VertexSet<u64, ()> = VertexSet::from_pairs(3, (0..3).map(|i| (i, ())));
        let config = PregelConfig::with_workers(2);
        let _ = run(&NeverHalts, &config, &mut set);
    }
}
