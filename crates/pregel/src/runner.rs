//! The superstep execution engine with a sort-based, buffer-reusing message
//! plane.
//!
//! [`run`] drives a [`VertexProgram`] over a [`VertexSet`] until no vertex is
//! active and no message is in flight (or the program's
//! [`should_terminate`](VertexProgram::should_terminate) fires), collecting
//! [`Metrics`] along the way. Each superstep has two parallel phases:
//!
//! 1. **compute** — every worker **merge-joins** the sorted runs of its
//!    inbound buffer against its partition's sorted ID column (one contiguous
//!    `&mut [Message]` slice per receiving vertex — delivery allocates
//!    nothing and probes no hash table; a galloping cursor walks both sorted
//!    sequences once), then sweeps the partition's halted **bitset** for
//!    active vertices that received no messages, skipping 64 halted vertices
//!    per word compare. Outgoing messages are appended to one flat
//!    buffer per destination worker; before the hand-off each buffer is
//!    **sorted by destination vertex on the sender side** (a stable LSD radix
//!    sort over the packed IDs — see [`crate::radix`] — so the sort work is
//!    spread over all compute threads) and, when the program enables a
//!    combiner, adjacent duplicates are **combined on the sender side**,
//!    shrinking shuffle volume exactly like Pregel's sender-side combining
//!    does over the network.
//! 2. **shuffle** — each worker takes the pre-sorted buffers addressed to it
//!    and k-way-merges them (linear, ties broken by source worker — fully
//!    deterministic) into parallel `ids`/`messages` arrays for next
//!    superstep's run-walk delivery, applying the combiner across senders
//!    during the merge.
//!
//! All buffers — per-destination outboxes, the sorted `ids`/`messages` arrays
//! and the combine scratch — live in per-worker `WorkerPlane`s reused
//! across supersteps, so a steady-state superstep performs no per-vertex or
//! per-superstep container allocation. This replaces the earlier hash-map
//! grouping (one heap `Vec` per receiving vertex per superstep), which
//! dominated the shuffle cost, and the earlier hash-partitioned vertex store
//! (one hash probe per delivered run, a bucket-array walk per straggler
//! scan); see the `message_plane` and `vertex_store` benchmarks for the
//! before/after comparisons.
//!
//! Both phases are dispatched onto the persistent worker pool of an
//! [`ExecCtx`] — either the one carried by
//! [`PregelConfig::exec`](crate::config::PregelConfig::exec) (shared across a
//! whole workflow, with the planes parked in the context between jobs) or a
//! private single-job context; no per-superstep thread scope is created
//! anywhere. See the `engine` module docs and the `worker_pool` benchmark for
//! the scoped-spawn comparison.
//!
//! # Out-of-core execution
//!
//! When the [`ExecCtx`] carries a [`SpillPolicy`](crate::SpillPolicy) byte
//! cap and the program opts in via [`VertexProgram::spill_codecs`], both
//! sides of the message plane become spillable (see [`crate::spill`]):
//! outbox fragments that outgrow a per-worker budget are presorted and
//! written out as sorted **run files**, which the shuffle phase k-way-merges
//! with the in-RAM remainders (same key order, same source-index tie-breaks
//! — spilled delivery is byte-identical to resident delivery), and a vertex
//! store whose resident footprint exceeds the cap at job start is **sealed**
//! into on-disk extents that the compute phase faults back one window at a
//! time, in two ascending sweeps that reproduce the resident visit order
//! exactly.
//!
//! This mirrors the bulk-synchronous structure of Pregel+ with the network
//! replaced by in-memory buffer handoff.

use crate::aggregate::Aggregate;
use crate::config::PregelConfig;
use crate::engine::{EngineError, ExecCtx};
use crate::kernels;
use crate::metrics::{Metrics, SuperstepMetrics};
use crate::spill::{
    merge_run_sources, write_run, DiskRun, MergeSource, PartSeal, RunReader, SpillCodecs, SpillDir,
    SpillError,
};
use crate::vertex::{Context, VertexKey, VertexProgram};
use crate::vertex_set::{set_bit, RunColumns, VertexSet};
use std::sync::Arc;
use std::time::Instant;

/// One `(destination vertex, message)` buffer per destination worker.
type OutboxColumn<P> = Vec<Vec<(<P as VertexProgram>::Id, <P as VertexProgram>::Message)>>;

/// Reusable per-worker message-plane buffers. Allocated once, reused across
/// supersteps, and parked in the [`ExecCtx`] scratch cache between jobs so
/// consecutive jobs with the same id/message types also reuse them.
struct WorkerPlane<I, M> {
    /// Sorted vertex IDs of the inbound messages, parallel to `in_msgs`.
    in_ids: Vec<I>,
    /// Inbound messages; `in_msgs[i]` is addressed to `in_ids[i]`, and the
    /// messages of one vertex form a contiguous run.
    in_msgs: Vec<M>,
    /// Scratch buffer shared by the radix presort (ping-pong plane) and
    /// sender-side combining; both leave it empty, capacity kept.
    scratch: Vec<(I, M)>,
    /// One outbound buffer per destination worker.
    outbox: Vec<Vec<(I, M)>>,
}

impl<I, M> WorkerPlane<I, M> {
    fn new(workers: usize) -> WorkerPlane<I, M> {
        WorkerPlane {
            in_ids: Vec::new(),
            in_msgs: Vec::new(),
            scratch: Vec::new(),
            outbox: (0..workers).map(|_| Vec::new()).collect(),
        }
    }

    /// Empties every buffer (keeping capacity) so the plane can be parked in
    /// the scratch cache without holding user data.
    fn clear(&mut self) {
        self.in_ids.clear();
        self.in_msgs.clear();
        self.scratch.clear();
        for buf in &mut self.outbox {
            buf.clear();
        }
    }
}

/// Takes the parked planes for `(I, M)` out of the context, or builds fresh
/// ones when none fit the current worker count.
fn planes_from_ctx<I: VertexKey, M: Send + 'static>(
    ctx: &ExecCtx,
    workers: usize,
) -> Vec<WorkerPlane<I, M>> {
    if let Some(mut planes) = ctx.take_scratch::<Vec<WorkerPlane<I, M>>>() {
        if planes.len() == workers && planes.iter().all(|p| p.outbox.len() == workers) {
            for plane in &mut planes {
                plane.clear();
            }
            return planes;
        }
    }
    (0..workers).map(|_| WorkerPlane::new(workers)).collect()
}

/// Per-worker counters produced by one compute phase.
struct ComputeCounts<A> {
    local_aggregate: A,
    messages_sent: u64,
    messages_dropped: u64,
    active: usize,
    all_halted: bool,
    /// Spill bytes written by this worker (outbox runs + extent writebacks).
    spilled_bytes: u64,
    /// Spill bytes read back by this worker (extent fault-ins, compaction).
    spill_read_bytes: u64,
    /// Spill artefacts written by this worker (run files + extent images).
    spilled_runs: u64,
}

/// One destination's view of one source worker during a spilled shuffle:
/// that source's sorted on-disk runs (in spill order) plus its sorted in-RAM
/// outbox remainder.
type SpillShuffleSources<P> = Vec<(
    Vec<DiskRun>,
    Vec<(<P as VertexProgram>::Id, <P as VertexProgram>::Message)>,
)>;

/// Per-worker outbox spill state, armed only while a
/// [`SpillPolicy`](crate::SpillPolicy) byte cap is active and the program
/// opted in via [`VertexProgram::spill_codecs`].
///
/// [`maybe_spill`](OutboxSpill::maybe_spill) is consulted after every
/// `compute` invocation with the worker's running message count; the
/// under-budget path is a subtraction and a compare. When the estimated RAM
/// held by the outbox fragments crosses `budget`, every non-empty
/// per-destination buffer is presorted (and pre-folded when the program
/// combines — relying on the combiner associativity the resident plane
/// already assumes for its sender-side fold + merge fold), written out as
/// one sorted run file, and cleared. The shuffle phase later k-way-merges
/// each destination's runs (in spill order) ahead of the RAM remainder, so
/// the merged inbound stream is identical to the resident path's.
struct OutboxSpill<P: VertexProgram> {
    dir: Arc<SpillDir>,
    codecs: SpillCodecs<P>,
    /// RAM bytes of buffered outbox records this worker may hold.
    budget: usize,
    worker: usize,
    /// Run files written this superstep, per destination worker.
    runs: Vec<Vec<DiskRun>>,
    /// Messages already spilled this superstep (excluded from the estimate).
    spilled_messages: u64,
    /// Run-file name sequence, unique per worker within the job.
    seq: u64,
    spilled_bytes: u64,
    spilled_runs: u64,
}

impl<P: VertexProgram> OutboxSpill<P> {
    fn new(
        dir: Arc<SpillDir>,
        codecs: SpillCodecs<P>,
        budget: usize,
        worker: usize,
        workers: usize,
    ) -> OutboxSpill<P> {
        OutboxSpill {
            dir,
            codecs,
            budget,
            worker,
            runs: (0..workers).map(|_| Vec::new()).collect(),
            spilled_messages: 0,
            seq: 0,
            spilled_bytes: 0,
            spilled_runs: 0,
        }
    }

    /// Resets the per-superstep RAM estimate (the runner's message counter
    /// restarts at zero each superstep).
    fn begin_superstep(&mut self) {
        self.spilled_messages = 0;
    }

    /// Spills every non-empty outbox buffer once the RAM estimate crosses
    /// the budget; O(1) while under it.
    fn maybe_spill(
        &mut self,
        messages_sent: u64,
        program: &P,
        outbox: &mut [Vec<(P::Id, P::Message)>],
        scratch: &mut Vec<(P::Id, P::Message)>,
    ) -> Result<(), SpillError> {
        let buffered = messages_sent.saturating_sub(self.spilled_messages) as usize;
        if buffered * std::mem::size_of::<(P::Id, P::Message)>() <= self.budget {
            return Ok(());
        }
        for (dst, buf) in outbox.iter_mut().enumerate() {
            if buf.is_empty() {
                continue;
            }
            // Stable presort so the run file is in key order; duplicates are
            // folded now — per-run prefix folds continued by the merge sink
            // equal the resident path's single sender-side fold.
            crate::radix::sort_pairs(buf, scratch);
            if P::USE_COMBINER {
                combine_buf(program, buf, scratch);
            }
            let name = format!("w{}-d{dst}-s{}.run", self.worker, self.seq);
            self.seq += 1;
            let run = write_run(&self.dir, &name, buf, &self.codecs.id, &self.codecs.message)?;
            self.spilled_bytes += run.bytes;
            self.spilled_runs += 1;
            if let Some(slot) = self.runs.get_mut(dst) {
                slot.push(run);
            }
            buf.clear();
        }
        self.spilled_messages = messages_sent;
        Ok(())
    }

    /// Drains this superstep's run files, grouped by destination worker.
    fn take_runs(&mut self) -> Vec<Vec<DiskRun>> {
        let workers = self.runs.len();
        std::mem::replace(&mut self.runs, (0..workers).map(|_| Vec::new()).collect())
    }

    /// Drains the write counters: `(bytes written, runs written)`.
    fn take_counters(&mut self) -> (u64, u64) {
        let out = (self.spilled_bytes, self.spilled_runs);
        self.spilled_bytes = 0;
        self.spilled_runs = 0;
        out
    }
}

/// Per-worker compute-phase state shared by both delivery passes.
///
/// [`compute_slot`](WorkerEnv::compute_slot) is the single place where a
/// vertex's halt/stamp bookkeeping happens — the merge-join pass (vertices
/// with messages) and the bitset sweep (active vertices without) both call
/// it, so the two passes cannot drift apart.
struct WorkerEnv<'a, P: VertexProgram> {
    program: &'a P,
    superstep: usize,
    /// `superstep + 1` (stamp 0 = never computed); marks slots computed in
    /// this superstep so the bitset sweep skips them.
    stamp: u32,
    worker: usize,
    num_workers: usize,
    total_vertices: usize,
    prev_aggregate: &'a P::Aggregate,
    local_aggregate: P::Aggregate,
    messages_sent: u64,
    active: usize,
}

impl<P: VertexProgram> WorkerEnv<'_, P> {
    /// Runs `compute` for the vertex in `slot`: stamps the slot, builds the
    /// per-vertex context, invokes the program with the delivered slice, and
    /// writes the vertex's new halt bit back into the column.
    fn compute_slot(
        &mut self,
        cols: &mut RunColumns<'_, P::Id, P::Value>,
        slot: usize,
        id: P::Id,
        outbox: &mut [Vec<(P::Id, P::Message)>],
        messages: &mut [P::Message],
    ) {
        cols.stamps[slot] = self.stamp;
        let mut vctx: Context<'_, P> = Context {
            superstep: self.superstep,
            worker: self.worker,
            num_workers: self.num_workers,
            total_vertices: self.total_vertices,
            prev_aggregate: self.prev_aggregate,
            local_aggregate: &mut self.local_aggregate,
            outbox,
            messages_sent: &mut self.messages_sent,
            halt: false,
        };
        let value = cols.values[slot].as_mut().expect("live vertex slot");
        self.program.compute(&mut vctx, id, value, messages);
        set_bit(cols.halted, slot, vctx.halt);
        self.active += 1;
    }
}

/// The two delivery passes shared by the resident and sealed compute paths:
/// the merge-join over the sorted inbound runs (pass 1) and the halted-bitset
/// sweep (pass 2), plus the post-`compute` outbox spill check.
///
/// The struct borrows the plane's buffers as disjoint fields so `compute_slot`
/// (which needs the outbox and a message slice) and `maybe_spill` (which needs
/// the outbox and the scratch) can be called without re-borrowing the whole
/// plane. `next_msg` is a monotone read cursor into the inbound arrays: the
/// sealed path delivers extent window by extent window without ever rescanning
/// the message stream.
struct Delivery<'a, P: VertexProgram> {
    in_ids: &'a [P::Id],
    in_msgs: &'a mut [P::Message],
    outbox: &'a mut Vec<Vec<(P::Id, P::Message)>>,
    scratch: &'a mut Vec<(P::Id, P::Message)>,
    ospill: &'a mut Option<OutboxSpill<P>>,
    next_msg: usize,
    dropped: u64,
}

impl<P: VertexProgram> Delivery<'_, P> {
    /// The next undelivered inbound vertex ID, if any.
    fn peek(&self) -> Option<P::Id> {
        self.in_ids.get(self.next_msg).copied()
    }

    /// Counts inbound messages addressed below `first` as dropped (sealed
    /// delivery: extent key ranges ascend, so IDs in the gap before an extent
    /// belong to no vertex of this partition).
    fn drop_below(&mut self, first: &P::Id) {
        while self.in_ids.get(self.next_msg).is_some_and(|id| id < first) {
            self.next_msg += 1;
            self.dropped += 1;
        }
    }

    /// Counts every remaining inbound message as dropped (sealed delivery:
    /// IDs beyond the last extent belong to no vertex of this partition).
    fn drop_remaining(&mut self) {
        self.dropped += (self.in_ids.len() - self.next_msg) as u64;
        self.next_msg = self.in_ids.len();
    }

    /// Outbox spill check after one `compute` invocation.
    fn check_spill(&mut self, env: &WorkerEnv<'_, P>) -> Result<(), SpillError> {
        if let Some(os) = self.ospill.as_mut() {
            os.maybe_spill(env.messages_sent, env.program, self.outbox, self.scratch)?;
        }
        Ok(())
    }

    /// Pass 1: merge-joins the sorted inbound runs from the read cursor up to
    /// `last` (inclusive; `None` = everything) against the sorted ID column.
    /// Both sequences ascend, so one monotone galloping cursor visits each
    /// side at most once — no hash probe per run, one contiguous slice per
    /// vertex, nothing allocated; packed columns decode each frame at most
    /// once per pass.
    fn deliver(
        &mut self,
        env: &mut WorkerEnv<'_, P>,
        cols: &mut RunColumns<'_, P::Id, P::Value>,
        last: Option<P::Id>,
    ) -> Result<(), SpillError> {
        // Copy the shared column reference out of `cols` so the decoding
        // cursor's borrow is independent of the `&mut cols` that
        // `compute_slot` takes.
        let ids = cols.ids;
        let mut cur = ids.cursor();
        let slots = ids.len();
        let mut cursor = 0usize;
        let n_in = self.in_ids.len();
        while self.next_msg < n_in {
            let id = self.in_ids[self.next_msg];
            if last.is_some_and(|l| id > l) {
                break;
            }
            let i = self.next_msg;
            let mut j = i + 1;
            while j < n_in && self.in_ids[j] == id {
                j += 1;
            }
            self.next_msg = j;
            cursor = cur.lower_bound_from(cursor, &id);
            if cursor < slots && cur.get(cursor) == id {
                env.compute_slot(cols, cursor, id, self.outbox, &mut self.in_msgs[i..j]);
                self.check_spill(env)?;
            } else {
                // Addressed to a vertex this worker does not host.
                self.dropped += (j - i) as u64;
            }
        }
        Ok(())
    }

    /// Pass 2: active vertices that received nothing — a vectorized scan for
    /// halted words with a zero bit (64+ halted vertices skipped per compare),
    /// with the stamp column filtering out slots already computed in pass 1.
    /// `compute_slot` only ever touches the current word's bits, so the
    /// forward scan never misses a regained zero.
    fn sweep(
        &mut self,
        env: &mut WorkerEnv<'_, P>,
        cols: &mut RunColumns<'_, P::Id, P::Value>,
    ) -> Result<(), SpillError> {
        let ids = cols.ids;
        let mut cur = ids.cursor();
        let slots = ids.len();
        let mut wi = 0usize;
        while let Some(w) = kernels::next_word_with_zero(cols.halted, wi) {
            let base = w << 6;
            let mut cand = !cols.halted[w];
            if slots - base < 64 {
                cand &= (1u64 << (slots - base)) - 1;
            }
            while cand != 0 {
                let slot = base + cand.trailing_zeros() as usize;
                cand &= cand - 1;
                if cols.stamps[slot] == env.stamp {
                    continue;
                }
                let id = cur.get(slot);
                env.compute_slot(cols, slot, id, self.outbox, &mut []);
                self.check_spill(env)?;
            }
            wi = w + 1;
        }
        Ok(())
    }
}

/// The sealed compute path: two ascending sweeps over the partition's on-disk
/// extents. Pass 1 faults in only extents with inbound messages in their key
/// range, runs the ordinary merge-join over each loaded window, and writes it
/// back; pass 2 faults in only extents with unhalted slots for the straggler
/// sweep. Because both the extent directory and the message stream ascend,
/// the vertex visit order — and therefore the outbox emission order — is
/// identical to the resident path's single pass 1 + pass 2 over the whole
/// column. Returns partition quiescence.
fn compute_sealed<P: VertexProgram>(
    env: &mut WorkerEnv<'_, P>,
    del: &mut Delivery<'_, P>,
    seal: &mut PartSeal<P::Id, P::Value>,
) -> Result<bool, SpillError> {
    for e in 0..seal.extents.len() {
        let (first, last) = match seal.extents.get(e) {
            Some(m) => (m.first, m.last),
            None => break,
        };
        del.drop_below(&first);
        match del.peek() {
            None => break,
            Some(id) if id > last => continue,
            _ => {}
        }
        seal.load_extent(e)?;
        {
            let mut cols = seal.window_columns();
            del.deliver(env, &mut cols, Some(last))?;
        }
        seal.store_extent(e)?;
    }
    del.drop_remaining();
    // Straggler sweep: extents touched by pass 1 wrote their halt bits back,
    // so the directory's halted counts are current, and the stamp column
    // filters out slots pass 1 already computed this superstep.
    for e in 0..seal.extents.len() {
        let quiescent = seal
            .extents
            .get(e)
            .is_none_or(|m| m.halted == m.slots as u64);
        if quiescent {
            continue;
        }
        seal.load_extent(e)?;
        {
            let mut cols = seal.window_columns();
            del.sweep(env, &mut cols)?;
        }
        seal.store_extent(e)?;
    }
    seal.maybe_compact()?;
    Ok(seal.total_halted() == seal.total_slots() as u64)
}

/// Runs `program` over `vertices` until convergence and returns the metrics.
///
/// Executes on the persistent worker pool of
/// [`config.exec`](crate::config::PregelConfig::exec) when one is set (the
/// common case inside a workflow — all jobs share one pool and reuse its
/// shuffle planes), or on a private single-job pool otherwise.
///
/// The vertex set keeps the final vertex values; a typical operation runs a
/// job and then inspects or [`convert`](VertexSet::convert)s the set.
///
/// # Panics
///
/// Panics if `config.workers` differs from the partitioning of `vertices`
/// (construct the set with the same worker count), or if the superstep cap is
/// exceeded with `debug_assertions` enabled.
pub fn run<P: VertexProgram>(
    program: &P,
    config: &PregelConfig,
    vertices: &mut VertexSet<P::Id, P::Value>,
) -> Metrics {
    match config.exec.as_ref() {
        Some(ctx) => run_on(ctx, program, config, vertices),
        None => run_on(&ExecCtx::new(config.workers), program, config, vertices),
    }
}

/// Like [`run`], but on an explicit execution context (ignoring
/// `config.exec`). `ctx`, `config` and `vertices` must agree on the worker
/// count.
pub fn run_on<P: VertexProgram>(
    ctx: &ExecCtx,
    program: &P,
    config: &PregelConfig,
    vertices: &mut VertexSet<P::Id, P::Value>,
) -> Metrics {
    assert_eq!(
        config.workers,
        vertices.workers(),
        "PregelConfig.workers ({}) must match VertexSet partitioning ({})",
        config.workers,
        vertices.workers()
    );
    ctx.assert_matches(vertices.workers(), "VertexSet partitioning");
    let workers = vertices.workers();
    let total_vertices = vertices.len();
    let job_start = Instant::now();

    vertices.activate_all();
    // Fault-injection probe (testing hook): grabbed once per job so the
    // superstep loop pays one Option check per worker when no plan is armed.
    let faults = ctx.faults();
    // Job-control handle, likewise grabbed once: the superstep loop pays one
    // Option check per boundary when no control plane is installed.
    let control = ctx.control();
    let mut planes: Vec<WorkerPlane<P::Id, P::Message>> = planes_from_ctx(ctx, workers);
    let mut prev_aggregate = P::Aggregate::identity();
    let mut metrics = Metrics {
        converged: false,
        ..Metrics::default()
    };
    let mut superstep = 0usize;

    // ---- out-of-core arming (job start) -------------------------------------
    // A spill cap engages only for programs that opted in via
    // `VertexProgram::spill_codecs`. Outbox spilling is always armed under a
    // cap; the vertex store is additionally sealed to on-disk extents when its
    // resident footprint already exceeds the cap. Everything spilled lives in
    // one job-scoped temp directory whose `Drop` (and the per-file `Drop`s of
    // runs and seals) removes it — a cancellation unwind through `run_on`
    // cleans up exactly like normal completion does.
    let spill_cfg: Option<(u64, SpillCodecs<P>)> =
        match (ctx.spill().and_then(|p| p.cap()), P::spill_codecs()) {
            (Some(cap), Some(codecs)) => Some((cap, codecs)),
            _ => None,
        };
    let mut seals: Vec<Option<PartSeal<P::Id, P::Value>>> = (0..workers).map(|_| None).collect();
    let mut ospills: Vec<Option<OutboxSpill<P>>> = (0..workers).map(|_| None).collect();
    if let Some((cap, codecs)) = &spill_cfg {
        let dir = SpillDir::create("job")
            .unwrap_or_else(|e| std::panic::panic_any(EngineError::Spill(e)));
        // Each worker may buffer a quarter of its even share of the cap in
        // outbox records before writing a run.
        let budget = ((*cap as usize) / (4 * workers)).max(1);
        for (w, slot) in ospills.iter_mut().enumerate() {
            *slot = Some(OutboxSpill::new(
                Arc::clone(&dir),
                *codecs,
                budget,
                w,
                workers,
            ));
        }
        if vertices.resident_bytes() as u64 > *cap {
            let (id_codec, value_codec) = (codecs.id, codecs.value);
            let inputs: Vec<_> = vertices.parts.iter_mut().enumerate().collect();
            let sealed = ctx.pool().run_per_worker(inputs, |_w, (i, part)| {
                part.seal_to(&dir, i, id_codec, value_codec)
            });
            for (slot, seal) in seals.iter_mut().zip(sealed) {
                let mut seal =
                    seal.unwrap_or_else(|e| std::panic::panic_any(EngineError::Spill(e)));
                // The initial seal happens outside any superstep: its I/O
                // lands in the job totals only.
                let (written, read, images) = seal.take_counters();
                metrics.spilled_bytes += written;
                metrics.spill_read_bytes += read;
                metrics.spilled_runs += images;
                *slot = Some(seal);
            }
        }
    }

    loop {
        if superstep >= config.max_supersteps {
            metrics.converged = false;
            break;
        }
        let step_start = Instant::now();
        let busy_before = ctx.pool().busy_nanos();

        // ---- compute phase (dispatched onto the persistent pool) ------------
        let counts: Vec<ComputeCounts<P::Aggregate>> = {
            let prev_agg = &prev_aggregate;
            let worker_inputs: Vec<_> = vertices
                .parts
                .iter_mut()
                .zip(planes.iter_mut())
                .zip(seals.iter_mut())
                .zip(ospills.iter_mut())
                .collect();
            let results: Vec<Result<ComputeCounts<P::Aggregate>, SpillError>> = ctx
                .pool()
                .run_per_worker(worker_inputs, |w, (((part, plane), seal), ospill)| {
                    if let Some(f) = &faults {
                        f.probe_superstep(superstep, w);
                    }
                    if let Some(os) = ospill.as_mut() {
                        os.begin_superstep();
                    }
                    let mut env: WorkerEnv<'_, P> = WorkerEnv {
                        program,
                        superstep,
                        // Stamp 0 = never computed, hence the +1 (a u32
                        // column; activate_all re-zeroes it per job, so
                        // wrap-around would need 2^32 supersteps in one job).
                        stamp: (superstep + 1) as u32,
                        worker: w,
                        num_workers: workers,
                        total_vertices,
                        prev_aggregate: prev_agg,
                        local_aggregate: P::Aggregate::identity(),
                        messages_sent: 0,
                        active: 0,
                    };
                    let mut del: Delivery<'_, P> = Delivery {
                        in_ids: &plane.in_ids,
                        in_msgs: &mut plane.in_msgs,
                        outbox: &mut plane.outbox,
                        scratch: &mut plane.scratch,
                        ospill: &mut *ospill,
                        next_msg: 0,
                        dropped: 0,
                    };
                    let all_halted = match seal.as_mut() {
                        None => {
                            // Resident path: both passes over the in-RAM
                            // columns, then a masked popcount over the halted
                            // words (bits beyond the slot count stay zero)
                            // decides quiescence.
                            let mut cols = part.run_columns();
                            del.deliver(&mut env, &mut cols, None)?;
                            del.sweep(&mut env, &mut cols)?;
                            kernels::popcount(cols.halted) as usize == cols.ids.len()
                        }
                        Some(seal) => compute_sealed(&mut env, &mut del, seal)?,
                    };
                    let messages_dropped = del.dropped;

                    // Presort every destination buffer (spreading the
                    // shuffle's sort work over the compute threads)
                    // and fold duplicates if the program combines. The
                    // radix scratch is the plane's combine scratch: both
                    // uses leave it empty, and the plane is parked in the
                    // ExecCtx between jobs, so steady-state sorting
                    // allocates nothing.
                    for buf in plane.outbox.iter_mut() {
                        crate::radix::sort_pairs(buf, &mut plane.scratch);
                    }
                    if P::USE_COMBINER {
                        combine_outbox(program, plane);
                    }
                    let (mut spilled_bytes, mut spill_read_bytes, mut spilled_runs) =
                        (0u64, 0u64, 0u64);
                    if let Some(os) = ospill.as_mut() {
                        let (written, files) = os.take_counters();
                        spilled_bytes += written;
                        spilled_runs += files;
                    }
                    if let Some(seal) = seal.as_mut() {
                        let (written, read, images) = seal.take_counters();
                        spilled_bytes += written;
                        spill_read_bytes += read;
                        spilled_runs += images;
                    }
                    Ok(ComputeCounts::<P::Aggregate> {
                        local_aggregate: env.local_aggregate,
                        messages_sent: env.messages_sent,
                        messages_dropped,
                        active: env.active,
                        all_halted,
                        spilled_bytes,
                        spill_read_bytes,
                        spilled_runs,
                    })
                });
            results
                .into_iter()
                .collect::<Result<Vec<_>, SpillError>>()
                .unwrap_or_else(|e| std::panic::panic_any(EngineError::Spill(e)))
        };
        let compute_elapsed = step_start.elapsed();

        // ---- aggregate & bookkeeping ---------------------------------------
        let mut aggregate = P::Aggregate::identity();
        let mut messages_this_step = 0u64;
        let mut dropped_this_step = 0u64;
        let mut active_this_step = 0usize;
        let mut all_halted = true;
        let mut spilled_bytes_step = 0u64;
        let mut spill_read_step = 0u64;
        let mut spilled_runs_step = 0u64;
        for c in &counts {
            aggregate.combine(&c.local_aggregate);
            messages_this_step += c.messages_sent;
            dropped_this_step += c.messages_dropped;
            active_this_step += c.active;
            all_halted &= c.all_halted;
            spilled_bytes_step += c.spilled_bytes;
            spill_read_step += c.spill_read_bytes;
            spilled_runs_step += c.spilled_runs;
        }
        let frontier_density = if total_vertices == 0 {
            0.0
        } else {
            active_this_step as f64 / total_vertices as f64
        };
        // Sealed partitions keep only their extent windows and directory in
        // RAM; that residue is what the memory budget must see.
        let store_resident_bytes = (vertices.resident_bytes()
            + seals
                .iter()
                .flatten()
                .map(PartSeal::resident_bytes)
                .sum::<usize>()) as u64;
        let (id_packed, id_plain) = vertices.id_column_bytes();
        let id_column_compression = if id_plain == 0 {
            1.0
        } else {
            id_packed as f64 / id_plain as f64
        };
        // Running mean: superstep 0 is always dense (activate_all wakes every
        // vertex), so the peak carries no information — the mean is what
        // separates sparse-frontier jobs from dense ones.
        metrics.avg_frontier_density +=
            (frontier_density - metrics.avg_frontier_density) / (metrics.supersteps + 1) as f64;
        metrics.peak_store_resident_bytes =
            metrics.peak_store_resident_bytes.max(store_resident_bytes);

        // ---- cooperative control poll (superstep boundary) ------------------
        // The store is barrier-consistent here and `store_resident_bytes` is
        // fresh, so this is where the memory budget is checked. A `Stall`
        // fault (testing hook) sleeps first, making deadline trips
        // deterministic without real wall-clock races.
        if let Some(f) = &faults {
            if let Some(millis) = f.probe_stall(superstep) {
                std::thread::sleep(std::time::Duration::from_millis(millis));
            }
        }
        let cancellation_checks = match &control {
            Some(control) => {
                if let Some(reason) = control.poll(store_resident_bytes) {
                    // Raised on the coordinator thread, between phases: the
                    // pool never sees this panic and stays reusable. The
                    // caller (try_run_on or the pipeline's catch_unwind)
                    // downcasts the payload back into the typed error.
                    std::panic::panic_any(EngineError::Cancelled { reason, superstep });
                }
                1u64
            }
            None => 0,
        };
        metrics.total_cancellation_checks += cancellation_checks;

        // ---- shuffle phase (dispatched onto the persistent pool) ------------
        let shuffle_start = Instant::now();
        // Runs spilled during this superstep's compute, per (source, dest).
        let step_runs: Vec<Vec<Vec<DiskRun>>> = ospills
            .iter_mut()
            .map(|o| o.as_mut().map(OutboxSpill::take_runs).unwrap_or_default())
            .collect();
        let spill_shuffle = step_runs
            .iter()
            .any(|per| per.iter().any(|r| !r.is_empty()));
        let mut spill_read_shuffle = 0u64;
        if spill_shuffle {
            // Spilled shuffle: each destination merges, per source worker,
            // that source's disk runs (in spill order) followed by its RAM
            // remainder. `merge_run_sources` breaks key ties by ascending
            // source index, and a source's runs partition its emission
            // sequence in time order, so the merged inbound stream is
            // byte-identical to the resident k-way merge below.
            let codecs = match &spill_cfg {
                Some((_, codecs)) => *codecs,
                None => unreachable!("spilled runs exist only when spilling is armed"),
            };
            let mut per_dst: Vec<SpillShuffleSources<P>> =
                (0..workers).map(|_| Vec::with_capacity(workers)).collect();
            for (mut runs_by_dst, plane) in step_runs.into_iter().zip(planes.iter_mut()) {
                runs_by_dst.resize_with(workers, Vec::new);
                for (dst, runs) in runs_by_dst.into_iter().enumerate() {
                    per_dst[dst].push((runs, std::mem::take(&mut plane.outbox[dst])));
                }
            }
            let shuffle_inputs: Vec<_> = planes.iter_mut().zip(per_dst).collect();
            let merged: Vec<Result<u64, SpillError>> =
                ctx.pool()
                    .run_per_worker(shuffle_inputs, |_w, (plane, srcs)| {
                        plane.in_ids.clear();
                        plane.in_msgs.clear();
                        let mut sources: Vec<MergeSource<P::Id, P::Message>> = Vec::new();
                        // Keeps the consumed run files alive (and on disk) until
                        // the merge finishes; dropping them afterwards deletes
                        // the files.
                        let mut consumed: Vec<DiskRun> = Vec::new();
                        for (runs, ram) in srcs {
                            for run in runs {
                                sources.push(MergeSource::Disk(RunReader::open(
                                    run.path(),
                                    codecs.id,
                                    codecs.message,
                                )?));
                                consumed.push(run);
                            }
                            sources.push(MergeSource::Ram(ram.into_iter()));
                        }
                        let (in_ids, in_msgs) = (&mut plane.in_ids, &mut plane.in_msgs);
                        merge_run_sources(sources, |id, msg| {
                            if P::USE_COMBINER {
                                if let Some(last) = in_ids.last() {
                                    if *last == id {
                                        let acc = in_msgs.last_mut().expect("parallel arrays");
                                        program.combine(acc, msg);
                                        return;
                                    }
                                }
                            }
                            in_ids.push(id);
                            in_msgs.push(msg);
                        })
                    });
            for r in merged {
                spill_read_shuffle +=
                    r.unwrap_or_else(|e| std::panic::panic_any(EngineError::Spill(e)));
            }
            // The spilled path consumed the RAM remainders instead of
            // borrowing them, so the (src, dst) buffer capacity is rebuilt
            // next superstep — an accepted cost of spilling supersteps.
        } else {
            // Resident shuffle. Transpose outbox buffer ownership: worker
            // `src` hands its buffer for destination `dst` to `dst`'s shuffle
            // job. Only `Vec` headers move; the allocations travel to the
            // shuffle and come back afterwards so their capacity is reused
            // next superstep.
            let mut columns: Vec<OutboxColumn<P>> =
                (0..workers).map(|_| Vec::with_capacity(workers)).collect();
            for plane in planes.iter_mut() {
                for (dst, buf) in plane.outbox.iter_mut().enumerate() {
                    columns[dst].push(std::mem::take(buf));
                }
            }
            let shuffle_inputs: Vec<_> = planes.iter_mut().zip(columns).collect();
            let returned: Vec<OutboxColumn<P>> =
                ctx.pool()
                    .run_per_worker(shuffle_inputs, |_w, (plane, mut bufs)| {
                        // K-way merge of the pre-sorted source buffers into
                        // the parallel id/message arrays (ties prefer the
                        // lower source worker, so the merged order is a pure
                        // function of the deterministic per-sender buffers).
                        plane.in_ids.clear();
                        plane.in_msgs.clear();
                        let total: usize = bufs.iter().map(|b| b.len()).sum();
                        plane.in_ids.reserve(total);
                        plane.in_msgs.reserve(total);
                        let (in_ids, in_msgs) = (&mut plane.in_ids, &mut plane.in_msgs);
                        crate::kmerge::merge_sorted_buffers(&mut bufs, |id, msg| {
                            if P::USE_COMBINER {
                                if let Some(last) = in_ids.last() {
                                    if *last == id {
                                        let acc = in_msgs.last_mut().expect("parallel arrays");
                                        program.combine(acc, msg);
                                        return;
                                    }
                                }
                            }
                            in_ids.push(id);
                            in_msgs.push(msg);
                        });
                        bufs
                    });
            // Give every (src, dst) buffer back to its owning worker.
            for (dst, bufs) in returned.into_iter().enumerate() {
                for (src, buf) in bufs.into_iter().enumerate() {
                    planes[src].outbox[dst] = buf;
                }
            }
        }
        spill_read_step += spill_read_shuffle;
        let shuffle_elapsed = shuffle_start.elapsed();

        // ---- metrics & termination ------------------------------------------
        metrics.supersteps += 1;
        metrics.total_messages += messages_this_step;
        metrics.total_dropped += dropped_this_step;
        metrics.total_compute_calls += active_this_step as u64;
        metrics.spilled_bytes += spilled_bytes_step;
        metrics.spill_read_bytes += spill_read_step;
        metrics.spilled_runs += spilled_runs_step;
        if config.track_supersteps {
            let busy = ctx.pool().busy_nanos().saturating_sub(busy_before);
            let phase_wall = compute_elapsed + shuffle_elapsed;
            let capacity = phase_wall.as_nanos() as u64 * workers as u64;
            metrics.per_superstep.push(SuperstepMetrics {
                superstep,
                active_vertices: active_this_step,
                messages_sent: messages_this_step,
                messages_dropped: dropped_this_step,
                elapsed: step_start.elapsed(),
                compute_elapsed,
                shuffle_elapsed,
                pool_utilization: if capacity == 0 {
                    0.0
                } else {
                    (busy as f64 / capacity as f64).min(1.0)
                },
                frontier_density,
                store_resident_bytes,
                id_column_compression,
                cancellation_checks,
                spilled_bytes: spilled_bytes_step,
                spill_read_bytes: spill_read_step,
                spilled_runs: spilled_runs_step,
            });
        }

        if program.should_terminate(&aggregate, superstep) {
            metrics.converged = true;
            break;
        }
        if messages_this_step == 0 && all_halted {
            metrics.converged = true;
            break;
        }
        prev_aggregate = aggregate;
        superstep += 1;
    }

    // ---- out-of-core teardown (normal completion) ---------------------------
    // Unseal every sealed partition back into its resident columns; the run
    // directory (and anything left in it) is removed when the last `Arc`
    // drops. A cancellation unwind skips this block — the seals' and runs'
    // `Drop` impls delete their files instead, and the mid-job vertex set is
    // discarded like any cancelled job's.
    if seals.iter().any(Option::is_some) {
        let inputs: Vec<_> = vertices.parts.iter_mut().zip(seals.iter_mut()).collect();
        let unsealed: Vec<Result<(u64, u64, u64), SpillError>> =
            ctx.pool()
                .run_per_worker(inputs, |_w, (part, seal)| match seal.as_mut() {
                    Some(seal) => {
                        part.unseal_from(seal)?;
                        Ok(seal.take_counters())
                    }
                    None => Ok((0, 0, 0)),
                });
        for r in unsealed {
            let (written, read, images) =
                r.unwrap_or_else(|e| std::panic::panic_any(EngineError::Spill(e)));
            metrics.spilled_bytes += written;
            metrics.spill_read_bytes += read;
            metrics.spilled_runs += images;
        }
        seals.clear();
    }

    // Park the (cleared) planes in the context so the next job with the same
    // id/message types starts with warm buffers.
    for plane in &mut planes {
        plane.clear();
    }
    ctx.store_scratch(planes);

    metrics.elapsed = job_start.elapsed();
    metrics
}

/// Sender-side combining: folds adjacent messages for the same vertex in the
/// (already sorted) destination buffers, so that at most one message per
/// (sender worker, receiving vertex) crosses the shuffle.
fn combine_outbox<P: VertexProgram>(program: &P, plane: &mut WorkerPlane<P::Id, P::Message>) {
    for buf in plane.outbox.iter_mut() {
        combine_buf(program, buf, &mut plane.scratch);
    }
}

/// Folds adjacent same-destination messages in one sorted buffer (the unit of
/// work [`combine_outbox`] applies per destination and the outbox spill
/// applies to each buffer before writing it out as a run).
fn combine_buf<P: VertexProgram>(
    program: &P,
    buf: &mut Vec<(P::Id, P::Message)>,
    scratch: &mut Vec<(P::Id, P::Message)>,
) {
    if buf.len() < 2 {
        return;
    }
    scratch.clear();
    for (id, msg) in buf.drain(..) {
        match scratch.last_mut() {
            Some(last) if last.0 == id => program.combine(&mut last.1, msg),
            _ => scratch.push((id, msg)),
        }
    }
    std::mem::swap(buf, scratch);
}

/// Like [`run_on`], but catches a cooperative job-control trip and returns it
/// as a typed [`EngineError`] instead of unwinding.
///
/// On `Err(EngineError::Cancelled { .. })` the pool is clean and immediately
/// reusable: the trip is raised on the coordinator thread at a superstep
/// boundary, never inside a pool worker. The vertex set is left in its
/// mid-job (barrier-consistent) state and should normally be discarded. The
/// same applies to `Err(EngineError::Spill(..))` — spill I/O failures from
/// the workers are collected at the phase barrier and re-raised on the
/// coordinator, and every temporary spill file is removed by the unwind. Any
/// other panic — a program bug, an injected worker fault — is re-raised
/// unchanged.
pub fn try_run_on<P: VertexProgram>(
    ctx: &ExecCtx,
    program: &P,
    config: &PregelConfig,
    vertices: &mut VertexSet<P::Id, P::Value>,
) -> Result<Metrics, EngineError> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_on(ctx, program, config, vertices)
    })) {
        Ok(metrics) => Ok(metrics),
        Err(payload) => match payload.downcast::<EngineError>() {
            Ok(err) => Err(*err),
            Err(payload) => std::panic::resume_unwind(payload),
        },
    }
}

/// Convenience wrapper: partitions `pairs` over `config.workers` workers, runs
/// the program, and returns both the final vertex set and the metrics.
pub fn run_from_pairs<P: VertexProgram>(
    program: &P,
    config: &PregelConfig,
    pairs: impl IntoIterator<Item = (P::Id, P::Value)>,
) -> (VertexSet<P::Id, P::Value>, Metrics) {
    let mut set = VertexSet::from_pairs(config.workers, pairs);
    let metrics = run(program, config, &mut set);
    (set, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::{BoolOr, NoAggregate, SumU64};
    use proptest::prelude::*;

    /// Each vertex starts with a number and floods the maximum over a ring;
    /// classic Pregel smoke test exercising reactivation and halting.
    struct MaxFlood {
        ring: usize,
    }

    #[derive(Debug, Clone)]
    struct MaxState {
        value: u64,
        next: u64,
    }

    impl VertexProgram for MaxFlood {
        type Id = u64;
        type Value = MaxState;
        type Message = u64;
        type Aggregate = NoAggregate;

        fn compute(
            &self,
            ctx: &mut Context<'_, Self>,
            _id: u64,
            value: &mut MaxState,
            messages: &mut [u64],
        ) {
            let before = value.value;
            for m in messages.iter() {
                value.value = value.value.max(*m);
            }
            if ctx.superstep() == 0 || value.value > before {
                ctx.send_message(value.next, value.value);
            }
            ctx.vote_to_halt();
        }
    }

    #[test]
    fn max_flood_on_ring_converges() {
        let n = 64u64;
        let program = MaxFlood { ring: n as usize };
        let config = PregelConfig::with_workers(4);
        let pairs = (0..n).map(|i| {
            (
                i,
                MaxState {
                    value: i * 7 % 97,
                    next: (i + 1) % n,
                },
            )
        });
        let (set, metrics) = run_from_pairs(&program, &config, pairs);
        let expected = (0..n).map(|i| i * 7 % 97).max().unwrap();
        for (_, v) in set.iter() {
            assert_eq!(v.value, expected);
        }
        assert!(metrics.converged);
        assert!(
            metrics.supersteps >= program.ring,
            "needs at least n supersteps on a ring"
        );
        assert!(metrics.total_messages > 0);
        assert_eq!(metrics.total_dropped, 0);
        assert_eq!(metrics.per_superstep.len(), metrics.supersteps);
    }

    /// Counts vertices via the aggregator and terminates via should_terminate.
    struct CountAndStop;

    impl VertexProgram for CountAndStop {
        type Id = u64;
        type Value = ();
        type Message = ();
        type Aggregate = SumU64;

        fn compute(&self, ctx: &mut Context<'_, Self>, _id: u64, _v: &mut (), _m: &mut [()]) {
            ctx.aggregate(SumU64(1));
            // Never vote to halt: termination must come from should_terminate.
        }

        fn should_terminate(&self, agg: &SumU64, _superstep: usize) -> bool {
            agg.0 > 0
        }
    }

    #[test]
    fn aggregator_and_forced_termination() {
        let config = PregelConfig::with_workers(3);
        let (_, metrics) = run_from_pairs(&CountAndStop, &config, (0..10).map(|i| (i, ())));
        assert!(metrics.converged);
        assert_eq!(metrics.supersteps, 1);
        assert_eq!(metrics.total_compute_calls, 10);
    }

    /// Sums incoming messages with a combiner; each of 100 vertices sends 1 to
    /// vertex 0 in superstep 0, and vertex 0 should observe a total of 100
    /// regardless of how many physical messages were merged.
    struct SumToRoot;

    impl VertexProgram for SumToRoot {
        type Id = u64;
        type Value = u64;
        type Message = u64;
        type Aggregate = NoAggregate;
        const USE_COMBINER: bool = true;

        fn compute(
            &self,
            ctx: &mut Context<'_, Self>,
            _id: u64,
            value: &mut u64,
            msgs: &mut [u64],
        ) {
            if ctx.superstep() == 0 {
                ctx.send_message(0, 1);
            } else {
                *value += msgs.iter().sum::<u64>();
            }
            ctx.vote_to_halt();
        }

        fn combine(&self, acc: &mut u64, incoming: u64) {
            *acc += incoming;
        }
    }

    #[test]
    fn combiner_merges_messages() {
        let config = PregelConfig::with_workers(4);
        let (set, metrics) = run_from_pairs(&SumToRoot, &config, (0..100).map(|i| (i, 0u64)));
        assert_eq!(*set.get(&0).unwrap(), 100);
        // 100 logical messages were sent even though the combiner merged them.
        assert_eq!(metrics.total_messages, 100);
        assert!(metrics.converged);
    }

    #[test]
    fn combiner_delivers_exactly_one_message_per_vertex() {
        /// Asserts that sender-side + shuffle combining leave exactly one
        /// physical message for the receiving vertex.
        struct CountSlice;
        impl VertexProgram for CountSlice {
            type Id = u64;
            type Value = u64;
            type Message = u64;
            type Aggregate = NoAggregate;
            const USE_COMBINER: bool = true;
            fn compute(
                &self,
                ctx: &mut Context<'_, Self>,
                _id: u64,
                value: &mut u64,
                msgs: &mut [u64],
            ) {
                if ctx.superstep() == 0 {
                    ctx.send_message(3, 5);
                } else if !msgs.is_empty() {
                    assert_eq!(msgs.len(), 1, "combiner must merge to a single message");
                    *value = msgs[0];
                }
                ctx.vote_to_halt();
            }
            fn combine(&self, acc: &mut u64, incoming: u64) {
                *acc += incoming;
            }
        }
        let config = PregelConfig::with_workers(2);
        let (set, _) = run_from_pairs(&CountSlice, &config, (0..40).map(|i| (i, 0u64)));
        assert_eq!(*set.get(&3).unwrap(), 40 * 5);
    }

    /// Messages to unknown vertices are dropped and counted, not fatal.
    struct SendToNowhere;
    impl VertexProgram for SendToNowhere {
        type Id = u64;
        type Value = ();
        type Message = ();
        type Aggregate = BoolOr;
        fn compute(&self, ctx: &mut Context<'_, Self>, _id: u64, _v: &mut (), _m: &mut [()]) {
            if ctx.superstep() == 0 {
                ctx.send_message(9999, ());
            }
            ctx.vote_to_halt();
        }
    }

    #[test]
    fn messages_to_missing_vertices_are_dropped() {
        let config = PregelConfig::with_workers(2);
        let (_, metrics) = run_from_pairs(&SendToNowhere, &config, (0..5).map(|i| (i, ())));
        assert_eq!(metrics.total_dropped, 5);
        assert!(metrics.converged);
    }

    /// A program that never halts hits the superstep cap and reports
    /// non-convergence instead of looping forever.
    struct NeverHalts;
    impl VertexProgram for NeverHalts {
        type Id = u64;
        type Value = ();
        type Message = ();
        type Aggregate = NoAggregate;
        fn compute(&self, _ctx: &mut Context<'_, Self>, _id: u64, _v: &mut (), _m: &mut [()]) {}
    }

    #[test]
    fn superstep_cap_stops_runaway_jobs() {
        let config = PregelConfig::with_workers(2).max_supersteps(5);
        let (_, metrics) = run_from_pairs(&NeverHalts, &config, (0..3).map(|i| (i, ())));
        assert!(!metrics.converged);
        assert_eq!(metrics.supersteps, 5);
    }

    /// A sparse-frontier program: everything halts at superstep 0 except one
    /// token walking a short chain, so the mean frontier density must land
    /// far below the dense superstep 0's 1.0.
    struct SparseWalk {
        steps: u64,
    }
    impl VertexProgram for SparseWalk {
        type Id = u64;
        type Value = u64;
        type Message = u64;
        type Aggregate = NoAggregate;
        fn compute(&self, ctx: &mut Context<'_, Self>, id: u64, value: &mut u64, msgs: &mut [u64]) {
            if ctx.superstep() == 0 {
                if id == 0 {
                    ctx.send_message(1, 1);
                }
            } else if let Some(&hop) = msgs.first() {
                *value = hop;
                if hop < self.steps {
                    ctx.send_message(id + 1, hop + 1);
                }
            }
            ctx.vote_to_halt();
        }
    }

    #[test]
    fn frontier_density_reflects_sparse_frontiers() {
        let config = PregelConfig::with_workers(2);
        let (_, metrics) = run_from_pairs(
            &SparseWalk { steps: 10 },
            &config,
            (0..1000).map(|i| (i, 0u64)),
        );
        assert!(metrics.converged);
        // Superstep 0 computes all 1000 vertices, every later superstep
        // computes exactly one: the mean must sit near 1000/n_steps ÷ 1000,
        // well below a dense job's 1.0.
        assert!(
            metrics.avg_frontier_density < 0.2,
            "sparse walk reported density {}",
            metrics.avg_frontier_density
        );
        assert!(metrics.avg_frontier_density > 0.0);
        assert!(metrics.peak_store_resident_bytes > 0);
        // A dense program over the same set reports a dense mean.
        let (_, dense) = run_from_pairs(
            &NeverHalts,
            &config.clone().max_supersteps(3),
            (0..10).map(|i| (i, ())),
        );
        assert!(dense.avg_frontier_density > 0.99);
    }

    #[test]
    fn empty_vertex_set_converges_immediately() {
        let config = PregelConfig::with_workers(2);
        let (set, metrics) = run_from_pairs(&NeverHalts, &config, std::iter::empty::<(u64, ())>());
        assert!(set.is_empty());
        assert!(metrics.converged);
        assert_eq!(metrics.supersteps, 1);
    }

    #[test]
    fn control_polls_are_counted_per_superstep_boundary() {
        let ctx = ExecCtx::new(2);
        let control = crate::control::JobControl::new();
        ctx.set_control(control.clone());
        let config = PregelConfig::with_workers(2)
            .max_supersteps(4)
            .track_supersteps(true);
        let mut set: VertexSet<u64, ()> = VertexSet::from_pairs(2, (0..6).map(|i| (i, ())));
        let metrics = run_on(&ctx, &NeverHalts, &config, &mut set);
        ctx.clear_control();
        assert_eq!(metrics.supersteps, 4);
        assert_eq!(metrics.total_cancellation_checks, 4);
        assert!(metrics
            .per_superstep
            .iter()
            .all(|s| s.cancellation_checks == 1));
        assert_eq!(control.checks(), 4);
        // Without a control handle the counters stay zero.
        let mut set: VertexSet<u64, ()> = VertexSet::from_pairs(2, (0..6).map(|i| (i, ())));
        let metrics = run_on(&ctx, &NeverHalts, &config, &mut set);
        assert_eq!(metrics.total_cancellation_checks, 0);
        assert!(metrics
            .per_superstep
            .iter()
            .all(|s| s.cancellation_checks == 0));
    }

    #[test]
    fn requested_cancel_mid_job_is_typed_and_leaves_the_pool_reusable() {
        use crate::control::{CancelReason, JobControl};
        let ctx = ExecCtx::new(2);
        let control = JobControl::new();
        ctx.set_control(control.clone());

        // Cancel strictly *inside* the job, deterministically: a watcher
        // thread waits until the boundary poll of superstep 2 has run (the
        // third check), then cancels, so the trip surfaces at the superstep 3
        // boundary — no wall-clock coupling. (Plain `thread::spawn` is fine
        // here: this is a test, not a steady-state parallel path.)
        let watcher = {
            let control = control.clone();
            std::thread::spawn(move || {
                while control.checks() < 3 {
                    std::thread::yield_now();
                }
                control.cancel();
            })
        };
        let config = PregelConfig::with_workers(2).max_supersteps(1000);
        let mut set: VertexSet<u64, ()> = VertexSet::from_pairs(2, (0..8).map(|i| (i, ())));
        let err = try_run_on(&ctx, &NeverHalts, &config, &mut set).unwrap_err();
        watcher.join().expect("watcher thread");
        ctx.clear_control();
        match err {
            EngineError::Cancelled { reason, superstep } => {
                assert_eq!(reason, CancelReason::Requested);
                // The cancel lands strictly after the third poll, so the trip
                // can only surface at a later boundary — mid-job, never at
                // job start.
                assert!(superstep >= 3, "tripped too early, at {superstep}");
            }
            other => panic!("expected a cancellation, got {other:?}"),
        }
        assert!(err.to_string().contains("cancelled"));

        // The pool is immediately reusable and deterministic.
        let (set, metrics) = run_from_pairs(
            &SumToRoot,
            &PregelConfig::with_workers(2),
            (0..100).map(|i| (i, 0u64)),
        );
        assert_eq!(*set.get(&0).unwrap(), 100);
        assert!(metrics.converged);
    }

    #[test]
    fn memory_budget_trip_fires_at_the_first_boundary_over_the_cap() {
        use crate::control::{CancelReason, JobControl};
        let ctx = ExecCtx::new(2);
        // 1 byte: any non-empty store exceeds it at the first boundary.
        ctx.set_control(JobControl::new().with_memory_budget(1));
        let config = PregelConfig::with_workers(2).max_supersteps(10);
        let mut set: VertexSet<u64, ()> = VertexSet::from_pairs(2, (0..8).map(|i| (i, ())));
        let err = try_run_on(&ctx, &NeverHalts, &config, &mut set).unwrap_err();
        ctx.clear_control();
        assert_eq!(
            err,
            EngineError::Cancelled {
                reason: CancelReason::MemoryBudget,
                superstep: 0,
            }
        );
    }

    #[test]
    fn stall_fault_makes_deadline_trips_deterministic() {
        use crate::control::{CancelReason, JobControl};
        use crate::fault::{Fault, FaultPlan};
        use std::time::Duration;
        let ctx = ExecCtx::new(2);
        // The stall dwarfs the deadline while the deadline dwarfs a real
        // superstep on 8 trivial vertices: boundary 0 polls well inside the
        // 150ms budget, then the injected 600ms stall guarantees boundary 1
        // polls past it — the trip lands at superstep 1 with no wall-clock
        // race in either direction.
        let armed = ctx.inject_faults(FaultPlan::single(Fault::Stall {
            superstep: 1,
            millis: 600,
        }));
        ctx.set_control(JobControl::new().with_deadline_in(Duration::from_millis(150)));
        let config = PregelConfig::with_workers(2).max_supersteps(10);
        let mut set: VertexSet<u64, ()> = VertexSet::from_pairs(2, (0..8).map(|i| (i, ())));
        let err = try_run_on(&ctx, &NeverHalts, &config, &mut set).unwrap_err();
        ctx.clear_control();
        ctx.clear_faults();
        assert!(armed.all_fired(), "the stall must fire");
        assert_eq!(
            err,
            EngineError::Cancelled {
                reason: CancelReason::Deadline,
                superstep: 1,
            }
        );
    }

    #[test]
    fn try_run_on_reraises_non_cancellation_panics() {
        use crate::fault::{Fault, FaultPlan};
        let ctx = ExecCtx::new(2);
        let armed = ctx.inject_faults(FaultPlan::single(Fault::Superstep {
            stage: usize::MAX, // matches NO_STAGE: no pipeline entered a stage
            superstep: 0,
            worker: 0,
        }));
        let config = PregelConfig::with_workers(2).max_supersteps(5);
        let mut set: VertexSet<u64, ()> = VertexSet::from_pairs(2, (0..4).map(|i| (i, ())));
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            try_run_on(&ctx, &NeverHalts, &config, &mut set)
        }));
        ctx.clear_faults();
        assert!(armed.all_fired());
        assert!(
            outcome.is_err(),
            "a worker fault is not a cancellation and must re-raise"
        );
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn mismatched_worker_count_panics() {
        let mut set: VertexSet<u64, ()> = VertexSet::from_pairs(3, (0..3).map(|i| (i, ())));
        let config = PregelConfig::with_workers(2);
        let _ = run(&NeverHalts, &config, &mut set);
    }

    // ---- out-of-core spilling ------------------------------------------------

    /// A bounded flood on a ring: each vertex seeds a distinct value that
    /// travels `hops` steps, every visited vertex folding the max. The final
    /// values differ per vertex (each sees only its predecessor window), so
    /// any delivery reordering or loss under spilling changes the answer.
    struct HopFlood {
        n: u64,
        hops: u64,
    }

    impl VertexProgram for HopFlood {
        type Id = u64;
        type Value = u64;
        type Message = (u64, u64);
        type Aggregate = NoAggregate;

        fn compute(
            &self,
            ctx: &mut Context<'_, Self>,
            id: u64,
            value: &mut u64,
            msgs: &mut [(u64, u64)],
        ) {
            if ctx.superstep() == 0 {
                ctx.send_message((id + 1) % self.n, (*value, self.hops - 1));
            }
            for &mut (v, ttl) in msgs {
                *value = (*value).max(v);
                if ttl > 0 {
                    ctx.send_message((id + 1) % self.n, (v, ttl - 1));
                }
            }
            ctx.vote_to_halt();
        }

        fn spill_codecs() -> Option<crate::spill::SpillCodecs<Self>> {
            Some(crate::spill::SpillCodecs::new())
        }
    }

    /// Like [`SumToRoot`] but opted into spilling: every message targets
    /// vertex 0, so spilled runs and the RAM remainder must fold together
    /// across sources through the combiner during the merge.
    struct SpillSum;

    impl VertexProgram for SpillSum {
        type Id = u64;
        type Value = u64;
        type Message = u64;
        type Aggregate = NoAggregate;
        const USE_COMBINER: bool = true;

        fn compute(
            &self,
            ctx: &mut Context<'_, Self>,
            _id: u64,
            value: &mut u64,
            msgs: &mut [u64],
        ) {
            if ctx.superstep() == 0 {
                ctx.send_message(0, 1);
            } else {
                *value += msgs.iter().sum::<u64>();
            }
            ctx.vote_to_halt();
        }

        fn combine(&self, acc: &mut u64, incoming: u64) {
            *acc += incoming;
        }

        fn spill_codecs() -> Option<crate::spill::SpillCodecs<Self>> {
            Some(crate::spill::SpillCodecs::new())
        }
    }

    /// Serializes the tests that scan the temp directory for the runner's
    /// job-scoped spill dirs, so one test's live dir never trips another's
    /// leak assertion.
    static SPILL_TMP_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    /// Counts this process's live runner spill directories.
    fn job_spill_dirs() -> usize {
        let prefix = format!("ppa-spill-{}-job-", std::process::id());
        std::fs::read_dir(std::env::temp_dir())
            .map(|rd| {
                rd.filter_map(|e| e.ok())
                    .filter(|e| e.file_name().to_string_lossy().starts_with(&prefix))
                    .count()
            })
            .unwrap_or(0)
    }

    fn hop_flood_snapshot(workers: usize, cap: Option<u64>) -> (Vec<(u64, u64)>, Metrics) {
        // Large enough that every partition spans several 1024-slot extents,
        // so sealing actually trades resident columns for faulted windows.
        let program = HopFlood { n: 20_000, hops: 3 };
        let ctx = ExecCtx::new(workers);
        if let Some(cap) = cap {
            ctx.set_spill(crate::spill::SpillPolicy::At(cap));
        }
        let config = PregelConfig::with_workers(workers);
        let mut set: VertexSet<u64, u64> = VertexSet::from_pairs(
            workers,
            (0u64..20_000).map(|i| (i, i.wrapping_mul(2654435761) % 997)),
        );
        let metrics = run_on(&ctx, &program, &config, &mut set);
        ctx.clear_spill();
        let mut pairs: Vec<(u64, u64)> = set.iter().map(|(id, v)| (id, *v)).collect();
        pairs.sort_unstable();
        (pairs, metrics)
    }

    #[test]
    fn spilled_execution_is_identical_across_caps_and_worker_counts() {
        let _guard = SPILL_TMP_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let (baseline, base_metrics) = hop_flood_snapshot(4, None);
        assert_eq!(base_metrics.spilled_bytes, 0);
        assert!(base_metrics.peak_store_resident_bytes > 2048);
        for workers in [1usize, 2, 4] {
            // A cap far above the store: armed but never exercised. A cap far
            // below: sealed store + spilled outbox runs.
            for cap in [1u64 << 24, 65536] {
                let (pairs, metrics) = hop_flood_snapshot(workers, Some(cap));
                assert_eq!(
                    pairs, baseline,
                    "workers={workers} cap={cap} diverged from the resident run"
                );
                assert_eq!(metrics.supersteps, base_metrics.supersteps);
                assert_eq!(metrics.total_messages, base_metrics.total_messages);
                if cap == 65536 {
                    assert!(metrics.spilled_bytes > 0, "small cap must spill");
                    assert!(metrics.spilled_runs > 0);
                    assert!(metrics.spill_read_bytes > 0);
                    // The sealed store keeps only its window + directory in
                    // RAM, so the observed peak must undercut the resident
                    // peak.
                    assert!(
                        metrics.peak_store_resident_bytes < base_metrics.peak_store_resident_bytes,
                        "sealing must shrink the resident peak"
                    );
                } else {
                    assert_eq!(metrics.spilled_bytes, 0, "huge cap must not spill");
                }
            }
        }
        assert_eq!(
            job_spill_dirs(),
            0,
            "completed jobs must leave no spill dirs"
        );
    }

    #[test]
    fn spilled_combiner_folds_across_runs_like_resident_delivery() {
        let _guard = SPILL_TMP_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let n = 2000u64;
        for cap in [None, Some(256u64)] {
            let ctx = ExecCtx::new(4);
            if let Some(cap) = cap {
                ctx.set_spill(crate::spill::SpillPolicy::At(cap));
            }
            let config = PregelConfig::with_workers(4);
            let mut set: VertexSet<u64, u64> = VertexSet::from_pairs(4, (0..n).map(|i| (i, 0u64)));
            let metrics = run_on(&ctx, &SpillSum, &config, &mut set);
            ctx.clear_spill();
            assert_eq!(*set.get(&0).unwrap(), n);
            assert!(metrics.converged);
            if cap.is_some() {
                assert!(metrics.spilled_runs > 0, "tiny cap must spill runs");
            }
        }
        assert_eq!(job_spill_dirs(), 0);
    }

    #[test]
    fn programs_without_codecs_ignore_the_spill_policy() {
        let ctx = ExecCtx::new(2);
        ctx.set_spill(crate::spill::SpillPolicy::At(1));
        let config = PregelConfig::with_workers(2).max_supersteps(3);
        let mut set: VertexSet<u64, ()> = VertexSet::from_pairs(2, (0..16).map(|i| (i, ())));
        let metrics = run_on(&ctx, &NeverHalts, &config, &mut set);
        ctx.clear_spill();
        assert_eq!(metrics.spilled_bytes, 0);
        assert_eq!(metrics.spilled_runs, 0);
    }

    #[test]
    fn cancellation_mid_spill_removes_all_temp_files() {
        use crate::control::{CancelReason, JobControl};
        let _guard = SPILL_TMP_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let ctx = ExecCtx::new(2);
        // A cap small enough to seal the store and spill runs, plus a memory
        // budget that trips at the first superstep boundary — the unwind runs
        // while spill files are live on disk.
        ctx.set_spill(crate::spill::SpillPolicy::At(2048));
        ctx.set_control(JobControl::new().with_memory_budget(1));
        let program = HopFlood { n: 512, hops: 6 };
        let config = PregelConfig::with_workers(2);
        let mut set: VertexSet<u64, u64> = VertexSet::from_pairs(2, (0..512).map(|i| (i, i % 97)));
        let err = try_run_on(&ctx, &program, &config, &mut set).unwrap_err();
        ctx.clear_control();
        ctx.clear_spill();
        assert_eq!(
            err,
            EngineError::Cancelled {
                reason: CancelReason::MemoryBudget,
                superstep: 0,
            }
        );
        assert_eq!(
            job_spill_dirs(),
            0,
            "a cancellation unwind must delete every spill dir and file"
        );
    }

    // ---- property tests: sorted slice delivery vs. hash-map grouping --------

    /// A scatter program driven by an explicit send plan: in superstep 0 every
    /// vertex sends its planned `(target, payload)` messages; in superstep 1
    /// every vertex folds what it received into its value.
    struct PlannedScatter {
        /// `plan[v]` lists the messages vertex `v` sends in superstep 0.
        plan: Vec<Vec<(u64, u64)>>,
        combine: bool,
    }

    impl VertexProgram for PlannedScatter {
        type Id = u64;
        type Value = u64;
        type Message = u64;
        type Aggregate = NoAggregate;
        // The combiner decision is made per-instance for the test; the engine
        // only checks the associated const, so model "combiner on" with a
        // second wrapper below.
        fn compute(&self, ctx: &mut Context<'_, Self>, id: u64, value: &mut u64, msgs: &mut [u64]) {
            assert!(!self.combine);
            scatter_step(&self.plan, ctx, id, value, msgs);
        }
    }

    /// Same program with `USE_COMBINER = true` (sum combiner).
    struct PlannedScatterCombined {
        plan: Vec<Vec<(u64, u64)>>,
    }

    impl VertexProgram for PlannedScatterCombined {
        type Id = u64;
        type Value = u64;
        type Message = u64;
        type Aggregate = NoAggregate;
        const USE_COMBINER: bool = true;
        fn compute(&self, ctx: &mut Context<'_, Self>, id: u64, value: &mut u64, msgs: &mut [u64]) {
            scatter_step(&self.plan, ctx, id, value, msgs);
        }
        fn combine(&self, acc: &mut u64, incoming: u64) {
            *acc += incoming;
        }
    }

    /// Hash-grouping oracle: the delivered sum per vertex is independent of
    /// how the shuffle groups messages. (FxHashMap like the engine's own
    /// partitions — no reason for the test oracle to pay SipHash.)
    fn oracle_sums(n: u64, plan: &[Vec<(u64, u64)>]) -> Vec<u64> {
        let mut sums = vec![0u64; n as usize];
        let mut grouped: crate::fxhash::FxHashMap<u64, Vec<u64>> =
            crate::fxhash::FxHashMap::default();
        for sends in plan {
            for &(target, payload) in sends {
                grouped.entry(target).or_default().push(payload);
            }
        }
        for (target, payloads) in grouped {
            if target < n {
                sums[target as usize] = payloads.into_iter().sum();
            }
        }
        sums
    }

    fn scatter_step(
        plan: &[Vec<(u64, u64)>],
        ctx: &mut Context<'_, impl VertexProgram<Id = u64, Value = u64, Message = u64>>,
        id: u64,
        value: &mut u64,
        msgs: &mut [u64],
    ) {
        if ctx.superstep() == 0 {
            for &(target, payload) in &plan[id as usize] {
                ctx.send_message(target, payload);
            }
        } else {
            *value += msgs.iter().sum::<u64>();
        }
        ctx.vote_to_halt();
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_sorted_delivery_matches_hash_grouping(
            n in 1u64..40,
            raw in proptest::collection::vec((0u64..40, 0u64..40, 1u64..100), 0..200),
            workers in 1usize..6,
        ) {
            let mut plan: Vec<Vec<(u64, u64)>> = vec![Vec::new(); n as usize];
            let mut dropped_expected = 0u64;
            for &(sender, target, payload) in &raw {
                let sender = sender % n;
                if target >= n {
                    dropped_expected += 1;
                }
                plan[sender as usize].push((target, payload));
            }
            let expected = oracle_sums(n, &plan);
            let config = PregelConfig::with_workers(workers);

            // Without a combiner.
            let program = PlannedScatter { plan: plan.clone(), combine: false };
            let (set, metrics) =
                run_from_pairs(&program, &config, (0..n).map(|i| (i, 0u64)));
            for (id, v) in set.iter() {
                prop_assert_eq!(*v, expected[id as usize]);
            }
            prop_assert_eq!(metrics.total_dropped, dropped_expected);
            prop_assert_eq!(metrics.total_messages, raw.len() as u64);

            // With a sum combiner: same delivered totals, same logical count.
            let program = PlannedScatterCombined { plan };
            let (set, metrics) =
                run_from_pairs(&program, &config, (0..n).map(|i| (i, 0u64)));
            for (id, v) in set.iter() {
                prop_assert_eq!(*v, expected[id as usize]);
            }
            prop_assert_eq!(metrics.total_messages, raw.len() as u64);
        }
    }

    // ---- property test: columnar engine vs. sequential BSP oracle -----------

    /// A program with data-dependent halting: every vertex folds its inbound
    /// sum, conditionally relays, and votes to halt only when its value is
    /// not divisible by 3 — so the final halt flags (not just the values)
    /// depend on the whole message history.
    struct HaltPattern {
        n: u64,
        rounds: usize,
    }

    impl HaltPattern {
        /// The shared per-vertex step, used by both the engine run and the
        /// sequential oracle: returns (messages to send, new halt flag).
        fn step(
            &self,
            superstep: usize,
            id: u64,
            value: &mut u64,
            inbound_sum: u64,
        ) -> (Vec<(u64, u64)>, bool) {
            *value = value.wrapping_add(inbound_sum);
            let mut sends = Vec::new();
            if superstep == 0 {
                for f in 0..id % 3 {
                    sends.push(((id * 7 + f * 13) % self.n, id + f));
                }
            } else if !(*value).is_multiple_of(5) {
                sends.push(((id + 1) % self.n, *value % 11));
            }
            (sends, !(*value).is_multiple_of(3))
        }
    }

    impl VertexProgram for HaltPattern {
        type Id = u64;
        type Value = u64;
        type Message = u64;
        type Aggregate = NoAggregate;

        fn compute(&self, ctx: &mut Context<'_, Self>, id: u64, value: &mut u64, msgs: &mut [u64]) {
            let (sends, halt) = self.step(ctx.superstep(), id, value, msgs.iter().sum());
            for (to, payload) in sends {
                ctx.send_message(to, payload);
            }
            if halt {
                ctx.vote_to_halt();
            }
        }

        fn should_terminate(&self, _agg: &NoAggregate, superstep: usize) -> bool {
            superstep + 1 >= self.rounds
        }
    }

    /// Sequential reference implementation of the BSP semantics over a plain
    /// hash map (the pre-columnar entry layout), mirroring the runner's
    /// activation, termination and halt rules step for step.
    fn oracle_run(program: &HaltPattern) -> (Vec<(u64, u64, bool)>, usize) {
        struct Entry {
            value: u64,
            halted: bool,
        }
        let mut state: crate::fxhash::FxHashMap<u64, Entry> = (0..program.n)
            .map(|i| {
                (
                    i,
                    Entry {
                        value: i,
                        halted: false,
                    },
                )
            })
            .collect();
        let mut inbox: crate::fxhash::FxHashMap<u64, u64> = crate::fxhash::FxHashMap::default();
        let mut supersteps = 0usize;
        let mut superstep = 0usize;
        loop {
            let mut outbox: crate::fxhash::FxHashMap<u64, u64> =
                crate::fxhash::FxHashMap::default();
            let mut messages = 0u64;
            let mut all_halted = true;
            for id in 0..program.n {
                let entry = state.get_mut(&id).expect("exists");
                let inbound = inbox.remove(&id);
                if entry.halted && inbound.is_none() {
                    continue;
                }
                let (sends, halt) =
                    program.step(superstep, id, &mut entry.value, inbound.unwrap_or(0));
                for (to, payload) in sends {
                    if to < program.n {
                        *outbox.entry(to).or_insert(0) += payload;
                    }
                    messages += 1;
                }
                entry.halted = halt;
            }
            for entry in state.values() {
                all_halted &= entry.halted;
            }
            supersteps += 1;
            if program.should_terminate(&NoAggregate, superstep) {
                break;
            }
            if messages == 0 && all_halted {
                break;
            }
            inbox = outbox;
            superstep += 1;
        }
        let mut out: Vec<(u64, u64, bool)> = state
            .into_iter()
            .map(|(id, e)| (id, e.value, e.halted))
            .collect();
        out.sort_unstable();
        (out, supersteps)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_values_and_halt_flags_match_sequential_oracle(
            n in 1u64..120,
            rounds in 1usize..12,
            workers in 1usize..6,
        ) {
            let program = HaltPattern { n, rounds };
            let (expected, oracle_steps) = oracle_run(&program);
            let config = PregelConfig::with_workers(workers);
            let (set, metrics) = run_from_pairs(&program, &config, (0..n).map(|i| (i, i)));
            prop_assert_eq!(metrics.supersteps, oracle_steps);
            for (id, value, halted) in expected {
                prop_assert_eq!(set.get(&id), Some(&value), "value of {}", id);
                prop_assert_eq!(set.halted_of(&id), Some(halted), "halt flag of {}", id);
            }
        }
    }
}
