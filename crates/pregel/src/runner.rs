//! The superstep execution engine with a sort-based, buffer-reusing message
//! plane.
//!
//! [`run`] drives a [`VertexProgram`] over a [`VertexSet`] until no vertex is
//! active and no message is in flight (or the program's
//! [`should_terminate`](VertexProgram::should_terminate) fires), collecting
//! [`Metrics`] along the way. Each superstep has two parallel phases:
//!
//! 1. **compute** — every worker **merge-joins** the sorted runs of its
//!    inbound buffer against its partition's sorted ID column (one contiguous
//!    `&mut [Message]` slice per receiving vertex — delivery allocates
//!    nothing and probes no hash table; a galloping cursor walks both sorted
//!    sequences once), then sweeps the partition's halted **bitset** for
//!    active vertices that received no messages, skipping 64 halted vertices
//!    per word compare. Outgoing messages are appended to one flat
//!    buffer per destination worker; before the hand-off each buffer is
//!    **sorted by destination vertex on the sender side** (a stable LSD radix
//!    sort over the packed IDs — see [`crate::radix`] — so the sort work is
//!    spread over all compute threads) and, when the program enables a
//!    combiner, adjacent duplicates are **combined on the sender side**,
//!    shrinking shuffle volume exactly like Pregel's sender-side combining
//!    does over the network.
//! 2. **shuffle** — each worker takes the pre-sorted buffers addressed to it
//!    and k-way-merges them (linear, ties broken by source worker — fully
//!    deterministic) into parallel `ids`/`messages` arrays for next
//!    superstep's run-walk delivery, applying the combiner across senders
//!    during the merge.
//!
//! All buffers — per-destination outboxes, the sorted `ids`/`messages` arrays
//! and the combine scratch — live in per-worker `WorkerPlane`s reused
//! across supersteps, so a steady-state superstep performs no per-vertex or
//! per-superstep container allocation. This replaces the earlier hash-map
//! grouping (one heap `Vec` per receiving vertex per superstep), which
//! dominated the shuffle cost, and the earlier hash-partitioned vertex store
//! (one hash probe per delivered run, a bucket-array walk per straggler
//! scan); see the `message_plane` and `vertex_store` benchmarks for the
//! before/after comparisons.
//!
//! Both phases are dispatched onto the persistent worker pool of an
//! [`ExecCtx`] — either the one carried by
//! [`PregelConfig::exec`](crate::config::PregelConfig::exec) (shared across a
//! whole workflow, with the planes parked in the context between jobs) or a
//! private single-job context; no per-superstep thread scope is created
//! anywhere. See the `engine` module docs and the `worker_pool` benchmark for
//! the scoped-spawn comparison.
//!
//! This mirrors the bulk-synchronous structure of Pregel+ with the network
//! replaced by in-memory buffer handoff.

use crate::aggregate::Aggregate;
use crate::config::PregelConfig;
use crate::engine::{EngineError, ExecCtx};
use crate::kernels;
use crate::metrics::{Metrics, SuperstepMetrics};
use crate::vertex::{Context, VertexKey, VertexProgram};
use crate::vertex_set::{set_bit, RunColumns, VertexSet};
use std::time::Instant;

/// One `(destination vertex, message)` buffer per destination worker.
type OutboxColumn<P> = Vec<Vec<(<P as VertexProgram>::Id, <P as VertexProgram>::Message)>>;

/// Reusable per-worker message-plane buffers. Allocated once, reused across
/// supersteps, and parked in the [`ExecCtx`] scratch cache between jobs so
/// consecutive jobs with the same id/message types also reuse them.
struct WorkerPlane<I, M> {
    /// Sorted vertex IDs of the inbound messages, parallel to `in_msgs`.
    in_ids: Vec<I>,
    /// Inbound messages; `in_msgs[i]` is addressed to `in_ids[i]`, and the
    /// messages of one vertex form a contiguous run.
    in_msgs: Vec<M>,
    /// Scratch buffer shared by the radix presort (ping-pong plane) and
    /// sender-side combining; both leave it empty, capacity kept.
    scratch: Vec<(I, M)>,
    /// One outbound buffer per destination worker.
    outbox: Vec<Vec<(I, M)>>,
}

impl<I, M> WorkerPlane<I, M> {
    fn new(workers: usize) -> WorkerPlane<I, M> {
        WorkerPlane {
            in_ids: Vec::new(),
            in_msgs: Vec::new(),
            scratch: Vec::new(),
            outbox: (0..workers).map(|_| Vec::new()).collect(),
        }
    }

    /// Empties every buffer (keeping capacity) so the plane can be parked in
    /// the scratch cache without holding user data.
    fn clear(&mut self) {
        self.in_ids.clear();
        self.in_msgs.clear();
        self.scratch.clear();
        for buf in &mut self.outbox {
            buf.clear();
        }
    }
}

/// Takes the parked planes for `(I, M)` out of the context, or builds fresh
/// ones when none fit the current worker count.
fn planes_from_ctx<I: VertexKey, M: Send + 'static>(
    ctx: &ExecCtx,
    workers: usize,
) -> Vec<WorkerPlane<I, M>> {
    if let Some(mut planes) = ctx.take_scratch::<Vec<WorkerPlane<I, M>>>() {
        if planes.len() == workers && planes.iter().all(|p| p.outbox.len() == workers) {
            for plane in &mut planes {
                plane.clear();
            }
            return planes;
        }
    }
    (0..workers).map(|_| WorkerPlane::new(workers)).collect()
}

/// Per-worker counters produced by one compute phase.
struct ComputeCounts<A> {
    local_aggregate: A,
    messages_sent: u64,
    messages_dropped: u64,
    active: usize,
    all_halted: bool,
}

/// Per-worker compute-phase state shared by both delivery passes.
///
/// [`compute_slot`](WorkerEnv::compute_slot) is the single place where a
/// vertex's halt/stamp bookkeeping happens — the merge-join pass (vertices
/// with messages) and the bitset sweep (active vertices without) both call
/// it, so the two passes cannot drift apart.
struct WorkerEnv<'a, P: VertexProgram> {
    program: &'a P,
    superstep: usize,
    /// `superstep + 1` (stamp 0 = never computed); marks slots computed in
    /// this superstep so the bitset sweep skips them.
    stamp: u32,
    worker: usize,
    num_workers: usize,
    total_vertices: usize,
    prev_aggregate: &'a P::Aggregate,
    local_aggregate: P::Aggregate,
    messages_sent: u64,
    active: usize,
}

impl<P: VertexProgram> WorkerEnv<'_, P> {
    /// Runs `compute` for the vertex in `slot`: stamps the slot, builds the
    /// per-vertex context, invokes the program with the delivered slice, and
    /// writes the vertex's new halt bit back into the column.
    fn compute_slot(
        &mut self,
        cols: &mut RunColumns<'_, P::Id, P::Value>,
        slot: usize,
        id: P::Id,
        outbox: &mut [Vec<(P::Id, P::Message)>],
        messages: &mut [P::Message],
    ) {
        cols.stamps[slot] = self.stamp;
        let mut vctx: Context<'_, P> = Context {
            superstep: self.superstep,
            worker: self.worker,
            num_workers: self.num_workers,
            total_vertices: self.total_vertices,
            prev_aggregate: self.prev_aggregate,
            local_aggregate: &mut self.local_aggregate,
            outbox,
            messages_sent: &mut self.messages_sent,
            halt: false,
        };
        let value = cols.values[slot].as_mut().expect("live vertex slot");
        self.program.compute(&mut vctx, id, value, messages);
        set_bit(cols.halted, slot, vctx.halt);
        self.active += 1;
    }
}

/// Runs `program` over `vertices` until convergence and returns the metrics.
///
/// Executes on the persistent worker pool of
/// [`config.exec`](crate::config::PregelConfig::exec) when one is set (the
/// common case inside a workflow — all jobs share one pool and reuse its
/// shuffle planes), or on a private single-job pool otherwise.
///
/// The vertex set keeps the final vertex values; a typical operation runs a
/// job and then inspects or [`convert`](VertexSet::convert)s the set.
///
/// # Panics
///
/// Panics if `config.workers` differs from the partitioning of `vertices`
/// (construct the set with the same worker count), or if the superstep cap is
/// exceeded with `debug_assertions` enabled.
pub fn run<P: VertexProgram>(
    program: &P,
    config: &PregelConfig,
    vertices: &mut VertexSet<P::Id, P::Value>,
) -> Metrics {
    match config.exec.as_ref() {
        Some(ctx) => run_on(ctx, program, config, vertices),
        None => run_on(&ExecCtx::new(config.workers), program, config, vertices),
    }
}

/// Like [`run`], but on an explicit execution context (ignoring
/// `config.exec`). `ctx`, `config` and `vertices` must agree on the worker
/// count.
pub fn run_on<P: VertexProgram>(
    ctx: &ExecCtx,
    program: &P,
    config: &PregelConfig,
    vertices: &mut VertexSet<P::Id, P::Value>,
) -> Metrics {
    assert_eq!(
        config.workers,
        vertices.workers(),
        "PregelConfig.workers ({}) must match VertexSet partitioning ({})",
        config.workers,
        vertices.workers()
    );
    ctx.assert_matches(vertices.workers(), "VertexSet partitioning");
    let workers = vertices.workers();
    let total_vertices = vertices.len();
    let job_start = Instant::now();

    vertices.activate_all();
    // Fault-injection probe (testing hook): grabbed once per job so the
    // superstep loop pays one Option check per worker when no plan is armed.
    let faults = ctx.faults();
    // Job-control handle, likewise grabbed once: the superstep loop pays one
    // Option check per boundary when no control plane is installed.
    let control = ctx.control();
    let mut planes: Vec<WorkerPlane<P::Id, P::Message>> = planes_from_ctx(ctx, workers);
    let mut prev_aggregate = P::Aggregate::identity();
    let mut metrics = Metrics {
        converged: false,
        ..Metrics::default()
    };
    let mut superstep = 0usize;

    loop {
        if superstep >= config.max_supersteps {
            metrics.converged = false;
            break;
        }
        let step_start = Instant::now();
        let busy_before = ctx.pool().busy_nanos();

        // ---- compute phase (dispatched onto the persistent pool) ------------
        let counts: Vec<ComputeCounts<P::Aggregate>> = {
            let prev_agg = &prev_aggregate;
            let worker_inputs: Vec<_> = vertices.parts.iter_mut().zip(planes.iter_mut()).collect();
            ctx.pool()
                .run_per_worker(worker_inputs, |w, (part, plane)| {
                    if let Some(f) = &faults {
                        f.probe_superstep(superstep, w);
                    }
                    let mut env: WorkerEnv<'_, P> = WorkerEnv {
                        program,
                        superstep,
                        // Stamp 0 = never computed, hence the +1 (a u32
                        // column; activate_all re-zeroes it per job, so
                        // wrap-around would need 2^32 supersteps in one job).
                        stamp: (superstep + 1) as u32,
                        worker: w,
                        num_workers: workers,
                        total_vertices,
                        prev_aggregate: prev_agg,
                        local_aggregate: P::Aggregate::identity(),
                        messages_sent: 0,
                        active: 0,
                    };
                    let mut messages_dropped = 0u64;
                    let mut cols = part.run_columns();
                    // Copy the shared column reference out of `cols` so the
                    // decoding cursor's borrow is independent of the `&mut
                    // cols` that `compute_slot` takes.
                    let ids = cols.ids;
                    let mut cur = ids.cursor();
                    let slots = ids.len();

                    // Pass 1: merge-join the sorted message runs against the
                    // sorted ID column. Both sequences ascend, so one
                    // monotone galloping cursor visits each side at most
                    // once — no hash probe per run, one contiguous slice per
                    // vertex, nothing allocated; packed columns decode each
                    // 128-ID frame at most once per pass.
                    let n_in = plane.in_ids.len();
                    let mut i = 0usize;
                    let mut cursor = 0usize;
                    while i < n_in {
                        let id = plane.in_ids[i];
                        let mut j = i + 1;
                        while j < n_in && plane.in_ids[j] == id {
                            j += 1;
                        }
                        cursor = cur.lower_bound_from(cursor, &id);
                        if cursor < slots && cur.get(cursor) == id {
                            env.compute_slot(
                                &mut cols,
                                cursor,
                                id,
                                &mut plane.outbox,
                                &mut plane.in_msgs[i..j],
                            );
                        } else {
                            // Addressed to a vertex this worker does
                            // not host.
                            messages_dropped += (j - i) as u64;
                        }
                        i = j;
                    }

                    // Pass 2: active vertices that received nothing — a
                    // vectorized scan for halted words with a zero bit (64+
                    // halted vertices skipped per compare), with the stamp
                    // column filtering out slots already computed in pass 1.
                    // `compute_slot` only ever touches the current word's
                    // bits, so the forward scan never misses a regained
                    // zero.
                    let mut wi = 0usize;
                    while let Some(w) = kernels::next_word_with_zero(cols.halted, wi) {
                        let base = w << 6;
                        let mut cand = !cols.halted[w];
                        if slots - base < 64 {
                            cand &= (1u64 << (slots - base)) - 1;
                        }
                        while cand != 0 {
                            let slot = base + cand.trailing_zeros() as usize;
                            cand &= cand - 1;
                            if cols.stamps[slot] == env.stamp {
                                continue;
                            }
                            let id = cur.get(slot);
                            env.compute_slot(&mut cols, slot, id, &mut plane.outbox, &mut []);
                        }
                        wi = w + 1;
                    }

                    // Bits beyond the slot count are kept zero, so a masked
                    // popcount over the halted words decides quiescence.
                    let all_halted = kernels::popcount(cols.halted) as usize == slots;

                    // Presort every destination buffer (spreading the
                    // shuffle's sort work over the compute threads)
                    // and fold duplicates if the program combines. The
                    // radix scratch is the plane's combine scratch: both
                    // uses leave it empty, and the plane is parked in the
                    // ExecCtx between jobs, so steady-state sorting
                    // allocates nothing.
                    for buf in plane.outbox.iter_mut() {
                        crate::radix::sort_pairs(buf, &mut plane.scratch);
                    }
                    if P::USE_COMBINER {
                        combine_outbox(program, plane);
                    }
                    ComputeCounts::<P::Aggregate> {
                        local_aggregate: env.local_aggregate,
                        messages_sent: env.messages_sent,
                        messages_dropped,
                        active: env.active,
                        all_halted,
                    }
                })
        };
        let compute_elapsed = step_start.elapsed();

        // ---- aggregate & bookkeeping ---------------------------------------
        let mut aggregate = P::Aggregate::identity();
        let mut messages_this_step = 0u64;
        let mut dropped_this_step = 0u64;
        let mut active_this_step = 0usize;
        let mut all_halted = true;
        for c in &counts {
            aggregate.combine(&c.local_aggregate);
            messages_this_step += c.messages_sent;
            dropped_this_step += c.messages_dropped;
            active_this_step += c.active;
            all_halted &= c.all_halted;
        }
        let frontier_density = if total_vertices == 0 {
            0.0
        } else {
            active_this_step as f64 / total_vertices as f64
        };
        let store_resident_bytes = vertices.resident_bytes() as u64;
        let (id_packed, id_plain) = vertices.id_column_bytes();
        let id_column_compression = if id_plain == 0 {
            1.0
        } else {
            id_packed as f64 / id_plain as f64
        };
        // Running mean: superstep 0 is always dense (activate_all wakes every
        // vertex), so the peak carries no information — the mean is what
        // separates sparse-frontier jobs from dense ones.
        metrics.avg_frontier_density +=
            (frontier_density - metrics.avg_frontier_density) / (metrics.supersteps + 1) as f64;
        metrics.peak_store_resident_bytes =
            metrics.peak_store_resident_bytes.max(store_resident_bytes);

        // ---- cooperative control poll (superstep boundary) ------------------
        // The store is barrier-consistent here and `store_resident_bytes` is
        // fresh, so this is where the memory budget is checked. A `Stall`
        // fault (testing hook) sleeps first, making deadline trips
        // deterministic without real wall-clock races.
        if let Some(f) = &faults {
            if let Some(millis) = f.probe_stall(superstep) {
                std::thread::sleep(std::time::Duration::from_millis(millis));
            }
        }
        let cancellation_checks = match &control {
            Some(control) => {
                if let Some(reason) = control.poll(store_resident_bytes) {
                    // Raised on the coordinator thread, between phases: the
                    // pool never sees this panic and stays reusable. The
                    // caller (try_run_on or the pipeline's catch_unwind)
                    // downcasts the payload back into the typed error.
                    std::panic::panic_any(EngineError::Cancelled { reason, superstep });
                }
                1u64
            }
            None => 0,
        };
        metrics.total_cancellation_checks += cancellation_checks;

        // ---- shuffle phase (dispatched onto the persistent pool) ------------
        // Transpose outbox buffer ownership: worker `src` hands its buffer for
        // destination `dst` to `dst`'s shuffle job. Only `Vec` headers move;
        // the allocations travel to the shuffle and come back afterwards so
        // their capacity is reused next superstep.
        let shuffle_start = Instant::now();
        let mut columns: Vec<OutboxColumn<P>> =
            (0..workers).map(|_| Vec::with_capacity(workers)).collect();
        for plane in planes.iter_mut() {
            for (dst, buf) in plane.outbox.iter_mut().enumerate() {
                columns[dst].push(std::mem::take(buf));
            }
        }
        let shuffle_inputs: Vec<_> = planes.iter_mut().zip(columns).collect();
        let returned: Vec<OutboxColumn<P>> =
            ctx.pool()
                .run_per_worker(shuffle_inputs, |_w, (plane, mut bufs)| {
                    // K-way merge of the pre-sorted source buffers into
                    // the parallel id/message arrays (ties prefer the
                    // lower source worker, so the merged order is a pure
                    // function of the deterministic per-sender buffers).
                    plane.in_ids.clear();
                    plane.in_msgs.clear();
                    let total: usize = bufs.iter().map(|b| b.len()).sum();
                    plane.in_ids.reserve(total);
                    plane.in_msgs.reserve(total);
                    let (in_ids, in_msgs) = (&mut plane.in_ids, &mut plane.in_msgs);
                    crate::kmerge::merge_sorted_buffers(&mut bufs, |id, msg| {
                        if P::USE_COMBINER {
                            if let Some(last) = in_ids.last() {
                                if *last == id {
                                    let acc = in_msgs.last_mut().expect("parallel arrays");
                                    program.combine(acc, msg);
                                    return;
                                }
                            }
                        }
                        in_ids.push(id);
                        in_msgs.push(msg);
                    });
                    bufs
                });
        // Give every (src, dst) buffer back to its owning worker.
        for (dst, bufs) in returned.into_iter().enumerate() {
            for (src, buf) in bufs.into_iter().enumerate() {
                planes[src].outbox[dst] = buf;
            }
        }
        let shuffle_elapsed = shuffle_start.elapsed();

        // ---- metrics & termination ------------------------------------------
        metrics.supersteps += 1;
        metrics.total_messages += messages_this_step;
        metrics.total_dropped += dropped_this_step;
        metrics.total_compute_calls += active_this_step as u64;
        if config.track_supersteps {
            let busy = ctx.pool().busy_nanos().saturating_sub(busy_before);
            let phase_wall = compute_elapsed + shuffle_elapsed;
            let capacity = phase_wall.as_nanos() as u64 * workers as u64;
            metrics.per_superstep.push(SuperstepMetrics {
                superstep,
                active_vertices: active_this_step,
                messages_sent: messages_this_step,
                messages_dropped: dropped_this_step,
                elapsed: step_start.elapsed(),
                compute_elapsed,
                shuffle_elapsed,
                pool_utilization: if capacity == 0 {
                    0.0
                } else {
                    (busy as f64 / capacity as f64).min(1.0)
                },
                frontier_density,
                store_resident_bytes,
                id_column_compression,
                cancellation_checks,
            });
        }

        if program.should_terminate(&aggregate, superstep) {
            metrics.converged = true;
            break;
        }
        if messages_this_step == 0 && all_halted {
            metrics.converged = true;
            break;
        }
        prev_aggregate = aggregate;
        superstep += 1;
    }

    // Park the (cleared) planes in the context so the next job with the same
    // id/message types starts with warm buffers.
    for plane in &mut planes {
        plane.clear();
    }
    ctx.store_scratch(planes);

    metrics.elapsed = job_start.elapsed();
    metrics
}

/// Sender-side combining: folds adjacent messages for the same vertex in the
/// (already sorted) destination buffers, so that at most one message per
/// (sender worker, receiving vertex) crosses the shuffle.
fn combine_outbox<P: VertexProgram>(program: &P, plane: &mut WorkerPlane<P::Id, P::Message>) {
    for buf in plane.outbox.iter_mut() {
        if buf.len() < 2 {
            continue;
        }
        plane.scratch.clear();
        for (id, msg) in buf.drain(..) {
            match plane.scratch.last_mut() {
                Some(last) if last.0 == id => program.combine(&mut last.1, msg),
                _ => plane.scratch.push((id, msg)),
            }
        }
        std::mem::swap(buf, &mut plane.scratch);
    }
}

/// Like [`run_on`], but catches a cooperative job-control trip and returns it
/// as a typed [`EngineError`] instead of unwinding.
///
/// On `Err(EngineError::Cancelled { .. })` the pool is clean and immediately
/// reusable: the trip is raised on the coordinator thread at a superstep
/// boundary, never inside a pool worker. The vertex set is left in its
/// mid-job (barrier-consistent) state and should normally be discarded. Any
/// other panic — a program bug, an injected worker fault — is re-raised
/// unchanged.
pub fn try_run_on<P: VertexProgram>(
    ctx: &ExecCtx,
    program: &P,
    config: &PregelConfig,
    vertices: &mut VertexSet<P::Id, P::Value>,
) -> Result<Metrics, EngineError> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_on(ctx, program, config, vertices)
    })) {
        Ok(metrics) => Ok(metrics),
        Err(payload) => match payload.downcast::<EngineError>() {
            Ok(err) => Err(*err),
            Err(payload) => std::panic::resume_unwind(payload),
        },
    }
}

/// Convenience wrapper: partitions `pairs` over `config.workers` workers, runs
/// the program, and returns both the final vertex set and the metrics.
pub fn run_from_pairs<P: VertexProgram>(
    program: &P,
    config: &PregelConfig,
    pairs: impl IntoIterator<Item = (P::Id, P::Value)>,
) -> (VertexSet<P::Id, P::Value>, Metrics) {
    let mut set = VertexSet::from_pairs(config.workers, pairs);
    let metrics = run(program, config, &mut set);
    (set, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::{BoolOr, NoAggregate, SumU64};
    use proptest::prelude::*;

    /// Each vertex starts with a number and floods the maximum over a ring;
    /// classic Pregel smoke test exercising reactivation and halting.
    struct MaxFlood {
        ring: usize,
    }

    #[derive(Debug, Clone)]
    struct MaxState {
        value: u64,
        next: u64,
    }

    impl VertexProgram for MaxFlood {
        type Id = u64;
        type Value = MaxState;
        type Message = u64;
        type Aggregate = NoAggregate;

        fn compute(
            &self,
            ctx: &mut Context<'_, Self>,
            _id: u64,
            value: &mut MaxState,
            messages: &mut [u64],
        ) {
            let before = value.value;
            for m in messages.iter() {
                value.value = value.value.max(*m);
            }
            if ctx.superstep() == 0 || value.value > before {
                ctx.send_message(value.next, value.value);
            }
            ctx.vote_to_halt();
        }
    }

    #[test]
    fn max_flood_on_ring_converges() {
        let n = 64u64;
        let program = MaxFlood { ring: n as usize };
        let config = PregelConfig::with_workers(4);
        let pairs = (0..n).map(|i| {
            (
                i,
                MaxState {
                    value: i * 7 % 97,
                    next: (i + 1) % n,
                },
            )
        });
        let (set, metrics) = run_from_pairs(&program, &config, pairs);
        let expected = (0..n).map(|i| i * 7 % 97).max().unwrap();
        for (_, v) in set.iter() {
            assert_eq!(v.value, expected);
        }
        assert!(metrics.converged);
        assert!(
            metrics.supersteps >= program.ring,
            "needs at least n supersteps on a ring"
        );
        assert!(metrics.total_messages > 0);
        assert_eq!(metrics.total_dropped, 0);
        assert_eq!(metrics.per_superstep.len(), metrics.supersteps);
    }

    /// Counts vertices via the aggregator and terminates via should_terminate.
    struct CountAndStop;

    impl VertexProgram for CountAndStop {
        type Id = u64;
        type Value = ();
        type Message = ();
        type Aggregate = SumU64;

        fn compute(&self, ctx: &mut Context<'_, Self>, _id: u64, _v: &mut (), _m: &mut [()]) {
            ctx.aggregate(SumU64(1));
            // Never vote to halt: termination must come from should_terminate.
        }

        fn should_terminate(&self, agg: &SumU64, _superstep: usize) -> bool {
            agg.0 > 0
        }
    }

    #[test]
    fn aggregator_and_forced_termination() {
        let config = PregelConfig::with_workers(3);
        let (_, metrics) = run_from_pairs(&CountAndStop, &config, (0..10).map(|i| (i, ())));
        assert!(metrics.converged);
        assert_eq!(metrics.supersteps, 1);
        assert_eq!(metrics.total_compute_calls, 10);
    }

    /// Sums incoming messages with a combiner; each of 100 vertices sends 1 to
    /// vertex 0 in superstep 0, and vertex 0 should observe a total of 100
    /// regardless of how many physical messages were merged.
    struct SumToRoot;

    impl VertexProgram for SumToRoot {
        type Id = u64;
        type Value = u64;
        type Message = u64;
        type Aggregate = NoAggregate;
        const USE_COMBINER: bool = true;

        fn compute(
            &self,
            ctx: &mut Context<'_, Self>,
            _id: u64,
            value: &mut u64,
            msgs: &mut [u64],
        ) {
            if ctx.superstep() == 0 {
                ctx.send_message(0, 1);
            } else {
                *value += msgs.iter().sum::<u64>();
            }
            ctx.vote_to_halt();
        }

        fn combine(&self, acc: &mut u64, incoming: u64) {
            *acc += incoming;
        }
    }

    #[test]
    fn combiner_merges_messages() {
        let config = PregelConfig::with_workers(4);
        let (set, metrics) = run_from_pairs(&SumToRoot, &config, (0..100).map(|i| (i, 0u64)));
        assert_eq!(*set.get(&0).unwrap(), 100);
        // 100 logical messages were sent even though the combiner merged them.
        assert_eq!(metrics.total_messages, 100);
        assert!(metrics.converged);
    }

    #[test]
    fn combiner_delivers_exactly_one_message_per_vertex() {
        /// Asserts that sender-side + shuffle combining leave exactly one
        /// physical message for the receiving vertex.
        struct CountSlice;
        impl VertexProgram for CountSlice {
            type Id = u64;
            type Value = u64;
            type Message = u64;
            type Aggregate = NoAggregate;
            const USE_COMBINER: bool = true;
            fn compute(
                &self,
                ctx: &mut Context<'_, Self>,
                _id: u64,
                value: &mut u64,
                msgs: &mut [u64],
            ) {
                if ctx.superstep() == 0 {
                    ctx.send_message(3, 5);
                } else if !msgs.is_empty() {
                    assert_eq!(msgs.len(), 1, "combiner must merge to a single message");
                    *value = msgs[0];
                }
                ctx.vote_to_halt();
            }
            fn combine(&self, acc: &mut u64, incoming: u64) {
                *acc += incoming;
            }
        }
        let config = PregelConfig::with_workers(2);
        let (set, _) = run_from_pairs(&CountSlice, &config, (0..40).map(|i| (i, 0u64)));
        assert_eq!(*set.get(&3).unwrap(), 40 * 5);
    }

    /// Messages to unknown vertices are dropped and counted, not fatal.
    struct SendToNowhere;
    impl VertexProgram for SendToNowhere {
        type Id = u64;
        type Value = ();
        type Message = ();
        type Aggregate = BoolOr;
        fn compute(&self, ctx: &mut Context<'_, Self>, _id: u64, _v: &mut (), _m: &mut [()]) {
            if ctx.superstep() == 0 {
                ctx.send_message(9999, ());
            }
            ctx.vote_to_halt();
        }
    }

    #[test]
    fn messages_to_missing_vertices_are_dropped() {
        let config = PregelConfig::with_workers(2);
        let (_, metrics) = run_from_pairs(&SendToNowhere, &config, (0..5).map(|i| (i, ())));
        assert_eq!(metrics.total_dropped, 5);
        assert!(metrics.converged);
    }

    /// A program that never halts hits the superstep cap and reports
    /// non-convergence instead of looping forever.
    struct NeverHalts;
    impl VertexProgram for NeverHalts {
        type Id = u64;
        type Value = ();
        type Message = ();
        type Aggregate = NoAggregate;
        fn compute(&self, _ctx: &mut Context<'_, Self>, _id: u64, _v: &mut (), _m: &mut [()]) {}
    }

    #[test]
    fn superstep_cap_stops_runaway_jobs() {
        let config = PregelConfig::with_workers(2).max_supersteps(5);
        let (_, metrics) = run_from_pairs(&NeverHalts, &config, (0..3).map(|i| (i, ())));
        assert!(!metrics.converged);
        assert_eq!(metrics.supersteps, 5);
    }

    /// A sparse-frontier program: everything halts at superstep 0 except one
    /// token walking a short chain, so the mean frontier density must land
    /// far below the dense superstep 0's 1.0.
    struct SparseWalk {
        steps: u64,
    }
    impl VertexProgram for SparseWalk {
        type Id = u64;
        type Value = u64;
        type Message = u64;
        type Aggregate = NoAggregate;
        fn compute(&self, ctx: &mut Context<'_, Self>, id: u64, value: &mut u64, msgs: &mut [u64]) {
            if ctx.superstep() == 0 {
                if id == 0 {
                    ctx.send_message(1, 1);
                }
            } else if let Some(&hop) = msgs.first() {
                *value = hop;
                if hop < self.steps {
                    ctx.send_message(id + 1, hop + 1);
                }
            }
            ctx.vote_to_halt();
        }
    }

    #[test]
    fn frontier_density_reflects_sparse_frontiers() {
        let config = PregelConfig::with_workers(2);
        let (_, metrics) = run_from_pairs(
            &SparseWalk { steps: 10 },
            &config,
            (0..1000).map(|i| (i, 0u64)),
        );
        assert!(metrics.converged);
        // Superstep 0 computes all 1000 vertices, every later superstep
        // computes exactly one: the mean must sit near 1000/n_steps ÷ 1000,
        // well below a dense job's 1.0.
        assert!(
            metrics.avg_frontier_density < 0.2,
            "sparse walk reported density {}",
            metrics.avg_frontier_density
        );
        assert!(metrics.avg_frontier_density > 0.0);
        assert!(metrics.peak_store_resident_bytes > 0);
        // A dense program over the same set reports a dense mean.
        let (_, dense) = run_from_pairs(
            &NeverHalts,
            &config.clone().max_supersteps(3),
            (0..10).map(|i| (i, ())),
        );
        assert!(dense.avg_frontier_density > 0.99);
    }

    #[test]
    fn empty_vertex_set_converges_immediately() {
        let config = PregelConfig::with_workers(2);
        let (set, metrics) = run_from_pairs(&NeverHalts, &config, std::iter::empty::<(u64, ())>());
        assert!(set.is_empty());
        assert!(metrics.converged);
        assert_eq!(metrics.supersteps, 1);
    }

    #[test]
    fn control_polls_are_counted_per_superstep_boundary() {
        let ctx = ExecCtx::new(2);
        let control = crate::control::JobControl::new();
        ctx.set_control(control.clone());
        let config = PregelConfig::with_workers(2)
            .max_supersteps(4)
            .track_supersteps(true);
        let mut set: VertexSet<u64, ()> = VertexSet::from_pairs(2, (0..6).map(|i| (i, ())));
        let metrics = run_on(&ctx, &NeverHalts, &config, &mut set);
        ctx.clear_control();
        assert_eq!(metrics.supersteps, 4);
        assert_eq!(metrics.total_cancellation_checks, 4);
        assert!(metrics
            .per_superstep
            .iter()
            .all(|s| s.cancellation_checks == 1));
        assert_eq!(control.checks(), 4);
        // Without a control handle the counters stay zero.
        let mut set: VertexSet<u64, ()> = VertexSet::from_pairs(2, (0..6).map(|i| (i, ())));
        let metrics = run_on(&ctx, &NeverHalts, &config, &mut set);
        assert_eq!(metrics.total_cancellation_checks, 0);
        assert!(metrics
            .per_superstep
            .iter()
            .all(|s| s.cancellation_checks == 0));
    }

    #[test]
    fn requested_cancel_mid_job_is_typed_and_leaves_the_pool_reusable() {
        use crate::control::{CancelReason, JobControl};
        let ctx = ExecCtx::new(2);
        let control = JobControl::new();
        ctx.set_control(control.clone());

        // Cancel strictly *inside* the job, deterministically: a watcher
        // thread waits until the boundary poll of superstep 2 has run (the
        // third check), then cancels, so the trip surfaces at the superstep 3
        // boundary — no wall-clock coupling. (Plain `thread::spawn` is fine
        // here: this is a test, not a steady-state parallel path.)
        let watcher = {
            let control = control.clone();
            std::thread::spawn(move || {
                while control.checks() < 3 {
                    std::thread::yield_now();
                }
                control.cancel();
            })
        };
        let config = PregelConfig::with_workers(2).max_supersteps(1000);
        let mut set: VertexSet<u64, ()> = VertexSet::from_pairs(2, (0..8).map(|i| (i, ())));
        let err = try_run_on(&ctx, &NeverHalts, &config, &mut set).unwrap_err();
        watcher.join().expect("watcher thread");
        ctx.clear_control();
        match err {
            EngineError::Cancelled { reason, superstep } => {
                assert_eq!(reason, CancelReason::Requested);
                // The cancel lands strictly after the third poll, so the trip
                // can only surface at a later boundary — mid-job, never at
                // job start.
                assert!(superstep >= 3, "tripped too early, at {superstep}");
            }
            other => panic!("expected a cancellation, got {other:?}"),
        }
        assert!(err.to_string().contains("cancelled"));

        // The pool is immediately reusable and deterministic.
        let (set, metrics) = run_from_pairs(
            &SumToRoot,
            &PregelConfig::with_workers(2),
            (0..100).map(|i| (i, 0u64)),
        );
        assert_eq!(*set.get(&0).unwrap(), 100);
        assert!(metrics.converged);
    }

    #[test]
    fn memory_budget_trip_fires_at_the_first_boundary_over_the_cap() {
        use crate::control::{CancelReason, JobControl};
        let ctx = ExecCtx::new(2);
        // 1 byte: any non-empty store exceeds it at the first boundary.
        ctx.set_control(JobControl::new().with_memory_budget(1));
        let config = PregelConfig::with_workers(2).max_supersteps(10);
        let mut set: VertexSet<u64, ()> = VertexSet::from_pairs(2, (0..8).map(|i| (i, ())));
        let err = try_run_on(&ctx, &NeverHalts, &config, &mut set).unwrap_err();
        ctx.clear_control();
        assert_eq!(
            err,
            EngineError::Cancelled {
                reason: CancelReason::MemoryBudget,
                superstep: 0,
            }
        );
    }

    #[test]
    fn stall_fault_makes_deadline_trips_deterministic() {
        use crate::control::{CancelReason, JobControl};
        use crate::fault::{Fault, FaultPlan};
        use std::time::Duration;
        let ctx = ExecCtx::new(2);
        // The stall dwarfs the deadline while the deadline dwarfs a real
        // superstep on 8 trivial vertices: boundary 0 polls well inside the
        // 150ms budget, then the injected 600ms stall guarantees boundary 1
        // polls past it — the trip lands at superstep 1 with no wall-clock
        // race in either direction.
        let armed = ctx.inject_faults(FaultPlan::single(Fault::Stall {
            superstep: 1,
            millis: 600,
        }));
        ctx.set_control(JobControl::new().with_deadline_in(Duration::from_millis(150)));
        let config = PregelConfig::with_workers(2).max_supersteps(10);
        let mut set: VertexSet<u64, ()> = VertexSet::from_pairs(2, (0..8).map(|i| (i, ())));
        let err = try_run_on(&ctx, &NeverHalts, &config, &mut set).unwrap_err();
        ctx.clear_control();
        ctx.clear_faults();
        assert!(armed.all_fired(), "the stall must fire");
        assert_eq!(
            err,
            EngineError::Cancelled {
                reason: CancelReason::Deadline,
                superstep: 1,
            }
        );
    }

    #[test]
    fn try_run_on_reraises_non_cancellation_panics() {
        use crate::fault::{Fault, FaultPlan};
        let ctx = ExecCtx::new(2);
        let armed = ctx.inject_faults(FaultPlan::single(Fault::Superstep {
            stage: usize::MAX, // matches NO_STAGE: no pipeline entered a stage
            superstep: 0,
            worker: 0,
        }));
        let config = PregelConfig::with_workers(2).max_supersteps(5);
        let mut set: VertexSet<u64, ()> = VertexSet::from_pairs(2, (0..4).map(|i| (i, ())));
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            try_run_on(&ctx, &NeverHalts, &config, &mut set)
        }));
        ctx.clear_faults();
        assert!(armed.all_fired());
        assert!(
            outcome.is_err(),
            "a worker fault is not a cancellation and must re-raise"
        );
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn mismatched_worker_count_panics() {
        let mut set: VertexSet<u64, ()> = VertexSet::from_pairs(3, (0..3).map(|i| (i, ())));
        let config = PregelConfig::with_workers(2);
        let _ = run(&NeverHalts, &config, &mut set);
    }

    // ---- property tests: sorted slice delivery vs. hash-map grouping --------

    /// A scatter program driven by an explicit send plan: in superstep 0 every
    /// vertex sends its planned `(target, payload)` messages; in superstep 1
    /// every vertex folds what it received into its value.
    struct PlannedScatter {
        /// `plan[v]` lists the messages vertex `v` sends in superstep 0.
        plan: Vec<Vec<(u64, u64)>>,
        combine: bool,
    }

    impl VertexProgram for PlannedScatter {
        type Id = u64;
        type Value = u64;
        type Message = u64;
        type Aggregate = NoAggregate;
        // The combiner decision is made per-instance for the test; the engine
        // only checks the associated const, so model "combiner on" with a
        // second wrapper below.
        fn compute(&self, ctx: &mut Context<'_, Self>, id: u64, value: &mut u64, msgs: &mut [u64]) {
            assert!(!self.combine);
            scatter_step(&self.plan, ctx, id, value, msgs);
        }
    }

    /// Same program with `USE_COMBINER = true` (sum combiner).
    struct PlannedScatterCombined {
        plan: Vec<Vec<(u64, u64)>>,
    }

    impl VertexProgram for PlannedScatterCombined {
        type Id = u64;
        type Value = u64;
        type Message = u64;
        type Aggregate = NoAggregate;
        const USE_COMBINER: bool = true;
        fn compute(&self, ctx: &mut Context<'_, Self>, id: u64, value: &mut u64, msgs: &mut [u64]) {
            scatter_step(&self.plan, ctx, id, value, msgs);
        }
        fn combine(&self, acc: &mut u64, incoming: u64) {
            *acc += incoming;
        }
    }

    /// Hash-grouping oracle: the delivered sum per vertex is independent of
    /// how the shuffle groups messages. (FxHashMap like the engine's own
    /// partitions — no reason for the test oracle to pay SipHash.)
    fn oracle_sums(n: u64, plan: &[Vec<(u64, u64)>]) -> Vec<u64> {
        let mut sums = vec![0u64; n as usize];
        let mut grouped: crate::fxhash::FxHashMap<u64, Vec<u64>> =
            crate::fxhash::FxHashMap::default();
        for sends in plan {
            for &(target, payload) in sends {
                grouped.entry(target).or_default().push(payload);
            }
        }
        for (target, payloads) in grouped {
            if target < n {
                sums[target as usize] = payloads.into_iter().sum();
            }
        }
        sums
    }

    fn scatter_step(
        plan: &[Vec<(u64, u64)>],
        ctx: &mut Context<'_, impl VertexProgram<Id = u64, Value = u64, Message = u64>>,
        id: u64,
        value: &mut u64,
        msgs: &mut [u64],
    ) {
        if ctx.superstep() == 0 {
            for &(target, payload) in &plan[id as usize] {
                ctx.send_message(target, payload);
            }
        } else {
            *value += msgs.iter().sum::<u64>();
        }
        ctx.vote_to_halt();
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_sorted_delivery_matches_hash_grouping(
            n in 1u64..40,
            raw in proptest::collection::vec((0u64..40, 0u64..40, 1u64..100), 0..200),
            workers in 1usize..6,
        ) {
            let mut plan: Vec<Vec<(u64, u64)>> = vec![Vec::new(); n as usize];
            let mut dropped_expected = 0u64;
            for &(sender, target, payload) in &raw {
                let sender = sender % n;
                if target >= n {
                    dropped_expected += 1;
                }
                plan[sender as usize].push((target, payload));
            }
            let expected = oracle_sums(n, &plan);
            let config = PregelConfig::with_workers(workers);

            // Without a combiner.
            let program = PlannedScatter { plan: plan.clone(), combine: false };
            let (set, metrics) =
                run_from_pairs(&program, &config, (0..n).map(|i| (i, 0u64)));
            for (id, v) in set.iter() {
                prop_assert_eq!(*v, expected[id as usize]);
            }
            prop_assert_eq!(metrics.total_dropped, dropped_expected);
            prop_assert_eq!(metrics.total_messages, raw.len() as u64);

            // With a sum combiner: same delivered totals, same logical count.
            let program = PlannedScatterCombined { plan };
            let (set, metrics) =
                run_from_pairs(&program, &config, (0..n).map(|i| (i, 0u64)));
            for (id, v) in set.iter() {
                prop_assert_eq!(*v, expected[id as usize]);
            }
            prop_assert_eq!(metrics.total_messages, raw.len() as u64);
        }
    }

    // ---- property test: columnar engine vs. sequential BSP oracle -----------

    /// A program with data-dependent halting: every vertex folds its inbound
    /// sum, conditionally relays, and votes to halt only when its value is
    /// not divisible by 3 — so the final halt flags (not just the values)
    /// depend on the whole message history.
    struct HaltPattern {
        n: u64,
        rounds: usize,
    }

    impl HaltPattern {
        /// The shared per-vertex step, used by both the engine run and the
        /// sequential oracle: returns (messages to send, new halt flag).
        fn step(
            &self,
            superstep: usize,
            id: u64,
            value: &mut u64,
            inbound_sum: u64,
        ) -> (Vec<(u64, u64)>, bool) {
            *value = value.wrapping_add(inbound_sum);
            let mut sends = Vec::new();
            if superstep == 0 {
                for f in 0..id % 3 {
                    sends.push(((id * 7 + f * 13) % self.n, id + f));
                }
            } else if !(*value).is_multiple_of(5) {
                sends.push(((id + 1) % self.n, *value % 11));
            }
            (sends, !(*value).is_multiple_of(3))
        }
    }

    impl VertexProgram for HaltPattern {
        type Id = u64;
        type Value = u64;
        type Message = u64;
        type Aggregate = NoAggregate;

        fn compute(&self, ctx: &mut Context<'_, Self>, id: u64, value: &mut u64, msgs: &mut [u64]) {
            let (sends, halt) = self.step(ctx.superstep(), id, value, msgs.iter().sum());
            for (to, payload) in sends {
                ctx.send_message(to, payload);
            }
            if halt {
                ctx.vote_to_halt();
            }
        }

        fn should_terminate(&self, _agg: &NoAggregate, superstep: usize) -> bool {
            superstep + 1 >= self.rounds
        }
    }

    /// Sequential reference implementation of the BSP semantics over a plain
    /// hash map (the pre-columnar entry layout), mirroring the runner's
    /// activation, termination and halt rules step for step.
    fn oracle_run(program: &HaltPattern) -> (Vec<(u64, u64, bool)>, usize) {
        struct Entry {
            value: u64,
            halted: bool,
        }
        let mut state: crate::fxhash::FxHashMap<u64, Entry> = (0..program.n)
            .map(|i| {
                (
                    i,
                    Entry {
                        value: i,
                        halted: false,
                    },
                )
            })
            .collect();
        let mut inbox: crate::fxhash::FxHashMap<u64, u64> = crate::fxhash::FxHashMap::default();
        let mut supersteps = 0usize;
        let mut superstep = 0usize;
        loop {
            let mut outbox: crate::fxhash::FxHashMap<u64, u64> =
                crate::fxhash::FxHashMap::default();
            let mut messages = 0u64;
            let mut all_halted = true;
            for id in 0..program.n {
                let entry = state.get_mut(&id).expect("exists");
                let inbound = inbox.remove(&id);
                if entry.halted && inbound.is_none() {
                    continue;
                }
                let (sends, halt) =
                    program.step(superstep, id, &mut entry.value, inbound.unwrap_or(0));
                for (to, payload) in sends {
                    if to < program.n {
                        *outbox.entry(to).or_insert(0) += payload;
                    }
                    messages += 1;
                }
                entry.halted = halt;
            }
            for entry in state.values() {
                all_halted &= entry.halted;
            }
            supersteps += 1;
            if program.should_terminate(&NoAggregate, superstep) {
                break;
            }
            if messages == 0 && all_halted {
                break;
            }
            inbox = outbox;
            superstep += 1;
        }
        let mut out: Vec<(u64, u64, bool)> = state
            .into_iter()
            .map(|(id, e)| (id, e.value, e.halted))
            .collect();
        out.sort_unstable();
        (out, supersteps)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_values_and_halt_flags_match_sequential_oracle(
            n in 1u64..120,
            rounds in 1usize..12,
            workers in 1usize..6,
        ) {
            let program = HaltPattern { n, rounds };
            let (expected, oracle_steps) = oracle_run(&program);
            let config = PregelConfig::with_workers(workers);
            let (set, metrics) = run_from_pairs(&program, &config, (0..n).map(|i| (i, i)));
            prop_assert_eq!(metrics.supersteps, oracle_steps);
            for (id, value, halted) in expected {
                prop_assert_eq!(set.get(&id), Some(&value), "value of {}", id);
                prop_assert_eq!(set.halted_of(&id), Some(halted), "halt flag of {}", id);
            }
        }
    }
}
