//! Job chaining modes: in-memory hand-off vs. an emulated HDFS round-trip.
//!
//! The paper's motivation for the in-memory `convert` extension is that
//! vanilla Pregel-like systems force consecutive jobs to exchange data through
//! HDFS (dump, then re-load and re-shuffle). To let the workspace *measure*
//! that difference (the `ablation_chaining` bench), this module provides a
//! [`spill_roundtrip`] helper that serialises a collection to a byte buffer
//! and parses it back, emulating the serialisation + I/O + deserialisation
//! cost of the HDFS hop (without an actual disk to keep the benchmark
//! machine-independent; an optional on-disk variant is provided for realism).
//!
//! The byte codec itself ([`SpillCodec`]) and the framing live in
//! [`crate::spill`] — the same format the engine's out-of-core spill layer
//! uses for its shuffle runs and sealed partition extents, so there is
//! exactly one spill file format in the workspace. Like the rest of that
//! layer, the round-trip is panic-free: I/O failures and truncated or
//! corrupt data come back as [`SpillError`] values.

pub use crate::spill::SpillCodec;
use crate::spill::{self, SpillError};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// How two consecutive operations exchange their intermediate data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ChainMode {
    /// The output vertex set of one job is converted in memory into the input
    /// of the next job (the paper's extension; the default).
    #[default]
    InMemory,
    /// The intermediate data is serialised to a byte stream and parsed back,
    /// emulating a round-trip through external storage.
    Spill,
    /// Like [`ChainMode::Spill`] but the bytes are actually written to and
    /// read back from a temporary file.
    SpillToDisk,
}

/// Statistics of one spill round-trip.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpillStats {
    /// Number of records serialised.
    pub records: u64,
    /// Total bytes written.
    pub bytes: u64,
    /// Wall-clock time of encode + (optional I/O) + decode.
    pub elapsed: Duration,
}

/// Serialises `items` and parses them back, returning the reconstructed items
/// and the cost of the round-trip. With `to_disk`, the bytes pass through a
/// temporary file to include real I/O in the measurement.
///
/// Uses the workspace's shared spill framing
/// ([`spill::write_spill_file`]/[`spill::read_spill_file`]); any I/O failure
/// or malformed byte stream is reported as a typed [`SpillError`] instead of
/// a panic.
pub fn spill_roundtrip<T: SpillCodec>(
    items: Vec<T>,
    to_disk: bool,
) -> Result<(Vec<T>, SpillStats), SpillError> {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let start = Instant::now();
    let records = items.len() as u64;
    let (out, bytes) = if to_disk {
        let path = std::env::temp_dir().join(format!(
            "ppa-chain-spill-{}-{}.bin",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let bytes = spill::write_spill_file(&path, &items)?;
        drop(items);
        let back = spill::read_spill_file::<T>(&path);
        let _ = std::fs::remove_file(&path);
        (back?, bytes)
    } else {
        let buf = spill::encode_spill_bytes(&items);
        let bytes = buf.len() as u64;
        drop(items);
        (
            spill::decode_spill_stream(buf.as_slice(), "<memory>")?,
            bytes,
        )
    };
    let stats = SpillStats {
        records,
        bytes,
        elapsed: start.elapsed(),
    };
    Ok((out, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_codecs_roundtrip() {
        let mut buf = Vec::new();
        42u64.encode(&mut buf);
        7u32.encode(&mut buf);
        vec![1u8, 2, 3].encode(&mut buf);
        (5u64, 6u64).encode(&mut buf);
        let mut s = buf.as_slice();
        assert_eq!(u64::decode(&mut s), Some(42));
        assert_eq!(u32::decode(&mut s), Some(7));
        assert_eq!(Vec::<u8>::decode(&mut s), Some(vec![1, 2, 3]));
        assert_eq!(<(u64, u64)>::decode(&mut s), Some((5, 6)));
        assert!(u64::decode(&mut s).is_none());
    }

    #[test]
    fn decode_rejects_truncation() {
        let mut buf = Vec::new();
        1234u64.encode(&mut buf);
        let mut s = &buf[..4];
        assert!(u64::decode(&mut s).is_none());
        let mut buf2 = Vec::new();
        vec![9u8; 100].encode(&mut buf2);
        let mut s2 = &buf2[..20];
        assert!(Vec::<u8>::decode(&mut s2).is_none());
    }

    #[test]
    fn spill_roundtrip_in_memory() {
        let items: Vec<(u64, u64)> = (0..1000).map(|i| (i, i * i)).collect();
        let (back, stats) = spill_roundtrip(items.clone(), false).expect("in-memory roundtrip");
        assert_eq!(back, items);
        assert_eq!(stats.records, 1000);
        assert!(stats.bytes >= 16_000);
    }

    #[test]
    fn spill_roundtrip_on_disk() {
        let items: Vec<u64> = (0..100).collect();
        let (back, stats) = spill_roundtrip(items.clone(), true).expect("on-disk roundtrip");
        assert_eq!(back, items);
        assert_eq!(stats.records, 100);
    }

    #[test]
    fn chain_mode_default_is_in_memory() {
        assert_eq!(ChainMode::default(), ChainMode::InMemory);
    }
}
