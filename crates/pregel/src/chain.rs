//! Job chaining modes: in-memory hand-off vs. an emulated HDFS round-trip.
//!
//! The paper's motivation for the in-memory `convert` extension is that
//! vanilla Pregel-like systems force consecutive jobs to exchange data through
//! HDFS (dump, then re-load and re-shuffle). To let the workspace *measure*
//! that difference (the `ablation_chaining` bench), this module provides a
//! small, dependency-free byte codec ([`SpillCodec`]) and a
//! [`spill_roundtrip`] helper that serialises a collection to a byte buffer
//! and parses it back, emulating the serialisation + I/O + deserialisation
//! cost of the HDFS hop (without an actual disk to keep the benchmark
//! machine-independent; an optional on-disk variant is provided for realism).

use serde::{Deserialize, Serialize};
use std::io::{Read, Write};
use std::time::{Duration, Instant};

/// How two consecutive operations exchange their intermediate data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ChainMode {
    /// The output vertex set of one job is converted in memory into the input
    /// of the next job (the paper's extension; the default).
    #[default]
    InMemory,
    /// The intermediate data is serialised to a byte stream and parsed back,
    /// emulating a round-trip through external storage.
    Spill,
    /// Like [`ChainMode::Spill`] but the bytes are actually written to and
    /// read back from a temporary file.
    SpillToDisk,
}

/// A minimal binary codec for spill emulation.
///
/// Implementations must be able to reconstruct the value from the bytes they
/// wrote; the framing (length prefixes) is handled by [`spill_roundtrip`].
pub trait SpillCodec: Sized {
    /// Appends the binary encoding of `self` to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);
    /// Decodes one value from the front of `buf`, advancing it.
    fn decode(buf: &mut &[u8]) -> Option<Self>;
}

impl SpillCodec for u64 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        if buf.len() < 8 {
            return None;
        }
        let (head, rest) = buf.split_at(8);
        *buf = rest;
        Some(u64::from_le_bytes(head.try_into().ok()?))
    }
}

impl SpillCodec for u32 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        if buf.len() < 4 {
            return None;
        }
        let (head, rest) = buf.split_at(4);
        *buf = rest;
        Some(u32::from_le_bytes(head.try_into().ok()?))
    }
}

impl SpillCodec for Vec<u8> {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.len() as u64).encode(buf);
        buf.extend_from_slice(self);
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        let len = u64::decode(buf)? as usize;
        if buf.len() < len {
            return None;
        }
        let (head, rest) = buf.split_at(len);
        *buf = rest;
        Some(head.to_vec())
    }
}

impl<A: SpillCodec, B: SpillCodec> SpillCodec for (A, B) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        Some((A::decode(buf)?, B::decode(buf)?))
    }
}

/// Statistics of one spill round-trip.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpillStats {
    /// Number of records serialised.
    pub records: u64,
    /// Total bytes written.
    pub bytes: u64,
    /// Wall-clock time of encode + (optional I/O) + decode.
    pub elapsed: Duration,
}

/// Serialises `items` and parses them back, returning the reconstructed items
/// and the cost of the round-trip. With `to_disk`, the bytes pass through a
/// temporary file to include real I/O in the measurement.
pub fn spill_roundtrip<T: SpillCodec>(items: Vec<T>, to_disk: bool) -> (Vec<T>, SpillStats) {
    let start = Instant::now();
    let records = items.len() as u64;
    let mut buf = Vec::new();
    (items.len() as u64).encode(&mut buf);
    for item in &items {
        item.encode(&mut buf);
    }
    drop(items);
    let bytes = buf.len() as u64;

    let data = if to_disk {
        let mut path = std::env::temp_dir();
        path.push(format!("ppa-spill-{}-{}.bin", std::process::id(), bytes));
        {
            let mut f = std::fs::File::create(&path).expect("create spill file");
            f.write_all(&buf).expect("write spill file");
            f.sync_all().ok();
        }
        let mut back = Vec::with_capacity(buf.len());
        std::fs::File::open(&path)
            .expect("open spill file")
            .read_to_end(&mut back)
            .expect("read spill file");
        std::fs::remove_file(&path).ok();
        back
    } else {
        buf
    };

    let mut slice = data.as_slice();
    let n = u64::decode(&mut slice).expect("spill header") as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(T::decode(&mut slice).expect("truncated spill record"));
    }
    let stats = SpillStats {
        records,
        bytes,
        elapsed: start.elapsed(),
    };
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_codecs_roundtrip() {
        let mut buf = Vec::new();
        42u64.encode(&mut buf);
        7u32.encode(&mut buf);
        vec![1u8, 2, 3].encode(&mut buf);
        (5u64, 6u64).encode(&mut buf);
        let mut s = buf.as_slice();
        assert_eq!(u64::decode(&mut s), Some(42));
        assert_eq!(u32::decode(&mut s), Some(7));
        assert_eq!(Vec::<u8>::decode(&mut s), Some(vec![1, 2, 3]));
        assert_eq!(<(u64, u64)>::decode(&mut s), Some((5, 6)));
        assert!(u64::decode(&mut s).is_none());
    }

    #[test]
    fn decode_rejects_truncation() {
        let mut buf = Vec::new();
        1234u64.encode(&mut buf);
        let mut s = &buf[..4];
        assert!(u64::decode(&mut s).is_none());
        let mut buf2 = Vec::new();
        vec![9u8; 100].encode(&mut buf2);
        let mut s2 = &buf2[..20];
        assert!(Vec::<u8>::decode(&mut s2).is_none());
    }

    #[test]
    fn spill_roundtrip_in_memory() {
        let items: Vec<(u64, u64)> = (0..1000).map(|i| (i, i * i)).collect();
        let (back, stats) = spill_roundtrip(items.clone(), false);
        assert_eq!(back, items);
        assert_eq!(stats.records, 1000);
        assert!(stats.bytes >= 16_000);
    }

    #[test]
    fn spill_roundtrip_on_disk() {
        let items: Vec<u64> = (0..100).collect();
        let (back, stats) = spill_roundtrip(items.clone(), true);
        assert_eq!(back, items);
        assert_eq!(stats.records, 100);
    }

    #[test]
    fn chain_mode_default_is_in_memory() {
        assert_eq!(ChainMode::default(), ChainMode::InMemory);
    }
}
