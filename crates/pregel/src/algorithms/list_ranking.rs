//! The BPPA for list ranking (Section II, Figure 1 of the paper).
//!
//! Given a collection of linked lists where each element `v` stores a value
//! `val(v)` and a predecessor pointer `pred(v)` (`None` at the head), list
//! ranking computes `sum(v)`: the sum of the values from `v` back to the head
//! of its list. The algorithm doubles the distance covered by each
//! predecessor pointer every round, so it finishes in `O(log ℓ)` rounds where
//! `ℓ` is the longest list; each round costs two supersteps (a request and a
//! response), which is why the paper prefers list ranking over S-V for contig
//! labeling.
//!
//! The input **must not contain cycles**; lists with cycles never reach a
//! head. (The assembler's bidirectional variant detects this situation with an
//! aggregator and falls back to S-V; the generic function here simply stops at
//! the superstep cap and reports non-convergence.)

use crate::aggregate::NoAggregate;
use crate::config::PregelConfig;
use crate::metrics::Metrics;
use crate::radix::SortKey;
use crate::runner::run_from_pairs;
use crate::vertex::{Context, VertexKey, VertexProgram};

/// One element of a linked list to be ranked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ListItem<I> {
    /// Element identifier.
    pub id: I,
    /// The predecessor element, or `None` if this element is the list head.
    pub pred: Option<I>,
    /// The element's own value.
    pub value: u64,
}

#[derive(Debug, Clone)]
struct RankState<I> {
    pred: Option<I>,
    sum: u64,
}

#[derive(Debug, Clone)]
enum RankMsg<I> {
    /// "Send me your sum and predecessor" — carries the requester's ID.
    Request(I),
    /// The predecessor's reply: its sum and its own predecessor.
    Response { sum: u64, pred: Option<I> },
}

struct ListRankingProgram<I>(std::marker::PhantomData<I>);

impl<I: VertexKey + SortKey> VertexProgram for ListRankingProgram<I> {
    type Id = I;
    type Value = RankState<I>;
    type Message = RankMsg<I>;
    type Aggregate = NoAggregate;

    fn compute(
        &self,
        ctx: &mut Context<'_, Self>,
        id: I,
        value: &mut RankState<I>,
        messages: &mut [RankMsg<I>],
    ) {
        // Responses are produced in odd supersteps and consumed in even ones;
        // requests are produced in even supersteps and consumed in odd ones.
        // Updates therefore always read a consistent snapshot of the previous
        // round, which is what makes simultaneous pointer jumping correct.
        // Apply the (at most one) response first so that requesters are
        // answered from the updated snapshot.
        for msg in messages.iter() {
            if let RankMsg::Response { sum, pred } = msg {
                value.sum += *sum;
                value.pred = *pred;
            }
        }
        for msg in messages.iter() {
            if let RankMsg::Request(from) = msg {
                ctx.send_message(
                    *from,
                    RankMsg::Response {
                        sum: value.sum,
                        pred: value.pred,
                    },
                );
            }
        }
        if ctx.superstep().is_multiple_of(2) {
            match value.pred {
                Some(p) => ctx.send_message(p, RankMsg::Request(id)),
                None => ctx.vote_to_halt(),
            }
        } else {
            ctx.vote_to_halt();
        }
    }
}

/// Runs list ranking over the given elements and returns `(id, sum)` pairs
/// (in unspecified order) together with the job metrics.
pub fn list_ranking<I: VertexKey + SortKey>(
    items: Vec<ListItem<I>>,
    config: &PregelConfig,
) -> (Vec<(I, u64)>, Metrics) {
    let program = ListRankingProgram::<I>(std::marker::PhantomData);
    let pairs = items.into_iter().map(|item| {
        (
            item.id,
            RankState {
                pred: item.pred,
                sum: item.value,
            },
        )
    });
    let (set, metrics) = run_from_pairs(&program, config, pairs);
    let out = set
        .into_pairs()
        .into_iter()
        .map(|(id, st)| (id, st.sum))
        .collect();
    (out, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn config() -> PregelConfig {
        PregelConfig::with_workers(4).max_supersteps(200)
    }

    /// Brute-force oracle: follow predecessor pointers to the head.
    fn oracle<I: VertexKey + SortKey>(items: &[ListItem<I>]) -> HashMap<I, u64> {
        let by_id: HashMap<I, &ListItem<I>> = items.iter().map(|i| (i.id, i)).collect();
        items
            .iter()
            .map(|item| {
                let mut sum = item.value;
                let mut cur = item.pred;
                while let Some(p) = cur {
                    let pi = by_id[&p];
                    sum += pi.value;
                    cur = pi.pred;
                }
                (item.id, sum)
            })
            .collect()
    }

    #[test]
    fn paper_figure1_example() {
        // Five vertices v1..v5 in a chain, all values 1 → sums 1..5.
        let items: Vec<ListItem<u64>> = (1..=5)
            .map(|i| ListItem {
                id: i,
                pred: if i == 1 { None } else { Some(i - 1) },
                value: 1,
            })
            .collect();
        let (result, metrics) = list_ranking(items, &config());
        let result: HashMap<u64, u64> = result.into_iter().collect();
        for i in 1..=5u64 {
            assert_eq!(result[&i], i);
        }
        assert!(metrics.converged);
        // log2(5) ≈ 2.3 → 3 doubling rounds of 2 supersteps, plus slack.
        assert!(
            metrics.supersteps <= 10,
            "supersteps = {}",
            metrics.supersteps
        );
    }

    #[test]
    fn long_chain_uses_logarithmic_supersteps() {
        let n = 4096u64;
        let items: Vec<ListItem<u64>> = (0..n)
            .map(|i| ListItem {
                id: i,
                pred: if i == 0 { None } else { Some(i - 1) },
                value: 1,
            })
            .collect();
        let (result, metrics) = list_ranking(items, &config());
        let result: HashMap<u64, u64> = result.into_iter().collect();
        assert_eq!(result[&(n - 1)], n);
        assert_eq!(result[&0], 1);
        assert!(metrics.converged);
        // 2 supersteps per doubling round, log2(4096) = 12 rounds, plus slack.
        assert!(
            metrics.supersteps <= 2 * 12 + 6,
            "expected O(log n) supersteps, got {}",
            metrics.supersteps
        );
    }

    #[test]
    fn multiple_lists_and_singletons() {
        // Two separate chains and an isolated head.
        let mut items = vec![ListItem {
            id: 100u64,
            pred: None,
            value: 7,
        }];
        items.extend((0..10).map(|i| ListItem {
            id: i,
            pred: if i == 0 { None } else { Some(i - 1) },
            value: 2,
        }));
        items.extend((200..205).map(|i| ListItem {
            id: i,
            pred: if i == 200 { None } else { Some(i - 1) },
            value: i,
        }));
        let expected = oracle(&items);
        let (result, metrics) = list_ranking(items, &config());
        for (id, sum) in result {
            assert_eq!(sum, expected[&id], "vertex {id}");
        }
        assert!(metrics.converged);
    }

    #[test]
    fn random_values_match_oracle() {
        let n = 257u64;
        let items: Vec<ListItem<u64>> = (0..n)
            .map(|i| ListItem {
                id: i * 13 + 5, // non-contiguous IDs
                pred: if i == 0 { None } else { Some((i - 1) * 13 + 5) },
                value: (i * 7919) % 101,
            })
            .collect();
        let expected = oracle(&items);
        let (result, _metrics) = list_ranking(items, &config());
        for (id, sum) in result {
            assert_eq!(sum, expected[&id]);
        }
    }

    #[test]
    fn cycle_is_detected_as_non_convergence() {
        // A 4-cycle has no head; the job must stop at the cap and say so.
        let items: Vec<ListItem<u64>> = (0..4)
            .map(|i| ListItem {
                id: i,
                pred: Some((i + 3) % 4),
                value: 1,
            })
            .collect();
        let cfg = PregelConfig::with_workers(2).max_supersteps(40);
        let (_, metrics) = list_ranking(items, &cfg);
        assert!(!metrics.converged);
    }

    #[test]
    fn empty_input() {
        let (out, metrics) = list_ranking(Vec::<ListItem<u64>>::new(), &config());
        assert!(out.is_empty());
        assert!(metrics.converged);
    }
}
