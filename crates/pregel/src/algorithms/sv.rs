//! The simplified Shiloach–Vishkin connected-components PPA (Section II,
//! Figure 2 of the paper).
//!
//! Every vertex `v` maintains a parent pointer `D[v]`, initially pointing at
//! itself. Each round performs:
//!
//! 1. **tree hooking** — for each edge `(u, v)`, if `w = D[u]` is a tree root
//!    and `D[v] < w`, hook `w` under `D[v]` (i.e. `D[w] ← D[v]`);
//! 2. **shortcutting** — every vertex re-points itself at its grandparent
//!    (`D[v] ← D[D[v]]`).
//!
//! The paper's simplification drops the *star hooking* step of the original
//! PRAM algorithm. `D[v]` decreases monotonically and converges to the
//! smallest vertex ID of `v`'s connected component in `O(log n)` rounds. Each
//! round is implemented here as four supersteps:
//!
//! | phase (superstep mod 4) | action |
//! |---|---|
//! | 0 | apply pending shortcut responses, broadcast `D[v]` to neighbours |
//! | 1 | compute the minimum neighbour `D`, send a hook request to `D[v]` |
//! | 2 | roots apply hook requests; everyone asks its parent for `D[parent]` |
//! | 3 | parents answer; every vertex reports "did I change this round?" |
//!
//! Termination is detected with a [`BoolOr`] aggregator: as soon as a full
//! round passes with no parent change anywhere, the job stops.

use crate::aggregate::BoolOr;
use crate::config::PregelConfig;
use crate::metrics::Metrics;
use crate::radix::SortKey;
use crate::runner::run_from_pairs;
use crate::vertex::{Context, VertexKey, VertexProgram};

#[derive(Debug, Clone)]
struct SvState<I> {
    neighbors: Vec<I>,
    parent: I,
    changed_this_round: bool,
}

#[derive(Debug, Clone)]
enum SvMsg<I> {
    /// A neighbour's current parent (phase 0 → 1).
    NeighborParent(I),
    /// Request to hook the receiving root under the carried vertex (phase 1 → 2).
    Hook(I),
    /// "Tell me your parent" — carries the requester (phase 2 → 3).
    GetParent(I),
    /// The parent's parent (phase 3 → 0).
    ParentIs(I),
}

struct SvProgram<I>(std::marker::PhantomData<I>);

impl<I: VertexKey + SortKey> VertexProgram for SvProgram<I> {
    type Id = I;
    type Value = SvState<I>;
    type Message = SvMsg<I>;
    type Aggregate = BoolOr;

    fn compute(
        &self,
        ctx: &mut Context<'_, Self>,
        id: I,
        value: &mut SvState<I>,
        messages: &mut [SvMsg<I>],
    ) {
        match ctx.superstep() % 4 {
            0 => {
                // Apply shortcut responses from the previous round.
                for msg in messages.iter() {
                    if let SvMsg::ParentIs(p) = msg {
                        if *p < value.parent {
                            value.parent = *p;
                            value.changed_this_round = true;
                        }
                    }
                }
                // Tree hooking step 1: advertise D[v] along every edge.
                for i in 0..value.neighbors.len() {
                    let n = value.neighbors[i];
                    ctx.send_message(n, SvMsg::NeighborParent(value.parent));
                }
            }
            1 => {
                // Tree hooking step 2: forward the smallest neighbour parent to
                // our own parent, which will hook itself if it is a root.
                let mut best: Option<I> = None;
                for msg in messages.iter() {
                    if let SvMsg::NeighborParent(p) = msg {
                        best = Some(match best {
                            Some(b) if b <= *p => b,
                            _ => *p,
                        });
                    }
                }
                if let Some(x) = best {
                    if x < value.parent {
                        ctx.send_message(value.parent, SvMsg::Hook(x));
                    }
                }
            }
            2 => {
                // Tree hooking step 3: roots accept the smallest hook target.
                let mut best: Option<I> = None;
                for msg in messages.iter() {
                    if let SvMsg::Hook(x) = msg {
                        best = Some(match best {
                            Some(b) if b <= *x => b,
                            _ => *x,
                        });
                    }
                }
                if let Some(x) = best {
                    if value.parent == id && x < value.parent {
                        value.parent = x;
                        value.changed_this_round = true;
                    }
                }
                // Shortcutting step 1: ask the (possibly new) parent for its parent.
                if value.parent != id {
                    ctx.send_message(value.parent, SvMsg::GetParent(id));
                }
            }
            _ => {
                // Shortcutting step 2: answer grandparent queries.
                for msg in messages.iter() {
                    if let SvMsg::GetParent(from) = msg {
                        ctx.send_message(*from, SvMsg::ParentIs(value.parent));
                    }
                }
                // End of round: report whether anything changed and reset.
                ctx.aggregate(BoolOr(value.changed_this_round));
                value.changed_this_round = false;
            }
        }
    }

    fn should_terminate(&self, aggregate: &BoolOr, superstep: usize) -> bool {
        superstep % 4 == 3 && !aggregate.0
    }
}

/// Computes connected components of an undirected graph.
///
/// `adjacency` lists each vertex with its neighbours; for correct results
/// every edge should be present in both endpoint's lists (the function does
/// not symmetrise the input). Returns `(vertex, component)` pairs where the
/// component representative is the smallest vertex ID in the component,
/// together with the job metrics.
pub fn connected_components<I: VertexKey + SortKey>(
    adjacency: Vec<(I, Vec<I>)>,
    config: &PregelConfig,
) -> (Vec<(I, I)>, Metrics) {
    let program = SvProgram::<I>(std::marker::PhantomData);
    let pairs = adjacency.into_iter().map(|(id, neighbors)| {
        (
            id,
            SvState {
                neighbors,
                parent: id,
                changed_this_round: false,
            },
        )
    });
    let (set, metrics) = run_from_pairs(&program, config, pairs);
    let out = set
        .into_pairs()
        .into_iter()
        .map(|(id, st)| (id, st.parent))
        .collect();
    (out, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    fn config() -> PregelConfig {
        PregelConfig::with_workers(4).max_supersteps(400)
    }

    /// Union-find oracle.
    fn oracle(n: u64, edges: &[(u64, u64)]) -> HashMap<u64, u64> {
        let mut parent: Vec<u64> = (0..n).collect();
        fn find(parent: &mut [u64], x: u64) -> u64 {
            let mut r = x;
            while parent[r as usize] != r {
                r = parent[r as usize];
            }
            let mut c = x;
            while parent[c as usize] != r {
                let next = parent[c as usize];
                parent[c as usize] = r;
                c = next;
            }
            r
        }
        for &(a, b) in edges {
            let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
            if ra != rb {
                let (lo, hi) = (ra.min(rb), ra.max(rb));
                parent[hi as usize] = lo;
            }
        }
        // Map every vertex to the minimum id in its component.
        let mut min_of_root: HashMap<u64, u64> = HashMap::new();
        for v in 0..n {
            let r = find(&mut parent, v);
            let e = min_of_root.entry(r).or_insert(v);
            *e = (*e).min(v);
        }
        (0..n)
            .map(|v| (v, min_of_root[&find(&mut parent, v)]))
            .collect()
    }

    fn adjacency(n: u64, edges: &[(u64, u64)]) -> Vec<(u64, Vec<u64>)> {
        let mut adj: HashMap<u64, Vec<u64>> = (0..n).map(|v| (v, vec![])).collect();
        for &(a, b) in edges {
            adj.get_mut(&a).unwrap().push(b);
            adj.get_mut(&b).unwrap().push(a);
        }
        adj.into_iter().collect()
    }

    fn run_and_check(n: u64, edges: &[(u64, u64)]) -> Metrics {
        let expected = oracle(n, edges);
        let (result, metrics) = connected_components(adjacency(n, edges), &config());
        assert_eq!(result.len() as u64, n);
        for (v, comp) in result {
            assert_eq!(comp, expected[&v], "vertex {v}");
        }
        assert!(metrics.converged);
        metrics
    }

    #[test]
    fn path_graph() {
        let edges: Vec<(u64, u64)> = (0..9).map(|i| (i, i + 1)).collect();
        run_and_check(10, &edges);
    }

    #[test]
    fn two_components_and_isolated_vertices() {
        let edges = vec![(0, 1), (1, 2), (5, 6), (6, 7), (7, 5)];
        run_and_check(10, &edges);
    }

    #[test]
    fn star_and_cycle() {
        let mut edges: Vec<(u64, u64)> = (1..20).map(|i| (0, i)).collect();
        edges.extend((20..30).map(|i| (i, if i == 29 { 20 } else { i + 1 })));
        run_and_check(30, &edges);
    }

    #[test]
    fn no_edges_terminates_in_one_round() {
        let metrics = run_and_check(16, &[]);
        assert_eq!(metrics.supersteps, 4, "one round of 4 supersteps suffices");
    }

    #[test]
    fn long_path_uses_logarithmic_rounds() {
        let n = 2048u64;
        let edges: Vec<(u64, u64)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let metrics = run_and_check(n, &edges);
        // At most ~log2(n) + slack rounds of 4 supersteps each. This is the
        // qualitative contrast with list ranking: more supersteps per round
        // and messages along every edge every round.
        let rounds = metrics.supersteps / 4;
        assert!(rounds <= 16, "expected O(log n) rounds, got {rounds}");
        assert!(metrics.total_messages > 0);
    }

    #[test]
    fn empty_graph() {
        let (out, metrics) = connected_components(Vec::<(u64, Vec<u64>)>::new(), &config());
        assert!(out.is_empty());
        assert!(metrics.converged);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_matches_union_find(
            n in 1u64..60,
            edge_seeds in proptest::collection::vec((0u64..60, 0u64..60), 0..120)
        ) {
            let edges: Vec<(u64, u64)> = edge_seeds
                .into_iter()
                .map(|(a, b)| (a % n, b % n))
                .filter(|(a, b)| a != b)
                .collect();
            let expected = oracle(n, &edges);
            let (result, metrics) = connected_components(adjacency(n, &edges), &config());
            prop_assert!(metrics.converged);
            for (v, comp) in result {
                prop_assert_eq!(comp, expected[&v]);
            }
        }
    }
}
