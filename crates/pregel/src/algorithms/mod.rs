//! Generic *Practical Pregel Algorithms* (PPAs) from Section II of the paper.
//!
//! These are the two building blocks that the contig-labeling operation of the
//! assembler specialises:
//!
//! * [`list_ranking()`](fn@list_ranking) — the BPPA for list ranking (pointer jumping / doubling),
//!   `O(log n)` rounds of two supersteps each;
//! * [`connected_components`] — the *simplified* Shiloach–Vishkin algorithm
//!   (tree hooking + shortcutting, without star hooking), `O(log n)` rounds of
//!   four supersteps each.
//!
//! They are exposed here as reusable library functions so that they can be
//! benchmarked head-to-head on synthetic graphs (the micro benches) and used
//! outside of genome assembly (see the `pregel_toolkit` example).

pub mod list_ranking;
pub mod sv;

pub use list_ranking::{list_ranking, ListItem};
pub use sv::connected_components;
