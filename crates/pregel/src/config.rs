//! Runtime configuration for the Pregel engine.

use crate::engine::ExecCtx;
use serde::{Deserialize, Serialize};

/// Configuration for a Pregel job.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PregelConfig {
    /// Number of logical workers. Vertices are hash-partitioned over workers
    /// and each worker runs on its own thread, mirroring the
    /// machines-times-workers grid of the paper's cluster experiments.
    pub workers: usize,
    /// Safety cap on the number of supersteps; the engine aborts with a panic
    /// if a program exceeds it (all algorithms in this workspace are PPAs and
    /// terminate in `O(log n)` supersteps, so hitting the cap indicates a bug).
    pub max_supersteps: usize,
    /// Whether to record a per-superstep metrics breakdown in addition to the
    /// job totals.
    pub track_supersteps: bool,
    /// Persistent execution context to run on. When set, the job executes on
    /// the context's long-lived worker pool (and parks its shuffle planes in
    /// the context between jobs); when `None`, the runner builds a private
    /// single-job pool. Runtime-only: not part of the serialised
    /// configuration.
    #[serde(skip)]
    pub exec: Option<ExecCtx>,
}

impl PregelConfig {
    /// Creates a configuration with the given number of workers and default
    /// limits.
    pub fn with_workers(workers: usize) -> PregelConfig {
        PregelConfig {
            workers: workers.max(1),
            ..Default::default()
        }
    }

    /// Sets the superstep cap.
    pub fn max_supersteps(mut self, cap: usize) -> PregelConfig {
        self.max_supersteps = cap;
        self
    }

    /// Enables or disables the per-superstep metrics breakdown.
    pub fn track_supersteps(mut self, track: bool) -> PregelConfig {
        self.track_supersteps = track;
        self
    }

    /// Runs the job on the given persistent execution context. Also aligns
    /// `workers` with the context's pool size (the two must agree).
    pub fn exec_ctx(mut self, ctx: ExecCtx) -> PregelConfig {
        self.workers = ctx.workers();
        self.exec = Some(ctx);
        self
    }
}

impl Default for PregelConfig {
    fn default() -> PregelConfig {
        PregelConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            max_supersteps: 10_000,
            track_supersteps: true,
            exec: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_has_at_least_one_worker() {
        assert!(PregelConfig::default().workers >= 1);
    }

    #[test]
    fn with_workers_clamps_zero() {
        assert_eq!(PregelConfig::with_workers(0).workers, 1);
        assert_eq!(PregelConfig::with_workers(7).workers, 7);
    }

    #[test]
    fn builder_methods() {
        let c = PregelConfig::with_workers(2)
            .max_supersteps(99)
            .track_supersteps(false);
        assert_eq!(c.max_supersteps, 99);
        assert!(!c.track_supersteps);
        assert_eq!(c.exec, None);
    }

    #[test]
    fn exec_ctx_aligns_worker_count() {
        let ctx = ExecCtx::new(3);
        let c = PregelConfig::with_workers(8).exec_ctx(ctx.clone());
        assert_eq!(c.workers, 3);
        assert_eq!(c.exec, Some(ctx));
    }
}
