//! A small, fast, non-cryptographic hasher (the FxHash algorithm used by the
//! Rust compiler) for partitioning vertices and building inboxes.
//!
//! Vertex IDs in the assembler are 64-bit integers that the paper chose
//! precisely because "Pregel heavily checks vertex IDs for message delivery,
//! and integer IDs benefit from efficient word-level instructions"
//! (Section IV-A). The default SipHash hasher of `std::collections::HashMap`
//! would dominate the runtime of message grouping, so this module provides the
//! classic Fx multiply-rotate hasher instead. It is not DoS-resistant, which
//! is irrelevant here: keys are internally generated k-mer encodings.

use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash hasher state.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`], usable as the `S` parameter of `HashMap`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the Fx hasher.
///
/// The alias definition is the one place the std map is allowed to appear:
/// it *is* the replacement the rule points everyone at.
// ppa_lint: allow(no-siphash-hot-path)
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with the Fx hasher.
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

/// Hashes a single value with the Fx hasher; used for worker partitioning.
#[inline]
pub fn hash_one<T: std::hash::Hash>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(hash_one(&42u64), hash_one(&42u64));
        assert_ne!(hash_one(&42u64), hash_one(&43u64));
    }

    #[test]
    fn hashmap_works() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m[&1], "one");
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn hashes_strings_and_bytes() {
        assert_eq!(hash_one(&"hello"), hash_one(&"hello"));
        assert_ne!(hash_one(&"hello"), hash_one(&"hellp"));
        // Mixed-length byte slices exercise the remainder path.
        assert_ne!(
            hash_one(&[1u8, 2, 3].as_slice()),
            hash_one(&[1u8, 2].as_slice())
        );
    }

    #[test]
    fn distribution_is_reasonable() {
        // Partitioning by hash % workers should not collapse onto one worker.
        let workers = 8usize;
        let mut counts = vec![0usize; workers];
        for id in 0u64..8000 {
            counts[(hash_one(&id) % workers as u64) as usize] += 1;
        }
        for c in counts {
            assert!(c > 500, "partition badly skewed: {c}");
        }
    }
}
