//! The Ray-like strategy: greedy seed-and-extend on a single coordinator.
//!
//! Ray performs "simultaneous assembly of reads from a mix of technologies"
//! with a greedy extension heuristic driven by a master rank; in the paper's
//! evaluation it is the slowest assembler by an order of magnitude and its
//! runtime barely benefits from more workers. This baseline captures that
//! profile: every phase — (k+1)-mer counting, graph building and the greedy
//! walk — runs on a single thread regardless of the configured worker count,
//! and extension stops at any ambiguous branching whose coverage signal is not
//! decisive.

use crate::{Assembler, BaselineAssembly, BaselineParams};
use ppa_assembler::{edge_contributions, AsmNode, Edge, VertexType};
use ppa_seq::{Base, DnaString, Kmer, Orientation, ReadSet};
use std::collections::{HashMap, HashSet};
use std::time::Instant;

/// The Ray-like baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct RayLike;

/// Builds the k-mer graph single-threadedly from (k+1)-mer counts.
fn build_graph(reads: &ReadSet, k: usize, min_coverage: u32) -> HashMap<u64, AsmNode> {
    // Count canonical (k+1)-mers sequentially (the coordinator does the work).
    let mut counts: HashMap<u64, u32> = HashMap::new();
    for read in &reads.records {
        for segment in read.acgt_segments() {
            if segment.len() < k + 1 {
                continue;
            }
            let bases: Vec<Base> = segment
                .iter()
                .map(|&c| Base::from_ascii_checked(c).expect("ACGT segment"))
                .collect();
            for window in ppa_seq::kmer::kmers_of(&bases, k + 1) {
                *counts.entry(window.canonical().kmer.packed()).or_insert(0) += 1;
            }
        }
    }
    let mut nodes: HashMap<u64, AsmNode> = HashMap::new();
    for (packed, count) in counts {
        if count <= min_coverage {
            continue;
        }
        let kplus1 = Kmer::from_packed(packed, k + 1).expect("valid (k+1)-mer");
        let ((src, s_slot), (tgt, t_slot)) = edge_contributions(&kplus1);
        for (kmer, slot) in [(src, s_slot), (tgt, t_slot)] {
            let node = nodes
                .entry(kmer.packed())
                .or_insert_with(|| AsmNode::new_kmer(kmer));
            node.push_edge(Edge {
                neighbor: slot.neighbor_of(&kmer).packed(),
                direction: slot.direction,
                polarity: slot.polarity,
                coverage: count,
            });
        }
    }
    nodes
}

/// Chooses the extension edge Ray would follow from an oriented k-mer, or
/// `None` if the choice is ambiguous / absent.
fn choose_extension(node: &AsmNode, orientation: Orientation) -> Option<&Edge> {
    let exit = match orientation {
        Orientation::Forward => ppa_assembler::Side::Right,
        Orientation::ReverseComplement => ppa_assembler::Side::Left,
    };
    let mut candidates: Vec<&Edge> = node.edges_on(exit).collect();
    if candidates.is_empty() {
        return None;
    }
    candidates.sort_by_key(|e| std::cmp::Reverse(e.coverage));
    if candidates.len() >= 2 && candidates[1].coverage * 2 >= candidates[0].coverage {
        // No decisive winner: Ray's heuristic stops the extension.
        return None;
    }
    Some(candidates[0])
}

/// The orientation of the neighbour reached through `edge`, in walk direction.
fn next_orientation(edge: &Edge) -> Orientation {
    match edge.direction {
        ppa_assembler::Direction::Out => edge.polarity.target_label(),
        ppa_assembler::Direction::In => edge.polarity.source_label().flip(),
    }
}

impl Assembler for RayLike {
    fn name(&self) -> &'static str {
        "Ray-like"
    }

    fn assemble(&self, reads: &ReadSet, params: &BaselineParams) -> BaselineAssembly {
        let start = Instant::now();
        let k = params.k;
        let nodes = build_graph(reads, k, params.min_kmer_coverage);

        // Seeds ordered by decreasing coverage (Ray extends from reliable seeds
        // first), then by ID for determinism.
        let mut seeds: Vec<u64> = nodes.keys().copied().collect();
        seeds.sort_by_key(|id| {
            let n = &nodes[id];
            (std::cmp::Reverse(n.coverage), *id)
        });

        let mut visited: HashSet<u64> = HashSet::new();
        let mut contigs: Vec<DnaString> = Vec::new();
        let mut walk_steps = 0usize;

        for seed in seeds {
            if visited.contains(&seed) {
                continue;
            }
            let seed_node = &nodes[&seed];
            if seed_node.vertex_type() == VertexType::Branch {
                // Ray does not seed inside repeats.
                continue;
            }
            visited.insert(seed);
            // Extend to the right of the forward-oriented seed, then to the
            // left, building the contig sequence.
            let mut right_part: Vec<Base> = Vec::new();
            let mut left_part: Vec<Base> = Vec::new();
            for direction in [Orientation::Forward, Orientation::ReverseComplement] {
                let mut current = seed_node;
                let mut orientation = direction;
                while let Some(edge) = choose_extension(current, orientation) {
                    let Some(next) = nodes.get(&edge.neighbor) else {
                        break;
                    };
                    if visited.contains(&next.id) || next.vertex_type() == VertexType::Branch {
                        break;
                    }
                    walk_steps += 1;
                    visited.insert(next.id);
                    let next_or = next_orientation(edge);
                    let oriented = next.seq.oriented(next_or);
                    // Each extension adds exactly one new base.
                    let added = oriented.get(oriented.len() - 1);
                    if direction == Orientation::Forward {
                        right_part.push(added);
                    } else {
                        // Walking left in the seed's frame: the new base is the
                        // complement end; collect and reverse at the end.
                        left_part.push(oriented.get(oriented.len() - 1));
                    }
                    current = next;
                    orientation = next_or;
                }
            }
            // Assemble: reverse-complement of the left extension, the seed, the
            // right extension.
            let mut contig = DnaString::new();
            for b in left_part.iter().rev() {
                contig.push(b.complement());
            }
            contig.extend_from(&seed_node.seq.to_dna());
            contig.extend_from_bases(&right_part);
            if contig.len() > k {
                contigs.push(contig);
            }
        }

        let notes = format!(
            "single-threaded greedy extension: {} vertices, {} walk steps",
            nodes.len(),
            walk_steps
        );
        BaselineAssembly {
            contigs,
            elapsed: start.elapsed(),
            notes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppa_readsim::{GenomeConfig, ReadSimConfig};

    #[test]
    fn reconstructs_an_error_free_genome_reasonably() {
        let reference = GenomeConfig {
            length: 1_200,
            repeat_families: 0,
            seed: 8,
            ..Default::default()
        }
        .generate();
        let reads = ReadSimConfig::error_free(80, 20.0).simulate(&reference);
        let params = BaselineParams {
            k: 21,
            min_kmer_coverage: 0,
            workers: 4,
            ..Default::default()
        };
        let out = RayLike.assemble(&reads, &params);
        assert!(!out.contigs.is_empty());
        // Greedy extension along an unambiguous genome should recover most of it.
        assert!(
            out.largest_contig() >= reference.len() / 2,
            "largest contig {} of {}",
            out.largest_contig(),
            reference.len()
        );
        assert!(out.notes.contains("single-threaded"));
    }

    #[test]
    fn greedy_extension_produces_valid_substrings() {
        let reference = GenomeConfig {
            length: 900,
            repeat_families: 0,
            seed: 12,
            ..Default::default()
        }
        .generate();
        let reads = ReadSimConfig::error_free(70, 15.0).simulate(&reference);
        let params = BaselineParams {
            k: 19,
            min_kmer_coverage: 0,
            workers: 1,
            ..Default::default()
        };
        let out = RayLike.assemble(&reads, &params);
        let fwd = reference.sequence.to_ascii();
        let rc = reference.sequence.reverse_complement().to_ascii();
        for contig in &out.contigs {
            let s = contig.to_ascii();
            assert!(
                fwd.contains(&s) || rc.contains(&s),
                "contig of length {} is not a reference substring",
                s.len()
            );
        }
    }

    #[test]
    fn worker_count_does_not_change_the_result() {
        let reference = GenomeConfig {
            length: 800,
            repeat_families: 2,
            seed: 21,
            ..Default::default()
        }
        .generate();
        let reads = ReadSimConfig::error_free(60, 12.0).simulate(&reference);
        let one = RayLike.assemble(
            &reads,
            &BaselineParams {
                k: 17,
                min_kmer_coverage: 0,
                workers: 1,
                ..Default::default()
            },
        );
        let eight = RayLike.assemble(
            &reads,
            &BaselineParams {
                k: 17,
                min_kmer_coverage: 0,
                workers: 8,
                ..Default::default()
            },
        );
        let mut a: Vec<usize> = one.contigs.iter().map(|c| c.len()).collect();
        let mut b: Vec<usize> = eight.contigs.iter().map(|c| c.len()).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "Ray-like ignores the worker count");
    }

    #[test]
    fn empty_input() {
        let out = RayLike.assemble(&ReadSet::new(), &BaselineParams::default());
        assert!(out.contigs.is_empty());
    }
}
