//! The SWAP-Assembler-like strategy.
//!
//! SWAP-Assembler builds the same (k+1)-mer-based de Bruijn graph as
//! PPA-assembler but forms contigs through rounds of pairwise *edge merging*
//! (its "small-world asynchronous parallel" model), synchronising through
//! locks/one-sided communication rather than through a logarithmic
//! pointer-jumping primitive, and it performs no bubble/tip correction pass in
//! the configuration the paper benchmarks. This baseline reproduces that
//! profile on the shared substrate: DBG construction is identical to
//! PPA-assembler's, contig formation uses the (more expensive) simplified S-V
//! connected-components rounds, and no error correction or second merging
//! round is applied — which is what yields SWAP's shorter contigs and higher
//! misassembly counts in Table IV.

use crate::{Assembler, BaselineAssembly, BaselineParams};
use ppa_assembler::ops::construct::{build_dbg_on, ConstructConfig};
use ppa_assembler::ops::label_sv::label_contigs_sv_on;
use ppa_assembler::ops::merge::{merge_contigs_on, MergeConfig};
use ppa_pregel::ExecCtx;
use ppa_seq::ReadSet;
use std::time::Instant;

/// The SWAP-Assembler-like baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct SwapLike;

impl Assembler for SwapLike {
    fn name(&self) -> &'static str {
        "SWAP-like"
    }

    fn assemble(&self, reads: &ReadSet, params: &BaselineParams) -> BaselineAssembly {
        let start = Instant::now();
        let ctx = ExecCtx::new(params.workers);
        let construct = build_dbg_on(
            &ctx,
            reads,
            &ConstructConfig {
                k: params.k,
                min_coverage: params.min_kmer_coverage,
                batch_size: 1024,
            },
        );
        let nodes = construct.into_nodes();
        let labels = label_contigs_sv_on(&ctx, &nodes);
        let merged = merge_contigs_on(
            &ctx,
            &nodes,
            &labels.labels,
            &MergeConfig {
                k: params.k,
                tip_length_threshold: params.tip_length_threshold,
            },
        );
        let notes = format!(
            "S-V edge merging: {} supersteps / {} msgs; no error correction",
            labels.metrics.supersteps, labels.metrics.total_messages
        );
        BaselineAssembly {
            contigs: merged.contigs.into_iter().map(|c| c.seq.to_dna()).collect(),
            elapsed: start.elapsed(),
            notes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ppa::PpaAssembler;
    use ppa_readsim::{GenomeConfig, ReadSimConfig};

    #[test]
    fn assembles_an_error_free_genome() {
        let reference = GenomeConfig {
            length: 1_500,
            repeat_families: 0,
            seed: 14,
            ..Default::default()
        }
        .generate();
        let reads = ReadSimConfig::error_free(80, 20.0).simulate(&reference);
        let params = BaselineParams {
            k: 21,
            min_kmer_coverage: 0,
            workers: 2,
            ..Default::default()
        };
        let out = SwapLike.assemble(&reads, &params);
        assert!(!out.contigs.is_empty());
        assert!(out.largest_contig() >= reference.len() - 200);
    }

    #[test]
    fn uses_more_labeling_supersteps_than_ppa() {
        // The structural difference the paper measures in Tables II/III: S-V
        // rounds cost more supersteps and messages than list ranking.
        let reference = GenomeConfig {
            length: 2_000,
            repeat_families: 0,
            seed: 15,
            ..Default::default()
        }
        .generate();
        let reads = ReadSimConfig::error_free(90, 15.0).simulate(&reference);
        let params = BaselineParams {
            k: 21,
            min_kmer_coverage: 0,
            workers: 2,
            ..Default::default()
        };
        let swap = SwapLike.assemble(&reads, &params);
        let ppa = PpaAssembler::default().assemble(&reads, &params);
        let swap_steps: usize = swap
            .notes
            .split("edge merging: ")
            .nth(1)
            .and_then(|s| s.split(' ').next())
            .and_then(|s| s.parse().ok())
            .unwrap();
        let ppa_steps: usize = ppa
            .notes
            .split("label r1: ")
            .nth(1)
            .and_then(|s| s.split(' ').next())
            .and_then(|s| s.parse().ok())
            .unwrap();
        assert!(
            swap_steps > ppa_steps,
            "SWAP-like labeling ({swap_steps}) should cost more supersteps than PPA ({ppa_steps})"
        );
    }

    #[test]
    fn empty_input() {
        let out = SwapLike.assemble(&ReadSet::new(), &BaselineParams::default());
        assert!(out.contigs.is_empty());
    }
}
