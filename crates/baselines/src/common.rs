//! Shared helpers for the baseline strategies.

use ppa_pregel::fxhash::FxHashMap;
use ppa_pregel::mapreduce::{map_reduce_on, Emitter};
use ppa_pregel::ExecCtx;
use ppa_seq::kmer::CanonicalScanner;
use ppa_seq::{Base, FastxRecord, Kmer, ReadSet};
use std::collections::HashMap;

/// Counts canonical k-mers of the given size across all reads (splitting at
/// `N`s), in parallel, and drops those whose count does not exceed
/// `min_coverage`. (Private worker pool; prefer
/// [`count_canonical_kmers_on`] when the caller already has a context.)
pub fn count_canonical_kmers(
    reads: &ReadSet,
    k: usize,
    min_coverage: u32,
    workers: usize,
) -> HashMap<u64, u32> {
    count_canonical_kmers_on(&ExecCtx::new(workers), reads, k, min_coverage)
}

/// [`count_canonical_kmers`] on a caller-provided execution context.
pub fn count_canonical_kmers_on(
    ctx: &ExecCtx,
    reads: &ReadSet,
    k: usize,
    min_coverage: u32,
) -> HashMap<u64, u32> {
    if k == 0 || k > ppa_seq::kmer::MAX_K {
        // Out-of-range k yields no k-mers (the pre-scanner sliding-window
        // path behaved the same way) instead of panicking inside a worker.
        return HashMap::new();
    }
    let batches: Vec<&[FastxRecord]> = reads.records.chunks(512).collect();
    let counted = map_reduce_on(
        ctx,
        batches,
        |batch: &[FastxRecord], out: &mut Emitter<'_, u64, u32>| {
            let mut local: FxHashMap<u64, u32> = FxHashMap::default();
            let mut scanner = CanonicalScanner::new(k).expect("baseline k in range");
            for read in batch {
                for segment in read.acgt_segments() {
                    if segment.len() < k {
                        continue;
                    }
                    scanner.reset();
                    for &c in segment {
                        let base = Base::from_ascii_checked(c).expect("ACGT segment");
                        if let Some(canonical) = scanner.push(base) {
                            *local.entry(canonical.kmer.packed()).or_insert(0) += 1;
                        }
                    }
                }
            }
            for (key, count) in local {
                out.emit(key, count);
            }
        },
        |key: &u64, counts: &mut [u32], out: &mut Vec<(u64, u32)>| {
            let total: u32 = counts.iter().sum();
            if total > min_coverage {
                out.push((*key, total));
            }
        },
    );
    counted.into_iter().collect()
}

/// Renders a packed k-mer back into a [`Kmer`].
pub fn kmer_of(packed: u64, k: usize) -> Kmer {
    Kmer::from_packed(packed, k).expect("valid packed k-mer")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppa_seq::FastxRecord;

    fn reads(seqs: &[&str]) -> ReadSet {
        ReadSet::from_records(
            seqs.iter()
                .enumerate()
                .map(|(i, s)| FastxRecord::new_fasta(format!("r{i}"), s.as_bytes().to_vec()))
                .collect(),
        )
    }

    #[test]
    fn counts_merge_across_strands_and_reads() {
        let rs = reads(&["CTGCCGTACA", "TGTACGGCAG"]); // second is the reverse complement
        let counts = count_canonical_kmers(&rs, 4, 0, 2);
        assert!(!counts.is_empty());
        for (&packed, &count) in &counts {
            let kmer = kmer_of(packed, 4);
            assert!(kmer.is_canonical());
            assert_eq!(count, 2, "k-mer {kmer} should be seen once per strand");
        }
    }

    #[test]
    fn out_of_range_k_yields_no_kmers() {
        let rs = reads(&["ACGTACGTAC"]);
        assert!(count_canonical_kmers(&rs, 0, 0, 2).is_empty());
        assert!(count_canonical_kmers(&rs, 33, 0, 2).is_empty());
    }

    #[test]
    fn coverage_filter_applies() {
        let rs = reads(&["ACGTACGTAC", "ACGTACGTAC", "TTTTGGGGCC"]);
        let strict = count_canonical_kmers(&rs, 5, 1, 2);
        let lenient = count_canonical_kmers(&rs, 5, 0, 2);
        assert!(strict.len() < lenient.len());
    }
}
