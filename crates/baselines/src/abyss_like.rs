//! The ABySS-like strategy.
//!
//! Two properties of ABySS that the paper calls out are reproduced here:
//!
//! * **Existence-based edges** — ABySS "builds the DBG by letting each k-mer
//!   send messages to its 8 possible neighbours (with A/T/G/C
//!   prepended/appended) to establish edges", which creates an edge whenever
//!   both k-mers exist even if the connecting (k+1)-mer never occurred in a
//!   read (Section V). The probe phase below does exactly that, and the false
//!   edges both increase ambiguity (shorter contigs) and can join unrelated
//!   loci (misassemblies).
//! * **Step-by-step unitig growth** — contigs are grown by propagating a label
//!   one hop per superstep along unambiguous chains, so the number of
//!   supersteps is proportional to the longest contig instead of logarithmic
//!   (the paper's complexity argument for why PPA-assembler is faster).
//!
//! Error correction (ABySS's erosion/bubble popping) is not modelled; the
//! comparison focuses on the construction and unitig-growth differences the
//! paper discusses.

use crate::common::{count_canonical_kmers_on, kmer_of};
use crate::{Assembler, BaselineAssembly, BaselineParams};
use ppa_assembler::ops::merge::{merge_contigs_on, MergeConfig};
use ppa_assembler::{edge_contributions, AsmNode, Edge, EdgeSlot, NodeSeq, VertexType};
use ppa_pregel::aggregate::NoAggregate;
use ppa_pregel::{Context, ExecCtx, PregelConfig, VertexProgram, VertexSet};
use ppa_seq::{Base, ReadSet};
use std::collections::HashSet;
use std::time::Instant;

/// The ABySS-like baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct AbyssLike;

// ---------------------------------------------------------------------------
// Phase 1: existence-based edge probing.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct ProbeState {
    node: AsmNode,
    count: u32,
}

#[derive(Debug, Clone)]
struct Probe {
    /// Adjacency slot bit from the *receiver's* perspective.
    slot_bit: u8,
    sender_count: u32,
}

struct ProbeProgram;

impl VertexProgram for ProbeProgram {
    type Id = u64;
    type Value = ProbeState;
    type Message = Probe;
    type Aggregate = NoAggregate;

    fn compute(
        &self,
        ctx: &mut Context<'_, Self>,
        id: u64,
        value: &mut ProbeState,
        messages: &mut [Probe],
    ) {
        let own = match &value.node.seq {
            NodeSeq::Kmer(k) => *k,
            NodeSeq::Contig(_) => unreachable!("probe vertices are k-mers"),
        };
        if ctx.superstep() == 0 {
            // Probe all eight hypothetical neighbours.
            for base_code in 0..4u8 {
                let base = Base::from_code(base_code);
                // Right extension: (k+1)-mer = own ++ base; left: base ++ own.
                let right = own.append(base);
                let left = own.extend_left(base).append(own.last());
                for kplus1 in [right, left] {
                    let canon = kplus1.canonical().kmer;
                    let ((src, s_slot), (tgt, t_slot)) = edge_contributions(&canon);
                    let (other, other_slot) = if src.packed() == id {
                        (tgt.packed(), t_slot)
                    } else {
                        (src.packed(), s_slot)
                    };
                    if other == id {
                        continue; // self-loop probes are meaningless
                    }
                    ctx.send_message(
                        other,
                        Probe {
                            slot_bit: other_slot.bit() as u8,
                            sender_count: value.count,
                        },
                    );
                }
            }
        } else {
            let mut seen: HashSet<u8> = HashSet::new();
            for probe in messages.iter() {
                if !seen.insert(probe.slot_bit) {
                    continue;
                }
                let slot = EdgeSlot::from_bit(probe.slot_bit as u32);
                let neighbor = slot.neighbor_of(&own);
                value.node.push_edge(Edge {
                    neighbor: neighbor.packed(),
                    direction: slot.direction,
                    polarity: slot.polarity,
                    coverage: value.count.min(probe.sender_count),
                });
            }
        }
        ctx.vote_to_halt();
    }
}

// ---------------------------------------------------------------------------
// Phase 2: one-hop-per-superstep label propagation along unambiguous chains.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct PropState {
    unambiguous: bool,
    neighbors: Vec<u64>,
    label: u64,
}

struct PropProgram;

impl VertexProgram for PropProgram {
    type Id = u64;
    type Value = PropState;
    type Message = u64;
    type Aggregate = NoAggregate;

    fn compute(
        &self,
        ctx: &mut Context<'_, Self>,
        _id: u64,
        value: &mut PropState,
        messages: &mut [u64],
    ) {
        if !value.unambiguous {
            // Ambiguous vertices never adopt or forward labels, so labels only
            // spread along unambiguous chains.
            ctx.vote_to_halt();
            return;
        }
        let before = value.label;
        for &label in messages.iter() {
            value.label = value.label.min(label);
        }
        if ctx.superstep() == 0 || value.label < before {
            for i in 0..value.neighbors.len() {
                let n = value.neighbors[i];
                ctx.send_message(n, value.label);
            }
        }
        ctx.vote_to_halt();
    }
}

impl Assembler for AbyssLike {
    fn name(&self) -> &'static str {
        "ABySS-like"
    }

    fn assemble(&self, reads: &ReadSet, params: &BaselineParams) -> BaselineAssembly {
        let start = Instant::now();
        let k = params.k;
        // One persistent pool drives k-mer counting, both Pregel jobs and the
        // final merge.
        let ctx = ExecCtx::new(params.workers);
        let counts = count_canonical_kmers_on(&ctx, reads, k, params.min_kmer_coverage);

        // Probe phase: existence-based edges.
        let config = PregelConfig::with_workers(params.workers)
            .max_supersteps(2_000_000)
            .exec_ctx(ctx.clone());
        let probe_pairs = counts.iter().map(|(&packed, &count)| {
            (
                packed,
                ProbeState {
                    node: AsmNode::new_kmer(kmer_of(packed, k)),
                    count,
                },
            )
        });
        let mut probe_set: VertexSet<u64, ProbeState> =
            VertexSet::from_pairs(config.workers, probe_pairs);
        let probe_metrics = ppa_pregel::run(&ProbeProgram, &config, &mut probe_set);

        let nodes: Vec<AsmNode> = probe_set
            .into_pairs()
            .into_iter()
            .map(|(_, s)| s.node)
            .collect();

        // Unitig formation: one-hop-per-superstep label propagation.
        let prop_pairs = nodes.iter().map(|n| {
            (
                n.id,
                PropState {
                    unambiguous: n.vertex_type() != VertexType::Branch,
                    neighbors: n.neighbor_ids(),
                    label: n.id,
                },
            )
        });
        let mut prop_set: VertexSet<u64, PropState> =
            VertexSet::from_pairs(config.workers, prop_pairs);
        let prop_metrics = ppa_pregel::run(&PropProgram, &config, &mut prop_set);

        let labels: Vec<(u64, u64)> = prop_set
            .into_pairs()
            .into_iter()
            .filter(|(_, s)| s.unambiguous)
            .map(|(id, s)| (id, s.label))
            .collect();

        // Stitch groups into contigs (shared substrate).
        let merged = merge_contigs_on(
            &ctx,
            &nodes,
            &labels,
            &MergeConfig {
                k,
                tip_length_threshold: params.tip_length_threshold,
            },
        );

        let notes = format!(
            "probe: {} supersteps / {} msgs; unitig growth: {} supersteps / {} msgs",
            probe_metrics.supersteps,
            probe_metrics.total_messages,
            prop_metrics.supersteps,
            prop_metrics.total_messages
        );
        BaselineAssembly {
            contigs: merged.contigs.into_iter().map(|c| c.seq.to_dna()).collect(),
            elapsed: start.elapsed(),
            notes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ppa::PpaAssembler;
    use ppa_readsim::{GenomeConfig, ReadSimConfig};
    use ppa_seq::FastxRecord;

    #[test]
    fn assembles_an_error_free_genome() {
        let reference = GenomeConfig {
            length: 1_500,
            repeat_families: 0,
            seed: 2,
            ..Default::default()
        }
        .generate();
        let reads = ReadSimConfig::error_free(80, 20.0).simulate(&reference);
        let params = BaselineParams {
            k: 21,
            min_kmer_coverage: 0,
            workers: 2,
            ..Default::default()
        };
        let out = AbyssLike.assemble(&reads, &params);
        assert!(!out.contigs.is_empty());
        assert!(out.largest_contig() > 500);
        assert!(out.notes.contains("unitig growth"));
    }

    #[test]
    fn existence_edges_create_false_adjacency() {
        // The paper's Section-V example, scaled to k = 5: read "TTACGTG"
        // contains the 5-mer ACGTG and read "CGTGATT" contains CGTGA. They
        // overlap by k−1 = 4 bases, but the joining 6-mer "ACGTGA" occurs in
        // neither read, so PPA-assembler keeps the two loci separate while the
        // existence-based probing of ABySS links them into one contig.
        let reads = ReadSet::from_records(vec![
            FastxRecord::new_fasta("a", b"TTACGTG".to_vec()),
            FastxRecord::new_fasta("b", b"CGTGATT".to_vec()),
        ]);
        let params = BaselineParams {
            k: 5,
            min_kmer_coverage: 0,
            workers: 1,
            tip_length_threshold: 0,
            ..Default::default()
        };
        let abyss = AbyssLike.assemble(&reads, &params);
        let ppa = PpaAssembler::default().assemble(&reads, &params);
        assert!(
            ppa.largest_contig() <= 7,
            "PPA must not create the unsupported junction (largest = {})",
            ppa.largest_contig()
        );
        assert!(
            abyss.largest_contig() > ppa.largest_contig(),
            "ABySS-like should join the loci through the false edge ({} vs {})",
            abyss.largest_contig(),
            ppa.largest_contig()
        );
    }

    #[test]
    fn unitig_growth_needs_linear_supersteps() {
        let reference = GenomeConfig {
            length: 800,
            repeat_families: 0,
            seed: 4,
            ..Default::default()
        }
        .generate();
        let reads = ReadSimConfig::error_free(60, 15.0).simulate(&reference);
        let params = BaselineParams {
            k: 17,
            min_kmer_coverage: 0,
            workers: 2,
            ..Default::default()
        };
        let out = AbyssLike.assemble(&reads, &params);
        // The notes record the superstep count of the growth phase; for a
        // ~780-vertex unambiguous chain it must be far beyond the logarithmic
        // budget PPA-assembler needs (≈ 2·log₂ n ≈ 20).
        let growth_supersteps: usize = out
            .notes
            .split("unitig growth: ")
            .nth(1)
            .and_then(|s| s.split(' ').next())
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        assert!(
            growth_supersteps > 40,
            "expected linear superstep count, got {growth_supersteps}"
        );
    }
}
