//! Baseline assembler strategies used as comparison points for PPA-assembler.
//!
//! The paper compares PPA-assembler against ABySS, Ray and SWAP-Assembler
//! (Figure 12 and Tables IV/V) and discusses Spaler's strategy. Those systems
//! are large C++/MPI code bases that are not available in this environment, so
//! this crate re-implements the *algorithmic strategies* the paper attributes
//! to them, on top of the same sequence/Pregel substrate, so that the
//! comparison exercises exactly the design differences the paper discusses:
//!
//! * [`AbyssLike`] — builds DBG edges by letting every k-mer probe all eight
//!   hypothetical neighbours (which creates false edges, as the paper points
//!   out in Section V), and grows unitigs with a label-propagation process
//!   that needs a number of supersteps proportional to the contig length
//!   instead of logarithmic.
//! * [`RayLike`] — greedy seed-and-extend on a central coordinator: only the
//!   k-mer counting is parallel, the extension walk is sequential, making it
//!   the slowest strategy (as in Figure 12).
//! * [`SwapLike`] — a correct (k+1)-mer DBG like PPA-assembler, but contigs
//!   are formed by lock-based pairwise contraction of adjacent unambiguous
//!   vertices, round after round, without the list-ranking shortcut and
//!   without error correction.
//! * [`SpalerLike`] — Spaler's sampling heuristic: unambiguous paths are
//!   repeatedly broken at sampled vertices and the segments merged, with no
//!   guarantee of maximality, so contigs come out shorter.
//! * [`PpaAssembler`] — the toolkit of this repository behind the same trait,
//!   so harnesses can sweep all assemblers uniformly.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod abyss_like;
pub mod common;
pub mod ppa;
pub mod ray_like;
pub mod spaler_like;
pub mod swap_like;

use ppa_seq::{DnaString, ReadSet};
use std::time::Duration;

pub use abyss_like::AbyssLike;
pub use ppa::PpaAssembler;
pub use ray_like::RayLike;
pub use spaler_like::SpalerLike;
pub use swap_like::SwapLike;

/// Parameters shared by every assembler in a comparison run.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineParams {
    /// k-mer size.
    pub k: usize,
    /// Coverage threshold for k-mer / (k+1)-mer filtering.
    pub min_kmer_coverage: u32,
    /// Number of workers (threads / logical machines).
    pub workers: usize,
    /// Tip-length threshold (used by strategies that drop short dangling paths).
    pub tip_length_threshold: usize,
    /// Bubble edit-distance threshold (used by strategies with bubble removal).
    pub bubble_edit_distance: usize,
}

impl Default for BaselineParams {
    fn default() -> Self {
        BaselineParams {
            k: 31,
            min_kmer_coverage: 1,
            workers: 4,
            tip_length_threshold: 80,
            bubble_edit_distance: 5,
        }
    }
}

/// The output of one assembler run.
#[derive(Debug, Clone)]
pub struct BaselineAssembly {
    /// Assembled contig sequences.
    pub contigs: Vec<DnaString>,
    /// End-to-end wall-clock time of the run.
    pub elapsed: Duration,
    /// Free-form description of what the strategy did (superstep counts etc.).
    pub notes: String,
}

impl BaselineAssembly {
    /// Total assembled bases.
    pub fn total_length(&self) -> usize {
        self.contigs.iter().map(|c| c.len()).sum()
    }

    /// Largest contig length.
    pub fn largest_contig(&self) -> usize {
        self.contigs.iter().map(|c| c.len()).max().unwrap_or(0)
    }
}

/// A de novo assembler that can be driven by the comparison harnesses.
pub trait Assembler: Sync {
    /// Short display name (used as the column header in the tables).
    fn name(&self) -> &'static str;
    /// Runs the assembler over the reads.
    fn assemble(&self, reads: &ReadSet, params: &BaselineParams) -> BaselineAssembly;
}

/// All assemblers compared in the paper's evaluation, PPA-assembler first.
pub fn all_assemblers() -> Vec<Box<dyn Assembler>> {
    vec![
        Box::new(PpaAssembler::default()),
        Box::new(AbyssLike),
        Box::new(RayLike),
        Box::new(SwapLike),
    ]
}

/// Looks an assembler up by (case-insensitive) name.
pub fn assembler_by_name(name: &str) -> Option<Box<dyn Assembler>> {
    let lower = name.to_ascii_lowercase();
    match lower.as_str() {
        "ppa" | "ppa-assembler" => Some(Box::new(PpaAssembler::default())),
        "abyss" | "abysslike" | "abyss-like" => Some(Box::new(AbyssLike)),
        "ray" | "raylike" | "ray-like" => Some(Box::new(RayLike)),
        "swap" | "swaplike" | "swap-like" | "swap-assembler" => Some(Box::new(SwapLike)),
        "spaler" | "spalerlike" | "spaler-like" => Some(Box::new(SpalerLike::default())),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_contains_the_figure12_assemblers() {
        let names: Vec<&str> = all_assemblers().iter().map(|a| a.name()).collect();
        assert_eq!(
            names,
            vec!["PPA-assembler", "ABySS-like", "Ray-like", "SWAP-like"]
        );
    }

    #[test]
    fn lookup_by_name() {
        for name in ["ppa", "abyss", "ray", "swap", "spaler"] {
            assert!(assembler_by_name(name).is_some(), "{name} should resolve");
        }
        assert!(assembler_by_name("velvet").is_none());
    }

    #[test]
    fn baseline_assembly_accessors() {
        let a = BaselineAssembly {
            contigs: vec![
                DnaString::from_ascii("ACGTACGT").unwrap(),
                DnaString::from_ascii("ACG").unwrap(),
            ],
            elapsed: Duration::from_millis(1),
            notes: String::new(),
        };
        assert_eq!(a.total_length(), 11);
        assert_eq!(a.largest_contig(), 8);
    }
}
