//! The Spaler-like strategy.
//!
//! Spaler (Spark/GraphX) forms contigs by repeatedly *sampling* vertices that
//! break each unambiguous path into segments and merging segments that meet at
//! a sampled boundary, stopping once ⟨m-n⟩-typed vertices account for more
//! than a third of the graph; as the paper notes, "this heuristic provides no
//! guarantee of path maximality". Spaler itself is closed source and excluded
//! from the paper's runtime comparison, so this baseline exists for quality
//! comparisons only: it reuses the shared DBG substrate and models the effect
//! of `rounds` sampling iterations — any path boundary that was never sampled
//! remains a breakpoint, so contigs come out shorter than the maximal
//! unambiguous paths PPA-assembler produces.

use crate::{Assembler, BaselineAssembly, BaselineParams};
use ppa_assembler::ops::construct::{build_dbg_on, ConstructConfig};
use ppa_assembler::ops::label::label_contigs_lr_on;
use ppa_assembler::ops::merge::{merge_contigs_on, MergeConfig};
use ppa_pregel::ExecCtx;
use ppa_seq::{DnaString, ReadSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// The Spaler-like baseline.
#[derive(Debug, Clone)]
pub struct SpalerLike {
    /// Number of sampling/merging iterations.
    pub rounds: usize,
    /// Probability that a given boundary vertex is sampled (and thus merged)
    /// in one iteration.
    pub sample_probability: f64,
    /// RNG seed for the sampling.
    pub seed: u64,
}

impl Default for SpalerLike {
    fn default() -> Self {
        SpalerLike {
            rounds: 3,
            sample_probability: 0.5,
            seed: 0x5354,
        }
    }
}

impl Assembler for SpalerLike {
    fn name(&self) -> &'static str {
        "Spaler-like"
    }

    fn assemble(&self, reads: &ReadSet, params: &BaselineParams) -> BaselineAssembly {
        let start = Instant::now();
        let ctx = ExecCtx::new(params.workers);
        let construct = build_dbg_on(
            &ctx,
            reads,
            &ConstructConfig {
                k: params.k,
                min_coverage: params.min_kmer_coverage,
                batch_size: 1024,
            },
        );
        let nodes = construct.into_nodes();
        let labels = label_contigs_lr_on(&ctx, &nodes);
        let merged = merge_contigs_on(
            &ctx,
            &nodes,
            &labels.labels,
            &MergeConfig {
                k: params.k,
                tip_length_threshold: params.tip_length_threshold,
            },
        );

        // Model the sampling heuristic: a boundary between two consecutive
        // segments is only merged if it was sampled in at least one of the
        // `rounds` iterations; unsampled boundaries remain contig breakpoints.
        let survive_probability = (1.0 - self.sample_probability).powi(self.rounds as i32);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let k = params.k;
        let mut contigs: Vec<DnaString> = Vec::new();
        let mut breakpoints = 0usize;
        for contig in merged.contigs {
            let seq = contig.seq.to_dna();
            let mut piece = DnaString::new();
            for i in 0..seq.len() {
                piece.push(seq.get(i));
                let is_internal_boundary = piece.len() >= k && i + k <= seq.len();
                if is_internal_boundary && rng.gen_bool(survive_probability) {
                    breakpoints += 1;
                    contigs.push(std::mem::take(&mut piece));
                    // Consecutive segments overlap by k−1, as the unmerged
                    // segments of the real heuristic would.
                    for j in (i + 1).saturating_sub(k - 1)..=i {
                        piece.push(seq.get(j));
                    }
                }
            }
            if piece.len() >= k {
                contigs.push(piece);
            }
        }

        let notes = format!(
            "{} sampling rounds, p = {}; {} unmerged boundaries left",
            self.rounds, self.sample_probability, breakpoints
        );
        BaselineAssembly {
            contigs,
            elapsed: start.elapsed(),
            notes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ppa::PpaAssembler;
    use ppa_readsim::{GenomeConfig, ReadSimConfig};

    fn dataset() -> ReadSet {
        let reference = GenomeConfig {
            length: 3_000,
            repeat_families: 0,
            seed: 33,
            ..Default::default()
        }
        .generate();
        ReadSimConfig::error_free(90, 20.0).simulate(&reference)
    }

    #[test]
    fn produces_shorter_contigs_than_ppa() {
        let reads = dataset();
        let params = BaselineParams {
            k: 21,
            min_kmer_coverage: 0,
            workers: 2,
            ..Default::default()
        };
        let spaler = SpalerLike::default().assemble(&reads, &params);
        let ppa = PpaAssembler::default().assemble(&reads, &params);
        assert!(!spaler.contigs.is_empty());
        assert!(
            spaler.largest_contig() <= ppa.largest_contig(),
            "Spaler-like ({}) must not exceed the maximal paths of PPA ({})",
            spaler.largest_contig(),
            ppa.largest_contig()
        );
        assert!(spaler.contigs.len() >= ppa.contigs.len());
    }

    #[test]
    fn more_rounds_merge_more_boundaries() {
        let reads = dataset();
        let params = BaselineParams {
            k: 21,
            min_kmer_coverage: 0,
            workers: 2,
            ..Default::default()
        };
        let few = SpalerLike {
            rounds: 1,
            ..Default::default()
        }
        .assemble(&reads, &params);
        let many = SpalerLike {
            rounds: 8,
            ..Default::default()
        }
        .assemble(&reads, &params);
        assert!(
            many.contigs.len() <= few.contigs.len(),
            "more sampling rounds leave fewer breakpoints ({} vs {})",
            many.contigs.len(),
            few.contigs.len()
        );
        assert!(many.largest_contig() >= few.largest_contig());
    }
}
