//! PPA-assembler behind the common [`Assembler`] trait.

use crate::{Assembler, BaselineAssembly, BaselineParams};
use ppa_assembler::pipeline::{GraphState, Pipeline};
use ppa_assembler::stats::WorkflowStats;
use ppa_assembler::{AssemblyConfig, LabelingAlgorithm};
use ppa_seq::ReadSet;
use std::time::Instant;

/// The toolkit of this repository, run with its standard evaluation workflow
/// (①②③④⑤⑥②③ — one error-correction round followed by contig re-growth).
#[derive(Debug, Clone, Default)]
pub struct PpaAssembler {
    /// Use the simplified S-V algorithm for contig labeling instead of
    /// bidirectional list ranking.
    pub use_sv_labeling: bool,
}

impl Assembler for PpaAssembler {
    fn name(&self) -> &'static str {
        "PPA-assembler"
    }

    fn assemble(&self, reads: &ReadSet, params: &BaselineParams) -> BaselineAssembly {
        let start = Instant::now();
        let config = AssemblyConfig {
            k: params.k,
            min_kmer_coverage: params.min_kmer_coverage,
            tip_length_threshold: params.tip_length_threshold,
            bubble_edit_distance: params.bubble_edit_distance,
            workers: params.workers,
            labeling: if self.use_sv_labeling {
                LabelingAlgorithm::SimplifiedSV
            } else {
                LabelingAlgorithm::ListRanking
            },
            error_correction_rounds: 1,
            min_contig_length: 0,
            spill: ppa_pregel::SpillPolicy::Off,
            exec: None,
        };
        // The paper-workflow pipeline driven directly, with the stats
        // observer attached — the same stages `workflow::assemble` runs, on
        // one persistent pool per run so the comparison harnesses measure the
        // same engine configuration.
        let ctx = ppa_pregel::ExecCtx::new(params.workers);
        let mut stats = WorkflowStats::default();
        let mut state = GraphState::new(reads);
        Pipeline::paper_workflow(&config)
            .observe(&mut stats)
            .run(&mut state, &ctx);
        let notes = format!(
            "label r1: {} supersteps / {} msgs; label r2: {} supersteps / {} msgs; N50 {} -> {}",
            stats.label_round1.supersteps,
            stats.label_round1.messages,
            stats
                .label_round2
                .first()
                .map(|l| l.supersteps)
                .unwrap_or(0),
            stats.label_round2.first().map(|l| l.messages).unwrap_or(0),
            stats.n50_after_round1,
            stats.n50_final,
        );
        BaselineAssembly {
            contigs: state.output.into_iter().map(|c| c.sequence).collect(),
            elapsed: start.elapsed(),
            notes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppa_readsim::{GenomeConfig, ReadSimConfig};

    #[test]
    fn ppa_wrapper_assembles_a_small_genome() {
        let reference = GenomeConfig {
            length: 2_000,
            repeat_families: 0,
            seed: 9,
            ..Default::default()
        }
        .generate();
        let reads = ReadSimConfig::error_free(100, 20.0).simulate(&reference);
        let params = BaselineParams {
            k: 21,
            min_kmer_coverage: 0,
            workers: 2,
            ..Default::default()
        };
        let out = PpaAssembler::default().assemble(&reads, &params);
        assert!(!out.contigs.is_empty());
        assert!(out.largest_contig() >= reference.len() - 200);
        assert!(out.notes.contains("supersteps"));
    }
}
