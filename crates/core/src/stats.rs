//! Workflow statistics: everything the paper's evaluation section reports.
//!
//! The bench harnesses regenerate the paper's tables directly from
//! [`WorkflowStats`]: per-operation wall-clock times (Figure 12), the
//! superstep/message/runtime metrics of the two contig-labeling rounds
//! (Tables II and III), the vertex-count reduction across rounds and the N50
//! before/after the second merging round (claims in Section V).

use ppa_pregel::mapreduce::MapReduceMetrics;
use ppa_pregel::Metrics;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// The N50 of a set of contig lengths — re-exported from [`ppa_quality`],
/// the workspace's single Nx implementation (see [`ppa_quality::nx`]).
pub use ppa_quality::n50;

/// Wall-clock timing of one pipeline stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageTiming {
    /// Stage name (e.g. `"① DBG construction"`).
    pub stage: String,
    /// Elapsed wall-clock time.
    pub elapsed: Duration,
}

/// Statistics of one contig-labeling run, as reported in Tables II/III.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LabelStats {
    /// Number of supersteps.
    pub supersteps: usize,
    /// Number of messages.
    pub messages: u64,
    /// Wall-clock runtime.
    pub elapsed: Duration,
    /// Whether the cycle fallback (S-V over remaining vertices) ran.
    pub used_cycle_fallback: bool,
    /// Number of vertices that received a label.
    pub labeled_vertices: usize,
    /// Number of ambiguous vertices.
    pub ambiguous_vertices: usize,
    /// Mean fraction of vertices computing per superstep (active / total);
    /// near 1.0 is a dense frontier throughout, values near 0 mean the
    /// engine's bitset walk skipped nearly the whole column on most
    /// supersteps.
    pub avg_frontier_density: f64,
    /// Peak estimated heap footprint of the Pregel vertex store's columns
    /// during the labeling job (see `VertexSet::resident_bytes`).
    pub peak_store_resident_bytes: u64,
    /// Cooperative job-control polls performed at the labeling job's
    /// superstep boundaries (0 when no control handle was installed).
    pub cancellation_checks: u64,
    /// Bytes the labeling job spilled to disk (shuffle runs + sealed
    /// partition extents); 0 for a fully resident run.
    pub spilled_bytes: u64,
    /// Bytes the labeling job read back from its spill files.
    pub spill_read_bytes: u64,
    /// Spill artefacts written (run files + extent images).
    pub spilled_runs: u64,
}

impl LabelStats {
    /// Builds label stats from a labeling outcome's metrics.
    pub fn from_metrics(
        metrics: &Metrics,
        labeled: usize,
        ambiguous: usize,
        fallback: bool,
    ) -> Self {
        LabelStats {
            supersteps: metrics.supersteps,
            messages: metrics.total_messages,
            elapsed: metrics.elapsed,
            used_cycle_fallback: fallback,
            labeled_vertices: labeled,
            ambiguous_vertices: ambiguous,
            avg_frontier_density: metrics.avg_frontier_density,
            peak_store_resident_bytes: metrics.peak_store_resident_bytes,
            cancellation_checks: metrics.total_cancellation_checks,
            spilled_bytes: metrics.spilled_bytes,
            spill_read_bytes: metrics.spill_read_bytes,
            spilled_runs: metrics.spilled_runs,
        }
    }
}

/// Statistics of one merging round.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MergeStats {
    /// Label groups processed.
    pub groups: usize,
    /// Contigs emitted.
    pub contigs: usize,
    /// Short dangling groups dropped as tips.
    pub dropped_tips: usize,
    /// Mini-MapReduce metrics of the grouping pass.
    pub mapreduce: MapReduceMetrics,
}

/// Statistics of error correction (operations ④ and ⑤).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CorrectionStats {
    /// Contigs pruned by bubble filtering.
    pub bubbles_pruned: usize,
    /// Bubble candidate groups examined.
    pub bubble_groups: usize,
    /// k-mer vertices deleted by tip removing.
    pub tip_kmers_deleted: usize,
    /// Contigs deleted by tip removing.
    pub tip_contigs_deleted: usize,
    /// Pregel metrics of the tip-removal job.
    pub tip_metrics: Metrics,
}

/// Graph sizes across the pipeline — the vertex-count reduction the paper
/// highlights (46.97 M → 1.00 M → 68,264 for HC-2).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeCounts {
    /// k-mer vertices right after DBG construction.
    pub kmer_vertices: usize,
    /// Nodes (ambiguous k-mers + contigs) after the first merging round.
    pub after_first_merge: usize,
    /// Nodes after the final merging round.
    pub after_final_merge: usize,
}

/// Every statistic collected while running the standard workflow.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WorkflowStats {
    /// DBG-construction statistics.
    pub construct: crate::ops::construct::ConstructStats,
    /// Labeling statistics of the first round (unambiguous k-mers → Table II).
    pub label_round1: LabelStats,
    /// Merging statistics of the first round.
    pub merge_round1: MergeStats,
    /// Error-correction statistics (one entry per correction round).
    pub corrections: Vec<CorrectionStats>,
    /// Labeling statistics of the later rounds (contigs → Table III).
    pub label_round2: Vec<LabelStats>,
    /// Merging statistics of the later rounds.
    pub merge_round2: Vec<MergeStats>,
    /// Vertex counts across the pipeline.
    pub node_counts: NodeCounts,
    /// N50 of the contigs produced by the first merging round.
    pub n50_after_round1: usize,
    /// N50 of the final contigs.
    pub n50_final: usize,
    /// Per-stage wall-clock timings, in execution order.
    pub timings: Vec<StageTiming>,
    /// End-to-end wall-clock time.
    pub total_elapsed: Duration,
    /// Why and where the run was cut short by its job control, e.g.
    /// `"deadline exceeded (at stage label)"` — `None` for a run that
    /// completed (or was never given a control handle). Set by the
    /// pipeline-observer `on_cancelled` hook.
    pub cancelled: Option<String>,
}

impl WorkflowStats {
    /// Records a stage timing.
    pub fn record_stage(&mut self, stage: impl Into<String>, elapsed: Duration) {
        self.timings.push(StageTiming {
            stage: stage.into(),
            elapsed,
        });
    }

    /// Sum of all recorded stage timings (should closely match
    /// `total_elapsed`).
    pub fn stage_time_sum(&self) -> Duration {
        self.timings.iter().map(|t| t.elapsed).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn n50_matches_hand_computed_examples() {
        // Standard example: lengths 2,2,2,3,3,4,8,8 → total 32, half 16;
        // sorted desc 8,8,4,3,3,2,2,2 → cumulative 8,16 → N50 = 8.
        assert_eq!(n50(&[2, 2, 2, 3, 3, 4, 8, 8]), 8);
        // Single contig.
        assert_eq!(n50(&[100]), 100);
        // Even split between two contigs: the first already covers half.
        assert_eq!(n50(&[50, 50]), 50);
        // Heavier tail.
        assert_eq!(n50(&[1, 1, 1, 1, 10]), 10);
        assert_eq!(n50(&[]), 0);
    }

    #[test]
    fn n50_is_invariant_to_order() {
        let a = n50(&[5, 9, 1, 3, 7]);
        let b = n50(&[9, 7, 5, 3, 1]);
        assert_eq!(a, b);
    }

    #[test]
    fn stage_timings_accumulate() {
        let mut stats = WorkflowStats::default();
        stats.record_stage("construct", Duration::from_millis(5));
        stats.record_stage("label", Duration::from_millis(3));
        assert_eq!(stats.timings.len(), 2);
        assert_eq!(stats.stage_time_sum(), Duration::from_millis(8));
        assert_eq!(stats.timings[0].stage, "construct");
    }

    #[test]
    fn label_stats_from_metrics() {
        let metrics = Metrics {
            supersteps: 12,
            total_messages: 345,
            elapsed: Duration::from_millis(7),
            converged: true,
            avg_frontier_density: 0.8,
            peak_store_resident_bytes: 4096,
            ..Default::default()
        };
        let ls = LabelStats::from_metrics(&metrics, 100, 7, true);
        assert_eq!(ls.supersteps, 12);
        assert_eq!(ls.messages, 345);
        assert_eq!(ls.labeled_vertices, 100);
        assert_eq!(ls.ambiguous_vertices, 7);
        assert!(ls.used_cycle_fallback);
        assert_eq!(ls.avg_frontier_density, 0.8);
        assert_eq!(ls.peak_store_resident_bytes, 4096);
    }
}
