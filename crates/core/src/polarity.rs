//! Edge polarity ⟨X:Y⟩ and the left/right *side* abstraction.
//!
//! Because reads come from both strands, the de Bruijn graph uses canonical
//! k-mers as vertices and every edge carries a **polarity** ⟨X:Y⟩ recording
//! whether the source (X) and target (Y) k-mers were observed in canonical
//! orientation (`L`) or reverse-complemented (`H`) — Section III,
//! "Directionality". Property 1 of the paper states that the edge `(u,v)` with
//! polarity ⟨X:Y⟩ is the same physical adjacency as `(v,u)` with
//! polarity ⟨Ȳ:X̄⟩; [`Polarity::reversed`] implements exactly that.
//!
//! For reasoning about vertex types and contig stitching it is convenient to
//! translate (direction, polarity) into which **side** of the canonical k-mer
//! the edge attaches to: an edge that extends the canonical sequence to the
//! right attaches on the [`Side::Right`], one that extends it to the left on
//! the [`Side::Left`]. A vertex is unambiguous (type ⟨1-1⟩) exactly when it has
//! one edge on each side.

use ppa_seq::Orientation;
use serde::{Deserialize, Serialize};

/// Whether, in a given edge record, the owning vertex is the edge's source or
/// target (i.e. the edge is an out-edge or in-edge of that vertex).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// The owning vertex is the source of the edge.
    Out,
    /// The owning vertex is the target of the edge.
    In,
}

impl Direction {
    /// The opposite direction.
    #[inline]
    pub fn reversed(self) -> Direction {
        match self {
            Direction::Out => Direction::In,
            Direction::In => Direction::Out,
        }
    }
}

/// The side of a canonical k-mer (or contig) sequence that an edge attaches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Side {
    /// The edge extends the canonical sequence to the left (before its first base).
    Left,
    /// The edge extends the canonical sequence to the right (after its last base).
    Right,
}

impl Side {
    /// The opposite side.
    #[inline]
    pub fn opposite(self) -> Side {
        match self {
            Side::Left => Side::Right,
            Side::Right => Side::Left,
        }
    }
}

/// Edge polarity ⟨source label : target label⟩ (Figure 6 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Polarity {
    /// ⟨L:L⟩ — both end k-mers observed in canonical orientation.
    LL,
    /// ⟨L:H⟩ — source canonical, target reverse-complemented.
    LH,
    /// ⟨H:L⟩ — source reverse-complemented, target canonical.
    HL,
    /// ⟨H:H⟩ — both reverse-complemented.
    HH,
}

impl Polarity {
    /// Builds a polarity from the two observed orientations.
    #[inline]
    pub fn from_labels(source: Orientation, target: Orientation) -> Polarity {
        use Orientation::{Forward as L, ReverseComplement as H};
        match (source, target) {
            (L, L) => Polarity::LL,
            (L, H) => Polarity::LH,
            (H, L) => Polarity::HL,
            (H, H) => Polarity::HH,
        }
    }

    /// The label on the source side.
    #[inline]
    pub fn source_label(self) -> Orientation {
        match self {
            Polarity::LL | Polarity::LH => Orientation::Forward,
            Polarity::HL | Polarity::HH => Orientation::ReverseComplement,
        }
    }

    /// The label on the target side.
    #[inline]
    pub fn target_label(self) -> Orientation {
        match self {
            Polarity::LL | Polarity::HL => Orientation::Forward,
            Polarity::LH | Polarity::HH => Orientation::ReverseComplement,
        }
    }

    /// Property 1: the polarity of the same edge read in the opposite
    /// direction — the labels swap positions and are complemented.
    #[inline]
    pub fn reversed(self) -> Polarity {
        Polarity::from_labels(self.target_label().flip(), self.source_label().flip())
    }

    /// Index in `0..4`, used by the packed 32-bit adjacency bitmap.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Polarity::LL => 0,
            Polarity::LH => 1,
            Polarity::HL => 2,
            Polarity::HH => 3,
        }
    }

    /// Inverse of [`Polarity::index`].
    #[inline]
    pub fn from_index(idx: usize) -> Polarity {
        match idx & 0b11 {
            0 => Polarity::LL,
            1 => Polarity::LH,
            2 => Polarity::HL,
            _ => Polarity::HH,
        }
    }

    /// Display form matching the paper, e.g. `⟨L:H⟩`.
    pub fn notation(self) -> &'static str {
        match self {
            Polarity::LL => "<L:L>",
            Polarity::LH => "<L:H>",
            Polarity::HL => "<H:L>",
            Polarity::HH => "<H:H>",
        }
    }
}

impl std::fmt::Display for Polarity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.notation())
    }
}

/// The label the *owning* vertex has on an edge stored with the given
/// direction and polarity.
#[inline]
pub fn own_label(direction: Direction, polarity: Polarity) -> Orientation {
    match direction {
        Direction::Out => polarity.source_label(),
        Direction::In => polarity.target_label(),
    }
}

/// The label the *neighbour* vertex has on an edge stored with the given
/// direction and polarity.
#[inline]
pub fn neighbor_label(direction: Direction, polarity: Polarity) -> Orientation {
    match direction {
        Direction::Out => polarity.target_label(),
        Direction::In => polarity.source_label(),
    }
}

/// The side of the owning vertex's canonical sequence that the edge attaches
/// to.
///
/// An out-edge where the vertex is observed canonically (`L`) extends the
/// sequence on the right; reverse-complementing the observation (`H`) flips
/// the side, as does looking at an in-edge instead of an out-edge.
#[inline]
pub fn side_of(direction: Direction, polarity: Polarity) -> Side {
    use Orientation::{Forward, ReverseComplement};
    match (direction, own_label(direction, polarity)) {
        (Direction::Out, Forward) | (Direction::In, ReverseComplement) => Side::Right,
        (Direction::Out, ReverseComplement) | (Direction::In, Forward) => Side::Left,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppa_seq::Orientation::{Forward as L, ReverseComplement as H};
    use proptest::prelude::*;

    const ALL: [Polarity; 4] = [Polarity::LL, Polarity::LH, Polarity::HL, Polarity::HH];

    #[test]
    fn labels_roundtrip() {
        for p in ALL {
            assert_eq!(Polarity::from_labels(p.source_label(), p.target_label()), p);
            assert_eq!(Polarity::from_index(p.index()), p);
        }
        assert_eq!(Polarity::from_labels(L, H), Polarity::LH);
        assert_eq!(Polarity::from_labels(H, L), Polarity::HL);
    }

    #[test]
    fn property_1_examples_from_paper() {
        // "Edge (u,v) with polarity ⟨X:Y⟩ is equivalent to edge (v,u) with
        // polarity ⟨Ȳ:X̄⟩." The paper's example: "AC" --<L:H>--> "AG" is
        // equivalent to "AG" --<L:H>--> "AC".
        assert_eq!(Polarity::LH.reversed(), Polarity::LH);
        assert_eq!(Polarity::HL.reversed(), Polarity::HL);
        assert_eq!(Polarity::LL.reversed(), Polarity::HH);
        assert_eq!(Polarity::HH.reversed(), Polarity::LL);
    }

    #[test]
    fn reversal_is_involution() {
        for p in ALL {
            assert_eq!(p.reversed().reversed(), p);
        }
    }

    #[test]
    fn own_and_neighbor_labels() {
        assert_eq!(own_label(Direction::Out, Polarity::LH), L);
        assert_eq!(neighbor_label(Direction::Out, Polarity::LH), H);
        assert_eq!(own_label(Direction::In, Polarity::LH), H);
        assert_eq!(neighbor_label(Direction::In, Polarity::LH), L);
    }

    #[test]
    fn sides_follow_orientation() {
        // Out-edge, vertex canonical → extends to the right.
        assert_eq!(side_of(Direction::Out, Polarity::LL), Side::Right);
        assert_eq!(side_of(Direction::Out, Polarity::LH), Side::Right);
        // Out-edge, vertex reverse-complemented → the extension is on the left
        // of the canonical sequence.
        assert_eq!(side_of(Direction::Out, Polarity::HL), Side::Left);
        assert_eq!(side_of(Direction::Out, Polarity::HH), Side::Left);
        // In-edges mirror out-edges.
        assert_eq!(side_of(Direction::In, Polarity::LL), Side::Left);
        assert_eq!(side_of(Direction::In, Polarity::HL), Side::Left);
        assert_eq!(side_of(Direction::In, Polarity::LH), Side::Right);
        assert_eq!(side_of(Direction::In, Polarity::HH), Side::Right);
    }

    #[test]
    fn side_is_invariant_under_property_1() {
        // Re-expressing an edge in the opposite direction must not change which
        // side of the vertex it attaches to — otherwise vertex typing would
        // depend on the arbitrary storage direction.
        for p in ALL {
            for d in [Direction::Out, Direction::In] {
                let side = side_of(d, p);
                let side_rev = side_of(d.reversed(), p.reversed());
                assert_eq!(side, side_rev, "direction {d:?}, polarity {p}");
            }
        }
    }

    #[test]
    fn display_notation() {
        assert_eq!(Polarity::LH.to_string(), "<L:H>");
        assert_eq!(Polarity::HH.to_string(), "<H:H>");
        assert_eq!(Direction::Out.reversed(), Direction::In);
        assert_eq!(Side::Left.opposite(), Side::Right);
        assert_eq!(Side::Right.opposite(), Side::Left);
    }

    proptest! {
        #[test]
        fn prop_reversed_swaps_and_flips(idx in 0usize..4) {
            let p = Polarity::from_index(idx);
            let r = p.reversed();
            prop_assert_eq!(r.source_label(), p.target_label().flip());
            prop_assert_eq!(r.target_label(), p.source_label().flip());
        }
    }
}
