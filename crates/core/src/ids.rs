//! 64-bit vertex identifiers (Figure 7 of the paper).
//!
//! PPA-assembler encodes everything it needs to know about a vertex's identity
//! into a single 64-bit integer so that message routing works on plain words:
//!
//! * **k-mer vertices** (Figure 7a): the 2-bit packed canonical k-mer sequence,
//!   right-aligned; for k ≤ 31 at most 62 bits are used and the top two bits
//!   are zero.
//! * **NULL** (Figure 7b): the dummy neighbour that marks a dead end; only the
//!   most significant bit is set.
//! * **contig vertices** (Figure 7c): the most significant bit is set and the
//!   remaining bits hold `worker ‖ ordinal`, because a contig's sequence can be
//!   arbitrarily long and cannot be embedded in the ID.
//! * **flipped IDs**: during contig labeling a contig-end replaces its edge to
//!   an ambiguous vertex by a self-loop whose target carries a *flipped*
//!   second-most-significant bit, marking "this pointer has reached a contig
//!   end".
//!
//! Deviation from the paper: the paper gives the worker field 32 bits; here it
//! gets 30 bits (more than enough for any realistic worker count) so that the
//! flip bit (bit 62) can never collide with a contig ID. Contig ordinals also
//! start at 1 so that no contig ID equals NULL.

use ppa_seq::{Kmer, SeqError};

/// The dummy neighbour ID marking a dead end (Figure 7b).
pub const NULL_ID: u64 = 1 << 63;

/// Bit marking contig (and NULL) IDs.
const CONTIG_MARK: u64 = 1 << 63;

/// The contig-end "flip" bit used by bidirectional list ranking.
const FLIP_BIT: u64 = 1 << 62;

/// Number of bits for the contig ordinal.
const ORDINAL_BITS: u32 = 32;

/// Mask for the worker field of a contig ID (30 bits).
const WORKER_MASK: u64 = (1 << 30) - 1;

/// Builds the vertex ID of a canonical k-mer.
///
/// The caller is responsible for passing the *canonical* form; in debug builds
/// this is asserted.
#[inline]
pub fn kmer_id(kmer: &Kmer) -> u64 {
    debug_assert!(
        kmer.is_canonical(),
        "k-mer vertex IDs must encode the canonical form"
    );
    kmer.packed()
}

/// Reconstructs the k-mer encoded in a k-mer vertex ID.
pub fn kmer_from_id(id: u64, k: usize) -> Result<Kmer, SeqError> {
    Kmer::from_packed(id & !(CONTIG_MARK | FLIP_BIT), k)
}

/// Builds a contig vertex ID from the worker that created it and its ordinal
/// on that worker (1-based).
///
/// # Panics
///
/// Panics if `ordinal` is 0 (reserved so that no contig ID collides with
/// [`NULL_ID`]) or if `worker` exceeds the 30-bit field.
#[inline]
pub fn contig_id(worker: u32, ordinal: u32) -> u64 {
    assert!(
        ordinal > 0,
        "contig ordinals are 1-based to avoid colliding with NULL"
    );
    assert!(
        (worker as u64) <= WORKER_MASK,
        "worker index {worker} exceeds the 30-bit worker field"
    );
    CONTIG_MARK | ((worker as u64) << ORDINAL_BITS) | ordinal as u64
}

/// Extracts `(worker, ordinal)` from a contig ID.
#[inline]
pub fn contig_parts(id: u64) -> (u32, u32) {
    debug_assert!(is_contig_id(id));
    (
        ((id >> ORDINAL_BITS) & WORKER_MASK) as u32,
        (id & 0xFFFF_FFFF) as u32,
    )
}

/// Whether `id` is the NULL dummy neighbour.
#[inline]
pub fn is_null(id: u64) -> bool {
    id == NULL_ID
}

/// Whether `id` identifies a contig vertex.
#[inline]
pub fn is_contig_id(id: u64) -> bool {
    id & CONTIG_MARK != 0 && !is_null(id)
}

/// Whether `id` identifies a k-mer vertex.
#[inline]
pub fn is_kmer_id(id: u64) -> bool {
    id & CONTIG_MARK == 0
}

/// Sets the contig-end flip bit (idempotent).
#[inline]
pub fn flip(id: u64) -> u64 {
    id | FLIP_BIT
}

/// Clears the contig-end flip bit (idempotent).
#[inline]
pub fn unflip(id: u64) -> u64 {
    id & !FLIP_BIT
}

/// Whether the contig-end flip bit is set.
#[inline]
pub fn is_flipped(id: u64) -> bool {
    id & FLIP_BIT != 0
}

/// Renders an ID for debugging: `kmer:<packed>`, `contig:<worker>/<ordinal>`,
/// `NULL`, with a trailing `~` when the flip bit is set.
pub fn describe(id: u64) -> String {
    let flipped = if is_flipped(id) { "~" } else { "" };
    let base = unflip(id);
    if is_null(base) {
        format!("NULL{flipped}")
    } else if is_contig_id(base) {
        let (w, o) = contig_parts(base);
        format!("contig:{w}/{o}{flipped}")
    } else {
        format!("kmer:{base:#x}{flipped}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppa_seq::Kmer;

    #[test]
    fn kmer_id_matches_packed_encoding() {
        // Figure 7(a): "ATTGC" → 00 11 11 10 01.
        let k = Kmer::from_str_exact("ATTGC").unwrap();
        assert!(k.is_canonical());
        let id = kmer_id(&k);
        assert_eq!(id, 0b00_11_11_10_01);
        assert!(is_kmer_id(id));
        assert!(!is_contig_id(id));
        assert!(!is_null(id));
        assert_eq!(kmer_from_id(id, 5).unwrap(), k);
    }

    #[test]
    fn null_id_is_msb_only() {
        assert_eq!(NULL_ID, 0x8000_0000_0000_0000);
        assert!(is_null(NULL_ID));
        assert!(!is_kmer_id(NULL_ID));
        assert!(!is_contig_id(NULL_ID));
    }

    #[test]
    fn contig_ids_combine_worker_and_ordinal() {
        let id = contig_id(3, 17);
        assert!(is_contig_id(id));
        assert!(!is_kmer_id(id));
        assert!(!is_null(id));
        assert_eq!(contig_parts(id), (3, 17));
        // Distinct workers/ordinals give distinct IDs.
        assert_ne!(contig_id(3, 18), id);
        assert_ne!(contig_id(4, 17), id);
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn contig_ordinal_zero_rejected() {
        contig_id(0, 0);
    }

    #[test]
    fn flip_bit_roundtrip() {
        let k = Kmer::from_str_exact("ACGTA").unwrap();
        let id = kmer_id(&k);
        let f = flip(id);
        assert!(is_flipped(f));
        assert!(!is_flipped(id));
        assert_eq!(unflip(f), id);
        assert_eq!(flip(f), f, "flip is idempotent");
        assert_eq!(unflip(id), id, "unflip is idempotent");
        // The flipped ID still decodes to the same k-mer.
        assert_eq!(kmer_from_id(f, 5).unwrap(), k);
    }

    #[test]
    fn flip_does_not_clash_with_contig_ids() {
        let c = contig_id(WORKER_MASK as u32, u32::MAX);
        assert!(!is_flipped(c), "contig IDs must leave the flip bit clear");
        let fc = flip(c);
        assert!(is_flipped(fc));
        assert_eq!(unflip(fc), c);
        assert!(is_contig_id(unflip(fc)));
    }

    #[test]
    fn id_spaces_are_disjoint() {
        let kmer = kmer_id(&Kmer::from_str_exact("AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA").unwrap());
        let contig = contig_id(0, 1);
        assert!(is_kmer_id(kmer) && !is_contig_id(kmer));
        assert!(is_contig_id(contig) && !is_kmer_id(contig));
        assert_ne!(contig, NULL_ID);
        assert_ne!(kmer, NULL_ID);
    }

    #[test]
    fn describe_is_readable() {
        assert_eq!(describe(NULL_ID), "NULL");
        assert!(describe(contig_id(2, 9)).contains("contig:2/9"));
        let k = kmer_id(&Kmer::from_str_exact("ACGT").unwrap());
        assert!(describe(flip(k)).ends_with('~'));
    }
}
