//! The composable pipeline API: first-class stages over a unified
//! [`GraphState`].
//!
//! The paper's central claim (Figure 10) is that assembly is a *composition*
//! of reusable Pregel operations — "users may combine the provided operations
//! to implement various sequencing strategies". This module makes that
//! composition a first-class object:
//!
//! * [`Stage`] — one pipeline step. Every paper operation ships as an
//!   implementor ([`Construct`], [`Label`] in its LR and S-V flavours,
//!   [`Merge`], [`FilterBubbles`], [`RemoveTips`]) plus the terminal
//!   [`FilterLength`]; custom stages are ordinary trait impls.
//! * [`GraphState`] — the unified working state the stages transform: the
//!   input reads, the current node set, the most recent labeling, the contig
//!   vertices, the ambiguous k-mers awaiting re-wiring, and the final output.
//! * [`Pipeline`] — the builder: [`then`](Pipeline::then) appends a stage,
//!   [`repeat`](Pipeline::repeat) loops a block of stages (the paper's
//!   ④⑤⑥②③ error-correction rounds), [`observe`](Pipeline::observe) attaches
//!   a [`PipelineObserver`], and [`run`](Pipeline::run) executes the stages
//!   on an [`ExecCtx`] worker pool.
//! * [`PipelineObserver`] — timing/stats instrumentation as a hook instead of
//!   inline code: the runner measures every stage and delivers a
//!   [`StageReport`]; [`WorkflowStats`] *is* the built-in observer (it
//!   rebuilds all the paper-table statistics from the reports), and
//!   [`StageLogger`] prints per-stage progress for the bench harnesses.
//!
//! [`Pipeline::paper_workflow`] is the preset for the paper's evaluation
//! workflow ①②③(④⑤②③)×r; [`crate::workflow::assemble`] is now a thin wrapper
//! over it.
//!
//! # Build your own workflow
//!
//! The "S-V labeling, no bubble filtering, two tip-removal rounds" strategy
//! of `examples/custom_workflow.rs` is a handful of builder calls:
//!
//! ```
//! use ppa_assembler::ops::{ConstructConfig, MergeConfig, TipConfig};
//! use ppa_assembler::pipeline::{
//!     FilterLength, GraphState, Label, Merge, Pipeline, RemoveTips, Stage,
//! };
//! use ppa_assembler::stats::WorkflowStats;
//! use ppa_pregel::ExecCtx;
//! use ppa_readsim::{GenomeConfig, ReadSimConfig};
//!
//! let reference = GenomeConfig { length: 2_000, repeat_families: 0, ..Default::default() }
//!     .generate();
//! let reads = ReadSimConfig::error_free(100, 20.0).simulate(&reference);
//!
//! let (k, workers) = (21, 2);
//! let merge = MergeConfig { k, tip_length_threshold: 80 };
//! let mut stats = WorkflowStats::default();
//! let mut pipeline = Pipeline::new()
//!     .then(ppa_assembler::pipeline::Construct::new(ConstructConfig {
//!         k,
//!         min_coverage: 0,
//!         batch_size: 1024,
//!     }))
//!     .then(Label::simplified_sv())
//!     .then(Merge::new(merge.clone()))
//!     .repeat(
//!         2,
//!         vec![Box::new(RemoveTips::new(TipConfig { k, tip_length_threshold: 80 }))
//!             as Box<dyn Stage>],
//!     )
//!     .then(Label::simplified_sv())
//!     .then(Merge::new(merge))
//!     .then(FilterLength::new(0))
//!     .observe(&mut stats);
//!
//! let mut state = GraphState::new(&reads);
//! let reports = pipeline.run(&mut state, &ExecCtx::new(workers));
//! assert!(!state.output.is_empty());
//! assert_eq!(reports.len(), 8); // construct, label, merge, 2 × tips, label, merge, filter
//! assert!(stats.total_elapsed.as_nanos() > 0);
//! ```

use crate::checkpoint::{self, CheckpointError, CheckpointMeta, Fnv64};
use crate::node::AsmNode;
use crate::ops::bubble::{filter_bubbles_on, remove_pruned, BubbleConfig};
use crate::ops::construct::{build_dbg_on, ConstructConfig, ConstructStats};
use crate::ops::label::{label_contigs_lr_on, LabelOutcome};
use crate::ops::label_sv::label_contigs_sv_on;
use crate::ops::merge::{merge_contigs_on, MergeConfig};
use crate::ops::tip::{remove_tips_on, TipConfig};
use crate::stats::{n50, CorrectionStats, LabelStats, MergeStats, WorkflowStats};
use crate::workflow::{AssemblyConfig, Contig, LabelingAlgorithm};
use ppa_pregel::engine::panic_message;
use ppa_pregel::{CancelReason, EngineError, ExecCtx, Metrics};
use ppa_seq::{ReadSet, SeqError};
use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Graph state
// ---------------------------------------------------------------------------

/// The unified working state a [`Pipeline`] threads through its stages: what
/// `assemble()` used to shuttle between operations as local variables.
///
/// All fields are public so custom [`Stage`]s can transform the state freely;
/// the invariants the built-in stages maintain are documented per field.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphState<'r> {
    /// The input read set ([`Construct`] consumes it).
    pub reads: &'r ReadSet,
    /// The current node set that labeling and merging operate on: the k-mer
    /// vertices after [`Construct`]; the mixed k-mer + contig set rebuilt by
    /// [`Label`] after a [`RemoveTips`] rewired the graph. [`Merge`] drains
    /// it (into `ambiguous_kmers` and `contigs`).
    pub nodes: Vec<AsmNode>,
    /// The most recent labeling outcome ([`Label`] sets it, [`Merge`] takes
    /// it).
    pub labels: Option<LabelOutcome>,
    /// The current contig vertices ([`Merge`] produces them,
    /// [`FilterBubbles`]/[`RemoveTips`] correct them).
    pub contigs: Vec<AsmNode>,
    /// Ambiguous (⟨m-n⟩) k-mer vertices awaiting re-wiring by [`RemoveTips`].
    pub ambiguous_kmers: Vec<AsmNode>,
    /// Whether `ambiguous_kmers`/`contigs` have had their adjacency rebuilt
    /// by [`RemoveTips`] since the last [`Merge`]. Re-labeling a drained node
    /// set requires this: straight after a merge, the k-mer adjacencies still
    /// reference vertices that were folded into contigs, so [`Label`] refuses
    /// to rebuild its working set from an un-rewired graph.
    pub rewired: bool,
    /// The final assembly output ([`FilterLength`] moves `contigs` here).
    pub output: Vec<Contig>,
}

impl<'r> GraphState<'r> {
    /// A fresh state over a read set, ready for a [`Construct`] stage.
    pub fn new(reads: &'r ReadSet) -> GraphState<'r> {
        GraphState {
            reads,
            nodes: Vec::new(),
            labels: None,
            contigs: Vec::new(),
            ambiguous_kmers: Vec::new(),
            rewired: false,
            output: Vec::new(),
        }
    }
}

// ---------------------------------------------------------------------------
// Pipeline errors and the checkpoint policy
// ---------------------------------------------------------------------------

/// A recoverable pipeline failure, as returned by [`Pipeline::try_run`],
/// [`Pipeline::resume`] and [`Pipeline::try_run_with_retries`].
///
/// [`Pipeline::run`] keeps the historical panicking contract; the `try_*`
/// entry points catch stage panics at the stage boundary (worker panics
/// already unwind cleanly to the dispatching thread, leaving the pool
/// reusable) and convert them — together with checkpoint I/O failures and
/// malformed input — into this type so a driver can retry from the last
/// snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// The input reads could not be parsed (malformed FASTA/FASTQ).
    Input(SeqError),
    /// A stage panicked: a worker panic surfaced at the superstep barrier, an
    /// injected fault, or a stage-invariant violation. The state may be
    /// partially mutated; reload it from a checkpoint (or rebuild it fresh)
    /// before retrying.
    Stage {
        /// Name of the failing stage.
        stage: String,
        /// 1-based per-stage-name round the failing execution would have been.
        round: usize,
        /// The panic message.
        message: String,
    },
    /// Saving or loading a checkpoint failed.
    Checkpoint(CheckpointError),
    /// The job's [`JobControl`](ppa_pregel::JobControl) tripped at a
    /// cooperative poll: an explicit cancel request, an expired deadline, or
    /// a memory budget overrun. Never retried by
    /// [`Pipeline::try_run_with_retries`] — the stop is deliberate. When the
    /// trip happened at a stage boundary with checkpointing armed, an
    /// emergency snapshot was written first, so
    /// [`Pipeline::resume`] continues exactly from the cut point.
    Cancelled {
        /// Why the control plane stopped the run.
        reason: CancelReason,
        /// The stage that was running (or about to run) when the poll fired.
        stage: String,
        /// The superstep boundary of a mid-stage trip; `None` when the trip
        /// fired at the pipeline's own stage boundary.
        superstep: Option<usize>,
    },
}

impl PipelineError {
    /// Whether a retry can plausibly cure this failure. Stage panics and
    /// checkpoint I/O errors are transient (a crash can be re-run, a full
    /// disk can recover); malformed input and cancellations are not —
    /// [`Pipeline::try_run_with_retries`] fails fast on them.
    pub fn is_transient(&self) -> bool {
        match self {
            PipelineError::Stage { .. } | PipelineError::Checkpoint(_) => true,
            PipelineError::Input(_) | PipelineError::Cancelled { .. } => false,
        }
    }
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Input(e) => write!(f, "input error: {e}"),
            PipelineError::Stage {
                stage,
                round,
                message,
            } => write!(f, "stage {stage} (round {round}) failed: {message}"),
            PipelineError::Checkpoint(e) => write!(f, "{e}"),
            PipelineError::Cancelled {
                reason,
                stage,
                superstep,
            } => match superstep {
                Some(s) => write!(
                    f,
                    "cancelled during stage {stage} at superstep {s}: {reason}"
                ),
                None => write!(
                    f,
                    "cancelled at the boundary before stage {stage}: {reason}"
                ),
            },
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Input(e) => Some(e),
            PipelineError::Stage { .. } | PipelineError::Cancelled { .. } => None,
            PipelineError::Checkpoint(e) => Some(e),
        }
    }
}

impl From<SeqError> for PipelineError {
    fn from(e: SeqError) -> Self {
        PipelineError::Input(e)
    }
}

impl From<CheckpointError> for PipelineError {
    fn from(e: CheckpointError) -> Self {
        PipelineError::Checkpoint(e)
    }
}

/// When a [`Pipeline`] configured with [`Pipeline::checkpoint_to`] snapshots
/// its [`GraphState`].
///
/// Stages are counted in *flattened* execution order ([`Pipeline::repeat`]
/// blocks unrolled), matching [`Pipeline::stage_count`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CheckpointPolicy {
    /// Never checkpoint (the default; `run` stays byte-identical to a
    /// pipeline without a checkpoint directory).
    #[default]
    Off,
    /// Snapshot after every completed stage.
    EveryStage,
    /// Snapshot after every Nth completed stage (`EveryN(0)` never saves).
    EveryN(usize),
}

impl CheckpointPolicy {
    /// Whether a snapshot should be written once `completed` flattened stages
    /// have finished.
    fn should_save(&self, completed: usize) -> bool {
        match self {
            CheckpointPolicy::Off => false,
            CheckpointPolicy::EveryStage => true,
            CheckpointPolicy::EveryN(n) => *n > 0 && completed.is_multiple_of(*n),
        }
    }
}

// ---------------------------------------------------------------------------
// Stage reports & the observer protocol
// ---------------------------------------------------------------------------

/// Stage-specific result payload carried by a [`StageReport`].
#[derive(Debug, Clone)]
pub enum StageDetails {
    /// ① DBG construction finished with these statistics.
    Construct(ConstructStats),
    /// ② contig labeling finished (either algorithm).
    Label(LabelStats),
    /// ③ contig merging finished.
    Merge {
        /// Grouping/stitching statistics.
        stats: MergeStats,
        /// Surviving graph size after the merge (ambiguous k-mers + contigs).
        nodes_after: usize,
        /// N50 of the freshly merged contigs.
        n50: usize,
    },
    /// ④ bubble filtering finished.
    Bubbles {
        /// Contigs pruned as low-coverage bubble branches.
        pruned: usize,
        /// End-pair groups with more than one contig.
        candidate_groups: usize,
    },
    /// ⑤ tip removing finished.
    Tips {
        /// k-mer vertices deleted.
        deleted_kmers: usize,
        /// Contig vertices deleted.
        deleted_contigs: usize,
        /// Pregel metrics of the REQUEST/DELETE job.
        metrics: Metrics,
    },
    /// Final length filtering finished.
    FilterLength {
        /// Contigs kept in the output.
        kept: usize,
        /// Contigs dropped as too short.
        dropped: usize,
        /// N50 of the output.
        n50: usize,
    },
    /// A user-defined stage with no structured payload.
    Custom,
}

/// Formats a byte count as a compact human-readable figure.
fn fmt_bytes(bytes: u64) -> String {
    if bytes >= 1 << 20 {
        format!("{:.1} MiB", bytes as f64 / (1 << 20) as f64)
    } else {
        format!("{:.1} KiB", bytes as f64 / (1 << 10) as f64)
    }
}

impl StageDetails {
    /// One-line human-readable summary (used by [`StageLogger`]).
    pub fn summary(&self) -> String {
        match self {
            StageDetails::Construct(s) => format!(
                "{} k-mer vertices from {} kept (k+1)-mers",
                s.vertices, s.kept_kplus1_mers
            ),
            StageDetails::Label(s) => {
                let polls = if s.cancellation_checks > 0 {
                    format!(", {} cancel polls", s.cancellation_checks)
                } else {
                    String::new()
                };
                let spill = if s.spilled_bytes > 0 {
                    format!(
                        ", spilled {} / read back {} in {} runs",
                        fmt_bytes(s.spilled_bytes),
                        fmt_bytes(s.spill_read_bytes),
                        s.spilled_runs
                    )
                } else {
                    String::new()
                };
                format!(
                    "{} labeled / {} ambiguous in {} supersteps, {} msgs \
                     (avg frontier {:.0}%, store {}{polls}{spill})",
                    s.labeled_vertices,
                    s.ambiguous_vertices,
                    s.supersteps,
                    s.messages,
                    s.avg_frontier_density * 100.0,
                    fmt_bytes(s.peak_store_resident_bytes)
                )
            }
            StageDetails::Merge {
                stats, nodes_after, ..
            } => format!(
                "{} contigs from {} groups ({} tips dropped), {} nodes remain",
                stats.contigs, stats.groups, stats.dropped_tips, nodes_after
            ),
            StageDetails::Bubbles {
                pruned,
                candidate_groups,
            } => format!("{pruned} contigs pruned in {candidate_groups} candidate groups"),
            StageDetails::Tips {
                deleted_kmers,
                deleted_contigs,
                metrics,
            } => format!(
                "{deleted_kmers} k-mers and {deleted_contigs} contigs deleted in {} supersteps \
                 (avg frontier {:.0}%, store {})",
                metrics.supersteps,
                metrics.avg_frontier_density * 100.0,
                fmt_bytes(metrics.peak_store_resident_bytes)
            ),
            StageDetails::FilterLength { kept, dropped, n50 } => {
                format!("{kept} contigs kept ({dropped} too short), N50 {n50}")
            }
            StageDetails::Custom => String::new(),
        }
    }
}

/// What one stage execution produced: identity, timing, and a typed payload.
///
/// A stage constructs the report with [`StageReport::new`]; the pipeline
/// runner then fills in `round` (the 1-based occurrence of this stage name
/// within the run) and `elapsed` (measured around the stage) before
/// delivering it to the observers and returning it from
/// [`Pipeline::run`].
#[derive(Debug, Clone)]
pub struct StageReport {
    /// The stage's [`name`](Stage::name).
    pub stage: String,
    /// 1-based occurrence of this stage name within the pipeline run (e.g.
    /// the second `Label` execution has `round == 2`). Set by the runner.
    pub round: usize,
    /// Wall-clock time of the stage. Measured by the runner.
    pub elapsed: Duration,
    /// Stage-specific payload.
    pub details: StageDetails,
}

impl StageReport {
    /// Builds a report for a finished stage; the pipeline fills in timing and
    /// round.
    pub fn new(stage: impl Into<String>, details: StageDetails) -> StageReport {
        StageReport {
            stage: stage.into(),
            round: 0,
            elapsed: Duration::ZERO,
            details,
        }
    }
}

/// Instrumentation hook: the pipeline announces every stage boundary.
///
/// All methods default to no-ops, so an observer implements only what it
/// cares about. [`WorkflowStats`] implements this trait to rebuild the
/// paper-table statistics; [`StageLogger`] implements it for progress output.
pub trait PipelineObserver {
    /// The pipeline is about to run its first stage.
    fn on_pipeline_start(&mut self) {}
    /// `stage` is about to run.
    fn on_stage_start(&mut self, stage: &str) {
        let _ = stage;
    }
    /// A stage finished; `report` carries its name, round, timing, payload.
    fn on_stage_end(&mut self, report: &StageReport) {
        let _ = report;
    }
    /// The run is stopping because its [`JobControl`](ppa_pregel::JobControl)
    /// tripped; `stage` is the stage that was running (or about to run).
    /// Fired before the run's final `on_pipeline_end`.
    fn on_cancelled(&mut self, reason: CancelReason, stage: &str) {
        let _ = (reason, stage);
    }
    /// The pipeline finished all stages after `total` wall-clock time.
    fn on_pipeline_end(&mut self, total: Duration) {
        let _ = total;
    }
}

/// Returns the correction-stats slot for a 1-based correction round,
/// growing the vector as needed (bubble and tip reports of the same round
/// land in the same slot).
fn correction_at(stats: &mut WorkflowStats, round: usize) -> &mut CorrectionStats {
    let round = round.max(1);
    while stats.corrections.len() < round {
        stats.corrections.push(CorrectionStats::default());
    }
    &mut stats.corrections[round - 1]
}

impl PipelineObserver for WorkflowStats {
    fn on_stage_end(&mut self, report: &StageReport) {
        let round = report.round.max(1);
        match &report.details {
            StageDetails::Construct(stats) => {
                self.node_counts.kmer_vertices = stats.vertices as usize;
                self.construct = stats.clone();
                self.record_stage("1 DBG construction", report.elapsed);
            }
            StageDetails::Label(stats) => {
                if round == 1 {
                    self.label_round1 = stats.clone();
                    self.record_stage("2 contig labeling (k-mers)", report.elapsed);
                } else {
                    self.label_round2.push(stats.clone());
                    self.record_stage(
                        format!("2 contig labeling (contigs, round {round})"),
                        report.elapsed,
                    );
                }
            }
            StageDetails::Merge {
                stats,
                nodes_after,
                n50,
            } => {
                if round == 1 {
                    self.merge_round1 = stats.clone();
                    self.node_counts.after_first_merge = *nodes_after;
                    self.n50_after_round1 = *n50;
                } else {
                    self.merge_round2.push(stats.clone());
                }
                self.node_counts.after_final_merge = *nodes_after;
                self.record_stage(format!("3 contig merging (round {round})"), report.elapsed);
            }
            StageDetails::Bubbles {
                pruned,
                candidate_groups,
            } => {
                let entry = correction_at(self, round);
                entry.bubbles_pruned = *pruned;
                entry.bubble_groups = *candidate_groups;
                self.record_stage(
                    format!("4 bubble filtering (round {round})"),
                    report.elapsed,
                );
            }
            StageDetails::Tips {
                deleted_kmers,
                deleted_contigs,
                metrics,
            } => {
                let entry = correction_at(self, round);
                entry.tip_kmers_deleted = *deleted_kmers;
                entry.tip_contigs_deleted = *deleted_contigs;
                entry.tip_metrics = metrics.clone();
                self.record_stage(format!("5 tip removing (round {round})"), report.elapsed);
            }
            StageDetails::FilterLength { n50, .. } => {
                self.n50_final = *n50;
                self.record_stage("6 length filtering", report.elapsed);
            }
            StageDetails::Custom => {
                self.record_stage(report.stage.clone(), report.elapsed);
            }
        }
    }

    fn on_cancelled(&mut self, reason: CancelReason, stage: &str) {
        self.cancelled = Some(format!("{reason} (at stage {stage})"));
    }

    fn on_pipeline_end(&mut self, total: Duration) {
        self.total_elapsed = total;
    }
}

/// A [`PipelineObserver`] that prints one progress line per stage to stderr —
/// the per-stage output of the bench harnesses.
#[derive(Debug, Default)]
pub struct StageLogger {
    /// Prefix prepended to every line (e.g. the dataset or algorithm name).
    pub prefix: String,
}

impl StageLogger {
    /// A logger whose lines are prefixed with `prefix`.
    pub fn with_prefix(prefix: impl Into<String>) -> StageLogger {
        StageLogger {
            prefix: prefix.into(),
        }
    }
}

impl PipelineObserver for StageLogger {
    fn on_stage_end(&mut self, report: &StageReport) {
        let prefix = if self.prefix.is_empty() {
            String::new()
        } else {
            format!("[{}] ", self.prefix)
        };
        eprintln!(
            "{prefix}{} (round {}): {:.3}s — {}",
            report.stage,
            report.round,
            report.elapsed.as_secs_f64(),
            report.details.summary()
        );
    }
}

// ---------------------------------------------------------------------------
// The Stage trait and the built-in stages
// ---------------------------------------------------------------------------

/// One step of a [`Pipeline`]: transforms the [`GraphState`] on the given
/// execution context and reports what it did.
///
/// Implementors should be stateless configuration holders — `run` takes
/// `&self` so a stage can execute repeatedly inside
/// [`Pipeline::repeat`].
pub trait Stage {
    /// Stable identifier of the stage kind (used for round counting and
    /// observer output).
    fn name(&self) -> &str;
    /// Executes the stage. Timing and round numbering are handled by the
    /// pipeline runner; the returned report only needs name + details.
    fn run(&self, state: &mut GraphState<'_>, ctx: &ExecCtx) -> StageReport;
    /// A stable hash of the stage's configuration, folded (together with
    /// [`name`](Stage::name)) into [`Pipeline::fingerprint`] so
    /// [`Pipeline::resume`] rejects a snapshot written under different
    /// parameters. The built-in stages hash their configs; the default (`0`)
    /// means only the stage's name and position are checked.
    fn config_fingerprint(&self) -> u64 {
        0
    }
}

/// Operation ① — DBG construction: `state.reads` → `state.nodes`.
#[derive(Debug, Clone)]
pub struct Construct {
    /// The construction parameters (k, θ, batch size).
    pub config: ConstructConfig,
}

impl Construct {
    /// A construction stage with the given parameters.
    pub fn new(config: ConstructConfig) -> Construct {
        Construct { config }
    }
}

impl Stage for Construct {
    fn name(&self) -> &str {
        "construct"
    }

    fn run(&self, state: &mut GraphState<'_>, ctx: &ExecCtx) -> StageReport {
        let outcome = build_dbg_on(ctx, state.reads, &self.config);
        let stats = outcome.stats.clone();
        state.nodes = outcome.into_nodes();
        state.labels = None;
        state.contigs.clear();
        state.ambiguous_kmers.clear();
        state.rewired = false;
        state.output.clear();
        StageReport::new(self.name(), StageDetails::Construct(stats))
    }

    fn config_fingerprint(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write_u64(self.config.k as u64);
        h.write_u64(self.config.min_coverage as u64);
        h.write_u64(self.config.batch_size as u64);
        h.finish()
    }
}

/// Operation ② — contig labeling over `state.nodes`, with either algorithm.
#[derive(Debug, Clone)]
pub struct Label {
    /// Which labeling algorithm to run.
    pub algorithm: LabelingAlgorithm,
}

impl Label {
    /// A labeling stage running the given algorithm.
    pub fn new(algorithm: LabelingAlgorithm) -> Label {
        Label { algorithm }
    }

    /// Bidirectional list ranking (the BPPA the paper recommends).
    pub fn list_ranking() -> Label {
        Label::new(LabelingAlgorithm::ListRanking)
    }

    /// The simplified Shiloach–Vishkin connected-components algorithm.
    pub fn simplified_sv() -> Label {
        Label::new(LabelingAlgorithm::SimplifiedSV)
    }
}

impl Stage for Label {
    fn name(&self) -> &str {
        "label"
    }

    fn run(&self, state: &mut GraphState<'_>, ctx: &ExecCtx) -> StageReport {
        // A preceding Merge drained `nodes`; rebuild the mixed working set
        // from the corrected graph — but only once RemoveTips has rewired the
        // adjacency, otherwise labeling would run over stale k-mer edges.
        if state.nodes.is_empty() && !(state.ambiguous_kmers.is_empty() && state.contigs.is_empty())
        {
            assert!(
                state.rewired,
                "the Label stage found a drained node set whose adjacency was not rebuilt: \
                 after Merge, run RemoveTips before re-labeling"
            );
            state.nodes = state
                .ambiguous_kmers
                .iter()
                .cloned()
                .chain(state.contigs.iter().cloned())
                .collect();
        }
        let outcome = match self.algorithm {
            LabelingAlgorithm::ListRanking => label_contigs_lr_on(ctx, &state.nodes),
            LabelingAlgorithm::SimplifiedSV => label_contigs_sv_on(ctx, &state.nodes),
        };
        let stats = LabelStats::from_metrics(
            &outcome.metrics,
            outcome.labels.len(),
            outcome.ambiguous.len(),
            outcome.used_cycle_fallback,
        );
        state.labels = Some(outcome);
        StageReport::new(self.name(), StageDetails::Label(stats))
    }

    fn config_fingerprint(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write_u64(match self.algorithm {
            LabelingAlgorithm::ListRanking => 0,
            LabelingAlgorithm::SimplifiedSV => 1,
        });
        h.finish()
    }
}

/// Operation ③ — contig merging: drains `state.nodes` + the pending labels
/// into fresh `state.contigs`, parking the ambiguous k-mers in
/// `state.ambiguous_kmers`.
#[derive(Debug, Clone)]
pub struct Merge {
    /// The merging parameters (k, tip-length threshold).
    pub config: MergeConfig,
}

impl Merge {
    /// A merging stage with the given parameters.
    pub fn new(config: MergeConfig) -> Merge {
        Merge { config }
    }
}

impl Stage for Merge {
    fn name(&self) -> &str {
        "merge"
    }

    fn run(&self, state: &mut GraphState<'_>, ctx: &ExecCtx) -> StageReport {
        let labels = state
            .labels
            .take()
            .expect("the Merge stage requires a preceding Label stage");
        let merged = merge_contigs_on(ctx, &state.nodes, &labels.labels, &self.config);
        let stats = MergeStats {
            groups: merged.groups,
            contigs: merged.contigs.len(),
            dropped_tips: merged.dropped_tips,
            mapreduce: merged.mapreduce.clone(),
        };
        let ambiguous: HashSet<u64> = labels.ambiguous.iter().copied().collect();
        let nodes = std::mem::take(&mut state.nodes);
        state.ambiguous_kmers = nodes
            .into_iter()
            .filter(|n| ambiguous.contains(&n.id))
            .collect();
        state.contigs = merged.contigs;
        state.rewired = false;
        let nodes_after = state.ambiguous_kmers.len() + state.contigs.len();
        let n50_merged = n50(&state.contigs.iter().map(|c| c.len()).collect::<Vec<_>>());
        StageReport::new(
            self.name(),
            StageDetails::Merge {
                stats,
                nodes_after,
                n50: n50_merged,
            },
        )
    }

    fn config_fingerprint(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write_u64(self.config.k as u64);
        h.write_u64(self.config.tip_length_threshold as u64);
        h.finish()
    }
}

/// Operation ④ — bubble filtering: prunes low-coverage parallel contigs from
/// `state.contigs` in place.
#[derive(Debug, Clone)]
pub struct FilterBubbles {
    /// The bubble-filtering parameters (edit-distance threshold).
    pub config: BubbleConfig,
}

impl FilterBubbles {
    /// A bubble-filtering stage with the given parameters.
    pub fn new(config: BubbleConfig) -> FilterBubbles {
        FilterBubbles { config }
    }
}

impl Stage for FilterBubbles {
    fn name(&self) -> &str {
        "filter_bubbles"
    }

    fn run(&self, state: &mut GraphState<'_>, ctx: &ExecCtx) -> StageReport {
        let outcome = filter_bubbles_on(ctx, &state.contigs, &self.config);
        remove_pruned(&mut state.contigs, &outcome.pruned);
        StageReport::new(
            self.name(),
            StageDetails::Bubbles {
                pruned: outcome.pruned.len(),
                candidate_groups: outcome.candidate_groups,
            },
        )
    }

    fn config_fingerprint(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write_u64(self.config.max_edit_distance as u64);
        h.finish()
    }
}

/// Operation ⑤ — tip removing: rewires `state.ambiguous_kmers` +
/// `state.contigs` and marks the state rewired, so the next [`Label`] stage
/// rebuilds the mixed k-mer + contig working set from them.
#[derive(Debug, Clone)]
pub struct RemoveTips {
    /// The tip-removal parameters (k, tip-length threshold).
    pub config: TipConfig,
}

impl RemoveTips {
    /// A tip-removal stage with the given parameters.
    pub fn new(config: TipConfig) -> RemoveTips {
        RemoveTips { config }
    }
}

impl Stage for RemoveTips {
    fn name(&self) -> &str {
        "remove_tips"
    }

    fn run(&self, state: &mut GraphState<'_>, ctx: &ExecCtx) -> StageReport {
        let tips = remove_tips_on(ctx, &state.ambiguous_kmers, &state.contigs, &self.config);
        // The mixed working set is rebuilt lazily by the next Label stage, so
        // consecutive tip rounds do not each materialise a full graph copy.
        state.nodes.clear();
        state.ambiguous_kmers = tips.kmers;
        state.contigs = tips.contigs;
        state.rewired = true;
        StageReport::new(
            self.name(),
            StageDetails::Tips {
                deleted_kmers: tips.deleted_kmers,
                deleted_contigs: tips.deleted_contigs,
                metrics: tips.metrics,
            },
        )
    }

    fn config_fingerprint(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write_u64(self.config.k as u64);
        h.write_u64(self.config.tip_length_threshold as u64);
        h.finish()
    }
}

/// Terminal stage: moves `state.contigs` into `state.output`, dropping
/// contigs shorter than the configured minimum and sorting longest-first.
#[derive(Debug, Clone)]
pub struct FilterLength {
    /// Contigs shorter than this are dropped from the output.
    pub min_length: usize,
}

impl FilterLength {
    /// A length-filter stage with the given minimum contig length.
    pub fn new(min_length: usize) -> FilterLength {
        FilterLength { min_length }
    }
}

impl Stage for FilterLength {
    fn name(&self) -> &str {
        "filter_length"
    }

    fn run(&self, state: &mut GraphState<'_>, _ctx: &ExecCtx) -> StageReport {
        let contigs = std::mem::take(&mut state.contigs);
        let before = contigs.len();
        let mut out: Vec<Contig> = contigs
            .into_iter()
            .filter(|c| c.len() >= self.min_length)
            .map(|c| Contig {
                id: c.id,
                sequence: c.seq.to_dna(),
                coverage: c.coverage,
            })
            .collect();
        out.sort_by(|a, b| b.len().cmp(&a.len()).then(a.id.cmp(&b.id)));
        let n50_out = n50(&out.iter().map(Contig::len).collect::<Vec<_>>());
        let kept = out.len();
        state.output = out;
        StageReport::new(
            self.name(),
            StageDetails::FilterLength {
                kept,
                dropped: before - kept,
                n50: n50_out,
            },
        )
    }

    fn config_fingerprint(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write_u64(self.min_length as u64);
        h.finish()
    }
}

// ---------------------------------------------------------------------------
// The pipeline builder
// ---------------------------------------------------------------------------

enum PipelineItem {
    Stage(Box<dyn Stage>),
    Repeat {
        times: usize,
        stages: Vec<Box<dyn Stage>>,
    },
}

/// Flattens the item list into execution order (repeat blocks unrolled).
fn flattened(items: &[PipelineItem]) -> Vec<&dyn Stage> {
    let mut flat: Vec<&dyn Stage> = Vec::new();
    for item in items {
        match item {
            PipelineItem::Stage(stage) => flat.push(stage.as_ref()),
            PipelineItem::Repeat { times, stages } => {
                for _ in 0..*times {
                    for stage in stages {
                        flat.push(stage.as_ref());
                    }
                }
            }
        }
    }
    flat
}

/// A composed sequence of [`Stage`]s with attached [`PipelineObserver`]s.
///
/// Built with [`then`](Pipeline::then) / [`repeat`](Pipeline::repeat) /
/// [`observe`](Pipeline::observe); executed with [`run`](Pipeline::run). The
/// lifetime parameter is the borrow of the attached observers.
///
/// # Fault tolerance
///
/// [`checkpoint_to`](Pipeline::checkpoint_to) makes the pipeline snapshot its
/// [`GraphState`] at stage boundaries (see [`crate::checkpoint`]);
/// [`try_run`](Pipeline::try_run) converts stage panics and checkpoint
/// failures into typed [`PipelineError`]s instead of unwinding;
/// [`resume`](Pipeline::resume) fast-forwards past the stages a snapshot
/// already completed; and
/// [`try_run_with_retries`](Pipeline::try_run_with_retries) is the
/// self-healing driver loop combining all three.
pub struct Pipeline<'o> {
    items: Vec<PipelineItem>,
    observers: Vec<&'o mut dyn PipelineObserver>,
    checkpoint: Option<(PathBuf, CheckpointPolicy)>,
}

impl Default for Pipeline<'_> {
    fn default() -> Self {
        Pipeline::new()
    }
}

impl<'o> Pipeline<'o> {
    /// An empty pipeline.
    pub fn new() -> Pipeline<'o> {
        Pipeline {
            items: Vec::new(),
            observers: Vec::new(),
            checkpoint: None,
        }
    }

    /// Appends one stage.
    pub fn then(mut self, stage: impl Stage + 'static) -> Pipeline<'o> {
        self.items.push(PipelineItem::Stage(Box::new(stage)));
        self
    }

    /// Appends a block of stages executed `times` times in sequence — the
    /// paper's error-correction loop is `repeat(r, [④, ⑤, ②, ③])`.
    pub fn repeat(mut self, times: usize, stages: Vec<Box<dyn Stage>>) -> Pipeline<'o> {
        self.items.push(PipelineItem::Repeat { times, stages });
        self
    }

    /// Attaches an observer; every attached observer sees every stage
    /// boundary of [`run`](Pipeline::run).
    pub fn observe(mut self, observer: &'o mut dyn PipelineObserver) -> Pipeline<'o> {
        self.observers.push(observer);
        self
    }

    /// Enables stage-boundary checkpointing: snapshots of the [`GraphState`]
    /// are written under `dir` according to `policy` (see
    /// [`crate::checkpoint`] for the on-disk format). Only the most recent
    /// snapshot is kept. With [`CheckpointPolicy::Off`] nothing is written
    /// and execution is byte-identical to an unconfigured pipeline.
    pub fn checkpoint_to(
        mut self,
        dir: impl Into<PathBuf>,
        policy: CheckpointPolicy,
    ) -> Pipeline<'o> {
        self.checkpoint = Some((dir.into(), policy));
        self
    }

    /// The number of stage executions one `run` performs.
    pub fn stage_count(&self) -> usize {
        self.items
            .iter()
            .map(|item| match item {
                PipelineItem::Stage(_) => 1,
                PipelineItem::Repeat { times, stages } => times * stages.len(),
            })
            .sum()
    }

    /// The paper's evaluation workflow ①②③(④⑤②③)×r plus the final length
    /// filter, parameterised by an [`AssemblyConfig`].
    ///
    /// [`crate::workflow::assemble`] runs exactly this pipeline; build it
    /// yourself to attach extra observers or to splice in custom stages.
    pub fn paper_workflow(config: &AssemblyConfig) -> Pipeline<'o> {
        let merge_cfg = MergeConfig {
            k: config.k,
            tip_length_threshold: config.tip_length_threshold,
        };
        Pipeline::new()
            .then(Construct::new(ConstructConfig {
                k: config.k,
                min_coverage: config.min_kmer_coverage,
                batch_size: 1024,
            }))
            .then(Label::new(config.labeling))
            .then(Merge::new(merge_cfg.clone()))
            .repeat(
                config.error_correction_rounds,
                vec![
                    Box::new(FilterBubbles::new(BubbleConfig {
                        max_edit_distance: config.bubble_edit_distance,
                    })),
                    Box::new(RemoveTips::new(TipConfig {
                        k: config.k,
                        tip_length_threshold: config.tip_length_threshold,
                    })),
                    Box::new(Label::new(config.labeling)),
                    Box::new(Merge::new(merge_cfg)),
                ],
            )
            .then(FilterLength::new(config.min_contig_length))
    }

    /// A stable fingerprint of the pipeline's structure: the flattened
    /// sequence of stage names and per-stage
    /// [`config_fingerprint`](Stage::config_fingerprint)s. Recorded in every
    /// checkpoint manifest; [`resume`](Pipeline::resume) refuses a snapshot
    /// whose fingerprint disagrees, so a pipeline rebuilt with a different
    /// `k`, threshold, repeat count or stage order cannot silently continue
    /// from incompatible data.
    pub fn fingerprint(&self) -> u64 {
        let flat = flattened(&self.items);
        let mut h = Fnv64::new();
        h.write_u64(flat.len() as u64);
        for stage in &flat {
            h.write_str(stage.name());
            h.write_u64(stage.config_fingerprint());
        }
        h.finish()
    }

    /// The shared execution core: runs the flattened stages from `start_at`,
    /// threading the per-stage-name round counters and appending one report
    /// per completed stage. With `catch` set, a stage panic is caught at the
    /// stage boundary and returned as [`PipelineError::Stage`]; without it,
    /// panics propagate unchanged (the historical [`run`](Pipeline::run)
    /// contract). Checkpoints are written per the configured policy; injected
    /// checkpoint-write faults ([`ppa_pregel::FaultPlan`]) surface as
    /// [`CheckpointError::Io`].
    fn execute(
        &mut self,
        state: &mut GraphState<'_>,
        ctx: &ExecCtx,
        start_at: usize,
        rounds: &mut HashMap<String, usize>,
        catch: bool,
        reports: &mut Vec<StageReport>,
    ) -> Result<(), PipelineError> {
        let fingerprint = self.fingerprint();
        let Pipeline {
            items,
            observers,
            checkpoint,
        } = self;
        let flat = flattened(items);
        // Grab the armed fault plan and the control handle once per run:
        // un-instrumented executions pay one Option check per stage.
        let faults = ctx.faults();
        let control = ctx.control();
        // Reads are immutable for the whole execution: fingerprint them once
        // for all snapshots instead of re-hashing megabytes per stage.
        let reads_fp = checkpoint
            .as_ref()
            .map(|_| checkpoint::reads_fingerprint(state.reads));
        for (idx, stage) in flat.iter().enumerate().skip(start_at) {
            let stage: &dyn Stage = *stage;
            let name = stage.name().to_string();
            let round = rounds.get(&name).copied().unwrap_or(0) + 1;
            // ---- cooperative control poll (stage boundary) ----------------
            // The GraphState is consistent here (stage `idx` has not started),
            // so with checkpointing armed a trip writes one emergency
            // snapshot pinning exactly `idx` completed stages before
            // unwinding — `resume` then continues from the cut point.
            if let Some(control) = &control {
                if let Some(reason) = control.poll(0) {
                    for obs in observers.iter_mut() {
                        obs.on_cancelled(reason, &name);
                    }
                    if let Some((dir, policy)) = checkpoint {
                        if !matches!(policy, CheckpointPolicy::Off) {
                            let mut round_list: Vec<(String, usize)> =
                                rounds.iter().map(|(n, r)| (n.clone(), *r)).collect();
                            round_list.sort();
                            let meta = CheckpointMeta {
                                completed_stages: idx,
                                rounds: round_list,
                                pipeline_fingerprint: fingerprint,
                                workers: ctx.workers(),
                            };
                            let reads_fp =
                                reads_fp.expect("fingerprinted when checkpointing is on");
                            checkpoint::save_with_reads_fingerprint(dir, state, &meta, reads_fp)?;
                        }
                    }
                    return Err(PipelineError::Cancelled {
                        reason,
                        stage: name,
                        superstep: None,
                    });
                }
            }
            for obs in observers.iter_mut() {
                obs.on_stage_start(&name);
            }
            let start = Instant::now();
            if let Some(f) = &faults {
                f.enter_stage(idx);
            }
            // The state is only conditionally unwind-safe: a caught panic may
            // leave it partially mutated. All `catch` callers either discard
            // it or reload it from a checkpoint before retrying.
            let outcome = if catch {
                catch_unwind(AssertUnwindSafe(|| {
                    if let Some(f) = &faults {
                        f.probe_stage_entry();
                    }
                    stage.run(state, ctx)
                }))
            } else {
                if let Some(f) = &faults {
                    f.probe_stage_entry();
                }
                Ok(stage.run(state, ctx))
            };
            let mut report = match outcome {
                Ok(report) => report,
                Err(payload) => {
                    // A mid-stage control trip unwinds as a typed payload
                    // raised at a superstep/shuffle barrier (see
                    // `ppa_pregel::control`); everything else is a genuine
                    // stage panic. The state is mid-stage and possibly
                    // inconsistent either way, so no emergency snapshot here:
                    // resume continues from the last policy snapshot.
                    if let Some(&EngineError::Cancelled { reason, superstep }) =
                        payload.downcast_ref::<EngineError>()
                    {
                        for obs in observers.iter_mut() {
                            obs.on_cancelled(reason, &name);
                        }
                        return Err(PipelineError::Cancelled {
                            reason,
                            stage: name,
                            superstep: Some(superstep),
                        });
                    }
                    return Err(PipelineError::Stage {
                        stage: name,
                        round,
                        message: panic_message(payload.as_ref()),
                    });
                }
            };
            report.elapsed = start.elapsed();
            report.round = round;
            rounds.insert(name, round);
            for obs in observers.iter_mut() {
                obs.on_stage_end(&report);
            }
            reports.push(report);

            if let Some((dir, policy)) = checkpoint {
                let completed = idx + 1;
                if policy.should_save(completed) {
                    if faults.as_ref().is_some_and(|f| f.probe_checkpoint_write()) {
                        return Err(PipelineError::Checkpoint(CheckpointError::Io(format!(
                            "injected fault: checkpoint write after stage {completed}"
                        ))));
                    }
                    let mut round_list: Vec<(String, usize)> =
                        rounds.iter().map(|(n, r)| (n.clone(), *r)).collect();
                    round_list.sort();
                    let meta = CheckpointMeta {
                        completed_stages: completed,
                        rounds: round_list,
                        pipeline_fingerprint: fingerprint,
                        workers: ctx.workers(),
                    };
                    let reads_fp = reads_fp.expect("fingerprinted when checkpointing is on");
                    checkpoint::save_with_reads_fingerprint(dir, state, &meta, reads_fp)?;
                }
            }
        }
        Ok(())
    }

    /// Executes every stage in order on the given state and execution
    /// context, returning the per-stage reports (also delivered to the
    /// attached observers).
    ///
    /// Keeps the historical contract: stage panics propagate unchanged, and a
    /// checkpoint failure (only possible with
    /// [`checkpoint_to`](Pipeline::checkpoint_to) enabled) panics too. Use
    /// [`try_run`](Pipeline::try_run) for typed errors.
    pub fn run(&mut self, state: &mut GraphState<'_>, ctx: &ExecCtx) -> Vec<StageReport> {
        let total = Instant::now();
        for obs in self.observers.iter_mut() {
            obs.on_pipeline_start();
        }
        let mut rounds: HashMap<String, usize> = HashMap::new();
        let mut reports: Vec<StageReport> = Vec::new();
        if let Err(e) = self.execute(state, ctx, 0, &mut rounds, false, &mut reports) {
            panic!("{e}");
        }
        let total = total.elapsed();
        for obs in self.observers.iter_mut() {
            obs.on_pipeline_end(total);
        }
        reports
    }

    /// Like [`run`](Pipeline::run), but recoverable: a stage panic (including
    /// a worker panic propagated through the superstep barrier and injected
    /// faults) or a checkpoint failure is returned as a [`PipelineError`]
    /// instead of unwinding, leaving the [`ExecCtx`] worker pool reusable.
    ///
    /// On a [`PipelineError::Stage`], the state may be partially mutated —
    /// reload it from the last checkpoint ([`resume`](Pipeline::resume)) or
    /// rebuild it with [`GraphState::new`] before retrying;
    /// [`try_run_with_retries`](Pipeline::try_run_with_retries) automates
    /// exactly that loop.
    pub fn try_run(
        &mut self,
        state: &mut GraphState<'_>,
        ctx: &ExecCtx,
    ) -> Result<Vec<StageReport>, PipelineError> {
        let total = Instant::now();
        for obs in self.observers.iter_mut() {
            obs.on_pipeline_start();
        }
        let mut rounds: HashMap<String, usize> = HashMap::new();
        let mut reports: Vec<StageReport> = Vec::new();
        let result = self.execute(state, ctx, 0, &mut rounds, true, &mut reports);
        let total = total.elapsed();
        for obs in self.observers.iter_mut() {
            obs.on_pipeline_end(total);
        }
        result.map(|()| reports)
    }

    /// Resumes from the latest snapshot under `dir`: validates that the
    /// snapshot was written by a pipeline with the same
    /// [`fingerprint`](Pipeline::fingerprint), the same worker count and the
    /// same read set, restores the [`GraphState`], fast-forwards to the
    /// recorded position (seeding the round counters so stage numbering
    /// continues seamlessly) and replays the remaining stages with
    /// [`try_run`](Pipeline::try_run) semantics.
    ///
    /// Returns the restored-and-completed state plus the reports of the
    /// *replayed* stages only. Checkpointing stays active during the replay
    /// when configured via [`checkpoint_to`](Pipeline::checkpoint_to).
    pub fn resume<'r>(
        &mut self,
        dir: impl AsRef<Path>,
        reads: &'r ReadSet,
        ctx: &ExecCtx,
    ) -> Result<(GraphState<'r>, Vec<StageReport>), PipelineError> {
        let (mut state, manifest) = checkpoint::load_latest(dir.as_ref(), reads)?;
        self.validate_manifest(&manifest, ctx)?;

        let total = Instant::now();
        for obs in self.observers.iter_mut() {
            obs.on_pipeline_start();
        }
        let mut rounds: HashMap<String, usize> = manifest.rounds.iter().cloned().collect();
        let mut reports: Vec<StageReport> = Vec::new();
        let result = self.execute(
            &mut state,
            ctx,
            manifest.completed_stages,
            &mut rounds,
            true,
            &mut reports,
        );
        let total = total.elapsed();
        for obs in self.observers.iter_mut() {
            obs.on_pipeline_end(total);
        }
        result.map(|()| (state, reports))
    }

    /// Rejects a snapshot manifest that disagrees with this pipeline or the
    /// execution context it is about to run on.
    fn validate_manifest(
        &self,
        manifest: &checkpoint::Manifest,
        ctx: &ExecCtx,
    ) -> Result<(), PipelineError> {
        let fingerprint = self.fingerprint();
        if manifest.pipeline_fingerprint != fingerprint {
            return Err(PipelineError::Checkpoint(CheckpointError::Mismatch {
                what: "pipeline fingerprint".into(),
                expected: format!("{:#018x}", manifest.pipeline_fingerprint),
                actual: format!("{fingerprint:#018x}"),
            }));
        }
        if manifest.workers != ctx.workers() {
            return Err(PipelineError::Checkpoint(CheckpointError::Mismatch {
                what: "worker count".into(),
                expected: manifest.workers.to_string(),
                actual: ctx.workers().to_string(),
            }));
        }
        if manifest.completed_stages > self.stage_count() {
            return Err(PipelineError::Checkpoint(CheckpointError::Mismatch {
                what: "completed stage count".into(),
                expected: format!("at most {}", self.stage_count()),
                actual: manifest.completed_stages.to_string(),
            }));
        }
        Ok(())
    }

    /// The self-healing driver loop: runs the pipeline, and on a failed
    /// attempt rewinds to the latest checkpoint (or to a fresh
    /// [`GraphState`] when none was saved) and retries the failed stage,
    /// up to `max_attempts` total attempts. The error of the final attempt is
    /// returned when every attempt fails.
    ///
    /// Only transient failures are retried (see
    /// [`PipelineError::is_transient`]): stage panics and checkpoint I/O
    /// errors re-run after a short deterministic backoff, while malformed
    /// input and control-plane cancellations return immediately.
    ///
    /// On success the returned reports cover every flattened stage exactly
    /// once — reports from work a failed attempt lost are replaced by the
    /// retry's. Observers, however, see each boundary as it executes,
    /// including re-executions.
    pub fn try_run_with_retries<'r>(
        &mut self,
        state: &mut GraphState<'r>,
        ctx: &ExecCtx,
        max_attempts: usize,
    ) -> Result<Vec<StageReport>, PipelineError> {
        assert!(max_attempts >= 1, "max_attempts must be at least 1");
        let reads = state.reads;
        let total = Instant::now();
        for obs in self.observers.iter_mut() {
            obs.on_pipeline_start();
        }
        let mut rounds: HashMap<String, usize> = HashMap::new();
        let mut reports: Vec<StageReport> = Vec::new();
        let mut start_at = 0;
        let mut result = Ok(());
        for attempt in 1..=max_attempts {
            if attempt > 1 {
                // Deterministic bounded backoff before retrying a transient
                // failure: 5 ms doubling per attempt, capped at 80 ms. No
                // randomness, so retry schedules replay identically.
                std::thread::sleep(Duration::from_millis(5u64 << (attempt - 2).min(4)));
                // Rewind: the failed attempt may have left the state partially
                // mutated. Reports are truncated to the snapshot position so a
                // successful run still yields exactly one report per stage. A
                // failure while reloading (corrupt snapshot, foreign manifest)
                // aborts the retry loop — retrying cannot cure it.
                let rewind =
                    || -> Result<Option<(GraphState<'r>, checkpoint::Manifest)>, PipelineError> {
                        match &self.checkpoint {
                            Some((dir, _)) => match checkpoint::latest(dir)? {
                                Some(ckpt) => Ok(Some(checkpoint::load(&ckpt, reads)?)),
                                None => Ok(None),
                            },
                            None => Ok(None),
                        }
                    };
                let resumed = match rewind() {
                    Ok(resumed) => resumed,
                    Err(e) => {
                        result = Err(e);
                        break;
                    }
                };
                match resumed {
                    Some((loaded, manifest)) => {
                        if let Err(e) = self.validate_manifest(&manifest, ctx) {
                            result = Err(e);
                            break;
                        }
                        *state = loaded;
                        start_at = manifest.completed_stages;
                        rounds = manifest.rounds.into_iter().collect();
                        reports.truncate(manifest.completed_stages);
                    }
                    None => {
                        *state = GraphState::new(reads);
                        start_at = 0;
                        rounds.clear();
                        reports.clear();
                    }
                }
            }
            result = self.execute(state, ctx, start_at, &mut rounds, true, &mut reports);
            match &result {
                Ok(()) => break,
                // Fail fast on non-transient failures: malformed input cannot
                // be cured by re-running it, and a cancellation is a
                // deliberate stop that a retry loop must honour.
                Err(e) if !e.is_transient() => break,
                Err(_) => {}
            }
        }
        let total = total.elapsed();
        for obs in self.observers.iter_mut() {
            obs.on_pipeline_end(total);
        }
        result.map(|()| reports)
    }
}

impl std::fmt::Debug for Pipeline<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stages: Vec<String> = self
            .items
            .iter()
            .map(|item| match item {
                PipelineItem::Stage(s) => s.name().to_string(),
                PipelineItem::Repeat { times, stages } => format!(
                    "repeat×{times}[{}]",
                    stages
                        .iter()
                        .map(|s| s.name())
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            })
            .collect();
        f.debug_struct("Pipeline")
            .field("stages", &stages)
            .field("observers", &self.observers.len())
            .field("checkpoint", &self.checkpoint)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppa_readsim::{GenomeConfig, ReadSimConfig};

    fn reads(length: usize, error: f64, seed: u64) -> ReadSet {
        let reference = GenomeConfig {
            length,
            repeat_families: 0,
            seed,
            ..Default::default()
        }
        .generate();
        ReadSimConfig {
            read_length: 100.min(length / 2),
            coverage: 20.0,
            substitution_rate: error,
            indel_rate: 0.0,
            n_rate: 0.0,
            both_strands: true,
            seed: seed + 1,
        }
        .simulate(&reference)
    }

    fn small_config() -> AssemblyConfig {
        AssemblyConfig {
            k: 21,
            min_kmer_coverage: 0,
            workers: 2,
            ..Default::default()
        }
    }

    #[test]
    fn paper_workflow_produces_contigs_and_reports() {
        let reads = reads(2_000, 0.0, 7);
        let config = small_config();
        let mut state = GraphState::new(&reads);
        let reports = Pipeline::paper_workflow(&config).run(&mut state, &ExecCtx::new(2));
        assert!(!state.output.is_empty());
        // ① ② ③ + (④ ⑤ ② ③) + filter = 8 stage executions for 1 round.
        assert_eq!(reports.len(), 8);
        assert_eq!(reports[0].stage, "construct");
        assert_eq!(reports[7].stage, "filter_length");
        // Round numbering: the second label/merge executions are round 2.
        assert_eq!(reports[1].round, 1);
        assert_eq!(reports[5].stage, "label");
        assert_eq!(reports[5].round, 2);
        assert_eq!(reports[6].stage, "merge");
        assert_eq!(reports[6].round, 2);
    }

    #[test]
    fn workflow_stats_observer_matches_inline_shape() {
        let reads = reads(2_000, 0.004, 19);
        let config = AssemblyConfig {
            min_kmer_coverage: 1,
            ..small_config()
        };
        let mut stats = WorkflowStats::default();
        let mut state = GraphState::new(&reads);
        Pipeline::paper_workflow(&config)
            .observe(&mut stats)
            .run(&mut state, &ExecCtx::new(2));
        assert_eq!(stats.corrections.len(), 1);
        assert_eq!(stats.label_round2.len(), 1);
        assert_eq!(stats.merge_round2.len(), 1);
        assert_eq!(
            stats.node_counts.kmer_vertices,
            stats.construct.vertices as usize
        );
        assert!(stats.total_elapsed.as_nanos() > 0);
        assert!(stats
            .timings
            .iter()
            .any(|t| t.stage == "1 DBG construction"));
        assert!(stats
            .timings
            .iter()
            .any(|t| t.stage == "2 contig labeling (contigs, round 2)"));
    }

    #[test]
    fn stage_count_accounts_for_repeats() {
        let config = AssemblyConfig {
            error_correction_rounds: 3,
            ..small_config()
        };
        let pipeline = Pipeline::<'static>::paper_workflow(&config);
        assert_eq!(pipeline.stage_count(), 3 + 3 * 4 + 1);
    }

    #[test]
    fn repeat_zero_times_skips_the_block() {
        let reads = reads(1_500, 0.0, 29);
        let config = AssemblyConfig {
            error_correction_rounds: 0,
            ..small_config()
        };
        let mut stats = WorkflowStats::default();
        let mut state = GraphState::new(&reads);
        let reports = Pipeline::paper_workflow(&config)
            .observe(&mut stats)
            .run(&mut state, &ExecCtx::new(2));
        assert_eq!(reports.len(), 4); // construct, label, merge, filter
        assert!(stats.corrections.is_empty());
        assert_eq!(stats.n50_after_round1, stats.n50_final);
    }

    #[test]
    #[should_panic(expected = "run RemoveTips before re-labeling")]
    fn relabeling_an_unrewired_graph_panics() {
        // Label after Merge without an intervening RemoveTips used to label
        // an empty node set and silently discard the assembly; now it panics
        // with guidance.
        let reads = reads(2_000, 0.0, 43);
        let config = small_config();
        let mut state = GraphState::new(&reads);
        Pipeline::new()
            .then(Construct::new(ConstructConfig {
                k: config.k,
                min_coverage: 0,
                batch_size: 1024,
            }))
            .then(Label::list_ranking())
            .then(Merge::new(MergeConfig {
                k: config.k,
                tip_length_threshold: config.tip_length_threshold,
            }))
            .then(Label::list_ranking())
            .run(&mut state, &ExecCtx::new(2));
    }

    #[test]
    #[should_panic(expected = "requires a preceding Label stage")]
    fn merge_without_label_panics() {
        let reads = ReadSet::new();
        let mut state = GraphState::new(&reads);
        Pipeline::new()
            .then(Merge::new(MergeConfig::default()))
            .run(&mut state, &ExecCtx::new(1));
    }

    #[test]
    fn custom_stage_and_custom_details_flow_through() {
        struct Halve;
        impl Stage for Halve {
            fn name(&self) -> &str {
                "halve"
            }
            fn run(&self, state: &mut GraphState<'_>, _ctx: &ExecCtx) -> StageReport {
                let keep = state.contigs.len() / 2;
                state.contigs.truncate(keep);
                StageReport::new(self.name(), StageDetails::Custom)
            }
        }
        let reads = reads(2_000, 0.0, 37);
        let config = small_config();
        let mut stats = WorkflowStats::default();
        let mut state = GraphState::new(&reads);
        let mut pipeline = Pipeline::new()
            .then(Construct::new(ConstructConfig {
                k: config.k,
                min_coverage: 0,
                batch_size: 1024,
            }))
            .then(Label::list_ranking())
            .then(Merge::new(MergeConfig {
                k: config.k,
                tip_length_threshold: config.tip_length_threshold,
            }))
            .then(Halve)
            .then(FilterLength::new(0))
            .observe(&mut stats);
        let reports = pipeline.run(&mut state, &ExecCtx::new(2));
        assert_eq!(reports[3].stage, "halve");
        assert!(matches!(reports[3].details, StageDetails::Custom));
        assert!(stats.timings.iter().any(|t| t.stage == "halve"));
    }

    /// A unique, cleaned-on-drop temp directory for checkpoint tests.
    struct TmpDir(PathBuf);

    impl TmpDir {
        fn new(tag: &str) -> TmpDir {
            let dir =
                std::env::temp_dir().join(format!("ppa-pipeline-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            TmpDir(dir)
        }
    }

    impl Drop for TmpDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn try_run_matches_run() {
        let reads = reads(2_000, 0.0, 71);
        let config = small_config();
        let ctx = ExecCtx::new(2);
        let mut baseline = GraphState::new(&reads);
        let baseline_reports = Pipeline::paper_workflow(&config).run(&mut baseline, &ctx);
        let mut state = GraphState::new(&reads);
        let reports = Pipeline::paper_workflow(&config)
            .try_run(&mut state, &ctx)
            .expect("fault-free try_run succeeds");
        assert_eq!(state, baseline);
        assert_eq!(reports.len(), baseline_reports.len());
        for (a, b) in reports.iter().zip(&baseline_reports) {
            assert_eq!((a.stage.as_str(), a.round), (b.stage.as_str(), b.round));
        }
    }

    #[test]
    fn checkpoint_policy_off_writes_nothing() {
        let reads = reads(1_500, 0.0, 73);
        let config = small_config();
        let tmp = TmpDir::new("policy-off");
        let mut state = GraphState::new(&reads);
        Pipeline::paper_workflow(&config)
            .checkpoint_to(&tmp.0, CheckpointPolicy::Off)
            .run(&mut state, &ExecCtx::new(2));
        assert!(!state.output.is_empty());
        assert!(!tmp.0.exists(), "Off policy must not touch the directory");
    }

    #[test]
    fn fingerprint_tracks_structure_and_config() {
        let config = small_config();
        let base = Pipeline::<'static>::paper_workflow(&config).fingerprint();
        assert_eq!(
            base,
            Pipeline::<'static>::paper_workflow(&config).fingerprint(),
            "fingerprint is deterministic"
        );
        let different_k = AssemblyConfig {
            k: 19,
            ..small_config()
        };
        assert_ne!(
            base,
            Pipeline::<'static>::paper_workflow(&different_k).fingerprint()
        );
        let more_rounds = AssemblyConfig {
            error_correction_rounds: 2,
            ..small_config()
        };
        assert_ne!(
            base,
            Pipeline::<'static>::paper_workflow(&more_rounds).fingerprint()
        );
    }

    #[test]
    fn try_run_surfaces_stage_panics_and_leaves_the_pool_reusable() {
        let empty = ReadSet::new();
        let ctx = ExecCtx::new(2);
        let mut state = GraphState::new(&empty);
        let err = Pipeline::new()
            .then(Merge::new(MergeConfig::default()))
            .try_run(&mut state, &ctx)
            .unwrap_err();
        match &err {
            PipelineError::Stage {
                stage,
                round,
                message,
            } => {
                assert_eq!(stage, "merge");
                assert_eq!(*round, 1);
                assert!(message.contains("requires a preceding Label stage"));
            }
            other => panic!("expected a Stage error, got {other:?}"),
        }
        // The same context still drives a full workflow afterwards.
        let reads = reads(1_500, 0.0, 79);
        let mut state = GraphState::new(&reads);
        Pipeline::paper_workflow(&small_config()).run(&mut state, &ctx);
        assert!(!state.output.is_empty());
    }

    #[test]
    fn completed_checkpoint_resumes_to_identical_state() {
        let reads = reads(2_000, 0.0, 83);
        let config = small_config();
        let ctx = ExecCtx::new(2);
        let tmp = TmpDir::new("resume-complete");
        let mut baseline = GraphState::new(&reads);
        Pipeline::paper_workflow(&config)
            .checkpoint_to(&tmp.0, CheckpointPolicy::EveryStage)
            .run(&mut baseline, &ctx);
        let (resumed, reports) = Pipeline::paper_workflow(&config)
            .resume(&tmp.0, &reads, &ctx)
            .expect("resume from a completed run");
        assert!(reports.is_empty(), "nothing left to replay");
        assert_eq!(resumed, baseline);
    }

    #[test]
    fn resume_rejects_a_mismatched_pipeline_or_context() {
        let reads = reads(1_500, 0.0, 89);
        let config = small_config();
        let ctx = ExecCtx::new(2);
        let tmp = TmpDir::new("resume-mismatch");
        let mut state = GraphState::new(&reads);
        Pipeline::paper_workflow(&config)
            .checkpoint_to(&tmp.0, CheckpointPolicy::EveryStage)
            .run(&mut state, &ctx);
        let other_config = AssemblyConfig {
            k: 19,
            ..small_config()
        };
        let err = Pipeline::paper_workflow(&other_config)
            .resume(&tmp.0, &reads, &ctx)
            .unwrap_err();
        assert!(
            matches!(
                &err,
                PipelineError::Checkpoint(CheckpointError::Mismatch { what, .. })
                    if what == "pipeline fingerprint"
            ),
            "got {err:?}"
        );
        let err = Pipeline::paper_workflow(&config)
            .resume(&tmp.0, &reads, &ExecCtx::new(3))
            .unwrap_err();
        assert!(
            matches!(
                &err,
                PipelineError::Checkpoint(CheckpointError::Mismatch { what, .. })
                    if what == "worker count"
            ),
            "got {err:?}"
        );
    }

    #[test]
    fn retries_recover_from_an_injected_stage_fault() {
        let reads = reads(2_000, 0.0, 97);
        let config = small_config();
        let ctx = ExecCtx::new(2);
        let mut baseline = GraphState::new(&reads);
        Pipeline::paper_workflow(&config).run(&mut baseline, &ctx);

        let tmp = TmpDir::new("retry-stage-fault");
        let armed = ctx.inject_faults(ppa_pregel::FaultPlan::single(
            ppa_pregel::Fault::StageEntry { stage: 5 },
        ));
        let mut state = GraphState::new(&reads);
        let reports = Pipeline::paper_workflow(&config)
            .checkpoint_to(&tmp.0, CheckpointPolicy::EveryStage)
            .try_run_with_retries(&mut state, &ctx, 2)
            .expect("the retry after the injected crash succeeds");
        ctx.clear_faults();
        assert!(armed.all_fired(), "the injected fault fired");
        assert_eq!(reports.len(), 8, "one report per flattened stage");
        assert_eq!(state.output, baseline.output, "resumed output is identical");
    }

    #[test]
    fn retries_without_checkpoints_restart_from_scratch() {
        let reads = reads(1_500, 0.0, 101);
        let config = small_config();
        let ctx = ExecCtx::new(2);
        let mut baseline = GraphState::new(&reads);
        Pipeline::paper_workflow(&config).run(&mut baseline, &ctx);

        let armed = ctx.inject_faults(ppa_pregel::FaultPlan::single(
            ppa_pregel::Fault::StageEntry { stage: 3 },
        ));
        let mut state = GraphState::new(&reads);
        let reports = Pipeline::paper_workflow(&config)
            .try_run_with_retries(&mut state, &ctx, 2)
            .expect("the full restart succeeds");
        ctx.clear_faults();
        assert!(armed.all_fired());
        assert_eq!(reports.len(), 8);
        assert_eq!(state.output, baseline.output);
    }

    #[test]
    fn bounded_retries_return_the_last_error() {
        let reads = reads(1_500, 0.0, 103);
        let config = small_config();
        let ctx = ExecCtx::new(2);
        // Two faults, one attempt: the first fault is fatal.
        let _armed = ctx.inject_faults(
            ppa_pregel::FaultPlan::new()
                .with(ppa_pregel::Fault::StageEntry { stage: 2 })
                .with(ppa_pregel::Fault::StageEntry { stage: 2 }),
        );
        let mut state = GraphState::new(&reads);
        let err = Pipeline::paper_workflow(&config)
            .try_run_with_retries(&mut state, &ctx, 1)
            .unwrap_err();
        ctx.clear_faults();
        assert!(
            matches!(&err, PipelineError::Stage { stage, .. } if stage == "merge"),
            "got {err:?}"
        );
    }
}
